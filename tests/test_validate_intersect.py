"""Tests for the set-intersection SLCA and the index validator."""

import gzip
import json

import pytest

from repro.baselines.bruteforce import brute_slca
from repro.baselines.slca import slca_indexed_lookup_eager
from repro.baselines.slca_intersect import (ancestor_set,
                                            slca_set_intersection)
from repro.cli import main
from repro.core.query import Query
from repro.datasets.registry import load_dataset
from repro.index.builder import build_index
from repro.index.storage import save_index
from repro.index.validate import (validate_against_repository,
                                  validate_index)
from repro.xmltree.repository import Repository


class TestAncestorSet:
    def test_closure_contains_all_prefixes(self):
        closure = ancestor_set([(0, 1, 2), (0, 3)])
        assert closure == {(0,), (0, 1), (0, 1, 2), (0, 3)}

    def test_shared_prefix_shortcut_is_correct(self):
        # two postings sharing a deep prefix: the closure must still be
        # complete despite the early break
        closure = ancestor_set([(0, 1, 2, 3), (0, 1, 2, 4)])
        assert (0,) in closure and (0, 1) in closure
        assert (0, 1, 2, 3) in closure and (0, 1, 2, 4) in closure

    def test_empty(self):
        assert ancestor_set([]) == set()


class TestSetIntersectionSLCA:
    CASES = [
        ["a"], ["a", "b"], ["a", "b", "c"], ["a", "b", "c", "d"],
        ["d", "f"], ["c", "d"], ["a", "d"],
    ]

    @pytest.mark.parametrize("keywords", CASES)
    def test_agrees_with_eager_and_oracle(self, figure1_repo,
                                          figure1_index, keywords):
        query = Query.of(keywords)
        expected = brute_slca(figure1_repo, query)
        assert slca_set_intersection(figure1_index, query) == expected
        assert slca_indexed_lookup_eager(figure1_index, query) == expected

    def test_on_corpus(self):
        repository = load_dataset("figure2a")
        index = build_index(repository)
        query = Query.of(["karen", "mike"])
        assert slca_set_intersection(index, query) == \
            slca_indexed_lookup_eager(index, query)

    def test_missing_keyword_empty(self, figure1_index):
        assert slca_set_intersection(figure1_index,
                                     Query.of(["a", "zzz"])) == []


class TestValidator:
    @pytest.fixture
    def healthy(self):
        repository = load_dataset("figure2a")
        return repository, build_index(repository)

    def test_healthy_index_has_no_problems(self, healthy):
        repository, index = healthy
        assert validate_index(index) == []
        assert validate_against_repository(index, repository) == []

    def test_unsorted_postings_detected(self, healthy):
        _, index = healthy
        postings = index.inverted.postings("karen")
        postings.reverse()
        problems = validate_index(index)
        assert any("unsorted" in problem for problem in problems)

    def test_unknown_document_detected(self, healthy):
        _, index = healthy
        index.inverted.postings("karen").append((9, 0))
        problems = validate_index(index)
        assert any("unknown document" in problem for problem in problems)

    def test_stale_index_detected_against_repository(self, healthy):
        repository, _ = healthy
        other = Repository.from_texts(["<r><a>different</a></r>"])
        stale = build_index(other)
        problems = validate_against_repository(stale, repository)
        assert problems

    def test_cli_validate_ok(self, tmp_path, capsys):
        repository = load_dataset("figure2a")
        index = build_index(repository)
        path = save_index(index, tmp_path / "idx.gz")
        assert main(["validate", str(path)]) == 0
        assert "index OK" in capsys.readouterr().out

    def test_cli_validate_against_mismatch(self, tmp_path, capsys):
        index = build_index(Repository.from_texts(["<r><a>x</a></r>"]))
        path = save_index(index, tmp_path / "idx.gz")
        data = tmp_path / "other.xml"
        data.write_text("<r><b>y</b></r>")
        assert main(["validate", str(path), "--against",
                     str(data)]) == 1
        assert "PROBLEM" in capsys.readouterr().out

    def test_corrupted_file_detected(self, tmp_path, capsys):
        import zlib

        repository = load_dataset("figure2a")
        index = build_index(repository)
        path = save_index(index, tmp_path / "idx.gz")
        with gzip.open(path, "rt") as handle:
            envelope = json.load(handle)
        # negative child count; re-stamp the checksum so the semantic
        # validator (not the CRC check) is what flags the file
        envelope["payload"]["entity_hash"]["0.1"] = -3
        canonical = json.dumps(envelope["payload"],
                               separators=(",", ":"), sort_keys=True)
        envelope["crc32"] = zlib.crc32(canonical.encode()) & 0xFFFFFFFF
        with gzip.open(path, "wt") as handle:
            json.dump(envelope, handle)
        assert main(["validate", str(path)]) == 1
        out = capsys.readouterr().out
        assert "negative child count" in out
