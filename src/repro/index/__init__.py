"""Indexing engine: node categorization, inverted index, hash tables,
and the durable write path (WAL + segmented store)."""

from repro.index.builder import GKSIndex, IndexBuilder, build_index
from repro.index.categorize import (CategoryRecord, NodeCategory,
                                    StreamingCategorizer, categorize_tree,
                                    iter_categories)
from repro.index.hashtables import NodeHashes
from repro.index.incremental import append_document, remove_last_document
from repro.index.inverted import InvertedIndex
from repro.index.postings import (MergedEntry, count_in_subtree,
                                  merge_posting_lists, subtree_range)
from repro.index.sharding import (ParallelIndexBuilder, Shard, ShardedIndex,
                                  build_sharded_index, partition_documents,
                                  shard_of)
from repro.index.segments import (PendingDocument, SegmentRecord,
                                  SegmentStore, StackedIndex, StoreManifest,
                                  TextsRecord, merge_indexes, read_manifest,
                                  write_manifest)
from repro.index.statistics import IndexStats
from repro.index.storage import (atomic_write_json_gz, index_size_bytes,
                                 load_index, save_index)
from repro.index.wal import (WALFrame, WALReplay, WriteAheadLog, replay_wal)

__all__ = [
    "CategoryRecord", "GKSIndex", "IndexBuilder", "IndexStats",
    "InvertedIndex", "MergedEntry", "NodeCategory", "NodeHashes",
    "ParallelIndexBuilder", "PendingDocument", "SegmentRecord",
    "SegmentStore", "Shard", "ShardedIndex", "StackedIndex",
    "StoreManifest", "StreamingCategorizer", "TextsRecord", "WALFrame",
    "WALReplay", "WriteAheadLog", "append_document",
    "atomic_write_json_gz", "build_index", "build_sharded_index",
    "categorize_tree", "count_in_subtree", "index_size_bytes",
    "iter_categories", "load_index", "merge_indexes",
    "merge_posting_lists", "partition_documents", "read_manifest",
    "remove_last_document", "replay_wal", "save_index", "shard_of",
    "subtree_range", "write_manifest",
]
