"""Unit tests for the indexing engine: inverted index, hash tables,
builder, statistics (paper §2.4)."""

import pytest

from repro.datasets.toy import figure2a
from repro.errors import IndexError_
from repro.index.builder import IndexBuilder, build_index
from repro.index.inverted import InvertedIndex
from repro.index.postings import (count_in_subtree, intersect_postings,
                                  merge_posting_lists, subtree_range)
from repro.text.analyzer import Analyzer
from repro.xmltree.repository import Repository
from repro.xmltree.serialize import serialize_node
from repro.xmltree.tree import XMLDocument


@pytest.fixture(scope="module")
def fig2a_index():
    repo = Repository()
    repo.add_root(figure2a())
    return build_index(repo)


class TestInvertedIndex:
    def test_add_keeps_sorted_and_deduped(self):
        index = InvertedIndex()
        index.add("k", (0, 2))
        index.add("k", (0, 2))      # duplicate
        index.add("k", (0, 5))
        index.add("k", (0, 3))      # out of order (mixed content case)
        assert index.postings("k") == [(0, 2), (0, 3), (0, 5)]
        assert index.check_integrity()

    def test_missing_keyword_is_empty(self):
        assert InvertedIndex().postings("nope") == []

    def test_vocabulary_and_counts(self):
        index = InvertedIndex()
        index.add_all(["a", "b"], (0, 1))
        index.add("a", (0, 2))
        assert index.vocabulary == ["a", "b"]
        assert index.document_frequency("a") == 2
        assert index.total_postings == 3
        assert "a" in index and "c" not in index


class TestPostingOps:
    def test_subtree_range_binary_search(self):
        postings = [(0, 1), (0, 2, 0), (0, 2, 5), (0, 3), (1, 0)]
        lo, hi = subtree_range(postings, (0, 2))
        assert postings[lo:hi] == [(0, 2, 0), (0, 2, 5)]
        assert count_in_subtree(postings, (0,)) == 4
        assert count_in_subtree(postings, (2,)) == 0

    def test_merge_tags_keyword_indexes(self):
        merged = merge_posting_lists([[(0, 1), (0, 5)], [(0, 3)]])
        assert [(entry.dewey, entry.keyword) for entry in merged] == \
            [((0, 1), 0), ((0, 3), 1), ((0, 5), 0)]

    def test_merge_result_is_sorted(self):
        merged = merge_posting_lists([[(0, 1)], [(0, 0), (1, 0)], []])
        deweys = [entry.dewey for entry in merged]
        assert deweys == sorted(deweys)

    def test_intersect_postings(self):
        a = [(0, 1), (0, 2), (0, 5)]
        b = [(0, 2), (0, 5), (0, 9)]
        c = [(0, 2), (0, 9)]
        assert intersect_postings([a, b]) == [(0, 2), (0, 5)]
        assert intersect_postings([a, b, c]) == [(0, 2)]
        assert intersect_postings([a, []]) == []
        assert intersect_postings([]) == []


class TestTable3:
    def test_karen_and_mike_postings(self, fig2a_index):
        # Table 3: Karen → did.0.1.1.0.1.0, did.0.1.1.2.1.0, …
        karen = fig2a_index.postings("karen")
        assert (0, 1, 1, 0, 1, 0) in karen
        assert (0, 1, 1, 2, 1, 0) in karen
        mike = fig2a_index.postings("mike")
        assert (0, 1, 1, 0, 1, 1) in mike

    def test_tag_names_are_indexed(self, fig2a_index):
        # queries may search element names (QM2: 'country', 'name')
        assert fig2a_index.postings("student")
        assert (0, 1, 0) in fig2a_index.postings("name")

    def test_phrase_postings_intersect_per_element(self, fig2a_index):
        # phrase keywords hold *analysed* words ("mining" stems to "mine")
        assert fig2a_index.postings("data mine") == [(0, 1, 1, 0, 0)]
        assert fig2a_index.postings("data serena") == []


class TestHashTables:
    def test_is_entity_and_is_element_return_child_counts(self,
                                                          fig2a_index):
        hashes = fig2a_index.hashes
        assert hashes.is_entity((0, 1)) == 2          # Area
        assert hashes.is_element((0, 1, 1)) == 3      # Courses (CN)
        assert hashes.is_entity((0, 1, 1)) is None
        # Course is both entity and repeating → in both tables (§2.4)
        assert hashes.is_entity((0, 1, 1, 0)) == 2
        assert hashes.is_element((0, 1, 1, 0)) == 2

    def test_attribute_nodes_in_neither_table(self, fig2a_index):
        hashes = fig2a_index.hashes
        assert hashes.is_entity((0, 1, 0)) is None
        assert hashes.is_element((0, 1, 0)) is None
        assert hashes.is_attribute((0, 1, 0))

    def test_nearest_entity_walks_ancestors(self, fig2a_index):
        hashes = fig2a_index.hashes
        # Student node → nearest entity is its Course
        assert hashes.nearest_entity((0, 1, 1, 0, 1, 0)) == (0, 1, 1, 0)
        assert hashes.nearest_entity((0, 1, 1, 0)) == (0, 1, 1, 0)

    def test_entity_ancestors_ordered_nearest_first(self, fig2a_index):
        chain = list(fig2a_index.hashes.entity_ancestors(
            (0, 1, 1, 0, 1, 0)))
        assert chain == [(0, 1, 1, 0), (0, 1), (0,)]


class TestBuilder:
    def test_tree_and_stream_paths_agree(self):
        xml = serialize_node(figure2a())
        repo = Repository()
        repo.parse(xml)
        from_tree = build_index(repo)
        from_text = build_index(xml)
        assert dict(from_tree.inverted.items()) == \
            dict(from_text.inverted.items())
        assert from_tree.hashes.entity_table == \
            from_text.hashes.entity_table
        assert from_tree.hashes.element_table == \
            from_text.hashes.element_table

    def test_multi_document_postings_carry_doc_ids(self):
        repo = Repository.from_texts(["<r><a>karen</a></r>",
                                      "<r><a>karen</a></r>"])
        index = build_index(repo)
        assert index.postings("karen") == [(0, 0), (1, 0)]

    def test_builder_rejects_use_after_build(self):
        builder = IndexBuilder()
        builder.add_xml("<a>x</a>")
        builder.build()
        with pytest.raises(IndexError_):
            builder.add_xml("<b>y</b>")
        with pytest.raises(IndexError_):
            builder.build()

    def test_tag_indexing_can_be_disabled(self):
        index = build_index("<country><name>Laos</name></country>",
                            index_tags=False)
        assert not index.postings("country")
        assert index.postings("lao")  # text keyword still there (stemmed)

    def test_analyzer_is_applied(self):
        index = build_index("<r><a>The Publications</a></r>",
                            analyzer=Analyzer())
        assert index.postings("public")
        assert not index.postings("the")

    def test_stats_counts(self):
        repo = Repository()
        repo.add_root(figure2a())
        stats = build_index(repo).stats
        row = stats.category_row()
        assert row["total"] == 36
        assert row["EN"] == 8          # Dept + 2 Areas + 5 Courses
        assert stats.max_depth == 5
        assert stats.documents == 1

    def test_build_index_rejects_unknown_source(self):
        with pytest.raises(TypeError):
            build_index(42)

    def test_document_ids_must_be_consecutive(self):
        builder = IndexBuilder()
        from repro.xmltree.node import XMLNode
        with pytest.raises(IndexError_):
            builder.add_document(XMLDocument(XMLNode("r", (3,))))
