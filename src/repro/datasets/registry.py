"""Dataset registry: one place to materialise any synthetic corpus.

Every corpus of the paper's Table 4 maps to a named builder returning a
ready :class:`Repository`; experiments and benchmarks look datasets up by
the names the paper uses.
"""

from __future__ import annotations

from typing import Callable

from repro.datasets.dblp import generate_dblp
from repro.datasets.interpro import generate_interpro
from repro.datasets.mirrors import generate_mirrors
from repro.datasets.mondial import generate_mondial
from repro.datasets.nasa import generate_nasa
from repro.datasets.plays import generate_plays
from repro.datasets.sigmod import generate_sigmod
from repro.datasets.swissprot import (generate_protein_sequence,
                                      generate_swissprot)
from repro.datasets.treebank import generate_treebank
from repro.datasets.toy import figure1, figure2a
from repro.errors import DatasetError
from repro.xmltree.repository import Repository


def _single(builder: Callable) -> Callable[[int, int], Repository]:
    def make(scale: int = 1, seed: int = 0) -> Repository:
        repository = Repository()
        repository.add_root(builder(scale=scale, seed=seed))
        return repository
    return make


def _toy(builder: Callable) -> Callable[[int, int], Repository]:
    def make(scale: int = 1, seed: int = 0) -> Repository:
        repository = Repository()
        repository.add_root(builder())
        return repository
    return make


def _plays(scale: int = 1, seed: int = 0) -> Repository:
    repository = Repository()
    for play in generate_plays(scale=scale, seed=seed):
        repository.add_root(play)
    return repository


#: name → builder(scale, seed) → Repository
DATASETS: dict[str, Callable[..., Repository]] = {
    "figure1": _toy(figure1),
    "figure2a": _toy(figure2a),
    "sigmod": _single(generate_sigmod),
    "dblp": _single(generate_dblp),
    "mirrors": generate_mirrors,
    "mondial": _single(generate_mondial),
    "plays": _plays,
    "treebank": _single(generate_treebank),
    "swissprot": _single(generate_swissprot),
    "protein": _single(generate_protein_sequence),
    "interpro": _single(generate_interpro),
    "nasa": _single(generate_nasa),
}


def load_dataset(name: str, scale: int = 1, seed: int = 0) -> Repository:
    """Materialise a synthetic corpus by its paper name."""
    try:
        builder = DATASETS[name]
    except KeyError:
        known = ", ".join(sorted(DATASETS))
        raise DatasetError(f"unknown dataset {name!r}; known: {known}") \
            from None
    return builder(scale=scale, seed=seed)


def dataset_names() -> list[str]:
    return sorted(DATASETS)
