"""Tests for the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture
def corpus(tmp_path):
    path = tmp_path / "uni.xml"
    path.write_text(
        "<Dept><Dept_Name>CS</Dept_Name>"
        "<Area><Name>Databases</Name><Courses>"
        "<Course><Name>Data Mining</Name><Students>"
        "<Student>Karen</Student><Student>Mike</Student>"
        "</Students></Course>"
        "<Course><Name>AI</Name><Students>"
        "<Student>Karen</Student><Student>Zoe</Student>"
        "</Students></Course>"
        "</Courses></Area></Dept>")
    return path


class TestSearch:
    def test_search_prints_ranked_results(self, corpus, capsys):
        assert main(["search", str(corpus), "-q", "karen mike",
                     "-s", "2"]) == 0
        out = capsys.readouterr().out
        assert "node(s) for" in out
        assert "score=" in out

    def test_search_snippets(self, corpus, capsys):
        main(["search", str(corpus), "-q", "karen", "--snippets"])
        assert "<Course>" in capsys.readouterr().out

    def test_top_limits_output(self, corpus, capsys):
        main(["search", str(corpus), "-q", "karen", "-k", "1"])
        out = capsys.readouterr().out
        assert out.count("score=") == 1


class TestDI:
    def test_di_prints_insights(self, corpus, capsys):
        assert main(["di", str(corpus), "-q", "karen mike",
                     "-s", "2"]) == 0
        out = capsys.readouterr().out
        assert "Data Mining" in out

    def test_di_without_lce_nodes(self, tmp_path, capsys):
        path = tmp_path / "flat.xml"
        path.write_text("<r><a>karen</a></r>")
        main(["di", str(path), "-q", "karen"])
        assert "no insights" in capsys.readouterr().out


class TestIndexAndCategorize:
    def test_index_writes_file(self, corpus, tmp_path, capsys):
        out_path = tmp_path / "idx.gz"
        assert main(["index", str(corpus), "-o", str(out_path)]) == 0
        assert out_path.exists()
        assert "indexed" in capsys.readouterr().out

    def test_categorize_prints_counts(self, corpus, capsys):
        assert main(["categorize", str(corpus)]) == 0
        out = capsys.readouterr().out
        assert "AN" in out and "EN" in out and "total nodes" in out


class TestDataset:
    def test_dataset_emits_xml(self, tmp_path, capsys):
        assert main(["dataset", "figure2a", "-o", str(tmp_path)]) == 0
        files = list(tmp_path.glob("figure2a_*.xml"))
        assert len(files) == 1
        assert "Karen" in files[0].read_text()

    def test_unknown_dataset_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["dataset", "nope", "-o", str(tmp_path)])


class TestParser:
    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            main([])
