"""Focused tests for recursive DI (paper §2.3's r-round recursion)."""

import pytest

from repro.core.engine import GKSEngine
from repro.core.insights import discover_recursive
from repro.datasets.registry import load_dataset


@pytest.fixture(scope="module")
def dblp_engine():
    return GKSEngine(load_dataset("dblp"))


class TestRecursion:
    def test_round_zero_is_plain_di(self, dblp_engine):
        response = dblp_engine.search('"Prithviraj Banerjee"', s=1)
        plain = dblp_engine.insights(response)
        reports = discover_recursive(dblp_engine.repository,
                                     dblp_engine.index, response,
                                     rounds=1)
        assert [insight.render() for insight in reports[0]] == \
            [insight.render() for insight in plain]

    def test_each_round_produces_a_report(self, dblp_engine):
        response = dblp_engine.search('"E. F. Codd"', s=1)
        reports = discover_recursive(dblp_engine.repository,
                                     dblp_engine.index, response,
                                     rounds=2)
        assert 1 <= len(reports) <= 3
        for report in reports:
            assert hasattr(report, "weighted_keywords")

    def test_recursion_reaches_new_keywords(self, dblp_engine):
        """§2.3: 'The recursive DI may reveal deeper insights' — the
        second round's keyword set is not simply the first round's."""
        response = dblp_engine.search('"Prithviraj Banerjee"', s=1)
        reports = discover_recursive(dblp_engine.repository,
                                     dblp_engine.index, response,
                                     rounds=1, seed_keywords=4)
        if len(reports) < 2:
            pytest.skip("round 0 produced no seed keywords")
        first = set(reports[0].weighted_keywords)
        second = set(reports[1].weighted_keywords)
        assert second  # the fed-back query found LCE nodes
        assert second - first or first - second

    def test_recursion_stops_on_empty_seed(self, figure1_repo,
                                           figure1_index):
        from repro.core.query import Query
        from repro.core.search import search

        # figure1 has no entities → no DI → recursion stops after round 0
        response = search(figure1_index, Query.of(["a", "b"], s=2))
        reports = discover_recursive(figure1_repo, figure1_index,
                                     response, rounds=3)
        assert len(reports) == 1

    def test_engine_facade_rounds(self, dblp_engine):
        response = dblp_engine.search('"Jim Gray"', s=1)
        reports = dblp_engine.recursive_insights(response, rounds=2,
                                                 seed_keywords=3)
        assert len(reports) >= 1
