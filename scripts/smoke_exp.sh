#!/usr/bin/env bash
# Experiment-harness smoke test: run the bundled two-run smoke table
# end-to-end (expand, boot, drive, scrape, aggregate), gate it against
# the committed baseline, then prove the gate actually bites by
# injecting a regression and requiring a non-zero exit.  Finish with a
# one-run HTTP-mode table against a real `gks serve` subprocess and
# assert the request-id correlation artifact came back.
#
# Usage:  bash scripts/smoke_exp.sh
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH=src

WORKDIR="$(mktemp -d)"
cleanup() { rm -rf "$WORKDIR"; }
trap cleanup EXIT

echo "== run the bundled smoke table (inproc) =="
python -m repro exp run benchmarks/experiments/smoke.json \
    -o "$WORKDIR/smoke"

echo "== per-run artifacts present =="
for run in "$WORKDIR"/smoke/runs/*/; do
    for artifact in run.json report.json metrics_before.prom \
                    metrics_after.prom metrics_delta.json sample.json; do
        [ -f "$run$artifact" ] || {
            echo "FAIL: missing $artifact in $run" >&2; exit 1; }
    done
done
for table in aggregate.json aggregate.csv aggregate.md; do
    [ -f "$WORKDIR/smoke/$table" ] || {
        echo "FAIL: missing $table" >&2; exit 1; }
done

echo "== compare against the committed baseline (must pass) =="
python -m repro exp compare "$WORKDIR/smoke" \
    benchmarks/experiments/smoke_baseline.json

echo "== inject a regression (must fail) =="
python - "$WORKDIR" <<'EOF'
import json, sys
path = sys.argv[1] + "/bad_baseline.json"
baseline = json.load(open("benchmarks/experiments/smoke_baseline.json"))
baseline["rows"][0]["completed"] += 1
json.dump(baseline, open(path, "w"))
EOF
if python -m repro exp compare "$WORKDIR/smoke" \
        "$WORKDIR/bad_baseline.json"; then
    echo "FAIL: compare passed against a regressed baseline" >&2
    exit 1
fi
echo "gate correctly rejected the injected regression"

echo "== request-id correlation artifact =="
python - "$WORKDIR" <<'EOF'
import json, sys
from pathlib import Path
runs = sorted(Path(sys.argv[1], "smoke", "runs").iterdir())
sample = json.loads((runs[0] / "sample.json").read_text())
rid = sample["request_id"]
assert rid, "probe sample carries no request id"
assert sample["stats"]["request_id"] == rid, (
    "QueryStats id does not match the minted id")
print(f"probe {sample['query']!r} correlated under {rid}")
EOF

echo "== one-run HTTP-mode table (real gks serve subprocess) =="
cat > "$WORKDIR/http_spec.json" <<'EOF'
{
  "name": "smoke-http",
  "mode": "http",
  "base": {
    "dataset": {"name": "figure2a"},
    "engine": {"shards": 1},
    "serve": {"workers": 2, "queue_capacity": 32},
    "load": {"mode": "closed", "concurrency": 2, "iterations": 3,
             "queries": ["XML Author"], "s": 1}
  }
}
EOF
python -m repro exp run "$WORKDIR/http_spec.json" -o "$WORKDIR/http"
python - "$WORKDIR" <<'EOF'
import json, sys
from pathlib import Path
runs = sorted(Path(sys.argv[1], "http", "runs").iterdir())
report = json.loads((runs[0] / "report.json").read_text())
assert report["completed"] == 6, report
sample = json.loads((runs[0] / "sample.json").read_text())
assert sample["serve"]["request_id"] == sample["request_id"], sample
assert (runs[0] / "server.log").exists(), "no server log captured"
delta = json.loads((runs[0] / "metrics_delta.json").read_text())
assert "gks_serve_requests_total" in delta, sorted(delta)
print(f"http probe correlated under {sample['request_id']}; "
      f"{report['completed']} completed over live HTTP")
EOF

echo "SMOKE OK"
