"""Instrumented locks: a lock-order graph with deadlock witnesses.

The serving and durability paths construct their locks through
:func:`new_lock` / :func:`new_rlock` instead of ``threading.Lock()``
directly.  With no monitor installed (the default, and the production
configuration) these return the *raw* stdlib lock — zero wrapper, zero
overhead, the same pattern as :data:`repro.obs.trace.NOOP_TRACER`.  When
a :class:`LockMonitor` is installed (``gks race``, the ``concurrency``
test suite, the sanitizer benchmark), every lock built afterwards is an
:class:`InstrumentedLock` that reports each acquisition to the monitor
together with a cheap stack capture.

The monitor keeps, per thread, the stack of locks currently held; when a
thread acquires ``B`` while holding ``A`` it records the ordering edge
``A -> B`` with *both* acquisition stacks (where ``A`` was taken, and
where ``B`` was taken while holding it).  :meth:`LockMonitor.
potential_deadlocks` then searches the accumulated edge graph for
cycles: ``A -> B`` observed on one code path and ``B -> A`` on another
is a potential deadlock even if the run never actually hung, and the
report shows the witness stacks for every edge of the cycle.

Lock *names* are stable, human-chosen identifiers ("serve.core",
"engine.cache", ...), not object ids — two ServerCore instances share
the name, which is what makes ordering violations between instances of
the same class visible.
"""

from __future__ import annotations

import sys
import threading
from dataclasses import dataclass
from typing import Iterator

#: Frames of context materialized per witness stack.  Deliberately
#: shallow: the witness only needs to say *which call chain* took the
#: lock.
STACK_DEPTH = 12


def _materialize_stack(site: tuple) -> tuple[tuple[str, int, str], ...]:
    """(filename, line, function) frames for an acquisition site.

    Valid while the acquiring call chain is still on its thread's stack
    (always true when recording an edge: the held lock's frame is an
    ancestor of the acquiring one, suspended at the call that led here,
    so its ancestors' ``f_lineno`` still point at the acquisition path).
    """
    frame, lineno = site
    frames = []
    while frame is not None and len(frames) < STACK_DEPTH:
        code = frame.f_code
        frames.append((code.co_filename, lineno, code.co_name))
        frame = frame.f_back
        lineno = frame.f_lineno if frame is not None else 0
    return tuple(frames)


def render_stack(stack: tuple[tuple[str, int, str], ...]) -> str:
    """One indented line per captured frame, innermost first."""
    return "\n".join(f"    {filename}:{line} in {function}"
                     for filename, line, function in stack)


@dataclass(frozen=True)
class OrderEdge:
    """One observed ordering: *held* was held while *acquired* was taken.

    ``held_stack`` is where the thread took *held*; ``acquired_stack``
    is where it then took *acquired* — together the two witness stacks
    a deadlock report needs.
    """

    held: str
    acquired: str
    thread: str
    held_stack: tuple[tuple[str, int, str], ...]
    acquired_stack: tuple[tuple[str, int, str], ...]

    def render(self) -> str:
        return (f"{self.held} -> {self.acquired}  [thread {self.thread}]\n"
                f"  {self.held} acquired at:\n"
                f"{render_stack(self.held_stack)}\n"
                f"  {self.acquired} acquired (while holding "
                f"{self.held}) at:\n"
                f"{render_stack(self.acquired_stack)}")


@dataclass(frozen=True)
class DeadlockReport:
    """A cycle in the lock-order graph, with one witness edge per hop."""

    cycle: tuple[str, ...]
    edges: tuple[OrderEdge, ...]

    def render(self) -> str:
        chain = " -> ".join([*self.cycle, self.cycle[0]])
        body = "\n".join(edge.render() for edge in self.edges)
        return f"potential deadlock: {chain}\n{body}"


class LockMonitor:
    """Collects acquisition counts and the lock-order graph.

    Thread-safe; the monitor's own bookkeeping lock is a raw
    ``threading.Lock`` (instrumenting it would recurse) and is *off* the
    per-acquisition path: held-lock stacks and acquisition counts live
    in per-thread state (counts dicts are registered once per thread and
    merged on read, which the GIL makes safe), so the monitor lock is
    only taken to register a thread, record a first-witness edge, or
    report.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()  # guards: _count_slabs, _edges
        self._local = threading.local()
        self._count_slabs: list[dict[str, int]] = []
        self._edges: dict[tuple[str, str], OrderEdge] = {}

    # -- recording (called by InstrumentedLock) -------------------------
    def _state(self) -> tuple[list, dict[str, int]]:
        """This thread's (held-lock stack, acquisition-count slab)."""
        try:
            return self._local.state
        except AttributeError:
            state = ([], {})
            self._local.state = state
            with self._lock:
                self._count_slabs.append(state[1])
            return state

    def acquired(self, name: str) -> None:
        held, counts = self._state()
        counts[name] = counts.get(name, 0) + 1
        # Cheap per-acquisition record: the caller frame (first one
        # outside this module — those die as soon as acquire returns)
        # plus a snapshot of its live line number.  The expensive
        # (filename, line, function) extraction is deferred to
        # _materialize_stack and paid only for a *new* ordering edge,
        # so steady-state acquisitions cost two pointer hops here.
        # Exactly one InstrumentedLock frame sits between the caller
        # and this method on both entry paths (__enter__ and acquire),
        # so depth 2 is normally the caller already and the walk guard
        # never iterates.
        frame = sys._getframe(2)
        while frame is not None and frame.f_code.co_filename == __file__:
            frame = frame.f_back
        held.append((name, frame,
                     frame.f_lineno if frame is not None else 0))
        if len(held) > 1:
            self._note_edge(held, name)

    def _note_edge(self, held: list, name: str) -> None:
        """Record the first witness for the ordering held[-2] -> name."""
        for entry in held[:-1]:
            if entry[0] == name:
                # reentrant RLock acquire — reentrancy cannot deadlock
                # against itself, so no edge
                return
        top_name = held[-2][0]
        key = (top_name, name)
        # unlocked membership probe is a benign race: a miss is
        # re-checked under the lock before writing
        if key not in self._edges:
            with self._lock:
                if key not in self._edges:
                    self._edges[key] = OrderEdge(
                        held=top_name, acquired=name,
                        thread=threading.current_thread().name,
                        held_stack=_materialize_stack(held[-2][1:]),
                        acquired_stack=_materialize_stack(held[-1][1:]))

    def released(self, name: str) -> None:
        held = self._state()[0]
        if held and held[-1][0] == name:  # the common, LIFO case
            del held[-1]
            return
        for position in range(len(held) - 1, -1, -1):
            if held[position][0] == name:
                del held[position]
                return

    # -- reporting ------------------------------------------------------
    def acquisitions(self) -> dict[str, int]:
        with self._lock:
            slabs = list(self._count_slabs)
        merged: dict[str, int] = {}
        for counts in slabs:
            for name, count in counts.items():
                merged[name] = merged.get(name, 0) + count
        return merged

    def edges(self) -> list[OrderEdge]:
        with self._lock:
            return sorted(self._edges.values(),
                          key=lambda edge: (edge.held, edge.acquired))

    def potential_deadlocks(self) -> list[DeadlockReport]:
        """Every elementary cycle in the observed lock-order graph."""
        with self._lock:
            adjacency: dict[str, list[str]] = {}
            for held, acquired in self._edges:
                adjacency.setdefault(held, []).append(acquired)
            edge_map = dict(self._edges)
        reports: list[DeadlockReport] = []
        seen: set[tuple[str, ...]] = set()
        for start in sorted(adjacency):
            for cycle in self._cycles_from(start, adjacency):
                canonical = self._canonical(cycle)
                if canonical in seen:
                    continue
                seen.add(canonical)
                hops = list(zip(cycle, [*cycle[1:], cycle[0]]))
                reports.append(DeadlockReport(
                    cycle=tuple(cycle),
                    edges=tuple(edge_map[hop] for hop in hops)))
        return reports

    @staticmethod
    def _cycles_from(start: str, adjacency: dict[str, list[str]]
                     ) -> Iterator[list[str]]:
        stack: list[tuple[str, list[str]]] = [(start, [start])]
        while stack:
            node, path = stack.pop()
            for target in sorted(adjacency.get(node, ())):
                if target == start:
                    yield path
                elif target not in path:
                    stack.append((target, [*path, target]))

    @staticmethod
    def _canonical(cycle: list[str]) -> tuple[str, ...]:
        pivot = cycle.index(min(cycle))
        return tuple(cycle[pivot:] + cycle[:pivot])

    def report(self) -> dict:
        """JSON-able summary: counts, edges, potential deadlocks."""
        return {
            "acquisitions": self.acquisitions(),
            "edges": [f"{edge.held} -> {edge.acquired}"
                      for edge in self.edges()],
            "potential_deadlocks": [
                {"cycle": list(report.cycle),
                 "witnesses": [edge.render() for edge in report.edges]}
                for report in self.potential_deadlocks()],
        }


class InstrumentedLock:
    """A monitored wrapper over a stdlib lock (context-manager API).

    Duck-types ``threading.Lock``/``RLock``: ``acquire``/``release``,
    ``with``-statement use, and ``locked()`` all delegate to the wrapped
    lock; successful acquisitions and releases report to the monitor.
    """

    __slots__ = ("name", "_inner", "_monitor")

    def __init__(self, inner, name: str, monitor: LockMonitor) -> None:
        self.name = name
        self._inner = inner
        self._monitor = monitor

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            self._monitor.acquired(self.name)
        return acquired

    def release(self) -> None:
        self._inner.release()
        self._monitor.released(self.name)

    def locked(self) -> bool:
        return self._inner.locked()

    # The with form is the serving hot path: entry/exit inline the
    # monitor's fast-path bookkeeping (thread state, count, acquire
    # site, LIFO pop) instead of calling monitor.acquired/released —
    # each skipped Python call is measurable in the sanitizer-overhead
    # benchmark.  The logic must mirror LockMonitor.acquired/released,
    # which stay the single source of truth for the slow paths.
    def __enter__(self) -> bool:
        # bookkeeping happens *before* taking the inner lock so that
        # the monitor extends each critical section by only a list
        # append — under worker contention, time spent holding the
        # lock is amplified, not just added
        monitor = self._monitor
        try:
            held, counts = monitor._local.state
        except AttributeError:
            held, counts = monitor._state()
        name = self.name
        counts[name] = counts.get(name, 0) + 1
        frame = sys._getframe(1)  # __enter__'s caller: the with site
        entry = (name, frame, frame.f_lineno)
        self._inner.acquire()
        held.append(entry)
        if len(held) > 1:
            monitor._note_edge(held, name)
        return True

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self._inner.release()
        held = self._monitor._local.state[0]
        if held and held[-1][0] == self.name:  # the common, LIFO case
            del held[-1]
        else:
            self._monitor.released(self.name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<InstrumentedLock {self.name!r}>"


#: The active monitor; ``None`` (the default) means locks built by
#: new_lock()/new_rlock() are raw stdlib locks with zero overhead.
_ACTIVE_MONITOR: LockMonitor | None = None


def install_monitor(monitor: LockMonitor) -> LockMonitor:
    """Make *monitor* observe every lock built after this call."""
    global _ACTIVE_MONITOR
    _ACTIVE_MONITOR = monitor
    return monitor


def uninstall_monitor() -> None:
    global _ACTIVE_MONITOR
    _ACTIVE_MONITOR = None


class monitoring:
    """``with monitoring() as monitor:`` — scoped install/uninstall."""

    def __init__(self, monitor: LockMonitor | None = None) -> None:
        self.monitor = monitor if monitor is not None else LockMonitor()

    def __enter__(self) -> LockMonitor:
        return install_monitor(self.monitor)

    def __exit__(self, *exc_info) -> None:
        uninstall_monitor()


def new_lock(name: str, monitor: LockMonitor | None = None):
    """A ``threading.Lock`` — instrumented iff a monitor is in effect.

    An explicit *monitor* wins over the installed one.  Locks are bound
    to the monitor active at *construction* time: build the engine /
    broker inside the ``monitoring()`` scope to observe its locks.
    """
    inner = threading.Lock()
    monitor = monitor if monitor is not None else _ACTIVE_MONITOR
    if monitor is None:
        return inner
    return InstrumentedLock(inner, name=name, monitor=monitor)


def new_rlock(name: str, monitor: LockMonitor | None = None):
    """A ``threading.RLock`` — instrumented iff a monitor is in effect."""
    inner = threading.RLock()
    monitor = monitor if monitor is not None else _ACTIVE_MONITOR
    if monitor is None:
        return inner
    return InstrumentedLock(inner, name=name, monitor=monitor)
