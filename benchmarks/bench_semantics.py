"""Query-modes benchmark: probabilistic overhead and relaxation latency.

Two claims of the semantics subsystem are measured and gated, and the
record lands in ``benchmarks/results/BENCH_semantics.json``:

* **Probabilistic mode is pay-for-what-you-use.**  On a corpus with no
  ``p:`` annotations the compiled tables are empty and the
  subset-distribution DP is skipped, so a probabilistic engine must
  answer within 2x the strict engine's median latency on the same
  query mix (the gate is deliberately loose: the remaining overhead is
  the per-result existence lookup and the mode dispatch).
* **Relaxation pays only when it fires.**  The no-but-semantic-match
  sweep runs one strict sub-search per single-edit rewrite, so its
  latency is recorded alongside the candidate count it actually
  evaluated — a trigger on an empty strict answer, not a tax on every
  query.
"""

from __future__ import annotations

import json
import statistics
import time
from pathlib import Path

from repro.core.config import EngineConfig
from repro.core.engine import GKSEngine
from repro.datasets.registry import load_dataset

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_semantics.json"

ROUNDS = 30
OVERHEAD_GATE = 2.0
QUERIES = [("databases compression", 1), ("rivera indexing", 1),
           ("storage streams retrieval", 2)]
RELAXED_QUERY = ("zyzzyva compression", 2)  # empty strict answer


def _median_seconds(engine: GKSEngine, **kwargs) -> float:
    samples = []
    for _ in range(ROUNDS):
        started = time.perf_counter()
        for text, s in QUERIES:
            engine.search(text, s=s, use_cache=False, **kwargs)
        samples.append(time.perf_counter() - started)
    return statistics.median(samples)


def test_semantics_benchmark_report():
    repository = load_dataset("mirrors", scale=2)
    strict_engine = GKSEngine(repository)
    prob_engine = GKSEngine(repository,
                            config=EngineConfig(mode="probabilistic"))

    strict_s = _median_seconds(strict_engine)
    prob_s = _median_seconds(prob_engine)
    ratio = prob_s / strict_s if strict_s else float("inf")

    # relaxation trigger: empty strict answer -> single-edit sweep
    text, s = RELAXED_QUERY
    strict = strict_engine.search(text, s=s, use_cache=False)
    assert not strict.nodes, "relaxation query must miss strictly"
    samples = []
    response = None
    for _ in range(ROUNDS):
        started = time.perf_counter()
        response = strict_engine.search(text, s=s, mode="relaxed",
                                        use_cache=False)
        samples.append(time.perf_counter() - started)
    relaxed_s = statistics.median(samples)
    candidates = response.stats.semantics_candidates

    record = {
        "corpus": {"dataset": "mirrors", "scale": 2,
                   "documents": len(repository),
                   "nodes": strict_engine.index.stats.total_nodes},
        "queries_per_round": len(QUERIES),
        "rounds": ROUNDS,
        "strict_median_s": strict_s,
        "probabilistic_median_s": prob_s,
        "probabilistic_over_strict": ratio,
        "overhead_gate": OVERHEAD_GATE,
        "relaxation": {"query": text, "s": s,
                       "candidates": candidates,
                       "median_trigger_s": relaxed_s,
                       "results": len(response.nodes)},
    }
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(record, indent=2, sort_keys=True)
                            + "\n", encoding="utf-8")
    print(f"semantics bench -> {RESULTS_PATH}")
    print(json.dumps(record, indent=2, sort_keys=True))

    # the gate: empty tables must not make probabilistic mode pay for
    # the DP it never runs
    assert ratio < OVERHEAD_GATE, (
        f"probabilistic mode is {ratio:.2f}x strict on a "
        f"non-probabilistic corpus (gate {OVERHEAD_GATE}x)")
