"""Keyword tokenizer (paper §2.4).

"If text appearing under a 'text node' comprises multiple keywords, a
separate index entry is created for each of the keywords after stop words
removal and stemming."  The tokenizer is deliberately simple and fully
deterministic: it lower-cases, splits on non-alphanumeric boundaries, and
keeps embedded apostrophes/digits so author names, years and accession
numbers survive intact.
"""

from __future__ import annotations

from typing import Iterator


def tokenize(text: str) -> list[str]:
    """Split *text* into lower-cased word tokens.

    A token is a maximal run of alphanumeric characters; apostrophes and
    hyphens *inside* a word are treated as separators (``Jean-Marc`` →
    ``jean``, ``marc``), matching how inverted indexes for the paper's
    bibliographic queries must behave ("Jean-Marc Cadiou" is two keywords).
    """
    return list(iter_tokens(text))


def iter_tokens(text: str) -> Iterator[str]:
    """Generator form of :func:`tokenize`."""
    word_start = -1
    for index, char in enumerate(text):
        if char.isalnum():
            if word_start < 0:
                word_start = index
        elif word_start >= 0:
            yield text[word_start:index].lower()
            word_start = -1
    if word_start >= 0:
        yield text[word_start:].lower()
