"""Synthetic TreeBank corpus (paper Table 4: depth 36).

The real TreeBank is Wall Street Journal text under deeply nested,
partially encrypted parse trees — by far the deepest corpus in Table 4
(depth 36 vs 5–8 elsewhere).  The generator grows random constituency
trees whose depth is driven to ``target_depth`` so the response-time
model's dependence on ``d`` (O(d·|SL|·log n)) can be exercised.
"""

from __future__ import annotations

from repro.datasets.synthesis import Synth
from repro.xmltree.node import XMLNode

_PHRASE_TAGS = ["NP", "VP", "PP", "ADJP", "ADVP", "SBAR", "WHNP", "PRT"]
_WORDS = [
    "market", "shares", "company", "profit", "quarter", "analyst",
    "trading", "index", "bank", "merger", "stock", "bond", "price",
    "growth", "revenue", "investor", "board", "chief", "report", "deal",
]


def generate_treebank(scale: int = 1, seed: int = 0,
                      target_depth: int = 36) -> XMLNode:
    """Build the synthetic TreeBank (~80·scale sentences)."""
    synth = Synth(seed ^ 0x72EE)
    root = XMLNode("treebank", (0,))
    for sentence_no in range(80 * scale):
        sentence = root.add_child("S")
        # Every ~10th sentence carries one deliberately deep spine so the
        # corpus reaches the target depth; the rest stay shallow like
        # ordinary parses.
        if sentence_no % 10 == 0:
            _grow_spine(sentence, synth, target_depth - 2)
        else:
            _grow(sentence, synth, depth=1,
                  budget=synth.int_between(4, 10))
    return root


def _grow_spine(node: XMLNode, synth: Synth, remaining: int) -> None:
    current = node
    while remaining > 0:
        current = current.add_child(synth.pick(_PHRASE_TAGS))
        if synth.chance(0.3):
            current.add_child("W", text=synth.pick(_WORDS))
        remaining -= 1
    current.add_child("W", text=synth.pick(_WORDS))


def _grow(node: XMLNode, synth: Synth, depth: int, budget: int) -> int:
    """Grow a bushy parse subtree; returns the remaining node budget."""
    children = synth.int_between(1, 3)
    for _ in range(children):
        if budget <= 0:
            break
        budget -= 1
        if depth >= 6 or synth.chance(0.35):
            node.add_child("W", text=synth.pick(_WORDS))
        else:
            child = node.add_child(synth.pick(_PHRASE_TAGS))
            budget = _grow(child, synth, depth + 1, budget)
            if child.is_leaf:  # never leave an empty phrase node
                child.add_child("W", text=synth.pick(_WORDS))
    return budget
