"""A small XPath-like path language over :class:`XMLNode` trees.

The GKS system's whole point is freeing users from path queries, but a
reproduction still needs them: tests and examples express ground truth
("all /dblp/article[author='X']/year values") far more crisply in a path
language than in hand-rolled loops, and the paper's motivation contrasts
keyword search against exactly this kind of navigation.

Supported grammar (a practical XPath 1.0 subset)::

    path      := ('/' | '//')? step (('/' | '//') step)*
    step      := (name | '*') predicate*
    predicate := '[' pred ']'
    pred      := digits                      positional (1-based)
              | 'text()' '=' literal        own-text equality
              | '@'? name                   child existence
              | '@'? name '=' literal       child text equality
              | name '<' number | name '>' number
    literal   := "'" chars "'" | '"' chars '"'

``//`` selects descendants-or-self.  Because the attributes-as-children
convention stores XML attributes as child elements, ``@name`` and
``name`` are equivalent here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.errors import GKSError
from repro.xmltree.node import XMLNode


class XPathError(GKSError):
    """Raised for malformed path expressions."""


Predicate = Callable[[XMLNode, int], bool]


@dataclass(frozen=True)
class Step:
    tag: str                      # element name or '*'
    descendant: bool              # reached via '//'
    predicates: tuple[Predicate, ...] = field(default=())


def parse_path(path: str) -> list[Step]:
    """Parse a path expression into steps."""
    text = path.strip()
    if not text:
        raise XPathError("empty path expression")
    steps: list[Step] = []
    position = 0
    descendant = False
    if text.startswith("//"):
        descendant = True
        position = 2
    elif text.startswith("/"):
        position = 1

    while position < len(text):
        name, position = _read_name(text, position)
        predicates: list[Predicate] = []
        while position < len(text) and text[position] == "[":
            closing = text.find("]", position)
            if closing < 0:
                raise XPathError(f"unterminated predicate in {path!r}")
            predicates.append(_parse_predicate(
                text[position + 1:closing].strip(), path))
            position = closing + 1
        steps.append(Step(tag=name, descendant=descendant,
                          predicates=tuple(predicates)))
        descendant = False
        if position >= len(text):
            break
        if text.startswith("//", position):
            descendant = True
            position += 2
        elif text[position] == "/":
            position += 1
        else:
            raise XPathError(f"unexpected {text[position]!r} in {path!r}")
        if position >= len(text):
            raise XPathError(f"trailing axis in {path!r}")
    if not steps:
        raise XPathError(f"no steps in {path!r}")
    return steps


def _read_name(text: str, position: int) -> tuple[str, int]:
    if position < len(text) and text[position] == "*":
        return "*", position + 1
    start = position
    while position < len(text) and (text[position].isalnum()
                                    or text[position] in "_-."):
        position += 1
    if position == start:
        raise XPathError(f"expected a name at offset {start} in {text!r}")
    return text[start:position], position


def _parse_predicate(body: str, path: str) -> Predicate:
    if not body:
        raise XPathError(f"empty predicate in {path!r}")
    if body.isdigit():
        wanted = int(body)
        return lambda node, ordinal: ordinal == wanted
    if body.startswith("text()"):
        rest = body[len("text()"):].strip()
        if not rest.startswith("="):
            raise XPathError(f"expected '=' after text() in {path!r}")
        literal = _parse_literal(rest[1:].strip(), path)
        return lambda node, ordinal: (node.text or "").strip() == literal

    name = body.lstrip("@")
    if not name:
        raise XPathError(f"empty predicate name in {path!r}")
    for operator in ("=", "<", ">"):
        if operator in name:
            field_name, _, raw = name.partition(operator)
            field_name = field_name.strip()
            raw = raw.strip()
            if operator == "=":
                literal = _parse_literal(raw, path)
                return _child_equals(field_name, literal)
            try:
                bound = float(raw)
            except ValueError:
                raise XPathError(
                    f"numeric comparison needs a number in {path!r}")
            return _child_compares(field_name, operator, bound)
    field_name = name.strip()
    return lambda node, ordinal: any(child.tag == field_name
                                     for child in node.children)


def _parse_literal(raw: str, path: str) -> str:
    if len(raw) >= 2 and raw[0] == raw[-1] and raw[0] in "'\"":
        return raw[1:-1]
    raise XPathError(f"expected a quoted literal in {path!r}, got {raw!r}")


def _child_equals(tag: str, literal: str) -> Predicate:
    def check(node: XMLNode, ordinal: int) -> bool:
        return any(child.tag == tag
                   and (child.text or "").strip() == literal
                   for child in node.children)
    return check


def _child_compares(tag: str, operator: str, bound: float) -> Predicate:
    def check(node: XMLNode, ordinal: int) -> bool:
        for child in node.children:
            if child.tag != tag or not child.has_text:
                continue
            try:
                value = float(child.text.strip())
            except ValueError:
                continue
            if operator == "<" and value < bound:
                return True
            if operator == ">" and value > bound:
                return True
        return False
    return check


def select(root: XMLNode, path: str) -> list[XMLNode]:
    """Evaluate *path* against *root*; the first step matches the root's
    children (or any descendant with a leading ``//``).

    An absolute path may also start with the root's own tag
    (``/dblp/article`` on a tree rooted at ``<dblp>``).
    """
    steps = parse_path(path)
    current: list[XMLNode] = [root]
    for index, step in enumerate(steps):
        gathered: list[XMLNode] = []
        seen: set = set()
        for node in current:
            candidates = [candidate
                          for candidate in _candidates(
                              node, step, allow_self=(index == 0))
                          if step.tag == "*" or candidate.tag == step.tag]
            # positional predicates count within the tag-filtered context,
            # per XPath semantics (article[2] is the second article)
            matched = [candidate for ordinal, candidate
                       in enumerate(candidates, start=1)
                       if all(predicate(candidate, ordinal)
                              for predicate in step.predicates)]
            for match in matched:
                if match.dewey not in seen:
                    seen.add(match.dewey)
                    gathered.append(match)
        current = gathered
        if not current:
            break
    return current


def _candidates(node: XMLNode, step: Step,
                allow_self: bool) -> Iterable[XMLNode]:
    if step.descendant:
        return node.iter_subtree() if allow_self \
            else node.iter_descendants()
    if allow_self and node.tag == step.tag and node.parent is None:
        return [node]
    return node.children


def select_text(root: XMLNode, path: str) -> list[str]:
    """The direct text of each selected node (empty strings skipped)."""
    return [node.text.strip() for node in select(root, path)
            if node.has_text]
