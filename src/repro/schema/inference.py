"""Instance-driven schema inference.

The paper categorizes nodes at the *instance* level and notes: "GKS can
be easily extended to take into account the XML schema to categorize the
nodes.  This is part of our future work." (§2.2).  This module implements
that extension: it infers a schema summary from the data — one
:class:`ElementType` per distinct root-to-element *tag path* — recording
child multiplicities and content kinds, which is exactly the information
a DTD content model would supply.

The summary answers the questions the categorizer asks:

* can this element repeat under its parent?  (``max_occurs > 1``
  anywhere in the corpus)
* does it ever carry text / children?

Schema-level categorization (``repro.schema.categorize_by_schema``) then
classifies *types*, making node categories uniform across instances —
the behaviour the paper sketches for the DBLP single-author `<article>`
anomaly: instance-level GKS files such an article as a connecting node,
schema-level GKS recognises the type as an entity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.xmltree.node import XMLNode
from repro.xmltree.repository import Repository

TagPath = tuple[str, ...]


@dataclass
class ElementType:
    """Inferred summary of one element type (identified by its tag path)."""

    path: TagPath
    occurrences: int = 0
    #: per-child-tag (min, max) occurrences across all instances
    child_multiplicity: dict[str, tuple[int, int]] = field(
        default_factory=dict)
    has_text: bool = False
    max_children: int = 0

    @property
    def tag(self) -> str:
        return self.path[-1]

    def child_types(self) -> list[str]:
        return sorted(self.child_multiplicity)

    def is_repeatable_child(self, tag: str) -> bool:
        """True when *tag* occurs more than once under some instance."""
        bounds = self.child_multiplicity.get(tag)
        return bounds is not None and bounds[1] > 1

    def is_optional_child(self, tag: str) -> bool:
        """True when some instance lacks *tag* (a 'missing element')."""
        bounds = self.child_multiplicity.get(tag)
        return bounds is not None and bounds[0] == 0

    def content_model(self) -> str:
        """A DTD-flavoured rendering, e.g. ``(author+, title, year?)``."""
        parts = []
        for tag in self.child_types():
            low, high = self.child_multiplicity[tag]
            if high > 1:
                suffix = "*" if low == 0 else "+"
            else:
                suffix = "?" if low == 0 else ""
            parts.append(f"{tag}{suffix}")
        if self.has_text:
            parts.append("#PCDATA" if not parts else "#MIXED")
        return f"({', '.join(parts)})" if parts else "EMPTY"


@dataclass
class Schema:
    """The inferred schema: tag path → element type."""

    types: dict[TagPath, ElementType] = field(default_factory=dict)

    def type_of(self, path: TagPath) -> ElementType | None:
        return self.types.get(tuple(path))

    def type_of_node(self, node: XMLNode) -> ElementType | None:
        return self.types.get(tuple(node.tag_path()))

    def __len__(self) -> int:
        return len(self.types)

    def __iter__(self):
        return iter(self.types.values())

    def render(self) -> str:
        """Human-readable schema listing, one type per line."""
        lines = []
        for path in sorted(self.types):
            element_type = self.types[path]
            lines.append(f"{'/'.join(path)} -> "
                         f"{element_type.content_model()}  "
                         f"[{element_type.occurrences}x]")
        return "\n".join(lines)


def infer_schema(source: Repository | XMLNode | Iterable[XMLNode]) -> Schema:
    """Infer the schema of a repository (or of given root nodes)."""
    if isinstance(source, Repository):
        roots: Iterable[XMLNode] = (document.root for document in source)
    elif isinstance(source, XMLNode):
        roots = [source]
    else:
        roots = source

    schema = Schema()
    for root in roots:
        # explicit stack: schema inference must survive arbitrarily deep
        # documents
        stack: list[tuple[XMLNode, TagPath]] = [(root, (root.tag,))]
        while stack:
            node, path = stack.pop()
            _infer_node(node, path, schema)
            stack.extend((child, path + (child.tag,))
                         for child in node.children)
    return schema


def _infer_node(node: XMLNode, path: TagPath, schema: Schema) -> None:
    element_type = schema.types.get(path)
    if element_type is None:
        element_type = ElementType(path=path)
        schema.types[path] = element_type

    counts: dict[str, int] = {}
    for child in node.children:
        counts[child.tag] = counts.get(child.tag, 0) + 1

    if element_type.occurrences == 0:
        for tag, count in counts.items():
            element_type.child_multiplicity[tag] = (count, count)
    else:
        for tag in set(element_type.child_multiplicity) | set(counts):
            count = counts.get(tag, 0)
            low, high = element_type.child_multiplicity.get(tag,
                                                            (0, 0))
            if tag not in element_type.child_multiplicity:
                low = 0  # earlier instances lacked it entirely
            element_type.child_multiplicity[tag] = (min(low, count),
                                                    max(high, count))

    element_type.occurrences += 1
    element_type.has_text = element_type.has_text or node.has_text
    element_type.max_children = max(element_type.max_children,
                                    len(node.children))
