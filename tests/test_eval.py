"""Tests for the evaluation harness: metrics, workload, feedback,
reporting."""

import pytest

from repro.eval.feedback import (FeedbackTable, QueryComparison,
                                 simulate_feedback)
from repro.eval.metrics import (precision_at, rank_score,
                                rank_score_from_positions, recall,
                                reciprocal_rank)
from repro.eval.reporting import render_series, render_table
from repro.eval.workload import TABLE6, by_id, for_dataset


class TestRankScore:
    def test_perfect_ranking_scores_one(self):
        # true nodes occupy the top of the list
        assert rank_score_from_positions([1, 2, 3]) == 1.0

    def test_single_true_node_at_position_three(self):
        # the paper's QM3: one true node at rank 3 → 0.17
        assert rank_score_from_positions([3]) == pytest.approx(1 / 6)

    def test_qd2_style_score(self):
        # true nodes at 1,2,3,4 and one at 10 → the paper's 0.72-ish zone
        score = rank_score_from_positions([1, 2, 3, 4, 10])
        assert 0.6 < score < 0.8

    def test_positions_must_be_one_based(self):
        with pytest.raises(ValueError):
            rank_score_from_positions([0, 1])

    def test_empty_scores_zero(self):
        assert rank_score_from_positions([]) == 0.0

    def test_rank_score_over_deweys(self):
        ranked = [(0, 1), (0, 2), (0, 3)]
        assert rank_score(ranked, [(0, 1)]) == 1.0
        assert rank_score(ranked, [(0, 3)]) == pytest.approx(1 / 6)
        assert rank_score(ranked, [(9, 9)]) == 0.0


class TestIRMetrics:
    RANKED = [(0, 1), (0, 2), (0, 3), (0, 4)]

    def test_precision_at(self):
        assert precision_at(self.RANKED, [(0, 1), (0, 3)], 2) == 0.5
        assert precision_at(self.RANKED, [(0, 1)], 1) == 1.0
        assert precision_at([], [(0, 1)], 3) == 0.0

    def test_precision_rejects_bad_cutoff(self):
        with pytest.raises(ValueError):
            precision_at(self.RANKED, [], 0)

    def test_recall(self):
        assert recall(self.RANKED, [(0, 1), (9, 9)]) == 0.5
        assert recall(self.RANKED, []) == 1.0

    def test_reciprocal_rank(self):
        assert reciprocal_rank(self.RANKED, [(0, 2)]) == 0.5
        assert reciprocal_rank(self.RANKED, [(9, 9)]) == 0.0


class TestWorkload:
    def test_fourteen_queries(self):
        assert len(TABLE6) == 14

    def test_sizes_match_table6(self):
        assert by_id("QS4").size == 8
        assert by_id("QM2").size == 3
        assert by_id("QI1").size == 2

    def test_half_s(self):
        assert by_id("QD4").half_s() == 4
        assert by_id("QM2").half_s() == 1

    def test_for_dataset(self):
        assert [query.qid for query in for_dataset("mondial")] == \
            ["QM1", "QM2", "QM3", "QM4"]

    def test_unknown_id(self):
        with pytest.raises(KeyError):
            by_id("QX1")


class TestFeedback:
    def comparison(self, **kwargs):
        defaults = {"qid": "Q", "gks_count": 10, "gks_top_keywords": 3,
                    "slca_count": 0, "slca_is_root": False}
        defaults.update(kwargs)
        return QueryComparison(**defaults)

    def test_deterministic_given_seed(self):
        comparisons = [self.comparison(qid=f"Q{i}") for i in range(3)]
        first = simulate_feedback(comparisons, seed=5)
        second = simulate_feedback(comparisons, seed=5)
        assert first.rows == second.rows

    def test_histogram_sums_to_users(self):
        table = simulate_feedback([self.comparison()], users=40)
        assert sum(table.rows["Q"]) == 40

    def test_empty_slca_strongly_favours_gks(self):
        table = simulate_feedback(
            [self.comparison(qid=f"Q{i}") for i in range(12)], users=40)
        assert table.gks_better_rate > 0.8

    def test_focused_slca_softens_preference(self):
        strong = simulate_feedback([self.comparison()], users=400, seed=1)
        soft = simulate_feedback(
            [self.comparison(slca_count=5)], users=400, seed=1)
        assert soft.gks_better_rate < strong.gks_better_rate

    def test_gks_better_counts(self):
        table = FeedbackTable(users=4)
        table.add("Q1", [1, 2, 3, 4])
        assert table.gks_better == 2
        assert table.total_ratings == 4
        assert table.gks_better_rate == 0.5


class TestReporting:
    def test_render_table_alignment(self):
        text = render_table(["name", "value"], [("a", 1), ("bbbb", 2.5)])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "2.500" in text

    def test_render_table_with_title(self):
        assert render_table(["x"], [(1,)],
                            title="T").splitlines()[0] == "T"

    def test_render_series(self):
        text = render_series("Fig", [(1, 2.0)], x_label="n",
                             y_label="ms")
        assert "Fig" in text and "n" in text and "2.000" in text
