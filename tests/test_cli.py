"""Tests for the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture
def corpus(tmp_path):
    path = tmp_path / "uni.xml"
    path.write_text(
        "<Dept><Dept_Name>CS</Dept_Name>"
        "<Area><Name>Databases</Name><Courses>"
        "<Course><Name>Data Mining</Name><Students>"
        "<Student>Karen</Student><Student>Mike</Student>"
        "</Students></Course>"
        "<Course><Name>AI</Name><Students>"
        "<Student>Karen</Student><Student>Zoe</Student>"
        "</Students></Course>"
        "</Courses></Area></Dept>")
    return path


class TestSearch:
    def test_search_prints_ranked_results(self, corpus, capsys):
        assert main(["search", str(corpus), "-q", "karen mike",
                     "-s", "2"]) == 0
        out = capsys.readouterr().out
        assert "node(s) for" in out
        assert "score=" in out

    def test_search_snippets(self, corpus, capsys):
        main(["search", str(corpus), "-q", "karen", "--snippets"])
        assert "<Course>" in capsys.readouterr().out

    def test_top_limits_output(self, corpus, capsys):
        main(["search", str(corpus), "-q", "karen", "-k", "1"])
        out = capsys.readouterr().out
        assert out.count("score=") == 1

    def test_generous_deadline_stays_exact(self, corpus, capsys):
        assert main(["search", str(corpus), "-q", "karen mike",
                     "-s", "2", "--deadline-ms", "60000"]) == 0
        captured = capsys.readouterr()
        assert "node(s) for" in captured.out
        assert "warning:" not in captured.err

    def test_exhausted_deadline_warns_on_stderr(self, corpus, capsys):
        # 1 ns of budget trips on the first checkpoint; the query still
        # answers (degraded), so the exit code stays 0
        assert main(["search", str(corpus), "-q", "karen mike",
                     "-s", "2", "--deadline-ms", "0.000001"]) == 0
        captured = capsys.readouterr()
        assert "warning:" in captured.err
        assert "deadline" in captured.err


class TestDI:
    def test_di_prints_insights(self, corpus, capsys):
        assert main(["di", str(corpus), "-q", "karen mike",
                     "-s", "2"]) == 0
        out = capsys.readouterr().out
        assert "Data Mining" in out

    def test_di_without_lce_nodes(self, tmp_path, capsys):
        path = tmp_path / "flat.xml"
        path.write_text("<r><a>karen</a></r>")
        main(["di", str(path), "-q", "karen"])
        assert "no insights" in capsys.readouterr().out


class TestIndexAndCategorize:
    def test_index_writes_file(self, corpus, tmp_path, capsys):
        out_path = tmp_path / "idx.gz"
        assert main(["index", str(corpus), "-o", str(out_path)]) == 0
        assert out_path.exists()
        assert "indexed" in capsys.readouterr().out

    def test_categorize_prints_counts(self, corpus, capsys):
        assert main(["categorize", str(corpus)]) == 0
        out = capsys.readouterr().out
        assert "AN" in out and "EN" in out and "total nodes" in out


class TestCheckIndex:
    @pytest.fixture
    def index_path(self, corpus, tmp_path):
        path = tmp_path / "idx.gz"
        assert main(["index", str(corpus), "-o", str(path)]) == 0
        return path

    def test_healthy_index_exits_zero(self, index_path, capsys):
        assert main(["check-index", str(index_path)]) == 0
        out = capsys.readouterr().out
        assert "index OK" in out
        assert "documents" in out

    def test_corrupt_index_exits_nonzero(self, index_path, capsys):
        blob = bytearray(index_path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        index_path.write_bytes(bytes(blob))
        assert main(["check-index", str(index_path)]) == 1
        assert "index BAD" in capsys.readouterr().out

    def test_garbage_file_exits_nonzero(self, tmp_path, capsys):
        path = tmp_path / "noise.gz"
        path.write_bytes(b"this was never an index")
        assert main(["check-index", str(path)]) == 1
        assert "index BAD" in capsys.readouterr().out

    def test_missing_file_exits_nonzero(self, tmp_path):
        assert main(["check-index", str(tmp_path / "absent.gz")]) == 1

    def test_flag_spelling_works(self, index_path):
        assert main(["--check-index", str(index_path)]) == 0


class TestObservabilityCLI:
    def test_search_trace_prints_span_tree(self, corpus, capsys):
        assert main(["search", str(corpus), "-q", "karen mike",
                     "-s", "2", "--trace"]) == 0
        out = capsys.readouterr().out
        assert "search" in out
        for stage in ("merge", "lcp", "lce", "rank"):
            assert stage in out
        assert "ms" in out

    def test_search_metrics_json_writes_file(self, corpus, tmp_path,
                                             capsys):
        target = tmp_path / "metrics.json"
        assert main(["search", str(corpus), "-q", "karen",
                     "--metrics-json", str(target)]) == 0
        assert target.exists()
        import json
        snapshot = json.loads(target.read_text())
        assert "gks_searches_total" in snapshot

    def test_stats_human_report(self, corpus, capsys):
        assert main(["stats", str(corpus), "-q", "karen mike",
                     "-s", "2"]) == 0
        out = capsys.readouterr().out
        assert "corpus:" in out
        assert "query 'karen mike'" in out
        assert "cache:" in out
        assert "slow queries" in out

    def test_stats_prometheus_exposition(self, corpus, capsys):
        assert main(["stats", str(corpus), "-q", "karen",
                     "--prom"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE gks_searches_total counter" in out
        assert "gks_ingest_documents_total" in out

    def test_stats_json_exposition(self, corpus, capsys):
        import json

        assert main(["stats", str(corpus), "--json"]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert "gks_index_builds_total" in snapshot


class TestDataset:
    def test_dataset_emits_xml(self, tmp_path, capsys):
        assert main(["dataset", "figure2a", "-o", str(tmp_path)]) == 0
        files = list(tmp_path.glob("figure2a_*.xml"))
        assert len(files) == 1
        assert "Karen" in files[0].read_text()

    def test_unknown_dataset_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["dataset", "nope", "-o", str(tmp_path)])


class TestParser:
    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            main([])
