"""Unit tests for LCE discovery with independent witnesses (paper §4.2)."""

import pytest

from repro.core.lce import discover_lce
from repro.core.lcp import compute_lcp_list
from repro.core.merge import merged_list
from repro.core.query import Query
from repro.datasets.toy import figure2a
from repro.index.builder import build_index
from repro.xmltree.node import build_tree
from repro.xmltree.repository import Repository


def run_pipeline(index, keywords, s):
    query = Query.of(list(keywords), s=s)
    sl = merged_list(index, query)
    lcp = compute_lcp_list(sl, min(s, len(query)))
    return discover_lce(lcp, sl, index), sl


@pytest.fixture(scope="module")
def fig2a_index():
    repo = Repository()
    repo.add_root(figure2a())
    return build_index(repo)


class TestExample3:
    """Q4 = {student, karen, mike, john, harry}, s=2 → the three
    Databases courses plus the OS course (harry) as LCE nodes."""

    def test_courses_are_the_lce_nodes(self, fig2a_index):
        result, _ = run_pipeline(
            fig2a_index, ["student", "karen", "mike", "john", "harri"], 2)
        courses = {(0, 1, 1, 0), (0, 1, 1, 1), (0, 1, 1, 2)}
        assert courses <= set(result.lce)

    def test_every_lce_node_is_an_entity(self, fig2a_index):
        result, _ = run_pipeline(
            fig2a_index, ["student", "karen", "mike"], 2)
        for dewey in result.lce:
            assert fig2a_index.hashes.is_entity(dewey) is not None


class TestWitnesses:
    def test_surviving_lce_nodes_have_witnesses(self, fig2a_index):
        result, _ = run_pipeline(
            fig2a_index, ["karen", "mike", "john", "databas"], 2)
        for info in result.lce.values():
            assert info.witness is not None

    def test_ancestor_with_own_witness_survives(self, fig2a_index):
        # 'databas' lives in Area's attribute — an independent witness for
        # Area even though Courses below also match.
        result, _ = run_pipeline(fig2a_index,
                                 ["databas", "karen", "mike"], 2)
        assert (0, 1) in result.lce            # Area survives
        assert (0, 1, 1, 0) in result.lce      # Data Mining course too

    def test_ancestor_without_witness_is_evicted(self):
        # Both keywords only inside the deeper entity: the outer entity
        # has no independent witness and must not appear.
        root = build_tree(("outer", [
            ("title", "misc"),
            ("items", [
                ("inner", [("name", "karen mike"),
                           ("w", "1"), ("w", "2")]),
                ("inner", [("name", "other"), ("w", "3"), ("w", "4")]),
            ]),
        ]))
        repo = Repository()
        repo.add_root(root)
        index = build_index(repo)
        assert index.hashes.is_entity((0,)) is not None
        assert index.hashes.is_entity((0, 1, 0)) is not None
        result, _ = run_pipeline(index, ["karen", "mike"], 2)
        assert (0, 1, 0) in result.lce
        assert (0,) not in result.lce


class TestUnmapped:
    def test_nodes_without_entity_ancestor_are_unmapped(self,
                                                        figure1_index):
        result, _ = run_pipeline(figure1_index, ["a", "b"], 2)
        assert not result.lce               # Figure 1 has no entities
        assert result.unmapped

    def test_response_filters_unmapped_ancestors(self, figure1_index,
                                                 fig1_ids):
        result, _ = run_pipeline(figure1_index, ["a", "b", "c"], 3)
        response = result.response_deweys()
        assert response == [fig1_ids["x2"]]

    def test_attribute_lcp_is_lifted_to_parent(self, fig2a_index):
        # s=1 on a keyword that lives in an attribute node: the candidate
        # must be the attribute's parent (Def 2.1.1), then its entity.
        result, _ = run_pipeline(fig2a_index, ["databas"], 1)
        assert (0, 1) in result.lce          # Area, not the Name AN


class TestEstimates:
    def test_example4_style_accumulation(self, fig2a_index):
        # an entity whose subtree produces several blocks accumulates
        # counter-based estimates ≥ its exact distinct count
        result, sl = run_pipeline(
            fig2a_index, ["karen", "mike", "john"], 2)
        course = result.lce.get((0, 1, 1, 0))
        assert course is not None
        assert course.estimated_keywords >= 2
