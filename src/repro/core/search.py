"""The GKS search pipeline (paper §4, Fig. 6 ``GKSNodes``).

``search`` strings the pieces together:

1. merge the query keywords' posting lists into ``SL`` (§4.1),
2. sweep ``SL`` with the ``s``-unique sliding window into the LCP list,
3. map LCP entries to LCE nodes with witness maintenance (§4.2),
4. assemble ``RQ(s)`` = surviving LCE nodes + unmapped LCP nodes,
5. rank every response node with the potential-flow model (§5).

Total cost is O(d·|SL|·log n) for steps 1–4 (the paper's bound) plus the
ranking pass.  Distinct keyword counts reported per node are *exact* —
recounted over posting-list subtree ranges — while the paper's
``s + counter − 1`` estimate is preserved in
:attr:`RankedNode.estimated_keywords` (ablation bench A1 compares them).
"""

from __future__ import annotations

from typing import Callable

from repro.core.budget import SearchBudget
from repro.core.lce import LCEResult, discover_lce
from repro.core.lcp import compute_lcp_list
from repro.core.merge import merged_list
from repro.core.query import Query
from repro.core.ranking import RankBreakdown, rank_node
from repro.core.results import GKSResponse, RankedNode, SearchProfile
from repro.index.builder import GKSIndex
from repro.obs.stats import QueryStats
from repro.obs.trace import NOOP_TRACER, NullTracer, Tracer
from repro.xmltree.dewey import Dewey

Ranker = Callable[[GKSIndex, Query, Dewey], RankBreakdown]


def search(index: GKSIndex, query: Query,
           ranker: Ranker = rank_node,
           budget: SearchBudget | None = None,
           tracer: Tracer | NullTracer | None = None) -> GKSResponse:
    """Run one GKS query against an index and return the ranked response.

    With a :class:`SearchBudget` every stage runs under cooperative
    checkpoints.  When the budget trips mid-pipeline, downstream stages
    operate on whatever was discovered so far and ranking falls back to a
    bounded top-k of the already-discovered nodes — the response comes
    back ``degraded=True`` with a
    :class:`~repro.core.budget.DegradationReport` instead of raising.

    Stage timings are read from the *tracer*'s clock (injectable; the
    default no-op tracer records no spans but still times stages for the
    response's :class:`~repro.obs.stats.QueryStats`).  Pass a real
    :class:`~repro.obs.trace.Tracer` to additionally capture the nested
    span tree ``gks search --trace`` renders.
    """
    if tracer is None:
        tracer = NOOP_TRACER
    clock = tracer.clock
    effective = query.with_s(query.effective_s)
    if budget is not None:
        budget.start()

    with tracer.span("search", query=" ".join(effective.keywords),
                     s=effective.s) as root:
        started = clock()
        with tracer.span("merge") as span:
            sl = merged_list(index, effective, budget=budget)
            span.add("sl_entries", len(sl))
        after_merge = clock()
        with tracer.span("lcp") as span:
            lcp = compute_lcp_list(sl, effective.s, budget=budget)
            span.add("entries", len(lcp))
        after_lcp = clock()
        with tracer.span("lce") as span:
            lce = discover_lce(lcp, sl, index, budget=budget)
            span.add("nodes", len(lce.lce))
        after_lce = clock()
        with tracer.span("rank") as span:
            nodes = rank_response(index, effective, lce, ranker,
                                  budget=budget)
            span.add("ranked", len(nodes))
        finished = clock()
        tripped = budget is not None and budget.tripped
        if tripped:
            root.set(degraded=True, trip_stage=budget.report.stage,
                     trip_reason=budget.report.reason)

    profile = SearchProfile(merged_list_size=len(sl),
                            lcp_entries=len(lcp),
                            lce_nodes=len(lce.lce),
                            seconds=finished - started,
                            merge_seconds=after_merge - started,
                            lcp_seconds=after_lcp - after_merge,
                            lce_seconds=after_lce - after_lcp,
                            rank_seconds=finished - after_lce)
    stats = QueryStats(total_seconds=profile.seconds,
                       merge_seconds=profile.merge_seconds,
                       lcp_seconds=profile.lcp_seconds,
                       lce_seconds=profile.lce_seconds,
                       rank_seconds=profile.rank_seconds,
                       postings_scanned=len(sl),
                       lcp_entries=len(lcp),
                       lce_nodes=len(lce.lce),
                       nodes_emitted=len(nodes),
                       budget_trips=1 if tripped else 0,
                       trip_stage=budget.report.stage if tripped else None,
                       trip_reason=budget.report.reason if tripped else None,
                       degraded=tripped)
    return GKSResponse(query=effective, nodes=tuple(nodes), profile=profile,
                       degraded=tripped,
                       degradation=budget.report if tripped else None,
                       stats=stats)


def rank_response(index: GKSIndex, query: Query, lce: LCEResult,
                  ranker: Ranker,
                  budget: SearchBudget | None = None) -> list[RankedNode]:
    """Rank the response node set of an already-run LCE stage.

    Public because scatter-gather execution reuses it per shard: rank a
    shard's own LCE result against the shard's index, then merge the
    per-shard rankings (see :mod:`repro.core.scatter`).
    """
    lce_set = set(lce.lce)
    fallback = lce.fallback_candidates()
    deweys = lce.response_deweys()
    pre_tripped = budget is not None and budget.tripped
    if pre_tripped:
        # An earlier stage tripped: salvage a bounded top-k of what was
        # discovered.  response_deweys() lists the LCE nodes first, so
        # the cap favours entity results (§4.2 semantics).  The recovery
        # ranking itself is bounded by recovery_k, not the (already
        # spent) deadline.
        deweys = deweys[:budget.recovery_k]
    ranked: list[RankedNode] = []
    total = len(deweys)
    for dewey in deweys:
        if (budget is not None and not pre_tripped
                and not budget.admit_node(len(ranked), total)):
            break
        breakdown = ranker(index, query, dewey)
        if dewey in lce.lce:
            estimate = lce.lce[dewey].estimated_keywords
        else:
            estimate = fallback.get(dewey, query.s)
        ranked.append(RankedNode(
            dewey=dewey,
            score=breakdown.score,
            distinct_keywords=breakdown.distinct_keywords,
            matched_keywords=breakdown.matched_keywords,
            is_lce=dewey in lce_set,
            estimated_keywords=estimate,
            breakdown=breakdown))
    ranked.sort(key=RankedNode.sort_key)
    return ranked
