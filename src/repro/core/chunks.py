"""Well-constructed response chunks (paper §1.2, Fig. 2(b)).

"GKS returns a well-constructed XML chunk."  Figure 2(b) shows what that
means: each result is rendered as its LCE element with (a) the attribute
nodes that define its context (``<Name>Data Mining</Name>``) and (b) the
paths to the *matched* keyword occurrences — unmatched repeating content
is pruned (the AI course shows Karen and Mike, not Serena and Peter).

``response_chunk`` reproduces that rendering from a ranked result: the
keep-set is the union of all matched-occurrence paths and the strict
attribute nodes hanging off that spine.
"""

from __future__ import annotations

from repro.core.query import Query
from repro.core.ranking import keyword_occurrences
from repro.core.results import RankedNode
from repro.index.builder import GKSIndex
from repro.xmltree.dewey import Dewey
from repro.xmltree.node import XMLNode
from repro.xmltree.repository import Repository
from repro.xmltree.serialize import serialize_node


def chunk_keep_set(index: GKSIndex, query: Query,
                   node: RankedNode) -> set[Dewey]:
    """Dewey ids to keep when rendering *node*'s chunk.

    The matched spine: every node on a path from the result element to a
    matched keyword occurrence (all occurrences, not just the ranking's
    terminal points — the paper's Fig. 2(b) shows every matched student).
    """
    keep: set[Dewey] = set()
    root = node.dewey
    for keyword in node.matched_keywords:
        for occurrence in keyword_occurrences(index, keyword, root):
            for length in range(len(root) + 1, len(occurrence) + 1):
                keep.add(occurrence[:length])
    return keep


def response_chunk(repository: Repository, index: GKSIndex,
                   query: Query, node: RankedNode,
                   indent: int = 2) -> str:
    """Render the Fig. 2(b)-style chunk for one ranked result."""
    element = repository.node_at(node.dewey)
    if element is None:
        return f"<!-- missing node -->"
    keep = chunk_keep_set(index, query, node)
    spine = keep | {node.dewey}

    def keep_child(child: XMLNode) -> bool:
        if child.dewey in keep:
            return True
        # strict attribute nodes of spine elements give the context
        parent = child.parent
        if parent is None or parent.dewey not in spine:
            return False
        return (child.is_leaf and child.has_text
                and child.same_label_sibling_count() == 0)

    return serialize_node(element, indent=indent, keep=keep_child)
