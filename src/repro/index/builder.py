"""Indexing Engine (paper Fig. 3, §2.4).

Builds, in a single pass per document, the three index structures GKS
queries run against:

* the inverted keyword index (text keywords and element names),
* ``entityHash`` / ``elementHash`` with direct-child counts,
* the :class:`IndexStats` counters behind Tables 4 and 5.

"Since XML nodes arrive pre-order (an ancestor of an XML node always
appears before it), the hash tables and the inverted index are created in a
single pass over XML data."  The builder therefore accepts either
materialised documents/repositories or raw XML text driven through the
streaming parser — the latter never builds a tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import IndexError_
from repro.index.categorize import StreamingCategorizer
from repro.index.hashtables import NodeHashes
from repro.index.inverted import InvertedIndex
from repro.index.statistics import IndexStats
from repro.obs.metrics import global_registry
from repro.obs.trace import DEFAULT_CLOCK
from repro.text.analyzer import DEFAULT_ANALYZER, Analyzer
from repro.xmltree.dewey import Dewey
from repro.xmltree.events import EndElement, StartElement, Text
from repro.xmltree.node import XMLNode
from repro.xmltree.parser import iter_events
from repro.xmltree.repository import Repository
from repro.xmltree.tree import XMLDocument


@dataclass(frozen=True)
class GKSIndex:
    """The complete on-disk-able GKS index of one repository.

    Searching needs nothing but this object; the engine keeps the
    repository around only to render result snippets.
    """

    inverted: InvertedIndex
    hashes: NodeHashes
    stats: IndexStats
    analyzer: Analyzer = field(default=DEFAULT_ANALYZER)
    document_names: tuple[str, ...] = ()
    #: p-document probability tables (None/empty for deterministic corpora;
    #: compiled by ``repro.semantics`` when the engine runs in
    #: probabilistic mode and persisted by both codecs).
    probabilities: "object | None" = field(default=None, repr=False,
                                           compare=False)
    _phrase_cache: dict = field(default_factory=dict, repr=False,
                                compare=False)

    @property
    def depth(self) -> int:
        """Maximum element depth ``d`` over the repository (§4.2)."""
        return self.stats.max_depth

    def postings(self, keyword: str):
        """Posting list for a keyword — or a phrase keyword.

        A phrase keyword (words joined by spaces, e.g. ``"peter buneman"``)
        posts at the elements whose direct content contains *every* word:
        the per-Dewey intersection of the word posting lists, cached per
        phrase.  This is how the Table 6 queries treat quoted author names
        as single keywords (|QD2| = 4).
        """
        if " " not in keyword:
            return self.inverted.postings(keyword)
        cached = self._phrase_cache.get(keyword)
        if cached is None:
            from repro.index.postings import intersect_postings

            cached = intersect_postings(
                [self.inverted.postings(word)
                 for word in keyword.split()])
            self._phrase_cache[keyword] = cached
        return cached


class IndexBuilder:
    """Accumulates documents and produces a :class:`GKSIndex`.

    Parameters
    ----------
    analyzer:
        Text-normalisation pipeline shared with query parsing.
    index_tags:
        Also index element names (default on — the paper's QM2 searches the
        tags ``country`` and ``name``).  The ablation bench A3 turns it off.
    clock:
        Injectable time source for ``stats.build_seconds`` (defaults to
        the tracer clock, :data:`repro.obs.trace.DEFAULT_CLOCK`).
    """

    def __init__(self, analyzer: Analyzer = DEFAULT_ANALYZER,
                 index_tags: bool = True,
                 clock: Callable[[], float] | None = None) -> None:
        self.analyzer = analyzer
        self.index_tags = index_tags
        self._inverted = InvertedIndex()
        self._hashes = NodeHashes()
        self._stats = IndexStats()
        self._names: list[str] = []
        self._built = False
        self._clock = clock if clock is not None else DEFAULT_CLOCK
        self._started = self._clock()

    # ------------------------------------------------------------------
    # Feeding documents
    # ------------------------------------------------------------------
    def add_document(self, document: XMLDocument) -> None:
        """Index one materialised document (doc ids must be consecutive)."""
        self._check_open()
        if document.doc_id != len(self._names):
            raise IndexError_(
                f"document {document.name!r} has doc id {document.doc_id}, "
                f"expected {len(self._names)}")
        self._ingest(document)

    def add_document_unchecked(self, document: XMLDocument) -> None:
        """Index one document *keeping its global doc id*.

        Shard builds use this: a shard holds an arbitrary subset of the
        repository's documents, so its doc ids are global and
        non-consecutive — every posting and hash key still carries the
        repository-wide Dewey id, which is what makes the union of shard
        search results exactly the monolithic answer.
        """
        self._check_open()
        self._ingest(document)

    def _ingest(self, document: XMLDocument) -> None:
        self._names.append(document.name)
        self._stats.documents += 1
        categorizer = StreamingCategorizer()
        self._walk(document.root, categorizer)

    def add_repository(self, repository: Repository) -> None:
        """Index every document of *repository* in order."""
        for document in repository:
            self.add_document(document)

    def add_xml(self, text: str, name: str | None = None,
                doc_id: int | None = None) -> None:
        """Index raw XML text without materialising the tree.

        With an explicit *doc_id* the document is indexed under that
        global document number instead of the next consecutive one —
        the streaming counterpart of :meth:`add_document_unchecked` that
        shard builds drive from raw corpus texts.
        """
        self._check_open()
        if doc_id is None:
            doc_id = len(self._names)
        self._names.append(name or f"doc{doc_id}")
        self._stats.documents += 1
        categorizer = StreamingCategorizer()
        path: list[int] = []       # child ordinals of the open elements
        counts: list[int] = [0]    # children seen at each open level
        for event in iter_events(text):
            if isinstance(event, StartElement):
                ordinal = counts[-1]
                counts[-1] += 1
                path.append(ordinal)
                counts.append(0)
                dewey: Dewey = (doc_id, *path[1:]) if len(path) > 1 \
                    else (doc_id,)
                categorizer.start(dewey, event.tag)
                self._post_tag(event.tag, dewey)
                for key, value in event.attributes.items():
                    # attributes-as-children, mirroring the tree builder
                    attr_ordinal = counts[-1]
                    counts[-1] += 1
                    attr_dewey = dewey + (attr_ordinal,)
                    categorizer.start(attr_dewey, key)
                    categorizer.text(value)
                    self._post_tag(key, attr_dewey)
                    self._post_text(value, attr_dewey)
                    self._file_records(categorizer.end())
            elif isinstance(event, EndElement):
                path.pop()
                counts.pop()
                self._file_records(categorizer.end())
            elif isinstance(event, Text):
                if event.content.strip():
                    categorizer.text(event.content)
                    dewey = (doc_id, *path[1:]) if len(path) > 1 \
                        else (doc_id,)
                    self._post_text(event.content, dewey)

    # ------------------------------------------------------------------
    def _walk(self, node: XMLNode, categorizer: StreamingCategorizer) -> None:
        stack: list[tuple[XMLNode, bool]] = [(node, False)]
        while stack:
            current, closed = stack.pop()
            if closed:
                self._file_records(categorizer.end())
                continue
            categorizer.start(current.dewey, current.tag)
            self._post_tag(current.tag, current.dewey)
            if current.has_text:
                assert current.text is not None
                categorizer.text(current.text)
                self._post_text(current.text, current.dewey)
            stack.append((current, True))
            stack.extend((child, False)
                         for child in reversed(current.children))

    def _post_text(self, text: str, dewey: Dewey) -> None:
        keywords = self.analyzer.analyze(text)
        self._stats.text_keywords += len(keywords)
        self._inverted.add_all(keywords, dewey)

    def _post_tag(self, tag: str, dewey: Dewey) -> None:
        if not self.index_tags:
            return
        keywords = self.analyzer.analyze_tag(tag)
        self._stats.tag_keywords += len(keywords)
        self._inverted.add_all(keywords, dewey)

    def _file_records(self, records) -> None:
        for record in records:
            self._hashes.add_record(record)
            self._stats.record_category(record)

    def _check_open(self) -> None:
        if self._built:
            raise IndexError_("IndexBuilder already finished; "
                              "create a new builder")

    # ------------------------------------------------------------------
    def build(self) -> GKSIndex:
        """Finish and return the index (builder becomes unusable)."""
        self._check_open()
        self._built = True
        self._stats.build_seconds = self._clock() - self._started
        registry = global_registry()
        registry.counter("gks_index_builds_total",
                         help="Indexes built in this process.").inc()
        registry.histogram("gks_index_build_seconds",
                           help="Wall time of index builds."
                           ).observe(self._stats.build_seconds)
        registry.gauge("gks_index_total_nodes",
                       help="Nodes in the most recently built index."
                       ).set(self._stats.total_nodes)
        registry.gauge("gks_index_documents",
                       help="Documents in the most recently built index."
                       ).set(self._stats.documents)
        return GKSIndex(inverted=self._inverted, hashes=self._hashes,
                        stats=self._stats, analyzer=self.analyzer,
                        document_names=tuple(self._names))


def build_index(source: Repository | XMLDocument | str,
                analyzer: Analyzer = DEFAULT_ANALYZER,
                index_tags: bool = True) -> GKSIndex:
    """One-call convenience: index a repository, a document, or XML text."""
    builder = IndexBuilder(analyzer=analyzer, index_tags=index_tags)
    if isinstance(source, Repository):
        builder.add_repository(source)
    elif isinstance(source, XMLDocument):
        builder.add_document(source)
    elif isinstance(source, str):
        builder.add_xml(source)
    else:
        raise TypeError(f"cannot index {type(source).__name__}")
    return builder.build()
