"""Unit tests for potential-flow ranking (paper §5, Example 5)."""

import pytest

from repro.core.query import Query
from repro.core.ranking import (rank_by_keyword_count, rank_node,
                                received_potential, terminal_points)


class TestTerminalPoints:
    def test_highest_occurrence_only(self):
        points = terminal_points([(0, 1), (0, 2, 5), (0, 3)])
        assert points == ((0, 1), (0, 3))  # depth-1 beats depth-2

    def test_multiple_at_highest_level_all_count(self):
        points = terminal_points([(0, 1), (0, 2)])
        assert len(points) == 2

    def test_empty(self):
        assert terminal_points([]) == ()


class TestReceivedPotential:
    def test_terminal_at_root_receives_everything(self, figure1_index):
        assert received_potential(figure1_index, (0, 1), (0, 1), 3.0) == 3.0

    def test_division_along_path(self, figure1_index, fig1_ids):
        # x3 has 3 children; y (inside x3) has 2: potential 3 at x3
        # arriving at y's child d = 3 · (1/3) · (1/2) = 0.5
        x3, y = fig1_ids["x3"], fig1_ids["y"]
        d_leaf = y + (0,)
        assert received_potential(figure1_index, x3, d_leaf, 3.0) == \
            pytest.approx(0.5)


class TestExample5:
    """Q3 = {a, b, c, d}: rank(x2)=3, rank(x3)=2.5, rank(x4)=2."""

    QUERY = Query.of(["a", "b", "c", "d"], s=2)

    def test_x2_rank(self, figure1_index, fig1_ids):
        breakdown = rank_node(figure1_index, self.QUERY, fig1_ids["x2"])
        assert breakdown.score == pytest.approx(3.0)
        assert breakdown.initial_potential == 3

    def test_x3_rank(self, figure1_index, fig1_ids):
        breakdown = rank_node(figure1_index, self.QUERY, fig1_ids["x3"])
        assert breakdown.score == pytest.approx(2.5)

    def test_x4_rank(self, figure1_index, fig1_ids):
        breakdown = rank_node(figure1_index, self.QUERY, fig1_ids["x4"])
        assert breakdown.score == pytest.approx(2.0)

    def test_order_matches_paper(self, figure1_index, fig1_ids):
        scores = {
            name: rank_node(figure1_index, self.QUERY,
                            fig1_ids[name]).score
            for name in ("x2", "x3", "x4")
        }
        assert scores["x2"] > scores["x3"] > scores["x4"]


class TestBreakdowns:
    def test_matched_keywords_recorded(self, figure1_index, fig1_ids):
        query = Query.of(["a", "b", "c", "d"])
        breakdown = rank_node(figure1_index, query, fig1_ids["x3"])
        assert set(breakdown.matched_keywords) == {"a", "b", "d"}
        assert breakdown.distinct_keywords == 3

    def test_absent_keywords_do_not_contribute(self, figure1_index,
                                               fig1_ids):
        query = Query.of(["a", "zzz"])
        breakdown = rank_node(figure1_index, query, fig1_ids["x2"])
        assert breakdown.initial_potential == 1
        assert "zzz" not in breakdown.terminals

    def test_node_without_keywords_scores_zero(self, figure1_index,
                                               fig1_ids):
        query = Query.of(["zzz"])
        breakdown = rank_node(figure1_index, query, fig1_ids["x2"])
        assert breakdown.score == 0.0

    def test_rank_is_positive_when_keywords_present(self, figure1_index,
                                                    fig1_ids):
        query = Query.of(["a"])
        assert rank_node(figure1_index, query,
                         fig1_ids["x1"]).score > 0


class TestKeywordCountBaseline:
    def test_count_ranker_ignores_structure(self, figure1_index, fig1_ids):
        query = Query.of(["a", "b", "c", "d"], s=2)
        x3 = rank_by_keyword_count(figure1_index, query, fig1_ids["x3"])
        x2 = rank_by_keyword_count(figure1_index, query, fig1_ids["x2"])
        assert x3.score == x2.score == 3.0  # both match 3 keywords

    def test_count_ranker_terminals_match_flow_ranker(self, figure1_index,
                                                      fig1_ids):
        query = Query.of(["a", "b"])
        flow = rank_node(figure1_index, query, fig1_ids["x3"])
        count = rank_by_keyword_count(figure1_index, query, fig1_ids["x3"])
        assert flow.terminals == count.terminals
