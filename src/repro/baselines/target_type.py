"""Result-type deduction (paper §3: XReal [9] / XBridge [4]).

"For most keyword queries, users target certain node types."  The
deducers here score every *entity type* (tag path from the inferred
schema) by how well the query keywords distribute over its instances and
return the most confident type — the paper's `<inproceedings>` for the
Example 2 query.

The confidence formula follows XReal's spirit: a type ``T`` scores the
product over query keywords of ``1 + f(k, T)`` where ``f(k, T)`` is the
fraction of ``T``-instances whose subtree contains ``k``, scaled by the
type's instance count (log-damped) so tiny types do not win on flukes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.query import Query
from repro.index.builder import GKSIndex
from repro.index.postings import subtree_range
from repro.schema.categorize import categorize_schema
from repro.schema.inference import Schema, TagPath, infer_schema
from repro.index.categorize import NodeCategory
from repro.xmltree.dewey import Dewey
from repro.xmltree.repository import Repository


@dataclass(frozen=True)
class TypeScore:
    """Confidence of one candidate target type."""

    path: TagPath
    score: float
    instances: int
    keyword_coverage: dict[str, float]

    @property
    def tag(self) -> str:
        return self.path[-1]


def entity_type_instances(repository: Repository,
                          schema: Schema | None = None
                          ) -> dict[TagPath, list[Dewey]]:
    """Dewey ids of every instance of every *entity* type."""
    if schema is None:
        schema = infer_schema(repository)
    categories = categorize_schema(schema)
    entity_paths = {path for path, assignment in categories.items()
                    if assignment.category is NodeCategory.ENTITY}

    instances: dict[TagPath, list[Dewey]] = {path: []
                                             for path in entity_paths}
    for document in repository:
        stack = [(document.root, (document.root.tag,))]
        while stack:
            node, path = stack.pop()
            if path in entity_paths:
                instances[path].append(node.dewey)
            for child in node.children:
                stack.append((child, path + (child.tag,)))
    for deweys in instances.values():
        deweys.sort()
    return instances


def score_types(index: GKSIndex, query: Query,
                instances: dict[TagPath, list[Dewey]]) -> list[TypeScore]:
    """Score every entity type for *query*, best first."""
    scores: list[TypeScore] = []
    for path, deweys in instances.items():
        if not deweys:
            continue
        coverage: dict[str, float] = {}
        confidence = math.log(1 + len(deweys))
        for keyword in query.keywords:
            postings = index.postings(keyword)
            holding = sum(
                1 for dewey in deweys
                if subtree_range(postings, dewey)[0]
                != subtree_range(postings, dewey)[1])
            fraction = holding / len(deweys)
            coverage[keyword] = fraction
            confidence *= 1.0 + fraction
        scores.append(TypeScore(path=path, score=confidence,
                                instances=len(deweys),
                                keyword_coverage=coverage))
    scores.sort(key=lambda item: (-item.score, item.path))
    return scores


def deduce_target_type(repository: Repository, index: GKSIndex,
                       query: Query,
                       schema: Schema | None = None) -> TypeScore | None:
    """The most confident target entity type for *query* (or None)."""
    instances = entity_type_instances(repository, schema)
    scores = score_types(index, query, instances)
    for candidate in scores:
        if any(fraction > 0
               for fraction in candidate.keyword_coverage.values()):
            return candidate
    return None
