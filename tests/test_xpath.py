"""Tests for the XPath-lite evaluator."""

import pytest

from repro.xmltree.node import build_tree
from repro.xmltree.xpath import XPathError, parse_path, select, select_text


@pytest.fixture(scope="module")
def library():
    return build_tree(("lib", [
        ("book", [("title", "Alpha"), ("year", "1999"),
                  ("author", "Ann"), ("author", "Bob")]),
        ("book", [("title", "Beta"), ("year", "2005"),
                  ("author", "Ann")]),
        ("journal", [("title", "Gamma"), ("year", "2005")]),
        ("shelf", [("book", [("title", "Delta"), ("year", "2011")])]),
    ]))


class TestParsing:
    def test_steps_and_axes(self):
        steps = parse_path("/a//b/c")
        assert [(s.tag, s.descendant) for s in steps] == \
            [("a", False), ("b", True), ("c", False)]

    def test_leading_descendant_axis(self):
        steps = parse_path("//x")
        assert steps[0].descendant

    @pytest.mark.parametrize("bad", [
        "", "/", "a[", "a[]", "a[text()'x']", "a[y='x]",
        "a[n<abc]", "a//", "a[@]",
    ])
    def test_malformed_paths_raise(self, bad):
        with pytest.raises(XPathError):
            parse_path(bad)


class TestSelection:
    def test_child_steps(self, library):
        assert len(select(library, "book")) == 2
        assert select_text(library, "book/title") == ["Alpha", "Beta"]

    def test_rooted_path_may_name_root(self, library):
        assert len(select(library, "/lib/book")) == 2

    def test_descendant_axis(self, library):
        titles = select_text(library, "//book/title")
        assert titles == ["Alpha", "Beta", "Delta"]

    def test_wildcard(self, library):
        assert len(select(library, "*/title")) == 3

    def test_positional_predicate_counts_matching_tags(self, library):
        assert select_text(library, "book[2]/title") == ["Beta"]

    def test_child_equality_predicate(self, library):
        titles = select_text(library, "book[author='Ann']/title")
        assert titles == ["Alpha", "Beta"]
        assert select_text(library, "book[author='Bob']/title") == \
            ["Alpha"]

    def test_at_sign_is_equivalent(self, library):
        assert select_text(library, "book[@author='Bob']/title") == \
            ["Alpha"]

    def test_existence_predicate(self, library):
        assert len(select(library, "book[author]")) == 2
        assert len(select(library, "journal[author]")) == 0

    def test_text_predicate(self, library):
        assert len(select(library, "book/title[text()='Alpha']")) == 1

    def test_numeric_comparison(self, library):
        assert select_text(library, "book[year>2000]/title") == ["Beta"]
        assert select_text(library, "//book[year<2000]/title") == \
            ["Alpha"]

    def test_chained_predicates(self, library):
        assert select_text(library,
                           "book[author='Ann'][year>2000]/title") == \
            ["Beta"]

    def test_no_match_is_empty(self, library):
        assert select(library, "nonexistent/thing") == []

    def test_results_deduplicated_in_document_order(self, library):
        nodes = select(library, "//title")
        deweys = [node.dewey for node in nodes]
        assert deweys == sorted(set(deweys))

    def test_select_text_skips_containers(self, library):
        assert select_text(library, "//book") == []
