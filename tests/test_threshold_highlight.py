"""Tests for automatic threshold suggestion and snippet highlighting."""

import pytest

from repro.core.engine import GKSEngine
from repro.core.highlight import highlight_snippet, highlight_text
from repro.core.query import Query
from repro.core.threshold import s_profile, suggest_s
from repro.datasets.registry import load_dataset
from repro.index.builder import build_index


@pytest.fixture(scope="module")
def dblp_engine():
    return GKSEngine(load_dataset("dblp"))


class TestSProfile:
    def test_counts_non_increasing(self, figure1_index):
        query = Query.of(["a", "b", "c", "d"])
        profile = s_profile(figure1_index, query)
        values = [profile.counts[s] for s in sorted(profile.counts)]
        assert values == sorted(values, reverse=True)

    def test_best_coverage(self, figure1_index):
        query = Query.of(["a", "b", "c", "d"])
        profile = s_profile(figure1_index, query)
        assert profile.best_coverage() == 3  # x2/x3 cover three keywords

    def test_empty_query_response(self, figure1_index):
        profile = s_profile(figure1_index, Query.of(["zzz"]))
        assert profile.best_coverage() == 0


class TestSuggestS:
    def test_trio_query_suggests_three(self, dblp_engine):
        # Example 2's coherent core: three authors co-occur
        query = dblp_engine.parse_query(
            '"Peter Buneman" "Wenfei Fan" "Scott Weinstein" '
            '"Prithviraj Banerjee"')
        assert suggest_s(dblp_engine.index, query) == 3

    def test_coherent_query_gets_and_semantics(self, dblp_engine):
        query = dblp_engine.parse_query(
            '"Dimitrios Georgakopoulos" "Marek Rusinkiewicz"')
        assert suggest_s(dblp_engine.index, query) == 2

    def test_scattershot_query_falls_back(self, figure1_index):
        query = Query.of(["a", "zzz", "qqq"])
        assert suggest_s(figure1_index, query) == 1

    def test_min_results_raises_bar(self, dblp_engine):
        query = dblp_engine.parse_query(
            '"Peter Buneman" "Wenfei Fan" "Scott Weinstein" '
            '"Prithviraj Banerjee"')
        # nine nodes cover the trio: requiring ten forces s down to 1
        assert suggest_s(dblp_engine.index, query, min_results=10) == 1

    def test_invalid_min_results(self, figure1_index):
        with pytest.raises(ValueError):
            suggest_s(figure1_index, Query.of(["a"]), min_results=0)

    def test_engine_facade(self, dblp_engine):
        assert dblp_engine.suggest_s('"Peter Buneman" "Wenfei Fan"') == 2


class TestHighlightText:
    QUERY = Query.parse("karen publications")

    def test_exact_word_marked(self):
        assert highlight_text("Karen rocks", self.QUERY) == \
            "**Karen** rocks"

    def test_stemmed_form_marked(self):
        # 'publications' analyses to the query keyword 'public'
        assert highlight_text("Publications of 2002", self.QUERY) == \
            "**Publications** of 2002"

    def test_phrase_words_marked_individually(self):
        query = Query.parse('"Peter Buneman"')
        assert highlight_text("by Peter Buneman et al", query) == \
            "by **Peter** **Buneman** et al"

    def test_punctuation_preserved(self):
        assert highlight_text("karen, karen!", self.QUERY) == \
            "**karen**, **karen**!"

    def test_no_match_unchanged(self):
        assert highlight_text("nothing here", self.QUERY) == \
            "nothing here"

    def test_custom_marker(self):
        assert highlight_text("karen", self.QUERY, marker=">>") == \
            ">>karen>>"


class TestHighlightSnippet:
    def test_snippet_marks_text_not_tags(self, figure2a_engine):
        query = figure2a_engine.parse_query("karen course")
        response = figure2a_engine.search(query)
        text = figure2a_engine.highlighted_snippet(response[0], query)
        assert "**Karen**" in text
        assert "**Course**" not in text        # tags stay unmarked
        assert "<Course>" in text

    def test_xml_escaping_applies(self):
        engine = GKSEngine.open(
            ["<r><a>karen &amp; mike</a></r>"])
        query = engine.parse_query("karen")
        response = engine.search(query)
        text = engine.highlighted_snippet(response[0], query)
        assert "&amp;" in text
        assert "**karen**" in text

    def test_missing_node(self, figure2a_engine):
        query = figure2a_engine.parse_query("karen")
        assert "missing node" in figure2a_engine.highlighted_snippet(
            (9, 9), query)
