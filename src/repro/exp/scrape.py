"""Scrape-and-parse for the Prometheus text exposition format.

The experiment runner treats ``/metrics`` as the *only* source of
server-side truth — the same bytes an operator's Prometheus would
scrape — so the run artifacts cannot disagree with production
monitoring.  This module parses that text back into structured samples
and computes before/after deltas with the right semantics per metric
kind: counters and histogram series subtract (the run's contribution),
gauges take the after-value (the run's end state).

The parser is the exact inverse of
:meth:`repro.obs.metrics.MetricsRegistry.render_prometheus`, including
label-value unescaping — a label value containing ``"``, ``\\`` or a
newline must round-trip, which is why the splitter walks characters
instead of splitting on commas.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ValidationError
from repro.obs.metrics import unescape_label_value

#: label series key: canonical sorted ((name, value), ...) tuple
SeriesKey = tuple[tuple[str, str], ...]


@dataclass
class ParsedMetrics:
    """Every sample of one exposition, keyed by metric and label set."""

    #: metric family name -> "counter" | "gauge" | "histogram"
    types: dict[str, str] = field(default_factory=dict)
    #: metric family name -> HELP text (unescaped not needed for deltas)
    help: dict[str, str] = field(default_factory=dict)
    #: sample name (incl. _bucket/_sum/_count) -> {series key: value}
    samples: dict[str, dict[SeriesKey, float]] = field(
        default_factory=dict)

    def value(self, name: str, labels: dict[str, str] | None = None,
              default: float = 0.0) -> float:
        """One sample's value; *default* when the series is absent."""
        series = self.samples.get(name)
        if not series:
            return default
        key = tuple(sorted((labels or {}).items()))
        return series.get(key, default)

    def family_of(self, sample_name: str) -> str:
        """The family a sample belongs to (strips histogram suffixes)."""
        for suffix in ("_bucket", "_sum", "_count"):
            if sample_name.endswith(suffix):
                family = sample_name[:-len(suffix)]
                if self.types.get(family) == "histogram":
                    return family
        return sample_name


def _parse_labels(body: str, line: str) -> SeriesKey:
    """Parse the ``name="value",...`` body of a label set.

    Walks characters so escaped quotes inside values (``\\"``) do not
    terminate the value and commas inside values do not split it.
    """
    pairs: list[tuple[str, str]] = []
    i = 0
    length = len(body)
    while i < length:
        eq = body.find("=", i)
        if eq < 0:
            raise ValidationError(f"malformed label set in line: {line!r}")
        name = body[i:eq].strip().lstrip(",").strip()
        if eq + 1 >= length or body[eq + 1] != '"':
            raise ValidationError(f"unquoted label value in line: {line!r}")
        j = eq + 2
        raw: list[str] = []
        while j < length:
            ch = body[j]
            if ch == "\\" and j + 1 < length:
                raw.append(body[j:j + 2])
                j += 2
                continue
            if ch == '"':
                break
            raw.append(ch)
            j += 1
        else:
            raise ValidationError(
                f"unterminated label value in line: {line!r}")
        pairs.append((name, unescape_label_value("".join(raw))))
        i = j + 1
        while i < length and body[i] in ", ":
            i += 1
    return tuple(sorted(pairs))


def parse_prometheus(text: str) -> ParsedMetrics:
    """Parse one text exposition into :class:`ParsedMetrics`.

    Raises :class:`~repro.errors.ValidationError` on a malformed line —
    a scrape that does not parse must fail the run loudly, not produce a
    silently empty delta.
    """
    parsed = ParsedMetrics()
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 4 and parts[1] == "TYPE":
                parsed.types[parts[2]] = parts[3].strip()
            elif len(parts) >= 3 and parts[1] == "HELP":
                parsed.help[parts[2]] = parts[3] if len(parts) > 3 else ""
            continue
        brace = line.find("{")
        if brace >= 0:
            close = line.rfind("}")
            if close < brace:
                raise ValidationError(f"malformed sample line: {line!r}")
            name = line[:brace]
            key = _parse_labels(line[brace + 1:close], line)
            value_text = line[close + 1:].strip()
        else:
            try:
                name, value_text = line.split(None, 1)
            except ValueError:
                raise ValidationError(
                    f"malformed sample line: {line!r}") from None
            key = ()
        try:
            value = float(value_text.split()[0])
        except (ValueError, IndexError):
            raise ValidationError(
                f"non-numeric sample value in line: {line!r}") from None
        parsed.samples.setdefault(name, {})[key] = value
    return parsed


def _format_key(key: SeriesKey) -> str:
    if not key:
        return ""
    return "{" + ",".join(f'{name}="{value}"' for name, value in key) + "}"


def metrics_delta(before: ParsedMetrics, after: ParsedMetrics) -> dict:
    """What one run contributed, as a JSON-able tree.

    Counter and histogram samples subtract (``after - before``; a series
    absent before counts from zero); gauge samples take the after-value
    — a queue depth is a state, not an accumulation.  Series that did
    not move are dropped, so the delta reads as "what this run did".
    """
    delta: dict[str, dict] = {}
    for name, series in sorted(after.samples.items()):
        family = after.family_of(name)
        kind = after.types.get(family, "counter")
        moved: dict[str, float] = {}
        for key, after_value in sorted(series.items()):
            if kind == "gauge":
                value = after_value
            else:
                value = after_value - before.samples.get(name, {}).get(
                    key, 0.0)
            if value != 0.0:
                moved[_format_key(key)] = value
        if moved:
            delta[name] = {"type": kind, "series": moved}
    return delta


def scrape_url(url: str, timeout_s: float = 10.0) -> str:
    """Fetch a ``/metrics`` endpoint's text over HTTP (stdlib urllib)."""
    from urllib.request import urlopen

    with urlopen(url, timeout=timeout_s) as response:
        return response.read().decode("utf-8")
