"""Evaluation metrics (paper §7.3).

The paper's *rank score* judges how well GKS orders its response: the
"true XML nodes" are the response nodes carrying the maximum number of
query keywords; with ``w`` the worst (largest) rank position of a true
node, each true node at position ``i`` earns weight ``w + 1 − i`` and

    rank score = Σ weights / (w·(w+1)/2).

A score of 1 means no true node ranks below any non-true node (they fill
the top of the list); QM3's reported 0.17 corresponds to a single true
node at position 3 — this implementation returns exactly these values.

Standard precision/recall over a planted ground truth are also provided
for the DI-quality and hybrid experiments.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.errors import ValidationError
from repro.core.results import GKSResponse
from repro.xmltree.dewey import Dewey


def rank_score_from_positions(positions: Sequence[int]) -> float:
    """Rank score given the 1-based positions of the true nodes."""
    if not positions:
        return 0.0
    if min(positions) < 1:
        raise ValidationError(f"positions are 1-based: {sorted(positions)}")
    worst = max(positions)
    achieved = sum(worst + 1 - position for position in positions)
    ideal = worst * (worst + 1) / 2
    return achieved / ideal


def rank_score(ranked: Sequence[Dewey], true_nodes: Iterable[Dewey]) -> float:
    """Rank score of a ranked Dewey list w.r.t. a true-node set."""
    wanted = set(true_nodes)
    positions = [position + 1 for position, dewey in enumerate(ranked)
                 if dewey in wanted]
    return rank_score_from_positions(positions)


def response_rank_score(response: GKSResponse) -> float:
    """The §7.3 protocol: true nodes = responses with max keyword count."""
    true_nodes = [node.dewey for node in response.nodes_with_max_keywords()]
    return rank_score(response.deweys, true_nodes)


def precision_at(ranked: Sequence[Dewey], relevant: Iterable[Dewey],
                 cutoff: int) -> float:
    """Fraction of the top-*cutoff* results that are relevant."""
    if cutoff <= 0:
        raise ValidationError(f"cutoff must be positive: {cutoff}")
    wanted = set(relevant)
    head = list(ranked)[:cutoff]
    if not head:
        return 0.0
    return sum(1 for dewey in head if dewey in wanted) / len(head)


def recall(ranked: Sequence[Dewey], relevant: Iterable[Dewey]) -> float:
    """Fraction of the relevant set present anywhere in the ranking."""
    wanted = set(relevant)
    if not wanted:
        return 1.0
    found = sum(1 for dewey in set(ranked) if dewey in wanted)
    return found / len(wanted)


def reciprocal_rank(ranked: Sequence[Dewey],
                    relevant: Iterable[Dewey]) -> float:
    """1/position of the first relevant result (0 when none appears)."""
    wanted = set(relevant)
    for position, dewey in enumerate(ranked, start=1):
        if dewey in wanted:
            return 1.0 / position
    return 0.0
