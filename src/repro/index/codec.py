"""Bytes-level index codec: varint postings + DAG-subtree sharing (v4).

The JSON envelope formats (storage v1-v3) pay twice for scale: dotted
Dewey strings inflate the on-disk size linearly with repeated XML
structure, and loading re-parses every posting before the first query
can run.  This module is the binary alternative — storage format
version 4, codec name ``varint-dag`` — behind the :class:`Codec`
protocol that :func:`repro.index.storage.save_index` /
:func:`~repro.index.storage.load_index` dispatch on.

Three ideas, layered:

* **Postings codec.**  Uncovered ("literal") posting runs are cut into
  blocks of at most ``BLOCK_POSTINGS`` entries.  Inside a block, Dewey
  ids are front-coded (shared-prefix length + suffix components, each
  a varint); each block carries its own CRC32 plus skip metadata
  (count + first Dewey) in the directory, so a binary search touches
  O(log n) blocks and corruption is detected at first decode.
* **DAG-subtree sharing.**  Repeated XML subtrees with identical
  indexed content (same keywords at the same relative paths, same
  entity/element hash rows — think syndicated records, mirrored
  documents, boilerplate) are collapsed, after Böttcher et al.
  (*Efficient XML Keyword Search based on DAG-Compression*): the
  subtree's per-keyword suffix lists and hash rows are stored **once**
  per distinct subtree, and every occurrence costs one front-coded
  prefix in an occurrence table — *not* one reference per keyword.
  Posting lists of covered keywords are never materialised on disk;
  they are reconstructed at query time as an ordered sequence of
  disjoint segments (literal blocks + occurrence × suffix-list
  expansions), which is exactly "merge/lcp/lce on the compressed
  representation": the expansion is lazy, per segment, and provably
  node-for-node identical to the uncompressed engine.
* **Frames + lazy loading.**  All chunks (blocks, suffix tables, hash
  tables) are concatenated into ~64 KiB frames, each deflated as one
  zlib stream — small chunks share compression context instead of
  paying per-chunk headers.  :func:`load_binary_index` reads only the
  gzip JSON header and the per-shard binary directory; frames inflate
  on first touch (mmap-backed), so cold open never decodes a posting.

File layout::

    MAGIC(8) | header_len(uint32 BE) | gzip JSON header
            | shard0 directory (zlib) | shard0 frames...
            | shard1 directory (zlib) | shard1 frames... | ...

    header = {"version": 4, "codec": "varint-dag", "crc32": crc(body),
              "body": {layout, strategy?, analyzer, document_names,
                       shards: [{shard_id, doc_ids?, document_names,
                                 stats, directory: [comp, raw, crc32],
                                 frames: [[comp, raw, crc32], ...]}]}}

The directory is a front-coded binary table: per keyword its literal
block metadata (frame/offset/length/count/CRC/first) and the ids of
the DAG nodes whose subtrees contain it; per DAG node its occurrence
prefixes and the locations of its suffix/hash tables.  Every region is
CRC-checked: the header over its canonical body, the directory and
each frame over their stored bytes, and each literal block over its
raw payload.
"""

from __future__ import annotations

import gzip
import json
import mmap
import os
import struct
import zlib
from bisect import bisect_left, bisect_right
from pathlib import Path
from typing import Iterator, Protocol, Sequence, runtime_checkable

from repro.errors import ConfigError, StorageError
from repro.index.builder import GKSIndex
from repro.index.hashtables import NodeHashes
from repro.index.inverted import InvertedIndex
from repro.index.sharding import Shard, ShardedIndex
from repro.index.statistics import IndexStats
from repro.text.analyzer import Analyzer
from repro.xmltree.dewey import Dewey, format_dewey, subtree_interval

#: File magic of the binary (v4) index format.
MAGIC = b"GKSIDX04"
FORMAT_VERSION_BINARY = 4

#: Literal postings per block — the skip + integrity granularity.
BLOCK_POSTINGS = 128

#: Uncompressed frame target — the lazy-decode granularity.
FRAME_RAW_TARGET = 64 * 1024

#: A subtree is DAG-shared once its content repeats this often and
#: carries at least this many index entries (below that, the occurrence
#: and table bookkeeping costs more than the literals it replaces).
SHARED_MIN_OCCURRENCES = 2
SHARED_MIN_ENTRIES = 4


# ----------------------------------------------------------------------
# Varint / front-coding primitives
# ----------------------------------------------------------------------

def write_uvarint(out: bytearray, value: int) -> None:
    """LEB128 unsigned varint."""
    if value < 0:
        raise StorageError(f"cannot varint-encode negative value {value}",
                           diagnosis="corrupted")
    while value >= 0x80:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)


def read_uvarint(data: bytes, pos: int) -> tuple[int, int]:
    value = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise StorageError("truncated varint in codec data",
                               diagnosis="truncated")
        byte = data[pos]
        pos += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, pos
        shift += 7


def write_svarint(out: bytearray, value: int) -> None:
    """Zigzag-coded signed varint (child counts survive round trips)."""
    write_uvarint(out, value << 1 if value >= 0 else ((-value) << 1) - 1)


def read_svarint(data: bytes, pos: int) -> tuple[int, int]:
    raw, pos = read_uvarint(data, pos)
    return (raw >> 1) if not raw & 1 else -((raw + 1) >> 1), pos


def _write_dewey(out: bytearray, dewey: Dewey, previous: Dewey) -> None:
    """Front-code *dewey* against the previously written id."""
    lcp = 0
    limit = min(len(dewey), len(previous))
    while lcp < limit and dewey[lcp] == previous[lcp]:
        lcp += 1
    write_uvarint(out, lcp)
    write_uvarint(out, len(dewey) - lcp)
    for component in dewey[lcp:]:
        write_uvarint(out, component)


def _read_dewey(data: bytes, pos: int,
                previous: Dewey) -> tuple[Dewey, int]:
    lcp, pos = read_uvarint(data, pos)
    suffix_len, pos = read_uvarint(data, pos)
    if lcp > len(previous):
        raise StorageError(
            f"codec data front-codes against a {lcp}-component prefix "
            f"but only {len(previous)} are available",
            diagnosis="corrupted")
    components = list(previous[:lcp])
    for _ in range(suffix_len):
        component, pos = read_uvarint(data, pos)
        components.append(component)
    return tuple(components), pos


def _write_bytes_fc(out: bytearray, data: bytes, previous: bytes) -> None:
    """Front-code a byte string (keyword) against the previous one."""
    lcp = 0
    limit = min(len(data), len(previous))
    while lcp < limit and data[lcp] == previous[lcp]:
        lcp += 1
    write_uvarint(out, lcp)
    write_uvarint(out, len(data) - lcp)
    out.extend(data[lcp:])


def _read_bytes_fc(data: bytes, pos: int,
                   previous: bytes) -> tuple[bytes, int]:
    lcp, pos = read_uvarint(data, pos)
    suffix_len, pos = read_uvarint(data, pos)
    if lcp > len(previous) or pos + suffix_len > len(data):
        raise StorageError("corrupt front-coded string in directory",
                           diagnosis="corrupted")
    return previous[:lcp] + data[pos:pos + suffix_len], pos + suffix_len


def _crc(stored: bytes) -> int:
    return zlib.crc32(stored) & 0xFFFFFFFF

# ----------------------------------------------------------------------
# DAG model: which subtrees repeat with identical indexed content?
# ----------------------------------------------------------------------

class _DagModel:
    """Bottom-up signature interning over the indexed node set.

    The node set is every posting Dewey plus every hash-table key,
    prefix-closed.  Two nodes receive the same DAG id exactly when
    their subtrees carry identical indexed content: the same keyword
    ids posted locally, the same entity/element hash row for the node
    itself, and children with equal DAG ids at equal steps.  By
    structural induction, equal ids imply identical per-keyword
    relative suffix sets *and* identical relative hash rows — which is
    what makes sharing lossless: expanding the stored tables under any
    occurrence's prefix reproduces the literal data exactly.

    The node's *own* hash row is part of its signature deliberately:
    categorization can depend on context (a tag repeating under one
    parent but not another), so two structurally equal subtrees whose
    roots categorize differently must not share — they get different
    signatures and simply stay literal.
    """

    def __init__(self, postings: dict, entity: dict, element: dict) -> None:
        vocabulary = sorted(postings)
        keyword_ids = {kw: i for i, kw in enumerate(vocabulary)}
        local: dict[Dewey, list[int]] = {}
        nodes: set[Dewey] = set()
        for keyword, posting_list in postings.items():
            kid = keyword_ids[keyword]
            for dewey in posting_list:
                local.setdefault(dewey, []).append(kid)
                nodes.add(dewey)
        nodes.update(entity)
        nodes.update(element)
        # prefix-close: every ancestor is a DAG node too
        for dewey in list(nodes):
            for depth in range(1, len(dewey)):
                nodes.add(dewey[:depth])
        children: dict[Dewey, list[Dewey]] = {}
        for dewey in nodes:
            if len(dewey) > 1:
                children.setdefault(dewey[:-1], []).append(dewey)

        interned: dict[tuple, int] = {}
        seen: dict[int, int] = {}
        weight: dict[int, int] = {}
        self.dag_of: dict[Dewey, int] = {}
        for dewey in sorted(nodes, key=len, reverse=True):
            child_sig = tuple(
                (child[-1], self.dag_of[child])
                for child in sorted(children.get(dewey, ())))
            own = (entity.get(dewey, -1), element.get(dewey, -1))
            signature = (own, tuple(sorted(local.get(dewey, ()))), child_sig)
            dag_id = interned.get(signature)
            if dag_id is None:
                dag_id = len(interned)
                interned[signature] = dag_id
                weight[dag_id] = (
                    len(signature[1])
                    + (own[0] >= 0) + (own[1] >= 0)
                    + sum(weight[cid] for _, cid in child_sig))
            seen[dag_id] = seen.get(dag_id, 0) + 1
            self.dag_of[dewey] = dag_id
        shared = {dag_id for dag_id, count in seen.items()
                  if count >= SHARED_MIN_OCCURRENCES
                  and weight[dag_id] >= SHARED_MIN_ENTRIES}

        # topmost occurrences only: an occurrence nested inside another
        # shared subtree is reached through *that* subtree's expansion
        occurrences: dict[int, list[Dewey]] = {}
        for dewey, dag_id in self.dag_of.items():
            if dag_id not in shared:
                continue
            if any(self.dag_of.get(dewey[:depth]) in shared
                   for depth in range(1, len(dewey))):
                continue
            occurrences.setdefault(dag_id, []).append(dewey)
        # a shared node that is never topmost contributes nothing
        self.occurrences = {dag_id: sorted(prefixes)
                            for dag_id, prefixes in occurrences.items()}
        self.shared = set(self.occurrences)

    def topmost_shared(self, dewey: Dewey) -> tuple[Dewey, int] | None:
        """The shallowest shared ancestor-or-self of *dewey*, if any."""
        for depth in range(1, len(dewey) + 1):
            prefix = dewey[:depth]
            dag_id = self.dag_of.get(prefix)
            if dag_id is not None and dag_id in self.shared:
                return prefix, dag_id
        return None


# ----------------------------------------------------------------------
# Frames: shared compression context, lazy inflation
# ----------------------------------------------------------------------

class _FrameWriter:
    """Accumulates chunks into ~FRAME_RAW_TARGET frames.

    A chunk never spans frames, so inflating one frame yields every
    chunk inside it; ``add`` returns the chunk's (frame, offset,
    length) address.
    """

    def __init__(self) -> None:
        self._frames: list[bytearray] = [bytearray()]

    def add(self, payload: bytes) -> tuple[int, int, int]:
        current = self._frames[-1]
        if current and len(current) + len(payload) > FRAME_RAW_TARGET:
            current = bytearray()
            self._frames.append(current)
        offset = len(current)
        current.extend(payload)
        return len(self._frames) - 1, offset, len(payload)

    def finish(self) -> tuple[list[bytes], list[list[int]]]:
        """Deflate all frames: (stored blobs, [[comp, raw, crc], ...])."""
        blobs: list[bytes] = []
        table: list[list[int]] = []
        for frame in self._frames:
            raw = bytes(frame)
            stored = zlib.compress(raw, 9)
            if len(stored) >= len(raw):
                stored = raw  # incompressible frame: store verbatim
            blobs.append(stored)
            table.append([len(stored), len(raw), _crc(stored)])
        return blobs, table


class _FrameReader:
    """Inflates frames of one shard on first touch, with CRC checks."""

    def __init__(self, buffer, offsets: list[int], table: list,
                 path: Path) -> None:
        self._buffer = buffer
        self._offsets = offsets  # absolute file offset per frame
        self._table = table
        self._path = path
        self._cache: dict[int, bytes] = {}

    def frame(self, number: int) -> bytes:
        raw = self._cache.get(number)
        if raw is not None:
            return raw
        if not 0 <= number < len(self._table):
            raise StorageError(
                f"codec chunk references frame {number} but only "
                f"{len(self._table)} exist in {self._path}",
                diagnosis="corrupted", path=self._path)
        comp_size, raw_size, crc = self._table[number]
        start = self._offsets[number]
        stored = bytes(self._buffer[start:start + comp_size])
        if len(stored) != comp_size:
            raise StorageError(
                f"frame {number} in {self._path} is truncated",
                diagnosis="truncated", path=self._path)
        if _crc(stored) != crc:
            raise StorageError(
                f"frame {number} in {self._path} fails its CRC32 — the "
                f"file is corrupted", diagnosis="corrupted",
                path=self._path)
        if comp_size == raw_size:
            raw = stored  # stored verbatim
        else:
            try:
                raw = zlib.decompress(stored)
            except zlib.error as exc:
                raise StorageError(
                    f"frame {number} in {self._path} does not inflate: "
                    f"{exc}", diagnosis="corrupted",
                    path=self._path) from exc
        if len(raw) != raw_size:
            raise StorageError(
                f"frame {number} in {self._path} inflates to "
                f"{len(raw)} bytes, header promises {raw_size}",
                diagnosis="corrupted", path=self._path)
        self._cache[number] = raw
        return raw

    def chunk(self, frame: int, offset: int, length: int,
              what: str) -> bytes:
        raw = self.frame(frame)
        if offset + length > len(raw):
            raise StorageError(
                f"codec chunk for {what} overruns frame {frame} in "
                f"{self._path}", diagnosis="corrupted", path=self._path)
        return raw[offset:offset + length]


# ----------------------------------------------------------------------
# Encoding
# ----------------------------------------------------------------------

def _plan_keyword(postings: Sequence[Dewey], keyword_index: int,
                  dag: _DagModel | None, suffix_tables: dict,
                  frames: _FrameWriter) -> tuple[list, list[int]]:
    """One keyword's directory entry: literal blocks + covering dag ids.

    Postings are consumed left to right; whenever the next posting's
    topmost shared ancestor exists, *all* postings inside that subtree
    form a contiguous span starting right here (anything earlier in
    the subtree would have been consumed by the same occurrence), so
    the whole span is dropped from the literal stream — it will be
    reconstructed from the occurrence table.  Literal blocks never
    span a covered gap, which is what keeps the runtime segment order
    a plain sort by first key.
    """
    blocks: list = []
    dag_ids: set[int] = set()
    run: list[Dewey] = []

    def flush_run() -> None:
        for start in range(0, len(run), BLOCK_POSTINGS):
            chunk_postings = run[start:start + BLOCK_POSTINGS]
            out = bytearray()
            previous: Dewey = ()
            for dewey in chunk_postings:
                _write_dewey(out, dewey, previous)
                previous = dewey
            payload = bytes(out)
            frame, offset, length = frames.add(payload)
            blocks.append((frame, offset, length, len(chunk_postings),
                           _crc(payload), chunk_postings[0]))
        run.clear()

    i, total = 0, len(postings)
    while i < total:
        hit = dag.topmost_shared(postings[i]) if dag is not None else None
        if hit is None:
            run.append(postings[i])
            i += 1
            continue
        flush_run()
        prefix, dag_id = hit
        _, upper = subtree_interval(prefix)
        j = bisect_left(postings, upper, lo=i)
        suffixes = [tuple(postings[k][len(prefix):]) for k in range(i, j)]
        key = (dag_id, keyword_index)
        known = suffix_tables.get(key)
        if known is None:
            suffix_tables[key] = suffixes
        elif known != suffixes:
            raise StorageError(
                f"DAG node {dag_id} expands to differing suffix sets "
                f"for keyword index {keyword_index} — the DAG model is "
                f"inconsistent", diagnosis="corrupted")
        dag_ids.add(dag_id)
        i = j
    flush_run()
    return blocks, sorted(dag_ids)


def _plan_hash_table(table: dict[Dewey, int], dag: _DagModel | None,
                     which: int, hash_tables: dict) -> dict[Dewey, int]:
    """Split a hash table into literal rows + shared per-dag row sets."""
    items = sorted(table.items())
    keys = [dewey for dewey, _ in items]
    literal: dict[Dewey, int] = {}
    i, total = 0, len(items)
    while i < total:
        dewey, count = items[i]
        hit = dag.topmost_shared(dewey) if dag is not None else None
        if hit is None:
            literal[dewey] = count
            i += 1
            continue
        prefix, dag_id = hit
        _, upper = subtree_interval(prefix)
        j = bisect_left(keys, upper, lo=i)
        rows = [(keys[k][len(prefix):], items[k][1]) for k in range(i, j)]
        key = (dag_id, which)
        known = hash_tables.get(key)
        if known is None:
            hash_tables[key] = rows
        elif known != rows:
            raise StorageError(
                f"DAG node {dag_id} expands to differing hash rows — "
                f"the DAG model is inconsistent", diagnosis="corrupted")
        i = j
    return literal


def _suffix_chunk(suffixes: list[Dewey]) -> bytes:
    out = bytearray()
    previous: Dewey = ()
    for suffix in suffixes:
        _write_dewey(out, suffix, previous)
        previous = suffix
    return bytes(out)


def _hash_chunk(rows: list[tuple[Dewey, int]]) -> bytes:
    out = bytearray()
    previous: Dewey = ()
    for suffix, count in rows:
        _write_dewey(out, suffix, previous)
        write_svarint(out, count)
        previous = suffix
    return bytes(out)


def _write_loc(out: bytearray, loc: tuple[int, int, int]) -> None:
    write_uvarint(out, loc[0])
    write_uvarint(out, loc[1])
    write_uvarint(out, loc[2])


def _encode_shard_data(postings: dict[str, list[Dewey]],
                       entity: dict[Dewey, int],
                       element: dict[Dewey, int], *,
                       use_dag: bool = True) -> tuple[bytes, list, int]:
    """Encode one shard: (directory bytes, frame blobs+table, n_frames).

    Returns the *uncompressed* directory payload, the finished frame
    regions (list of stored blobs) and the frame table.
    """
    dag = (_DagModel(postings, entity, element) if use_dag else None)
    vocabulary = sorted(postings)
    keyword_ids = {kw: i for i, kw in enumerate(vocabulary)}
    frames = _FrameWriter()

    suffix_tables: dict[tuple[int, int], list[Dewey]] = {}
    keyword_plans = []
    for keyword in vocabulary:
        blocks, dag_ids = _plan_keyword(postings[keyword],
                                        keyword_ids[keyword], dag,
                                        suffix_tables, frames)
        keyword_plans.append((keyword, blocks, dag_ids))

    hash_tables: dict[tuple[int, int], list] = {}
    literal_entity = _plan_hash_table(entity, dag, 0, hash_tables)
    literal_element = _plan_hash_table(element, dag, 1, hash_tables)

    # dense file ids for the dag nodes actually used
    used = sorted(dag.occurrences) if dag is not None else []
    remap = {original: dense for dense, original in enumerate(used)}

    # suffix + hash chunks per dag node
    dag_suffix_locs: dict[tuple[int, int], tuple] = {}
    for (dag_id, keyword_index), suffixes in sorted(suffix_tables.items()):
        payload = _suffix_chunk(suffixes)
        loc = frames.add(payload)
        dag_suffix_locs[(remap[dag_id], keyword_index)] = (
            loc, len(suffixes), _crc(payload))
    dag_hash_locs: dict[tuple[int, int], tuple] = {}
    for (dag_id, which), rows in sorted(hash_tables.items()):
        payload = _hash_chunk(rows)
        loc = frames.add(payload)
        dag_hash_locs[(remap[dag_id], which)] = (
            loc, len(rows), _crc(payload))

    entity_payload = _hash_chunk(sorted(literal_entity.items()))
    entity_loc = frames.add(entity_payload)
    element_payload = _hash_chunk(sorted(literal_element.items()))
    element_loc = frames.add(element_payload)

    # ---- directory ---------------------------------------------------
    out = bytearray()
    write_uvarint(out, len(keyword_plans))
    previous_kw = b""
    for keyword, blocks, dag_ids in keyword_plans:
        data = keyword.encode("utf-8")
        _write_bytes_fc(out, data, previous_kw)
        previous_kw = data
        write_uvarint(out, len(blocks))
        previous_first: Dewey = ()
        for frame, offset, length, count, crc, first in blocks:
            write_uvarint(out, frame)
            write_uvarint(out, offset)
            write_uvarint(out, length)
            write_uvarint(out, count)
            write_uvarint(out, crc)
            _write_dewey(out, first, previous_first)
            previous_first = first
        write_uvarint(out, len(dag_ids))
        previous_id = 0
        for dag_id in dag_ids:
            dense = remap[dag_id]
            write_uvarint(out, dense - previous_id)
            previous_id = dense
    write_uvarint(out, len(used))
    for dense, original in enumerate(used):
        prefixes = dag.occurrences[original]
        write_uvarint(out, len(prefixes))
        previous_prefix: Dewey = ()
        for prefix in prefixes:
            _write_dewey(out, prefix, previous_prefix)
            previous_prefix = prefix
        tables = [(keyword_index, entry)
                  for (node, keyword_index), entry
                  in dag_suffix_locs.items() if node == dense]
        write_uvarint(out, len(tables))
        previous_kw_index = 0
        for keyword_index, (loc, count, crc) in sorted(tables):
            write_uvarint(out, keyword_index - previous_kw_index)
            previous_kw_index = keyword_index
            _write_loc(out, loc)
            write_uvarint(out, count)
            write_uvarint(out, crc)
        for which in (0, 1):
            entry = dag_hash_locs.get((dense, which))
            if entry is None:
                write_uvarint(out, 0)
                continue
            loc, count, crc = entry
            write_uvarint(out, count)
            _write_loc(out, loc)
            write_uvarint(out, crc)
    for loc, payload, table in ((entity_loc, entity_payload,
                                 literal_entity),
                                (element_loc, element_payload,
                                 literal_element)):
        write_uvarint(out, len(table))
        _write_loc(out, loc)
        write_uvarint(out, _crc(payload))

    blobs, frame_table = frames.finish()
    return bytes(out), [blobs, frame_table], len(blobs)


def _analyzer_flags(analyzer: Analyzer) -> dict:
    return {"use_stopwords": analyzer.use_stopwords,
            "use_stemming": analyzer.use_stemming}


def _canonical_crc(body: dict) -> int:
    canonical = json.dumps(body, separators=(",", ":"), sort_keys=True)
    return zlib.crc32(canonical.encode("utf-8")) & 0xFFFFFFFF


def _shard_regions(postings: dict, entity: dict, element: dict,
                   stats: dict, document_names: list[str], *,
                   use_dag: bool) -> tuple[dict, list[bytes]]:
    """One shard's header section + its on-disk regions (dir + frames)."""
    directory, (blobs, frame_table), _ = _encode_shard_data(
        postings, entity, element, use_dag=use_dag)
    directory_z = zlib.compress(directory, 9)
    section = {
        "document_names": document_names,
        "stats": stats,
        "directory": [len(directory_z), len(directory),
                      _crc(directory_z)],
        "frames": frame_table,
    }
    return section, [directory_z, *blobs]


def _index_shard_data(index: GKSIndex) -> tuple[dict, dict, dict]:
    postings = {keyword: list(posting_list)
                for keyword, posting_list in index.inverted.items()}
    return postings, index.hashes.entity_table, index.hashes.element_table


def _attach_probabilities(section: dict, index: GKSIndex) -> None:
    """Carry the shard's probability tables in its header section.

    Conditional key: strict indexes write byte-identical files to the
    pre-probabilistic format, and the header CRC covers the tables with
    no extra machinery.  The tables are tiny (one entry per ``p:``
    annotation) next to the posting regions, so the JSON header is the
    right place for them.
    """
    tables = index.probabilities
    if tables is not None and tables:
        section["probabilities"] = tables.to_dict()


def write_binary_index(index: GKSIndex | ShardedIndex,
                       path: str | Path, *,
                       use_dag: bool = True) -> Path:
    """Persist *index* in the v4 binary format, atomically."""
    sections: list[dict] = []
    regions: list[bytes] = []
    if isinstance(index, ShardedIndex):
        body: dict = {
            "layout": "sharded",
            "strategy": index.strategy,
            "analyzer": _analyzer_flags(index.analyzer),
            "document_names": list(index.document_names),
        }
        for shard in index.shards:
            postings, entity, element = _index_shard_data(shard.index)
            section, shard_regions = _shard_regions(
                postings, entity, element, shard.index.stats.to_dict(),
                list(shard.index.document_names), use_dag=use_dag)
            section["shard_id"] = shard.shard_id
            section["doc_ids"] = list(shard.doc_ids)
            _attach_probabilities(section, shard.index)
            sections.append(section)
            regions.extend(shard_regions)
    else:
        body = {
            "layout": "monolithic",
            "analyzer": _analyzer_flags(index.analyzer),
            "document_names": list(index.document_names),
        }
        postings, entity, element = _index_shard_data(index)
        section, shard_regions = _shard_regions(
            postings, entity, element, index.stats.to_dict(),
            list(index.document_names), use_dag=use_dag)
        section["shard_id"] = 0
        _attach_probabilities(section, index)
        sections.append(section)
        regions.extend(shard_regions)
    body["shards"] = sections
    return _write_file(body, regions, path)


def _write_file(body: dict, regions: list[bytes],
                path: str | Path) -> Path:
    path = Path(path)
    header = {"version": FORMAT_VERSION_BINARY, "codec": "varint-dag",
              "crc32": _canonical_crc(body), "body": body}
    header_gz = gzip.compress(
        json.dumps(header, separators=(",", ":")).encode("utf-8"),
        mtime=0)
    temp_path = path.with_name(path.name + ".tmp")
    try:
        with open(temp_path, "wb") as handle:
            handle.write(MAGIC)
            handle.write(struct.pack(">I", len(header_gz)))
            handle.write(header_gz)
            for region in regions:
                handle.write(region)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_path, path)
    except OSError as exc:
        try:
            temp_path.unlink()
        except OSError:
            pass
        raise StorageError(f"cannot write {path}: {exc}",
                           diagnosis="unwritable", path=path) from exc
    return path


# ----------------------------------------------------------------------
# Reading: header, directory, lazy structures
# ----------------------------------------------------------------------

def is_binary_index(path: str | Path) -> bool:
    """True when *path* starts with the v4 magic (cheap sniff)."""
    try:
        with open(path, "rb") as handle:
            return handle.read(len(MAGIC)) == MAGIC
    except OSError:
        return False


def read_binary_header(path: str | Path) -> dict:
    """Verify magic/version/CRC and return the parsed header dict.

    The returned mapping carries one extra key, ``blob_offset`` — the
    absolute file offset where the first shard's regions begin.
    """
    path = Path(path)
    try:
        with open(path, "rb") as handle:
            magic = handle.read(len(MAGIC))
            if magic != MAGIC:
                raise StorageError(
                    f"{path} is not a binary GKS index (bad magic)",
                    diagnosis="version-mismatch", path=path)
            raw_len = handle.read(4)
            if len(raw_len) != 4:
                raise StorageError(
                    f"cannot read index from {path}: file is truncated",
                    diagnosis="truncated", path=path)
            header_len = struct.unpack(">I", raw_len)[0]
            header_gz = handle.read(header_len)
    except OSError as exc:
        raise StorageError(f"cannot read index from {path}: {exc}",
                           diagnosis="unreadable", path=path) from exc
    if len(header_gz) != header_len:
        raise StorageError(
            f"cannot read index from {path}: header is truncated",
            diagnosis="truncated", path=path)
    try:
        header = json.loads(gzip.decompress(header_gz).decode("utf-8"))
    except (OSError, EOFError, zlib.error, json.JSONDecodeError,
            UnicodeDecodeError) as exc:
        raise StorageError(
            f"cannot read index from {path}: header is corrupted "
            f"({exc})", diagnosis="corrupted", path=path) from exc
    if not isinstance(header, dict) or \
            header.get("version") != FORMAT_VERSION_BINARY:
        version = header.get("version") if isinstance(header, dict) \
            else None
        raise StorageError(
            f"unsupported binary index version {version!r} in {path}",
            diagnosis="version-mismatch", path=path)
    body = header.get("body")
    if not isinstance(body, dict) or not body.get("shards"):
        raise StorageError(
            f"cannot read index from {path}: header has no shard "
            f"sections", diagnosis="corrupted", path=path)
    if header.get("crc32") != _canonical_crc(body):
        raise StorageError(
            f"header checksum mismatch in {path} — the file is "
            f"corrupted", diagnosis="corrupted", path=path)
    header["blob_offset"] = len(MAGIC) + 4 + header_len
    return header


def _map_blob(path: Path):
    """mmap the file read-only; fall back to an in-memory bytes copy."""
    try:
        with open(path, "rb") as handle:
            try:
                return mmap.mmap(handle.fileno(), 0,
                                 access=mmap.ACCESS_READ)
            except (OSError, ValueError):
                handle.seek(0)
                return handle.read()
    except OSError as exc:
        raise StorageError(f"cannot read index from {path}: {exc}",
                           diagnosis="unreadable", path=path) from exc


class _Directory:
    """The parsed binary directory of one shard."""

    __slots__ = ("keywords", "keyword_ids", "blocks", "keyword_dags",
                 "occurrences", "suffix_locs", "hash_locs",
                 "entity_literal", "element_literal")

    def __init__(self, payload: bytes, path: Path) -> None:
        try:
            self._parse(payload)
        except StorageError:
            raise
        except (IndexError, ValueError, OverflowError) as exc:
            raise StorageError(
                f"cannot parse codec directory in {path}: {exc}",
                diagnosis="corrupted", path=path) from exc

    def _parse(self, payload: bytes) -> None:
        pos = 0
        n_keywords, pos = read_uvarint(payload, pos)
        self.keywords: list[str] = []
        self.blocks: dict[str, list] = {}
        self.keyword_dags: dict[str, list[int]] = {}
        previous_kw = b""
        for _ in range(n_keywords):
            raw, pos = _read_bytes_fc(payload, pos, previous_kw)
            previous_kw = raw
            keyword = raw.decode("utf-8")
            self.keywords.append(keyword)
            n_blocks, pos = read_uvarint(payload, pos)
            blocks = []
            previous_first: Dewey = ()
            for _ in range(n_blocks):
                frame, pos = read_uvarint(payload, pos)
                offset, pos = read_uvarint(payload, pos)
                length, pos = read_uvarint(payload, pos)
                count, pos = read_uvarint(payload, pos)
                crc, pos = read_uvarint(payload, pos)
                first, pos = _read_dewey(payload, pos, previous_first)
                previous_first = first
                blocks.append((frame, offset, length, count, crc, first))
            self.blocks[keyword] = blocks
            n_dags, pos = read_uvarint(payload, pos)
            dag_ids = []
            current = 0
            for position in range(n_dags):
                delta, pos = read_uvarint(payload, pos)
                current += delta
                dag_ids.append(current)
            self.keyword_dags[keyword] = dag_ids
        self.keyword_ids = {keyword: i
                            for i, keyword in enumerate(self.keywords)}
        n_dag_nodes, pos = read_uvarint(payload, pos)
        self.occurrences: list[list[Dewey]] = []
        self.suffix_locs: dict[tuple[int, int], tuple] = {}
        self.hash_locs: dict[tuple[int, int], tuple] = {}
        for dag_id in range(n_dag_nodes):
            n_occ, pos = read_uvarint(payload, pos)
            prefixes = []
            previous_prefix: Dewey = ()
            for _ in range(n_occ):
                prefix, pos = _read_dewey(payload, pos, previous_prefix)
                previous_prefix = prefix
                prefixes.append(prefix)
            self.occurrences.append(prefixes)
            n_tables, pos = read_uvarint(payload, pos)
            keyword_index = 0
            for position in range(n_tables):
                delta, pos = read_uvarint(payload, pos)
                keyword_index += delta
                frame, pos = read_uvarint(payload, pos)
                offset, pos = read_uvarint(payload, pos)
                length, pos = read_uvarint(payload, pos)
                count, pos = read_uvarint(payload, pos)
                crc, pos = read_uvarint(payload, pos)
                self.suffix_locs[(dag_id, keyword_index)] = (
                    (frame, offset, length), count, crc)
            for which in (0, 1):
                count, pos = read_uvarint(payload, pos)
                if not count:
                    continue
                frame, pos = read_uvarint(payload, pos)
                offset, pos = read_uvarint(payload, pos)
                length, pos = read_uvarint(payload, pos)
                crc, pos = read_uvarint(payload, pos)
                self.hash_locs[(dag_id, which)] = (
                    (frame, offset, length), count, crc)
        literals = []
        for _ in range(2):
            count, pos = read_uvarint(payload, pos)
            frame, pos = read_uvarint(payload, pos)
            offset, pos = read_uvarint(payload, pos)
            length, pos = read_uvarint(payload, pos)
            crc, pos = read_uvarint(payload, pos)
            literals.append(((frame, offset, length), count, crc))
        self.entity_literal, self.element_literal = literals
        if pos != len(payload):
            raise StorageError(
                "codec directory has trailing bytes",
                diagnosis="corrupted")


class _ShardReader:
    """Lazy access to one shard's frames, tables and caches."""

    def __init__(self, frames: _FrameReader, directory: _Directory,
                 path: Path) -> None:
        self.frames = frames
        self.directory = directory
        self.path = path
        self._suffix_cache: dict[tuple[int, int], list[Dewey]] = {}
        self._hash_cache: dict[tuple[int, int], list] = {}

    def _table_chunk(self, entry: tuple, what: str) -> bytes:
        (frame, offset, length), _count, crc = entry
        payload = self.frames.chunk(frame, offset, length, what)
        if _crc(payload) != crc:
            raise StorageError(
                f"codec chunk for {what} in {self.path} fails its "
                f"CRC32 — the data is corrupted",
                diagnosis="corrupted", path=self.path)
        return payload

    def block_postings(self, block: tuple, what: str) -> list[Dewey]:
        frame, offset, length, count, crc, _first = block
        payload = self.frames.chunk(frame, offset, length, what)
        if _crc(payload) != crc:
            raise StorageError(
                f"posting block for {what} in {self.path} fails its "
                f"CRC32 — the block is corrupted",
                diagnosis="corrupted", path=self.path)
        postings: list[Dewey] = []
        pos = 0
        previous: Dewey = ()
        for _ in range(count):
            dewey, pos = _read_dewey(payload, pos, previous)
            postings.append(dewey)
            previous = dewey
        if pos != len(payload):
            raise StorageError(
                f"posting block for {what} in {self.path} has trailing "
                f"bytes", diagnosis="corrupted", path=self.path)
        return postings

    def suffixes(self, dag_id: int, keyword_index: int) -> list[Dewey]:
        key = (dag_id, keyword_index)
        cached = self._suffix_cache.get(key)
        if cached is not None:
            return cached
        entry = self.directory.suffix_locs.get(key)
        if entry is None:
            raise StorageError(
                f"keyword references DAG node {dag_id} but no suffix "
                f"table exists for it in {self.path}",
                diagnosis="corrupted", path=self.path)
        payload = self._table_chunk(entry, f"dag suffixes {dag_id}")
        suffixes: list[Dewey] = []
        pos = 0
        previous: Dewey = ()
        for _ in range(entry[1]):
            suffix, pos = _read_dewey(payload, pos, previous)
            suffixes.append(suffix)
            previous = suffix
        self._suffix_cache[key] = suffixes
        return suffixes

    def hash_rows(self, dag_id: int, which: int) -> list:
        key = (dag_id, which)
        cached = self._hash_cache.get(key)
        if cached is not None:
            return cached
        entry = self.directory.hash_locs.get(key)
        if entry is None:
            self._hash_cache[key] = []
            return []
        rows = self._decode_hash(entry, f"dag hash rows {dag_id}")
        self._hash_cache[key] = rows
        return rows

    def _decode_hash(self, entry: tuple, what: str) -> list:
        payload = self._table_chunk(entry, what)
        rows: list[tuple[Dewey, int]] = []
        pos = 0
        previous: Dewey = ()
        for _ in range(entry[1]):
            suffix, pos = _read_dewey(payload, pos, previous)
            count, pos = read_svarint(payload, pos)
            rows.append((suffix, count))
            previous = suffix
        return rows

    def hash_table(self, which: int) -> dict:
        """Materialise one full hash table (0 = entity, 1 = element)."""
        directory = self.directory
        entry = (directory.entity_literal if which == 0
                 else directory.element_literal)
        what = "literal entity table" if which == 0 \
            else "literal element table"
        table: dict[Dewey, int] = {}
        for suffix, count in self._decode_hash(entry, what):
            table[suffix] = count
        for dag_id, prefixes in enumerate(directory.occurrences):
            rows = self.hash_rows(dag_id, which)
            if not rows:
                continue
            for prefix in prefixes:
                for suffix, count in rows:
                    table[prefix + suffix] = count
        return table


# ----------------------------------------------------------------------
# Lazy runtime structures
# ----------------------------------------------------------------------

class LazyPostingList(Sequence):
    """One keyword's posting list, decoded segment-by-segment on touch.

    The list is the ordered concatenation of disjoint *segments*:
    literal blocks (keyed by their first posting, from the directory)
    and (dag node, occurrence) expansions (keyed by the occurrence
    prefix — every expanded posting lies inside that prefix's subtree
    interval, and literal blocks never span a covered gap, so sorting
    segments by key reproduces exact document order).  Lengths come
    from directory metadata alone, so ``len`` and bisection never
    decode anything they don't have to.
    """

    __slots__ = ("_reader", "_keyword", "_segments", "_starts",
                 "_total", "_decoded")

    def __init__(self, reader: _ShardReader, keyword: str) -> None:
        self._reader = reader
        self._keyword = keyword
        directory = reader.directory
        keyword_index = directory.keyword_ids[keyword]
        segments: list[tuple] = []
        for block in directory.blocks[keyword]:
            segments.append((block[5], block[3], 0, block))
        for dag_id in directory.keyword_dags[keyword]:
            entry = directory.suffix_locs.get((dag_id, keyword_index))
            if entry is None:
                raise StorageError(
                    f"keyword {keyword!r} references DAG node {dag_id} "
                    f"with no suffix table in {reader.path}",
                    diagnosis="corrupted", path=reader.path)
            for prefix in directory.occurrences[dag_id]:
                segments.append((prefix, entry[1], 1,
                                 (dag_id, keyword_index, prefix)))
        segments.sort(key=lambda segment: segment[0])
        self._segments = segments
        starts = []
        total = 0
        for segment in segments:
            starts.append(total)
            total += segment[1]
        self._starts = starts
        self._total = total
        self._decoded: dict[int, list[Dewey]] = {}

    def _segment(self, number: int) -> list[Dewey]:
        decoded = self._decoded.get(number)
        if decoded is not None:
            return decoded
        key, count, kind, data = self._segments[number]
        if kind == 0:
            decoded = self._reader.block_postings(
                data, f"keyword {self._keyword!r}")
            if len(decoded) != count or (decoded and decoded[0] != key):
                raise StorageError(
                    f"posting block for keyword {self._keyword!r} in "
                    f"{self._reader.path} disagrees with its directory "
                    f"metadata", diagnosis="corrupted",
                    path=self._reader.path)
        else:
            dag_id, keyword_index, prefix = data
            decoded = [prefix + suffix for suffix
                       in self._reader.suffixes(dag_id, keyword_index)]
        self._decoded[number] = decoded
        return decoded

    def __len__(self) -> int:
        return self._total

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(self._total))]
        if index < 0:
            index += self._total
        if not 0 <= index < self._total:
            raise IndexError("posting index out of range")
        segment = bisect_right(self._starts, index) - 1
        return self._segment(segment)[index - self._starts[segment]]

    def __iter__(self) -> Iterator[Dewey]:
        for number in range(len(self._segments)):
            yield from self._segment(number)

    def __eq__(self, other) -> bool:
        if isinstance(other, (list, tuple, LazyPostingList)):
            return (len(self) == len(other)
                    and all(a == b for a, b in zip(self, other)))
        return NotImplemented

    __hash__ = None  # type: ignore[assignment]

    def __repr__(self) -> str:
        return (f"LazyPostingList({self._keyword!r}, n={self._total}, "
                f"segments={len(self._segments)})")


class LazyInvertedIndex(InvertedIndex):
    """An :class:`InvertedIndex` view over a codec shard.

    Reads never materialise more than the touched segments; the first
    *mutation* (anything reaching the ``_postings`` dict, e.g.
    ``add``) materialises every list once so the inherited in-place
    update logic keeps working.
    """

    def __init__(self, reader: _ShardReader) -> None:
        # deliberately no super().__init__ — ``_postings`` is lazy here
        self._reader = reader
        self._lists: dict[str, LazyPostingList] = {}
        self._materialized: dict[str, list[Dewey]] | None = None

    @property
    def _postings(self) -> dict[str, list]:
        if self._materialized is None:
            self._materialized = {
                keyword: list(self.postings(keyword))
                for keyword in self._reader.directory.keywords}
        return self._materialized

    @_postings.setter
    def _postings(self, value: dict) -> None:
        self._materialized = value

    def postings(self, keyword: str):
        if self._materialized is not None:
            return self._materialized.get(keyword, [])
        posting_list = self._lists.get(keyword)
        if posting_list is None:
            if keyword not in self._reader.directory.keyword_ids:
                return []
            posting_list = LazyPostingList(self._reader, keyword)
            self._lists[keyword] = posting_list
        return posting_list

    def __contains__(self, keyword: str) -> bool:
        if self._materialized is not None:
            return keyword in self._materialized
        return keyword in self._reader.directory.keyword_ids

    def __len__(self) -> int:
        if self._materialized is not None:
            return len(self._materialized)
        return len(self._reader.directory.keywords)

    @property
    def vocabulary(self) -> list[str]:
        if self._materialized is not None:
            return sorted(self._materialized)
        return list(self._reader.directory.keywords)

    def document_frequency(self, keyword: str) -> int:
        return len(self.postings(keyword))

    @property
    def total_postings(self) -> int:
        return sum(len(self.postings(keyword))
                   for keyword in self.vocabulary)

    def items(self):
        for keyword in self.vocabulary:
            yield keyword, self.postings(keyword)


class LazyNodeHashes(NodeHashes):
    """A :class:`NodeHashes` whose tables decode on first touch."""

    def __init__(self, reader: _ShardReader) -> None:
        # deliberately no super().__init__ — tables are lazy here
        self._reader = reader
        self._entity_table: dict[Dewey, int] | None = None
        self._element_table: dict[Dewey, int] | None = None

    @property
    def _entity(self) -> dict[Dewey, int]:
        if self._entity_table is None:
            self._entity_table = self._reader.hash_table(0)
        return self._entity_table

    @_entity.setter
    def _entity(self, value: dict) -> None:
        self._entity_table = value

    @property
    def _element(self) -> dict[Dewey, int]:
        if self._element_table is None:
            self._element_table = self._reader.hash_table(1)
        return self._element_table

    @_element.setter
    def _element(self, value: dict) -> None:
        self._element_table = value


def _section_reader(section: dict, buffer, cursor: int,
                    path: Path) -> tuple[_ShardReader, int]:
    """Build one shard's reader; returns it plus the next region offset."""
    try:
        dir_comp, dir_raw, dir_crc = section["directory"]
        frame_table = section["frames"]
    except (KeyError, TypeError, ValueError) as exc:
        raise StorageError(
            f"shard section in {path} is missing its region table",
            diagnosis="corrupted", path=path) from exc
    stored = bytes(buffer[cursor:cursor + dir_comp])
    if len(stored) != dir_comp:
        raise StorageError(
            f"codec directory in {path} is truncated",
            diagnosis="truncated", path=path)
    if _crc(stored) != dir_crc:
        raise StorageError(
            f"codec directory in {path} fails its CRC32 — the file is "
            f"corrupted", diagnosis="corrupted", path=path)
    try:
        payload = zlib.decompress(stored)
    except zlib.error as exc:
        raise StorageError(
            f"codec directory in {path} does not inflate: {exc}",
            diagnosis="corrupted", path=path) from exc
    if len(payload) != dir_raw:
        raise StorageError(
            f"codec directory in {path} inflates to {len(payload)} "
            f"bytes, header promises {dir_raw}",
            diagnosis="corrupted", path=path)
    cursor += dir_comp
    offsets = []
    for comp_size, _raw_size, _crc32 in frame_table:
        offsets.append(cursor)
        cursor += comp_size
    frames = _FrameReader(buffer, offsets, frame_table, path)
    directory = _Directory(payload, path)
    return _ShardReader(frames, directory, path), cursor


def _shard_index(section: dict, reader: _ShardReader,
                 analyzer: Analyzer) -> GKSIndex:
    return GKSIndex(
        inverted=LazyInvertedIndex(reader),
        hashes=LazyNodeHashes(reader),
        stats=IndexStats.from_dict(section.get("stats", {})),
        analyzer=analyzer,
        document_names=tuple(section.get("document_names", ())),
        probabilities=_section_probabilities(section, reader.path))


def _section_probabilities(section: dict, path: Path):
    raw_tables = section.get("probabilities")
    if raw_tables is None:
        return None
    from repro.index.probtables import ProbTables

    try:
        return ProbTables.from_dict(raw_tables)
    except Exception as exc:
        raise StorageError(
            f"malformed probability tables in {path}: {exc}",
            diagnosis="corrupted", path=path) from exc


def load_binary_index(path: str | Path) -> "GKSIndex | ShardedIndex":
    """Open a v4 binary index with lazy, mmap-backed posting lists.

    Only the header and the per-shard directories are parsed up front;
    posting blocks, DAG suffix tables and hash tables inflate on first
    touch.
    """
    path = Path(path)
    header = read_binary_header(path)
    body = header["body"]
    analyzer_config = body.get("analyzer", {})
    analyzer = Analyzer(
        use_stopwords=bool(analyzer_config.get("use_stopwords", True)),
        use_stemming=bool(analyzer_config.get("use_stemming", True)))
    buffer = _map_blob(path)
    cursor = header["blob_offset"]
    sections = body.get("shards")
    if not isinstance(sections, list) or not sections:
        raise StorageError(
            f"binary index {path} carries no shard sections",
            diagnosis="corrupted", path=path)
    layout = body.get("layout", "monolithic")
    if layout == "monolithic":
        if len(sections) != 1:
            raise StorageError(
                f"monolithic binary index {path} carries "
                f"{len(sections)} shard sections",
                diagnosis="corrupted", path=path)
        reader, _cursor = _section_reader(sections[0], buffer, cursor,
                                          path)
        return _shard_index(sections[0], reader, analyzer)
    if layout != "sharded":
        raise StorageError(
            f"binary index {path} declares unknown layout {layout!r}",
            diagnosis="version-mismatch", path=path)
    shards = []
    for section in sections:
        reader, cursor = _section_reader(section, buffer, cursor, path)
        index = _shard_index(section, reader, analyzer)
        shards.append(Shard(shard_id=int(section.get("shard_id", 0)),
                            doc_ids=tuple(section.get("doc_ids", ())),
                            index=index))
    try:
        return ShardedIndex(shards, body.get("strategy", "round_robin"),
                            tuple(body.get("document_names", ())),
                            analyzer=analyzer)
    except StorageError:
        raise
    except Exception as exc:
        raise StorageError(
            f"cannot assemble sharded index from {path}: {exc}",
            diagnosis="corrupted", path=path) from exc


def verify_frames(path: str | Path) -> int:
    """Bytes-level structural audit of every stored region.

    Checks each shard's directory and frame regions against the
    header's ``(comp, raw, crc32)`` records — sizes, checksums,
    inflatability and the absence of trailing bytes — without
    semantically decoding a single posting.  This is the structural
    complement of :func:`decode_file`: byte rot and truncation fail
    here (``check-index`` exit 1), while *resealed* semantic corruption
    (fresh CRCs over wrong content) passes and is left for the deep
    invariant audit (exit 2).

    Returns the number of regions verified; raises
    :class:`StorageError` on the first structural problem.
    """
    path = Path(path)
    header = read_binary_header(path)
    buffer = _map_blob(path)
    cursor = header["blob_offset"]
    checked = 0
    for position, section in enumerate(header["body"].get("shards", [])):
        try:
            regions = [tuple(section["directory"])]
            regions.extend(tuple(row) for row in section["frames"])
        except (KeyError, TypeError, ValueError) as exc:
            raise StorageError(
                f"shard section {position} in {path} is missing its "
                f"region table", diagnosis="corrupted",
                path=path) from exc
        for comp_size, raw_size, crc32 in regions:
            stored = bytes(buffer[cursor:cursor + comp_size])
            if len(stored) != comp_size:
                raise StorageError(
                    f"region at offset {cursor} in {path} is truncated "
                    f"({len(stored)} of {comp_size} byte(s))",
                    diagnosis="truncated", path=path)
            if _crc(stored) != crc32:
                raise StorageError(
                    f"region at offset {cursor} in {path} fails its "
                    f"CRC32 — the file is corrupted",
                    diagnosis="corrupted", path=path)
            if comp_size != raw_size:
                try:
                    payload = zlib.decompress(stored)
                except zlib.error as exc:
                    raise StorageError(
                        f"region at offset {cursor} in {path} does not "
                        f"inflate: {exc}", diagnosis="corrupted",
                        path=path) from exc
                if len(payload) != raw_size:
                    raise StorageError(
                        f"region at offset {cursor} in {path} inflates "
                        f"to {len(payload)} byte(s), header promises "
                        f"{raw_size}", diagnosis="corrupted", path=path)
            cursor += comp_size
            checked += 1
    if cursor != len(buffer):
        raise StorageError(
            f"{len(buffer) - cursor} trailing byte(s) after the last "
            f"region in {path}", diagnosis="corrupted", path=path)
    return checked


# ----------------------------------------------------------------------
# Deep decode: eager expansion for audits and fault injection
# ----------------------------------------------------------------------

class DecodedShard:
    """One shard of a binary index, fully expanded (audit/corruptor)."""

    __slots__ = ("shard_id", "doc_ids", "document_names", "stats",
                 "postings", "entity", "element", "probabilities")

    def __init__(self, shard_id: int, doc_ids, document_names,
                 stats: dict, postings: dict, entity: dict,
                 element: dict, probabilities: dict | None = None) -> None:
        self.shard_id = shard_id
        self.doc_ids = doc_ids
        self.document_names = document_names
        self.stats = stats
        self.postings = postings
        self.entity = entity
        self.element = element
        self.probabilities = probabilities


class DecodedIndex:
    """A fully expanded binary index (all shards, eager postings)."""

    __slots__ = ("layout", "strategy", "analyzer", "document_names",
                 "shards")

    def __init__(self, layout: str, strategy, analyzer: dict,
                 document_names, shards: list) -> None:
        self.layout = layout
        self.strategy = strategy
        self.analyzer = analyzer
        self.document_names = document_names
        self.shards = shards


def _classify_codec_error(error: StorageError) -> str:
    message = str(error)
    if "CRC32" in message:
        return "codec-block-crc"
    if "suffix" in message or "DAG" in message:
        return "codec-dag-suffix"
    return "codec-block-metadata"


def decode_file(path: str | Path, on_violation=None) -> DecodedIndex:
    """Fully expand a binary index, verifying every codec invariant.

    Without *on_violation* the first problem raises
    :class:`StorageError`.  With a collector ``on_violation(name,
    detail)`` the decode keeps going, reporting ``codec-block-crc``
    (stored bytes fail their checksum), ``codec-block-metadata``
    (decoded content disagrees with directory metadata) and
    ``codec-dag-suffix`` (shared-subtree tables missing, unsorted or
    inconsistent) — the three codec invariants `check-index --deep`
    audits on top of the generic content checks.
    """
    path = Path(path)

    def report(error: StorageError) -> None:
        if on_violation is None:
            raise error
        on_violation(_classify_codec_error(error), str(error))

    header = read_binary_header(path)
    body = header["body"]
    buffer = _map_blob(path)
    cursor = header["blob_offset"]
    shards = []
    for section in body.get("shards", []):
        reader, cursor = _section_reader(section, buffer, cursor, path)
        directory = reader.directory
        postings: dict[str, list[Dewey]] = {}
        for keyword in directory.keywords:
            try:
                postings[keyword] = list(
                    LazyPostingList(reader, keyword))
            except StorageError as exc:
                report(exc)
                postings[keyword] = []
        for key in sorted(directory.suffix_locs):
            try:
                suffixes = reader.suffixes(*key)
            except StorageError as exc:
                report(exc)
                continue
            if any(suffixes[i] >= suffixes[i + 1]
                   for i in range(len(suffixes) - 1)):
                report(StorageError(
                    f"DAG node {key[0]} suffix table for keyword index "
                    f"{key[1]} in {path} is not strictly sorted",
                    diagnosis="corrupted", path=path))
        for dag_id, prefixes in enumerate(directory.occurrences):
            if any(prefixes[i] >= prefixes[i + 1]
                   for i in range(len(prefixes) - 1)):
                report(StorageError(
                    f"DAG node {dag_id} occurrence list in {path} is "
                    f"not strictly sorted", diagnosis="corrupted",
                    path=path))
        tables = []
        for which in (0, 1):
            try:
                tables.append(reader.hash_table(which))
            except StorageError as exc:
                report(exc)
                tables.append({})
        shards.append(DecodedShard(
            shard_id=int(section.get("shard_id", 0)),
            doc_ids=(tuple(section["doc_ids"])
                     if "doc_ids" in section else None),
            document_names=tuple(section.get("document_names", ())),
            stats=dict(section.get("stats", {})),
            postings=postings, entity=tables[0], element=tables[1],
            probabilities=(dict(section["probabilities"])
                           if "probabilities" in section else None)))
    return DecodedIndex(
        layout=body.get("layout", "monolithic"),
        strategy=body.get("strategy"),
        analyzer=dict(body.get("analyzer", {})),
        document_names=tuple(body.get("document_names", ())),
        shards=shards)


def encode_decoded(decoded: DecodedIndex, path: str | Path) -> Path:
    """Re-encode a :class:`DecodedIndex` verbatim (all-literal, fresh
    CRCs) — the fault injector's reseal step: content mutations survive,
    every checksum is valid again, so only the deep audit notices."""
    body: dict = {
        "layout": decoded.layout,
        "analyzer": dict(decoded.analyzer),
        "document_names": list(decoded.document_names),
    }
    if decoded.layout == "sharded":
        body["strategy"] = decoded.strategy
    sections: list[dict] = []
    regions: list[bytes] = []
    for shard in decoded.shards:
        section, shard_regions = _shard_regions(
            shard.postings, shard.entity, shard.element,
            dict(shard.stats), list(shard.document_names),
            use_dag=False)
        section["shard_id"] = shard.shard_id
        if shard.doc_ids is not None:
            section["doc_ids"] = list(shard.doc_ids)
        if shard.probabilities:
            section["probabilities"] = dict(shard.probabilities)
        sections.append(section)
        regions.extend(shard_regions)
    body["shards"] = sections
    return _write_file(body, regions, path)


# ----------------------------------------------------------------------
# The codec registry
# ----------------------------------------------------------------------

@runtime_checkable
class Codec(Protocol):
    """Storage codec: one on-disk representation of a GKS index.

    ``save`` persists, ``load`` reopens (possibly lazily), ``sniff``
    answers whether a file on disk is this codec's format.  Codecs are
    stateless singletons registered in :data:`CODECS`; user-facing
    selection goes through ``EngineConfig.codec`` and
    :func:`resolve_codec`.
    """

    name: str

    def save(self, index, path): ...

    def load(self, path): ...

    def sniff(self, path) -> bool: ...


class RawCodec:
    """The JSON envelope formats (storage v1–v3), eager-loading."""

    name = "raw"

    def save(self, index, path):
        from repro.index.storage import save_index
        return save_index(index, path, codec="raw")

    def load(self, path):
        from repro.index.storage import load_index
        return load_index(path)

    def sniff(self, path) -> bool:
        return not is_binary_index(path)


class VarintDagCodec:
    """The v4 binary format: varint/delta blocks + DAG sharing, lazy."""

    name = "varint-dag"

    def save(self, index, path):
        return write_binary_index(index, path, use_dag=True)

    def load(self, path):
        return load_binary_index(path)

    def sniff(self, path) -> bool:
        return is_binary_index(path)


CODECS: dict[str, Codec] = {"raw": RawCodec(),
                            "varint-dag": VarintDagCodec()}
CODEC_NAMES: tuple[str, ...] = tuple(sorted(CODECS))


def resolve_codec(name: str) -> Codec:
    """Look up a codec by name; unknown names raise ConfigError."""
    codec = CODECS.get(name)
    if codec is None:
        raise ConfigError(
            f"unknown codec {name!r}; expected one of {CODEC_NAMES}")
    return codec
