"""Alternative ranking models from the related work (paper §3, §5).

The paper argues existing XML ranking methods are insufficient for GKS
because every ranked node there contains a *fixed* set of all query
keywords, whereas GKS nodes cover varying subsets.  To quantify that
argument (ablation bench A2+), two classic models are reproduced in a
GKS-compatible form — both are drop-in :data:`repro.core.search.Ranker`
callables:

* :func:`xrank_ranker` — XRank [7]-style decay ranking: each keyword's
  highest occurrence contributes ``λ^(distance from the result node)``;
  proximity to the result node matters, structure (fan-out) does not.
* :func:`xsearch_ranker` — XSEarch [8]-style TF·IDF: term frequency in
  the result subtree times corpus-level inverse document frequency;
  purely statistical, blind to structure.

Both share the terminal-point bookkeeping with the potential-flow ranker
so responses remain comparable.
"""

from __future__ import annotations

import math
from functools import partial

from repro.core.query import Query
from repro.core.ranking import (RankBreakdown, keyword_occurrences,
                                terminal_points)
from repro.index.builder import GKSIndex
from repro.xmltree.dewey import Dewey


def xrank_ranker(index: GKSIndex, query: Query, dewey: Dewey,
                 decay: float = 0.85) -> RankBreakdown:
    """XRank-style rank: decay per edge between node and occurrence."""
    terminals: dict[str, tuple[Dewey, ...]] = {}
    score = 0.0
    for keyword in query.keywords:
        points = terminal_points(keyword_occurrences(index, keyword,
                                                     dewey))
        if not points:
            continue
        terminals[keyword] = points
        distance = len(points[0]) - len(dewey)
        score += decay ** distance
    return RankBreakdown(dewey=dewey, score=score,
                         initial_potential=len(terminals),
                         terminals=terminals)


def make_xrank_ranker(decay: float):
    """An XRank ranker with a custom decay factor."""
    return partial(xrank_ranker, decay=decay)


def xsearch_ranker(index: GKSIndex, query: Query,
                   dewey: Dewey) -> RankBreakdown:
    """XSEarch-style TF·IDF rank over the result subtree.

    ``tf`` is the occurrence count of the keyword inside the subtree,
    log-damped; ``idf`` uses the keyword's corpus posting count against
    the total element count.
    """
    total_nodes = max(index.stats.total_nodes, 1)
    terminals: dict[str, tuple[Dewey, ...]] = {}
    score = 0.0
    for keyword in query.keywords:
        occurrences = keyword_occurrences(index, keyword, dewey)
        if not occurrences:
            continue
        terminals[keyword] = terminal_points(occurrences)
        tf = 1.0 + math.log(len(occurrences))
        # len(postings) handles phrase keywords too
        df = max(len(index.postings(keyword)), 1)
        idf = math.log(1 + total_nodes / df)
        score += tf * idf
    return RankBreakdown(dewey=dewey, score=score,
                         initial_potential=len(terminals),
                         terminals=terminals)
