"""XML substrate: Dewey ids, labeled trees, streaming parser, repository."""

from repro.xmltree.dewey import (Dewey, ancestors_of, block_lcp,
                                 common_prefix, depth_of, format_dewey,
                                 is_ancestor, is_ancestor_or_self, lca_of,
                                 make_dewey, parse_dewey, subtree_interval)
from repro.xmltree.json_adapter import (json_to_document,
                                        parse_json_document)
from repro.xmltree.node import XMLNode, build_tree
from repro.xmltree.parser import (RecoveryPolicy, SalvageLog, TreeBuilder,
                                  iter_events, iter_events_salvage,
                                  parse_document, parse_documents)
from repro.xmltree.repository import IngestFailure, Repository
from repro.xmltree.serialize import (serialize_document, serialize_node)
from repro.xmltree.tree import XMLDocument

__all__ = [
    "Dewey", "IngestFailure", "RecoveryPolicy", "SalvageLog",
    "XMLNode", "XMLDocument", "Repository", "TreeBuilder",
    "ancestors_of", "block_lcp", "build_tree", "common_prefix", "depth_of",
    "format_dewey", "is_ancestor", "is_ancestor_or_self", "iter_events",
    "iter_events_salvage",
    "json_to_document", "lca_of", "make_dewey", "parse_dewey",
    "parse_document", "parse_documents", "parse_json_document",
    "serialize_document", "serialize_node",
    "subtree_interval",
]
