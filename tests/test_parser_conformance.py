"""Parser conformance battery: a condensed well-formedness test suite.

Inspired by the W3C xmlconf style: many small documents, each probing
one rule.  The paper's system must ingest the real UW repository files,
which carry DOCTYPEs, entities, namespaces-as-colons, CDATA and odd
whitespace — all covered here.
"""

import pytest

from repro.errors import XMLSyntaxError
from repro.xmltree.parser import iter_events, parse_document

WELL_FORMED = [
    "<a/>",
    "<a></a>",
    "<a>text</a>",
    "<a><b/><c/></a>",
    '<a x="1"/>',
    "<a x='1'/>",
    '<a x="1" y="2"/>',
    "<a\n  x=\"1\"\n/>",
    "<a>&lt;&gt;&amp;&quot;&apos;</a>",
    "<a>&#65;&#x41;</a>",
    "<a><!-- comment --></a>",
    "<a><!-- - -- is fine inside? no: but single dashes are --></a>",
    "<a><?pi data?></a>",
    "<?xml version=\"1.0\"?><a/>",
    "<?xml version=\"1.0\" encoding=\"UTF-8\" standalone=\"yes\"?><a/>",
    "<!DOCTYPE a><a/>",
    "<!DOCTYPE a SYSTEM \"a.dtd\"><a/>",
    "<!DOCTYPE a [<!ELEMENT a ANY><!ATTLIST a x CDATA #IMPLIED>]><a/>",
    "<a><![CDATA[]]></a>",
    "<a><![CDATA[<>&\"']]></a>",
    "<ns:a><ns:b/></ns:a>",                 # colonized names
    "<a_b-c.d/>",                           # name punctuation
    "<_underscore/>",
    "<a>tab\there</a>",
    "<a>\r\nwindows line endings\r\n</a>",
    "﻿<a/>",                           # BOM
    "<a>  <b/>  </a>",                      # ignorable whitespace
    "<a>mixed <b>content</b> here</a>",
    "<a>" + "x" * 100000 + "</a>",          # large text block
    "<a>ünïcödé ✓</a>",
]

MALFORMED = [
    "<a>",
    "</a>",
    "<a></b>",
    "<a><b></a></b>",
    "<a/><b/>",
    "text only",
    "<a>&unknown;</a>",
    "<a>&#xZZ;</a>",
    "<a>&#;</a>",
    "<a x=1/>",
    "<a x=\"1/>",
    "<a x=\"1\" x=\"2\"/>",
    "<a><![CDATA[unterminated</a>",
    "<a><!-- unterminated</a>",
    "<a><?pi unterminated</a>",
    "<1badname/>",
    "<>empty</>",
    "<!DOCTYPE unterminated <a/>",
    "",
    "   \n  ",
    "x<a/>",
    "<a/>trailing",
]


@pytest.mark.parametrize("text", WELL_FORMED)
def test_well_formed_accepted(text):
    document = parse_document(text)
    assert document.root is not None


@pytest.mark.parametrize("text", MALFORMED)
def test_malformed_rejected(text):
    with pytest.raises(XMLSyntaxError):
        parse_document(text)


class TestDetails:
    def test_bom_is_stripped(self):
        document = parse_document("﻿<a>x</a>")
        assert document.root.tag == "a"

    def test_colonized_tags_survive(self):
        document = parse_document("<ns:a><ns:b>x</ns:b></ns:a>")
        assert document.root.tag == "ns:a"
        assert document.root.children[0].tag == "ns:b"

    def test_crlf_text_normalised_by_strip(self):
        document = parse_document("<a>\r\nhello\r\n</a>")
        assert document.root.text == "hello"

    def test_large_document_many_siblings(self):
        text = "<r>" + "<c>v</c>" * 5000 + "</r>"
        document = parse_document(text)
        assert len(document.root.children) == 5000

    def test_numeric_references_combine_with_text(self):
        document = parse_document("<a>A&#66;C</a>")
        assert document.root.text == "ABC"

    def test_attribute_entities_decoded(self):
        document = parse_document(
            '<a t="x &amp; y &#33;"/>')
        assert document.root.children[0].text == "x & y !"

    def test_pi_events_exposed(self):
        from repro.xmltree.events import ProcessingInstruction

        events = list(iter_events("<a><?target one two?></a>"))
        assert ProcessingInstruction("target", "one two") in events

    def test_doctype_internal_subset_skipped_entirely(self):
        text = ("<!DOCTYPE a [\n"
                "  <!ELEMENT a (b)*>\n"
                "  <!ENTITY custom \"value\">\n"
                "]>\n<a><b/></a>")
        document = parse_document(text)
        assert document.root.children[0].tag == "b"
