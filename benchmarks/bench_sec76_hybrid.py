"""E11 — §7.6: hybrid queries over merged DBLP + SIGMOD Record.

The paper merges the two corpora under a common root (with the SIGMOD
side pushed two connecting nodes deeper) and runs
{"Jean-Marc Meynadier" "Patrick Behm" "Lawrence A. Rowe"
 "Michael Stonebraker"} with s=2.  Reported outcome: exactly 8 nodes —
3 <inproceedings> (first pair, DBLP) + 5 <article> (second pair, SIGMOD)
— with the SIGMOD articles ranked higher despite their greater depth,
because entity rank depends only on keyword distribution, not on absolute
depth.
"""

from __future__ import annotations

from repro.eval.reporting import render_table
from repro.eval.runner import (build_hybrid_repository, hybrid_experiment)
from repro.eval.workload import HYBRID_QUERY
from repro.core.engine import GKSEngine


def test_hybrid_query_speed(benchmark):
    engine = GKSEngine(build_hybrid_repository())
    response = benchmark(lambda: engine.search(HYBRID_QUERY, s=2, use_cache=False))
    assert len(response) > 0


def test_hybrid_outcome(results_writer, benchmark):
    outcome = benchmark.pedantic(hybrid_experiment, rounds=1, iterations=1)
    results_writer("sec76_hybrid", render_table(
        ["total results", "DBLP <inproceedings>", "SIGMOD <article>",
         "SIGMOD ranked first"],
        [(outcome.total_results, outcome.dblp_hits, outcome.sigmod_hits,
          "yes" if outcome.sigmod_ranked_first else "no")],
        title="§7.6 — hybrid query over merged DBLP+SIGMOD (paper: "
              "8 = 3 + 5, SIGMOD first)"))

    assert outcome.total_results == 8
    assert outcome.dblp_hits == 3
    assert outcome.sigmod_hits == 5
    assert outcome.sigmod_ranked_first
