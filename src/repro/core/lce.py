"""Least Common Entity (LCE) node discovery (paper §4.1–4.2, Def 2.2.1).

An entity node ``e`` is an LCE node for query ``Q`` when at least one query
keyword in its subtree is contained in no deeper entity node — such a
keyword is ``e``'s *independent witness*.  The discovery walks the LCP list
in creation order:

* an LCP entry that is an entity node, or has an entity ancestor, maps to
  that (nearest) entity — its LCE candidate;
* when an entity is first added, its independent witness is located at the
  block boundaries ``p1``/``p2`` (Lemma 4); we additionally fall back to a
  block scan for robustness, and record the witness Dewey id;
* when a *descendant* entity is added later and swallows an ancestor's
  witness, the ancestor is evicted (Lemma 5's maintenance) — it may return
  if a later block supplies a fresh independent witness;
* ancestors that keep their witness get their statistics updated ("Update
  LCE node (e)" in Fig. 6).

The result keeps, for every LCP entry, its mapping to an LCE node (or none:
"there may exist some nodes in LCP list such that no corresponding entity
node is found for them").  The GKS response is the surviving LCE nodes plus
the unmapped LCP nodes (§4.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.budget import SearchBudget
from repro.core.lcp import LCPList
from repro.index.builder import GKSIndex
from repro.index.postings import MergedEntry
from repro.xmltree.dewey import (Dewey, ancestors_of, is_ancestor_or_self,
                                 parent_of)


@dataclass
class LCEInfo:
    """Bookkeeping for one (candidate) LCE node."""

    dewey: Dewey
    witness: Dewey | None          # smallest independent witness position
    estimated_keywords: int        # the running s+counter−1 style estimate
    blocks: int = 1                # LCP entries mapped here so far
    #: the (lifted) LCP candidates that mapped to this entity — the
    #: fallback response nodes should the entity fail Def 2.2.1.
    candidates: list[Dewey] = field(default_factory=list)


@dataclass
class LCEResult:
    """Outcome of LCE discovery over one LCP list."""

    lce: dict[Dewey, LCEInfo] = field(default_factory=dict)
    #: Entity candidates that turned out not to be LCE nodes (no
    #: independent witness was ever found, or a descendant swallowed it) —
    #: their *mapped LCP candidates* fall back into the response pool:
    #: §4.2 treats them as LCP nodes "for which no corresponding LCE node
    #: exists".
    rejected: dict[Dewey, LCEInfo] = field(default_factory=dict)
    #: LCP entry → LCE node it mapped to (absent key: no entity ancestor).
    mapping: dict[Dewey, Dewey] = field(default_factory=dict)
    #: LCP entries with no entity ancestor-or-self at all (deduplicated,
    #: in creation order; values are the estimated keyword counts).
    unmapped: dict[Dewey, int] = field(default_factory=dict)

    def fallback_candidates(self) -> dict[Dewey, int]:
        """Unmapped LCP nodes plus the candidates of rejected entities.

        Maps each fallback node to its keyword-count estimate.
        """
        pool = dict(self.unmapped)
        confirmed = set(self.lce)
        for info in self.rejected.values():
            for candidate in info.candidates:
                if candidate not in confirmed:
                    pool.setdefault(candidate, info.estimated_keywords)
        return pool

    def response_deweys(self) -> list[Dewey]:
        """The GKS response node set ``RQ(s)`` (§4.2).

        Surviving LCE nodes plus the LCP nodes that have no corresponding
        LCE node.  "The nodes in GKS response set follow the semantics of
        SLCA" (§1.1): for entity nodes the independent-witness rule already
        enforces this (an ancestor entity survives only with its own
        witness — Example 4 keeps both did.0.1 and did.0.1.1.0); for the
        remaining non-entity candidates we drop any node that has another
        candidate strictly inside its subtree, which is what makes Table 1
        return {x2} rather than {x1, x2, r} for Q1.
        """
        survivors = list(self.lce)
        filtered = set(self.fallback_candidates())
        ordered = sorted(set(survivors) | filtered)
        # In Dewey (document) order every tuple strictly between a node and
        # its subtree end is a descendant, so a candidate has a candidate
        # descendant iff its immediate successor is one: one sorted pass.
        for position, dewey in enumerate(ordered):
            if dewey not in filtered or dewey in self.lce:
                continue
            has_descendant = (position + 1 < len(ordered)
                              and is_ancestor_or_self(
                                  dewey, ordered[position + 1]))
            if not has_descendant:
                survivors.append(dewey)
        return survivors


def _lift_attribute(dewey: Dewey, index: GKSIndex) -> Dewey:
    """Lift an LCP candidate off an attribute node (Def 2.1.1).

    "The parent node of an attribute node is considered the lowest ancestor
    for keyword(s) in its value."  An element in neither hash table is an
    AN; ANs are leaves, so a single lift suffices.
    """
    if len(dewey) > 1 and index.hashes.is_attribute(dewey):
        return parent_of(dewey)
    return dewey


def _independent_witness(candidate: Dewey, left: int, right: int,
                         sl: list[MergedEntry],
                         index: GKSIndex) -> Dewey | None:
    """Smallest-Dewey independent witness for *candidate* in block [l, r].

    A keyword occurrence is an independent witness when its nearest entity
    ancestor-or-self is *candidate* itself (no deeper entity contains it).
    Lemma 4 says checking the block boundaries suffices; we scan from the
    left boundary so the smallest qualifying Dewey id is returned, which is
    also what the eviction rule needs.
    """
    for position in range(left, right + 1):
        occurrence = sl[position].dewey
        if not is_ancestor_or_self(candidate, occurrence):
            continue
        anchor = _lift_attribute(occurrence, index)
        if index.hashes.nearest_entity(anchor) == candidate:
            return occurrence
    return None


def discover_lce(lcp: LCPList, sl: list[MergedEntry],
                 index: GKSIndex,
                 budget: SearchBudget | None = None) -> LCEResult:
    """Map LCP entries to LCE nodes with witness maintenance.

    With a budget the walk polls the deadline between LCP entries and
    stops early when it trips; already-discovered LCE nodes are kept.
    """
    result = LCEResult()
    total = len(lcp.entries)

    for position, (dewey, entry) in enumerate(lcp.entries.items()):
        if budget is not None and budget.checkpoint("lce", position, total):
            break
        candidate = _lift_attribute(dewey, index)
        entity = index.hashes.nearest_entity(candidate)
        if entity is None:
            estimate = lcp.s - 1 + entry.counter
            previous = result.unmapped.get(candidate)
            result.unmapped[candidate] = (estimate if previous is None
                                          else previous + entry.counter)
            continue
        result.mapping[dewey] = entity

        info = result.lce.get(entity)
        if info is None:
            info = result.rejected.pop(entity, None)
            if info is not None:
                # the entity lost its witness earlier; a new block can
                # re-establish it ("e can come back in LCE list", §4.2)
                info.witness = _independent_witness(
                    entity, entry.first_left, entry.first_right, sl, index)
                info.blocks += 1
                info.estimated_keywords += entry.counter
                info.candidates.append(candidate)
                if info.witness is not None:
                    result.lce[entity] = info
                else:
                    result.rejected[entity] = info
                    continue
            else:
                # First block for this entity: s + counter − 1 keywords
                # (Example 4: did.0.1 enters with 2, did.0.1.1.0 with 3).
                witness = _independent_witness(
                    entity, entry.first_left, entry.first_right, sl, index)
                info = LCEInfo(dewey=entity, witness=witness,
                               estimated_keywords=lcp.s - 1 + entry.counter,
                               candidates=[candidate])
                result.lce[entity] = info
        else:
            # Another LCP entry mapped to the same entity: its blocks each
            # contribute one further keyword occurrence to the estimate.
            info.blocks += 1
            info.estimated_keywords += entry.counter
            info.candidates.append(candidate)
        _maintain_ancestors(entity, entry, sl, index, result)

    # Entities that never obtained an independent witness are not LCE
    # nodes by Def 2.2.1: their mapped LCP candidates fall back into the
    # response pool (handled by fallback_candidates / response_deweys).
    for dewey in [dewey for dewey, info in result.lce.items()
                  if info.witness is None]:
        result.rejected[dewey] = result.lce.pop(dewey)
    return result


def _maintain_ancestors(entity: Dewey, entry, sl: list[MergedEntry],
                        index: GKSIndex, result: LCEResult) -> None:
    """Witness eviction + statistics update for entity ancestors (Fig. 6).

    When *entity* enters (or grows), every entity ancestor already in the
    LCE list either (a) loses its recorded witness because the new entity's
    subtree swallowed it — then we try to re-witness it from the current
    block, evicting it when that fails — or (b) keeps its witness and gets
    its keyword estimate refreshed: the current entry's blocks also fall in
    the ancestor's subtree (Example 4: did.0.1 grows to 4 as did.0.1.1.0's
    two blocks are filed).
    """
    for ancestor in ancestors_of(entity):
        info = result.lce.get(ancestor)
        if info is None:
            continue
        if info.witness is not None and is_ancestor_or_self(
                entity, info.witness):
            replacement = _independent_witness(
                ancestor, entry.first_left, entry.first_right, sl, index)
            if replacement is None:
                result.rejected[ancestor] = result.lce.pop(ancestor)
                continue
            info.witness = replacement
        # the ancestor survives: its subtree also covers this entry's blocks
        info.estimated_keywords += entry.counter
