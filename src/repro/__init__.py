"""Generic Keyword Search over XML data (GKS).

A from-scratch reproduction of *"Generic Keyword Search over XML Data"*
(Agarwal, Ramamritham & Agarwal, EDBT 2016).  GKS answers a keyword query
``Q`` with every XML node whose subtree contains at least ``min(s, |Q|)``
distinct query keywords, ranks results with a potential-flow model, and
mines Deeper analytical Insights (DI) for query refinement.

Quickstart::

    from repro import GKSEngine

    engine = GKSEngine.open([xml_text])
    response = engine.search("karen mike data mining", s=2)
    for node in response.top(5):
        print(engine.describe(node))
    for insight in engine.insights(response):
        print(insight.render())

:mod:`repro.api` is the stable import surface (engine, configs,
response types, errors, codecs); the legacy ``GKSEngine.from_texts`` /
``from_paths`` shims are deprecated in favour of ``GKSEngine.open``
(lint rule ``D001``).

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.analytics import aggregate, facets, histogram
from repro.baselines import (elca, naive_gks, slca_indexed_lookup_eager,
                             slca_scan)
from repro.core import (DegradationReport, EngineConfig, GKSEngine,
                        GKSResponse, Insight, InsightReport, Paths, Query,
                        RankedNode, Refinement, SearchBudget,
                        SearchOptions, Texts, search, search_top_k,
                        sharded_search, sharded_top_k)
from repro.datasets import load_dataset
from repro.errors import (ConfigError, GKSError, Overloaded, SearchTimeout,
                          StorageError)
from repro.index import (GKSIndex, IndexBuilder, NodeCategory,
                         ParallelIndexBuilder, ShardedIndex,
                         append_document, build_index, build_sharded_index,
                         categorize_tree, load_index, remove_last_document,
                         save_index)
from repro.schema import build_schema_index, infer_schema
from repro.serve import ServeConfig, ServerCore
from repro.text import Analyzer
from repro.xmltree import (IngestFailure, RecoveryPolicy, Repository,
                           XMLDocument, XMLNode, parse_document,
                           parse_json_document)

__version__ = "1.0.0"

__all__ = [
    "Analyzer", "ConfigError", "DegradationReport", "EngineConfig",
    "GKSEngine", "GKSError", "GKSIndex",
    "GKSResponse", "IndexBuilder", "IngestFailure",
    "Insight", "InsightReport", "NodeCategory", "ParallelIndexBuilder",
    "Overloaded", "Paths", "Query", "RankedNode",
    "RecoveryPolicy", "Refinement", "Repository", "SearchBudget",
    "SearchOptions", "SearchTimeout", "ServeConfig", "ServerCore",
    "ShardedIndex", "StorageError", "Texts",
    "XMLDocument", "XMLNode", "aggregate",
    "append_document", "build_index", "build_schema_index",
    "build_sharded_index",
    "categorize_tree", "elca", "facets", "histogram", "infer_schema",
    "load_dataset", "load_index", "naive_gks", "parse_document",
    "parse_json_document", "remove_last_document", "save_index", "search",
    "search_top_k", "sharded_search", "sharded_top_k",
    "slca_indexed_lookup_eager", "slca_scan",
]
