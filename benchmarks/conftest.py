"""Shared benchmark fixtures and result persistence.

Every benchmark prints its reproduced table/figure and also writes it to
``benchmarks/results/<name>.txt`` so the paper-vs-measured record in
EXPERIMENTS.md can be refreshed from the files.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def write_result(name: str, text: str) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
    print()
    print(text)


@pytest.fixture(scope="session")
def results_writer():
    return write_result
