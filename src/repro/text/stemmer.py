"""Porter stemmer, implemented from scratch (Porter, 1980).

The GKS indexing engine stems every keyword before it enters the inverted
index (paper §2.4), so queries such as ``{Publication 2002 Science}`` match
``publications`` in the data.  This is a faithful implementation of the
original five-step Porter algorithm (the 1980 ANSI-C reference behaviour,
including the m() measure on the y-as-vowel rule).

Only lower-case ASCII words are stemmed; anything containing a non-letter
(years, accession ids) is returned unchanged, which is what bibliographic
search needs — ``2001`` must stay ``2001``.
"""

from __future__ import annotations

_VOWELS = "aeiou"


def _is_consonant(word: str, index: int) -> bool:
    """Porter's cons(i): 'y' is a consonant only after a vowel position."""
    char = word[index]
    if char in _VOWELS:
        return False
    if char == "y":
        if index == 0:
            return True
        return not _is_consonant(word, index - 1)
    return True


def _measure(stem: str) -> int:
    """Porter's m(): number of VC sequences in the stem."""
    forms = []
    for index in range(len(stem)):
        forms.append("c" if _is_consonant(stem, index) else "v")
    shape = "".join(forms)
    # collapse runs, then count "vc" transitions
    collapsed = []
    for symbol in shape:
        if not collapsed or collapsed[-1] != symbol:
            collapsed.append(symbol)
    return "".join(collapsed).count("vc")


def _contains_vowel(stem: str) -> bool:
    return any(not _is_consonant(stem, index) for index in range(len(stem)))


def _ends_double_consonant(word: str) -> bool:
    if len(word) < 2 or word[-1] != word[-2]:
        return False
    return _is_consonant(word, len(word) - 1)


def _ends_cvc(word: str) -> bool:
    """True for consonant-vowel-consonant ending where the last consonant
    is not w, x or y (Porter's *o condition)."""
    if len(word) < 3:
        return False
    if not (_is_consonant(word, len(word) - 3)
            and not _is_consonant(word, len(word) - 2)
            and _is_consonant(word, len(word) - 1)):
        return False
    return word[-1] not in "wxy"


def _replace_suffix(word: str, suffix: str, replacement: str,
                    min_measure: int) -> str | None:
    """Replace *suffix* when the remaining stem has m() > *min_measure*.

    Returns the new word, or ``None`` when the rule does not fire.
    """
    if not word.endswith(suffix):
        return None
    stem = word[: len(word) - len(suffix)]
    if _measure(stem) > min_measure:
        return stem + replacement
    return word  # suffix matched but condition failed: rule consumed


def _step_1a(word: str) -> str:
    if word.endswith("sses"):
        return word[:-2]
    if word.endswith("ies"):
        return word[:-2]
    if word.endswith("ss"):
        return word
    if word.endswith("s"):
        return word[:-1]
    return word


def _step_1b(word: str) -> str:
    if word.endswith("eed"):
        stem = word[:-3]
        if _measure(stem) > 0:
            return word[:-1]
        return word
    flag = False
    if word.endswith("ed"):
        stem = word[:-2]
        if _contains_vowel(stem):
            word = stem
            flag = True
    elif word.endswith("ing"):
        stem = word[:-3]
        if _contains_vowel(stem):
            word = stem
            flag = True
    if not flag:
        return word
    if word.endswith(("at", "bl", "iz")):
        return word + "e"
    if _ends_double_consonant(word) and word[-1] not in "lsz":
        return word[:-1]
    if _measure(word) == 1 and _ends_cvc(word):
        return word + "e"
    return word


def _step_1c(word: str) -> str:
    if word.endswith("y") and _contains_vowel(word[:-1]):
        return word[:-1] + "i"
    return word


_STEP2_RULES = [
    ("ational", "ate"), ("tional", "tion"), ("enci", "ence"),
    ("anci", "ance"), ("izer", "ize"), ("abli", "able"), ("alli", "al"),
    ("entli", "ent"), ("eli", "e"), ("ousli", "ous"), ("ization", "ize"),
    ("ation", "ate"), ("ator", "ate"), ("alism", "al"), ("iveness", "ive"),
    ("fulness", "ful"), ("ousness", "ous"), ("aliti", "al"),
    ("iviti", "ive"), ("biliti", "ble"),
]

_STEP3_RULES = [
    ("icate", "ic"), ("ative", ""), ("alize", "al"), ("iciti", "ic"),
    ("ical", "ic"), ("ful", ""), ("ness", ""),
]

_STEP4_SUFFIXES = [
    "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
    "ment", "ent", "ion", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
]


def _apply_rule_list(word: str, rules: list[tuple[str, str]]) -> str:
    for suffix, replacement in rules:
        if word.endswith(suffix):
            result = _replace_suffix(word, suffix, replacement, 0)
            assert result is not None
            return result
    return word


def _step_4(word: str) -> str:
    for suffix in _STEP4_SUFFIXES:
        if word.endswith(suffix):
            stem = word[: len(word) - len(suffix)]
            if _measure(stem) <= 1:
                return word
            if suffix == "ion" and stem and stem[-1] not in "st":
                return word
            return stem
    return word


def _step_5a(word: str) -> str:
    if word.endswith("e"):
        stem = word[:-1]
        measure = _measure(stem)
        if measure > 1 or (measure == 1 and not _ends_cvc(stem)):
            return stem
    return word


def _step_5b(word: str) -> str:
    if word.endswith("ll") and _measure(word) > 1:
        return word[:-1]
    return word


def porter_stem(token: str) -> str:
    """Stem one lower-case token with the Porter algorithm.

    Tokens shorter than three characters or containing non-letters are
    returned unchanged (the reference implementation's convention).
    """
    if len(token) <= 2 or not token.isalpha() or not token.isascii():
        return token
    word = _step_1a(token)
    word = _step_1b(word)
    word = _step_1c(word)
    word = _apply_rule_list(word, _STEP2_RULES)
    word = _apply_rule_list(word, _STEP3_RULES)
    word = _step_4(word)
    word = _step_5a(word)
    word = _step_5b(word)
    return word
