"""§7.3 FSLCA comparison + related-work ranking models.

The paper compares GKS against MESSIAH's FSLCA on QI1/QI2/QM1/QM2: the
top GKS node should appear in the FSLCA result set where a sensible
target type exists, while GKS keeps answering when FSLCA has nothing.
The second half ranks the same responses with XRank- and XSEarch-style
models, extending ablation A2 with the related-work baselines the paper
argues are insufficient for GKS (§5).
"""

from __future__ import annotations

import pytest

from repro.baselines.fslca import fslca
from repro.baselines.ranking_models import xrank_ranker, xsearch_ranker
from repro.core.ranking import rank_node
from repro.eval.metrics import response_rank_score
from repro.eval.reporting import render_table
from repro.eval.runner import engine_for
from repro.eval.workload import by_id

FSLCA_QUERIES = ["QI1", "QI2", "QM1", "QM2"]


@pytest.mark.parametrize("qid", FSLCA_QUERIES)
def test_fslca_speed(qid, benchmark):
    workload = by_id(qid)
    engine = engine_for(workload.dataset)
    query = engine.parse_query(workload.text)
    result = benchmark(lambda: fslca(engine.repository, engine.index,
                                     query))
    assert result is not None


def test_fslca_comparison_report(results_writer, benchmark):
    def measure():
        rows = []
        for qid in FSLCA_QUERIES:
            workload = by_id(qid)
            engine = engine_for(workload.dataset)
            response = engine.search(workload.text, s=1)
            result = fslca(engine.repository, engine.index,
                           engine.parse_query(workload.text))
            top_in_fslca = (bool(response)
                            and response[0].dewey in set(result.nodes))
            rows.append((qid, len(response), len(result),
                         result.target.tag if result.target else "-",
                         "yes" if top_in_fslca else "no",
                         len(result.forgiven_keywords)))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    results_writer("sec73_fslca", render_table(
        ["Query", "#GKS s=1", "#FSLCA", "target type",
         "GKS top ∈ FSLCA", "forgiven"],
        rows, title="§7.3 — GKS vs FSLCA (MESSIAH-style baseline)"))

    by_qid = {row[0]: row for row in rows}
    # the paper's observation: the top GKS node appears in the FSLCA set
    # for the QI queries
    assert by_qid["QI1"][4] == "yes"
    # and GKS never returns fewer nodes than FSLCA
    for row in rows:
        assert row[1] >= row[2]


def test_ranking_models_report(results_writer, benchmark):
    from repro.eval.compare import compare_responses

    def measure():
        rows = []
        for qid in ("QS4", "QD2", "QD4", "QM4", "QI2"):
            workload = by_id(qid)
            engine = engine_for(workload.dataset)
            flow = engine.search(workload.text, s=1)
            scores = [response_rank_score(flow)]
            taus = []
            for ranker in (xrank_ranker, xsearch_ranker):
                response = engine.search(workload.text, s=1,
                                         ranker=ranker)
                scores.append(response_rank_score(response))
                taus.append(compare_responses(flow,
                                              response).kendall_tau)
            rows.append((qid, *scores, *(f"{tau:.2f}" for tau in taus)))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    results_writer("sec5_ranking_models", render_table(
        ["Query", "potential flow", "XRank-style", "XSEarch-style",
         "τ vs XRank", "τ vs XSEarch"],
        rows, title="§5 — ranking-model comparison (rank score + "
                    "Kendall τ order agreement)"))
    flow_mean = sum(row[1] for row in rows) / len(rows)
    xrank_mean = sum(row[2] for row in rows) / len(rows)
    assert flow_mean >= xrank_mean - 1e-9
