"""Comparing rankings and result sets quantitatively.

Used by the ranking ablations to say *how different* two rankers are,
not just which one wins the rank-score metric:

* :func:`jaccard` — overlap of two result sets;
* :func:`kendall_tau` — rank correlation of two orderings over their
  common items (τ ∈ [−1, 1]; 1 = identical order, −1 = reversed);
* :func:`overlap_at` — fraction of shared items in the top-k heads;
* :func:`compare_responses` — the bundle, straight from two
  :class:`GKSResponse` objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Sequence

from repro.errors import ValidationError
from repro.core.results import GKSResponse


def jaccard(left: Sequence[Hashable], right: Sequence[Hashable]) -> float:
    """|L ∩ R| / |L ∪ R| (1.0 for two empty sets)."""
    left_set, right_set = set(left), set(right)
    union = left_set | right_set
    if not union:
        return 1.0
    return len(left_set & right_set) / len(union)


def kendall_tau(left: Sequence[Hashable],
                right: Sequence[Hashable]) -> float:
    """Kendall's τ-a over the items present in *both* rankings.

    Fewer than two common items yield 1.0 (there is nothing to
    disagree about).  O(c²) over the common items — fine at response
    scale.
    """
    left_rank = {item: position for position, item in enumerate(left)}
    right_rank = {item: position for position, item in enumerate(right)}
    common = [item for item in left if item in right_rank]
    if len(common) < 2:
        return 1.0

    concordant = discordant = 0
    for i in range(len(common)):
        for j in range(i + 1, len(common)):
            a, b = common[i], common[j]
            left_order = left_rank[a] - left_rank[b]
            right_order = right_rank[a] - right_rank[b]
            product = left_order * right_order
            if product > 0:
                concordant += 1
            elif product < 0:
                discordant += 1
    pairs = len(common) * (len(common) - 1) / 2
    return (concordant - discordant) / pairs


def overlap_at(left: Sequence[Hashable], right: Sequence[Hashable],
               k: int) -> float:
    """|top-k(L) ∩ top-k(R)| / k."""
    if k < 1:
        raise ValidationError(f"k must be positive: {k}")
    head_left = set(list(left)[:k])
    head_right = set(list(right)[:k])
    return len(head_left & head_right) / k


@dataclass(frozen=True)
class RankingComparison:
    jaccard: float
    kendall_tau: float
    overlap_at_5: float
    left_size: int
    right_size: int


def compare_responses(left: GKSResponse,
                      right: GKSResponse) -> RankingComparison:
    """Set and order agreement between two responses."""
    left_ids = left.deweys
    right_ids = right.deweys
    return RankingComparison(
        jaccard=jaccard(left_ids, right_ids),
        kendall_tau=kendall_tau(left_ids, right_ids),
        overlap_at_5=overlap_at(left_ids, right_ids, 5)
        if left_ids and right_ids else 0.0,
        left_size=len(left_ids),
        right_size=len(right_ids))
