"""Tests for the extended CLI subcommands (topk/schema/facet/xpath/JSON)."""

import pytest

from repro.cli import main


@pytest.fixture
def xml_corpus(tmp_path):
    path = tmp_path / "library.xml"
    path.write_text(
        "<lib>"
        "<book><title>Alpha</title><year>1999</year>"
        "<author>Ann</author><author>Bob</author></book>"
        "<book><title>Beta</title><year>2005</year>"
        "<author>Ann</author><author>Cyd</author></book>"
        "</lib>")
    return path


@pytest.fixture
def json_corpus(tmp_path):
    path = tmp_path / "courses.json"
    path.write_text(
        '{"catalog": ['
        '{"name": "Data Mining", "students": ["Karen", "Mike"]},'
        '{"name": "AI", "students": ["Karen", "Zoe"]}]}')
    return path


class TestTopK:
    def test_topk_prints_k_results(self, xml_corpus, capsys):
        assert main(["topk", str(xml_corpus), "-q", "ann", "-k", "1"]) == 0
        out = capsys.readouterr().out
        assert out.count("score=") == 1

    def test_topk_header(self, xml_corpus, capsys):
        main(["topk", str(xml_corpus), "-q", "ann", "-k", "2"])
        assert "top 2" in capsys.readouterr().out


class TestSchema:
    def test_schema_lists_types(self, xml_corpus, capsys):
        assert main(["schema", str(xml_corpus)]) == 0
        out = capsys.readouterr().out
        assert "lib/book -> (author+" in out
        assert "#PCDATA" in out


class TestFacet:
    def test_facet_by_year(self, xml_corpus, capsys):
        assert main(["facet", str(xml_corpus), "-q", "ann",
                     "-c", "year"]) == 0
        out = capsys.readouterr().out
        assert "1999" in out and "2005" in out

    def test_facet_missing_column(self, xml_corpus, capsys):
        main(["facet", str(xml_corpus), "-q", "ann", "-c", "publisher"])
        assert "no values" in capsys.readouterr().out


class TestXPath:
    def test_xpath_selects_and_counts(self, xml_corpus, capsys):
        assert main(["xpath", str(xml_corpus), "-p",
                     "book[author='Bob']/title"]) == 0
        out = capsys.readouterr().out
        assert "<title>Alpha</title>" in out
        assert "-- 1 node(s)" in out


class TestJSONIngestion:
    def test_search_over_json_file(self, json_corpus, capsys):
        assert main(["search", str(json_corpus), "-q", "karen mike",
                     "-s", "2"]) == 0
        out = capsys.readouterr().out
        assert "1 node(s)" in out

    def test_explain_flag(self, json_corpus, capsys):
        main(["search", str(json_corpus), "-q", "karen", "--explain"])
        assert "rank =" in capsys.readouterr().out

    def test_mixed_xml_and_json(self, xml_corpus, json_corpus, capsys):
        main(["search", str(xml_corpus), str(json_corpus), "-q", "karen"])
        out = capsys.readouterr().out
        assert "node(s) for" in out

    def test_di_over_json(self, json_corpus, capsys):
        main(["di", str(json_corpus), "-q", "karen mike", "-s", "2"])
        assert "Data Mining" in capsys.readouterr().out
