"""The two node hash tables of the GKS index (paper §2.4).

* ``entityHash`` keeps the Dewey ids of entity nodes,
* ``elementHash`` keeps the Dewey ids of repeating and connecting nodes.

"Both hash tables also store the number of direct children each node has.
This information is used while computing the rank of a node."  An element
that is both an entity node and a repeating node appears in both tables.

The two lookup functions of the paper are provided verbatim: ``isEntity``
and ``isElement`` return the direct-child count when the node is present and
``None`` otherwise.  An element found in *neither* table is an attribute
node — the search engine uses this to lift LCP candidates off attribute
nodes (Def 2.1.1), and the ranker uses the child counts to split potential.
"""

from __future__ import annotations

from typing import Iterator

from repro.index.categorize import CategoryRecord, NodeCategory
from repro.xmltree.dewey import Dewey, ancestors_of


class NodeHashes:
    """``entityHash`` + ``elementHash`` with direct-child counts."""

    def __init__(self) -> None:
        self._entity: dict[Dewey, int] = {}
        self._element: dict[Dewey, int] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_record(self, record: CategoryRecord) -> None:
        """File one categorization record into the right table(s)."""
        if record.category is NodeCategory.ENTITY:
            self._entity[record.dewey] = record.child_count
            if record.is_repeating:
                self._element[record.dewey] = record.child_count
        elif record.category in (NodeCategory.REPEATING,
                                 NodeCategory.CONNECTING):
            self._element[record.dewey] = record.child_count
        # attribute nodes are deliberately kept out of both tables

    @classmethod
    def from_mappings(cls, entity: dict[Dewey, int],
                      element: dict[Dewey, int]) -> "NodeHashes":
        hashes = cls()
        hashes._entity = dict(entity)
        hashes._element = dict(element)
        return hashes

    # ------------------------------------------------------------------
    # The paper's two functions
    # ------------------------------------------------------------------
    def is_entity(self, dewey: Dewey) -> int | None:
        """Direct-child count when *dewey* is an entity node, else None."""
        return self._entity.get(dewey)

    def is_element(self, dewey: Dewey) -> int | None:
        """Direct-child count when *dewey* is a repeating/connecting node."""
        return self._element.get(dewey)

    # ------------------------------------------------------------------
    # Derived lookups used by search and ranking
    # ------------------------------------------------------------------
    def child_count(self, dewey: Dewey) -> int | None:
        """Direct-child count for any indexed (non-attribute) element."""
        count = self._entity.get(dewey)
        if count is None:
            count = self._element.get(dewey)
        return count

    def is_attribute(self, dewey: Dewey) -> bool:
        """True when the element is in neither table (i.e. it is an AN).

        Only meaningful for ids that belong to real elements: unknown ids
        also return True.
        """
        return dewey not in self._entity and dewey not in self._element

    def nearest_entity(self, dewey: Dewey) -> Dewey | None:
        """Nearest entity ancestor-or-self of *dewey* (LCE candidate)."""
        if dewey in self._entity:
            return dewey
        for ancestor in ancestors_of(dewey):
            if ancestor in self._entity:
                return ancestor
        return None

    def entity_ancestors(self, dewey: Dewey) -> Iterator[Dewey]:
        """All entity ancestors-or-self, nearest first."""
        if dewey in self._entity:
            yield dewey
        for ancestor in ancestors_of(dewey):
            if ancestor in self._entity:
                yield ancestor

    # ------------------------------------------------------------------
    @property
    def entity_count(self) -> int:
        return len(self._entity)

    @property
    def element_count(self) -> int:
        return len(self._element)

    @property
    def entity_table(self) -> dict[Dewey, int]:
        return dict(self._entity)

    @property
    def element_table(self) -> dict[Dewey, int]:
        return dict(self._element)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<NodeHashes entities={len(self._entity)} "
                f"elements={len(self._element)}>")
