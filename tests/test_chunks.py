"""Tests for Fig. 2(b)-style response chunks."""

import pytest

from repro.core.chunks import chunk_keep_set, response_chunk
from repro.core.engine import GKSEngine
from repro.datasets.registry import load_dataset


@pytest.fixture(scope="module")
def engine():
    return GKSEngine(load_dataset("figure2a"))


@pytest.fixture(scope="module")
def response(engine):
    # Example 3's intent without the tag keyword, so pruning is visible
    return engine.search("karen mike john harry", s=1)


class TestFigure2b:
    def test_matched_students_kept_others_pruned(self, engine, response):
        ai_course = next(node for node in response
                         if node.dewey == (0, 1, 1, 2))
        chunk = engine.response_chunk(ai_course)
        assert "Karen" in chunk and "Mike" in chunk
        assert "Serena" not in chunk and "Peter" not in chunk

    def test_context_attribute_kept(self, engine, response):
        ai_course = next(node for node in response
                         if node.dewey == (0, 1, 1, 2))
        chunk = engine.response_chunk(ai_course)
        assert "<Name>AI</Name>" in chunk

    def test_full_match_keeps_everything_matched(self, engine, response):
        dm_course = next(node for node in response
                         if node.dewey == (0, 1, 1, 0))
        chunk = engine.response_chunk(dm_course)
        for student in ("Karen", "Mike", "John"):
            assert student in chunk

    def test_tag_keyword_keeps_all_instances(self, engine):
        # the tag keyword 'student' matches every Student element, so
        # nothing is pruned — keyword semantics, not a bug
        resp = engine.search("student karen", s=1)
        ai_course = next(node for node in resp
                         if node.dewey == (0, 1, 1, 2))
        chunk = engine.response_chunk(ai_course)
        assert "Serena" in chunk

    def test_keep_set_paths_are_within_result(self, engine, response):
        from repro.xmltree.dewey import is_ancestor_or_self

        node = response[0]
        query = engine.parse_query(" ".join(node.matched_keywords))
        keep = chunk_keep_set(engine.index, query, node)
        for dewey in keep:
            assert is_ancestor_or_self(node.dewey, dewey)
            assert dewey != node.dewey

    def test_missing_node_handled(self, engine, response):
        from repro.core.results import RankedNode

        ghost = RankedNode(dewey=(9, 9), score=1.0, distinct_keywords=1,
                           matched_keywords=("karen",), is_lce=False,
                           estimated_keywords=1, breakdown=None)
        assert "missing node" in response_chunk(
            engine.repository, engine.index,
            engine.parse_query("karen"), ghost)

    def test_chunk_is_well_formed_xml(self, engine, response):
        from repro.xmltree.parser import parse_document

        chunk = engine.response_chunk(response[0])
        reparsed = parse_document(chunk)
        assert reparsed.root.tag == "Course"
