"""Tests for exploration sessions and response grouping."""

import pytest

from repro.core.engine import GKSEngine
from repro.core.grouping import dominant_group, group_by_tag
from repro.core.session import ExplorationSession
from repro.datasets.registry import load_dataset
from repro.errors import QueryError
from repro.eval.runner import build_hybrid_repository
from repro.eval.workload import HYBRID_QUERY


@pytest.fixture(scope="module")
def hybrid_engine():
    return GKSEngine(build_hybrid_repository())


@pytest.fixture(scope="module")
def dblp_engine():
    return GKSEngine(load_dataset("dblp"))


class TestGrouping:
    def test_hybrid_response_splits_into_two_groups(self, hybrid_engine):
        response = hybrid_engine.search(HYBRID_QUERY, s=2)
        groups = group_by_tag(hybrid_engine.repository, response)
        labels = {group.label: len(group) for group in groups}
        assert labels == {"article": 5, "inproceedings": 3}

    def test_groups_ordered_by_best_member(self, hybrid_engine):
        response = hybrid_engine.search(HYBRID_QUERY, s=2)
        groups = group_by_tag(hybrid_engine.repository, response)
        assert groups[0].label == "article"   # §7.6: SIGMOD ranked first
        scores = [group.best_score for group in groups]
        assert scores == sorted(scores, reverse=True)

    def test_rank_order_preserved_inside_groups(self, hybrid_engine):
        response = hybrid_engine.search(HYBRID_QUERY, s=2)
        for group in group_by_tag(hybrid_engine.repository, response):
            keys = [node.sort_key() for node in group]
            assert keys == sorted(keys)

    def test_full_path_labels(self, hybrid_engine):
        response = hybrid_engine.search(HYBRID_QUERY, s=2)
        groups = group_by_tag(hybrid_engine.repository, response,
                              full_path=True)
        assert any(group.label.startswith("collection/")
                   for group in groups)

    def test_dominant_group(self, dblp_engine):
        response = dblp_engine.search(
            '"Peter Buneman" "Wenfei Fan" "Scott Weinstein"', s=1)
        group = dominant_group(dblp_engine.repository, response)
        assert group is not None
        assert group.label in ("inproceedings", "article")

    def test_empty_response_has_no_groups(self, dblp_engine):
        response = dblp_engine.search("zzzzz")
        assert group_by_tag(dblp_engine.repository, response) == []
        assert dominant_group(dblp_engine.repository, response) is None


class TestSession:
    def test_run_accumulates_steps(self, dblp_engine):
        session = ExplorationSession(dblp_engine)
        session.run('"Dimitrios Georgakopoulos" "Joe D. Morrison"')
        assert len(session) == 1
        assert session.current.result_count > 0
        assert session.current.insights is not None

    def test_refine_applies_suggestion(self, dblp_engine):
        session = ExplorationSession(dblp_engine)
        first = session.run(
            '"Dimitrios Georgakopoulos" "Joe D. Morrison"')
        assert first.refinements
        second = session.refine(0)
        assert len(session) == 2
        assert "refined" in second.note

    def test_qd1_session_reaches_rusinkiewicz(self, dblp_engine):
        """The §7.4 walk as a session: QD1 → expansion → 10 articles."""
        session = ExplorationSession(dblp_engine)
        step = session.run(
            '"Dimitrios Georgakopoulos" "Joe D. Morrison"')
        expansion = next(
            (number for number, refinement
             in enumerate(step.refinements)
             if "rusinkiewicz" in " ".join(refinement.keywords)), None)
        assert expansion is not None
        refined = session.refine(expansion)
        joint = [node for node in refined.response
                 if "georgakopoulo" in " ".join(node.matched_keywords)
                 and "rusinkiewicz" in " ".join(node.matched_keywords)]
        assert len(joint) >= 10

    def test_drill_down_uses_insight_keywords(self, dblp_engine):
        session = ExplorationSession(dblp_engine)
        session.run('"Prithviraj Banerjee"')
        step = session.drill_down()
        assert "drill-down" in step.note
        assert step.result_count > 0

    def test_back_rewinds(self, dblp_engine):
        session = ExplorationSession(dblp_engine)
        session.run("codd")
        session.run("gray")
        current = session.back()
        assert len(session) == 1
        assert current.query.raw == "codd"

    def test_back_at_start_fails(self, dblp_engine):
        session = ExplorationSession(dblp_engine)
        session.run("codd")
        with pytest.raises(QueryError):
            session.back()

    def test_current_before_run_fails(self, dblp_engine):
        with pytest.raises(QueryError):
            ExplorationSession(dblp_engine).current

    def test_refine_out_of_range(self, dblp_engine):
        session = ExplorationSession(dblp_engine)
        session.run("codd")
        with pytest.raises(QueryError):
            session.refine(99)

    def test_transcript_mentions_each_step(self, dblp_engine):
        session = ExplorationSession(dblp_engine)
        session.run("codd", note="start")
        session.drill_down()
        text = session.transcript()
        assert "step 1" in text and "step 2" in text
        assert "[start]" in text


class TestProfileBreakdown:
    def test_stage_times_sum_to_total(self, dblp_engine):
        response = dblp_engine.search('"E. F. Codd"')
        profile = response.profile
        stages = sum(profile.stage_breakdown().values())
        assert stages == pytest.approx(profile.seconds, rel=0.05)

    def test_all_stages_non_negative(self, dblp_engine):
        profile = dblp_engine.search("codd").profile
        for value in profile.stage_breakdown().values():
            assert value >= 0
