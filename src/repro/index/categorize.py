"""GKS node categorization model (paper §2.2, Defs 2.1.1–2.1.4).

Every element node is placed in one of four categories based purely on the
structure of its own subtree (instance level — no schema needed):

* **Attribute node (AN)** — the element's only content is its text value and
  it has no same-label sibling.  "The parent node of an attribute node is
  considered the lowest ancestor for keyword(s) in its value."
* **Repeating node (RN)** — the element has at least one sibling with the
  same label (``u*``).  An element that directly contains its value *and*
  has same-label siblings is an RN, not an AN (the ``<Student>`` rule).
* **Entity node (EN)** — the lowest common ancestor of a set of attribute
  nodes and multiple instances of a repeating node, where the attribute
  nodes do not occur inside any of those repeating nodes.
* **Connecting node (CN)** — everything else.

A node can be both EN and RN (``<Course>`` in Fig. 2(a)); the category field
carries the *primary* category and :attr:`CategoryRecord.is_repeating`
preserves the RN flag, mirroring the paper's "its entry is present in both
the hash tables".

Entity-node rule, operationally (see DESIGN.md §2): ``v`` is an EN iff it has

1. a *qualifying attribute* — an AN descendant reachable from ``v`` without
   crossing a repeating node, and
2. a repeating group whose LCA ``w`` (the parent of the group) satisfies
   ``LCA(attribute, w) == v``: either ``w == v`` (the group are ``v``'s own
   children) or the attribute and the group live under different children
   of ``v``.

This reproduces all of the paper's examples: ``<Area>`` (attr ``Name``,
groups under connecting ``<Courses>``) is EN; ``<Courses>`` is CN (no
attribute); a single-author DBLP ``<article>`` is CN (§7.2).

The classifier runs in a single pass in document order (XML arrives
pre-order).  A subtlety: a node's RN status depends on *later* same-label
siblings, so a node's record is only emitted once its parent closes — still
one pass, with O(depth · fan-out) buffered state.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterator

from repro.xmltree.dewey import Dewey
from repro.xmltree.node import XMLNode


class NodeCategory(str, Enum):
    """Primary category of an XML element (Defs 2.1.1–2.1.4)."""

    ATTRIBUTE = "AN"
    REPEATING = "RN"
    ENTITY = "EN"
    CONNECTING = "CN"


@dataclass(frozen=True)
class CategoryRecord:
    """Categorization result for one element node."""

    dewey: Dewey
    tag: str
    category: NodeCategory
    is_repeating: bool
    child_count: int

    @property
    def is_entity(self) -> bool:
        return self.category is NodeCategory.ENTITY


@dataclass(frozen=True)
class _Partial:
    """Category info of a closed element, pending its RN resolution."""

    dewey: Dewey
    tag: str
    is_entity: bool
    is_attribute_shape: bool
    has_qualifying_attr: bool
    has_group: bool
    child_count: int

    def finalize(self, repeated: bool) -> CategoryRecord:
        if self.is_entity:
            category = NodeCategory.ENTITY
        elif repeated:
            category = NodeCategory.REPEATING
        elif self.is_attribute_shape:
            category = NodeCategory.ATTRIBUTE
        else:
            category = NodeCategory.CONNECTING
        return CategoryRecord(dewey=self.dewey, tag=self.tag,
                              category=category, is_repeating=repeated,
                              child_count=self.child_count)


class _Frame:
    """Per-open-element state while streaming in document order."""

    __slots__ = ("dewey", "tag", "child_tags", "has_text", "pending")

    def __init__(self, dewey: Dewey, tag: str) -> None:
        self.dewey = dewey
        self.tag = tag
        self.child_tags: dict[str, int] = {}
        self.has_text = False
        self.pending: list[_Partial] = []


class StreamingCategorizer:
    """Single-pass categorizer fed with start/text/end callbacks.

    Call :meth:`start` when an element opens, :meth:`text` for character
    data, :meth:`end` when it closes.  :meth:`end` returns the records it
    could finalize: the closed element's *children* (their sibling counts
    are now complete), plus — when the root closes — the root itself.
    """

    def __init__(self) -> None:
        self._stack: list[_Frame] = []

    @property
    def depth(self) -> int:
        return len(self._stack)

    def start(self, dewey: Dewey, tag: str) -> None:
        if self._stack:
            parent = self._stack[-1]
            parent.child_tags[tag] = parent.child_tags.get(tag, 0) + 1
        self._stack.append(_Frame(dewey, tag))

    def text(self, content: str) -> None:
        if self._stack and content.strip():
            self._stack[-1].has_text = True

    def end(self) -> list[CategoryRecord]:
        frame = self._stack.pop()
        records, partial = _close_frame(frame)
        if self._stack:
            self._stack[-1].pending.append(partial)
        else:
            records.append(partial.finalize(repeated=False))
        return records


def _close_frame(frame: _Frame) -> tuple[list[CategoryRecord], _Partial]:
    """Finalize the closed frame's children; summarise the frame itself."""
    own_group = any(count >= 2 for count in frame.child_tags.values())
    qual_attr_children: set[int] = set()
    group_children: set[int] = set()
    records: list[CategoryRecord] = []

    for ordinal, child in enumerate(frame.pending):
        repeated = frame.child_tags[child.tag] >= 2
        records.append(child.finalize(repeated))
        if repeated:
            group_children.add(ordinal)
        elif child.is_attribute_shape or child.has_qualifying_attr:
            # Attributes propagate upward through non-repeating children
            # only: an AN inside a repeating node describes that repetition,
            # not the ancestor's context.
            qual_attr_children.add(ordinal)
        if child.has_group:
            group_children.add(ordinal)

    is_attribute_shape = not frame.pending and frame.has_text
    is_entity = bool(qual_attr_children) and (
        own_group or any(g != a for g in group_children
                         for a in qual_attr_children))

    partial = _Partial(
        dewey=frame.dewey, tag=frame.tag, is_entity=is_entity,
        is_attribute_shape=is_attribute_shape,
        has_qualifying_attr=bool(qual_attr_children) or is_attribute_shape,
        has_group=own_group or bool(group_children),
        child_count=len(frame.pending))
    return records, partial


def categorize_tree(root: XMLNode) -> dict[Dewey, CategoryRecord]:
    """Categorize every element of a materialised tree.

    Drives the same :class:`StreamingCategorizer` over the tree, so there
    is exactly one categorization semantics in the library.  Uses an
    explicit stack — document depth is not limited by Python's recursion
    limit.
    """
    categorizer = StreamingCategorizer()
    records: dict[Dewey, CategoryRecord] = {}
    stack: list[tuple[XMLNode, bool]] = [(root, False)]
    while stack:
        node, closing = stack.pop()
        if closing:
            for record in categorizer.end():
                records[record.dewey] = record
            continue
        categorizer.start(node.dewey, node.tag)
        if node.has_text:
            assert node.text is not None
            categorizer.text(node.text)
        stack.append((node, True))
        stack.extend((child, False) for child in reversed(node.children))
    return records


def iter_categories(root: XMLNode) -> Iterator[CategoryRecord]:
    """Yield category records for a tree in document order."""
    records = categorize_tree(root)
    for node in root.iter_subtree():
        yield records[node.dewey]
