"""Unit tests for the merged list + LCP sliding window (paper §4.1)."""

from repro.core.lcp import LCPList, compute_lcp_list, sliding_blocks
from repro.core.merge import merged_list
from repro.core.query import Query
from repro.index.postings import MergedEntry


def entries(*pairs):
    return [MergedEntry(dewey, keyword) for dewey, keyword in pairs]


class TestSlidingBlocks:
    def test_each_block_has_s_unique_keywords(self):
        sl = entries(((0, 0), 0), ((0, 1), 0), ((0, 2), 1), ((0, 3), 0))
        blocks = sliding_blocks(sl, 2)
        for left, right, _ in blocks:
            keywords = {sl[i].keyword for i in range(left, right + 1)}
            assert len(keywords) >= 2

    def test_blocks_are_minimal_windows(self):
        # duplicates force r to reach past them
        sl = entries(((0, 0), 0), ((0, 1), 0), ((0, 2), 1))
        blocks = sliding_blocks(sl, 2)
        assert [(l, r) for l, r, _ in blocks] == [(0, 2), (1, 2)]

    def test_right_end_is_monotone(self):
        sl = entries(((0, 0), 0), ((0, 1), 1), ((0, 2), 0), ((0, 3), 1))
        rights = [r for _, r, _ in sliding_blocks(sl, 2)]
        assert rights == sorted(rights)

    def test_s_equal_one_blocks_are_singletons(self):
        sl = entries(((0, 0), 0), ((0, 5), 1))
        blocks = sliding_blocks(sl, 1)
        assert [(l, r) for l, r, _ in blocks] == [(0, 0), (1, 1)]
        assert [prefix for _, _, prefix in blocks] == [(0, 0), (0, 5)]

    def test_insufficient_unique_keywords_yields_nothing(self):
        sl = entries(((0, 0), 0), ((0, 1), 0))
        assert sliding_blocks(sl, 2) == []

    def test_cross_document_block_has_empty_prefix(self):
        sl = entries(((0, 0), 0), ((1, 0), 1))
        blocks = sliding_blocks(sl, 2)
        assert blocks == [(0, 1, ())]


class TestLCPList:
    def test_counter_increments_for_repeated_prefix(self):
        sl = entries(((0, 0, 0), 0), ((0, 0, 1), 1), ((0, 0, 2), 0))
        lcp = compute_lcp_list(sl, 2)
        assert lcp.entries[(0, 0)].counter == 2
        assert lcp.estimated_keyword_count((0, 0)) == 3  # s+counter−1

    def test_first_block_positions_recorded(self):
        sl = entries(((0, 0, 0), 0), ((0, 0, 1), 1))
        lcp = compute_lcp_list(sl, 2)
        entry = lcp.entries[(0, 0)]
        assert (entry.first_left, entry.first_right) == (0, 1)

    def test_cross_document_blocks_skipped(self):
        sl = entries(((0, 0), 0), ((1, 0), 1))
        assert len(compute_lcp_list(sl, 2)) == 0

    def test_creation_order_preserved(self):
        sl = entries(((0, 0, 0), 0), ((0, 0, 1), 1), ((0, 1, 0), 0),
                     ((0, 1, 1), 1))
        lcp = compute_lcp_list(sl, 2)
        assert lcp.deweys()[0] == (0, 0)

    def test_contains_and_len(self):
        lcp = LCPList(s=2)
        lcp.file((0, 1), 0, 1)
        assert (0, 1) in lcp and (0, 2) not in lcp
        assert len(lcp) == 1


class TestPaperExample4:
    """Figure 4: SL = did.0.1.0.0, did.0.1.1.0.2, did.0.1.1.0.3,
    did.0.1.1.0.4, did.1.0.1, did.1.0.2 with s=2."""

    SL = entries(
        ((0, 0, 1, 0, 0), 0),
        ((0, 0, 1, 1, 0, 2), 1),
        ((0, 0, 1, 1, 0, 3), 0),
        ((0, 0, 1, 1, 0, 4), 1),
        ((0, 1, 0, 1), 0),
        ((0, 1, 0, 2), 1),
    )
    # (we model 'did' as a real document root component: did=doc 0, and
    #  the paper's 0.1 → (0, 0, 1) etc.)

    def test_lcp_list_matches_figure(self):
        lcp = compute_lcp_list(self.SL, 2)
        assert lcp.entries[(0, 0, 1)].counter == 1
        assert lcp.entries[(0, 0, 1, 1, 0)].counter == 2
        assert lcp.entries[(0,)].counter == 1          # the 'did' entry
        assert lcp.entries[(0, 1, 0)].counter == 1

    def test_estimates_match_figure(self):
        lcp = compute_lcp_list(self.SL, 2)
        assert lcp.estimated_keyword_count((0, 0, 1)) == 2
        assert lcp.estimated_keyword_count((0, 0, 1, 1, 0)) == 3


class TestMergedList:
    def test_merged_list_uses_query_keyword_order(self, figure1_index):
        query = Query.of(["a", "b"])
        sl = merged_list(figure1_index, query)
        deweys = [entry.dewey for entry in sl]
        assert deweys == sorted(deweys)
        keywords = {entry.keyword for entry in sl}
        assert keywords == {0, 1}

    def test_absent_keyword_contributes_nothing(self, figure1_index):
        query = Query.of(["a", "zzz"])
        sl = merged_list(figure1_index, query)
        assert all(entry.keyword == 0 for entry in sl)
