"""Name pools for the bibliographic generators.

The pools mix synthetic names with the exact author names appearing in the
paper's Table 6 query workload, so the reproduction can run the same
queries (QS1–QS4, QD1–QD4) against planted co-authorship structure that
mirrors what the paper reports (e.g. QD2's Example 2: three of the four
authors share articles, the fourth never co-occurs with them).
"""

from __future__ import annotations

# Authors of the SIGMOD Record queries QS1–QS4 (paper Table 6).
QS1_AUTHORS = ["Anthony I. Wasserman", "Lawrence A. Rowe"]
QS2_AUTHORS = ["S. Jerrold Kaplan", "Robert P. Trueblood",
               "David J. DeWitt", "Randy H. Katz"]
QS3_AUTHORS = ["Sakti P. Ghosh", "C. C. Lin", "Timos K. Sellis",
               "David A. Patterson", "Garth A. Gibson", "Randy H. Katz"]
QS4_AUTHORS = ["Barbara T. Blaustein", "Umeshwar Dayal",
               "Alejandro P. Buchmann", "Upen S. Chakravarthy", "M. Hsu",
               "R. Ledin", "Dennis R. McCarthy", "Arnon Rosenthal"]

# Authors of the DBLP queries QD1–QD4 plus the §7.4 refinement case and the
# §7.6 hybrid query.
QD1_AUTHORS = ["Dimitrios Georgakopoulos", "Joe D. Morrison"]
QD2_AUTHORS = ["Peter Buneman", "Wenfei Fan", "Scott Weinstein",
               "Prithviraj Banerjee"]
QD3_AUTHORS = ["E. F. Codd", "Mark F. Hornick", "Frank Manola",
               "Alejandro P. Buchmann", "Dimitrios Georgakopoulos",
               "Joe D. Morrison"]
QD4_AUTHORS = ["E. F. Codd", "Kenneth L. Deckert", "Irving L. Traiger",
               "Vera Watson", "Jim Gray", "Chin-Liang Chang",
               "Nick Roussopoulos", "Jean-Marc Cadiou"]
REFINEMENT_COAUTHOR = "Marek Rusinkiewicz"          # §7.4: 10 joint articles
HYBRID_DBLP_AUTHORS = ["Jean-Marc Meynadier", "Patrick Behm"]      # §7.6
HYBRID_SIGMOD_AUTHORS = ["Lawrence A. Rowe", "Michael Stonebraker"]  # §7.6
DI_COAUTHOR = "Alok N. Choudhary"  # surfaces in Example 2's DI

_FIRST = [
    "Alice", "Benjamin", "Carla", "Daniel", "Elena", "Farid", "Grace",
    "Hiro", "Ingrid", "Jonas", "Katya", "Liang", "Maria", "Nikhil",
    "Olga", "Pedro", "Qing", "Rosa", "Stefan", "Tanvi", "Ulrich",
    "Valeria", "Wei", "Ximena", "Yusuf", "Zofia",
]

_LAST = [
    "Abbott", "Bergström", "Castillo", "Dimitrov", "Endo", "Fischer",
    "Gupta", "Haddad", "Iversen", "Jansen", "Kowalski", "Lindqvist",
    "Moreau", "Nakamura", "Okafor", "Petrov", "Quintero", "Rossi",
    "Schneider", "Takahashi", "Urbina", "Vargas", "Weber", "Xu",
    "Yamamoto", "Zhang",
]


def synthetic_authors() -> list[str]:
    """The full synthetic author pool (|first| × |last| combinations)."""
    return [f"{first} {last}" for first in _FIRST for last in _LAST]


SPEAKERS = [
    "HAMLET", "OPHELIA", "CLAUDIUS", "GERTRUDE", "POLONIUS", "HORATIO",
    "LAERTES", "ROSENCRANTZ", "GUILDENSTERN", "FORTINBRAS", "MACBETH",
    "LADY MACBETH", "BANQUO", "DUNCAN", "PROSPERO", "MIRANDA", "ARIEL",
    "CALIBAN", "OTHELLO", "IAGO", "DESDEMONA", "BRUTUS", "CASSIUS",
]

COUNTRIES = [
    "Laos", "Zimbabwe", "Luxembourg", "Belgium", "Poland", "Spain",
    "Germany", "Thailand", "China", "India", "Brunei", "Albania",
    "Mongolia", "Iceland", "Uruguay", "Senegal", "Jordan", "Nepal",
    "Fiji", "Malta", "Cyprus", "Estonia", "Bolivia", "Ghana", "Oman",
    "Panama", "Qatar", "Rwanda", "Slovenia", "Tunisia",
]

CITIES = [
    "Bruges", "Vientiane", "Harare", "Warsaw", "Madrid", "Berlin",
    "Bangkok", "Beijing", "Mumbai", "Reykjavik", "Montevideo", "Dakar",
    "Amman", "Kathmandu", "Suva", "Valletta", "Nicosia", "Tallinn",
    "La Paz", "Accra", "Muscat", "Havana", "Doha", "Kigali", "Ljubljana",
]

RELIGIONS = ["Muslim", "Buddhism", "Christianity", "Hinduism", "Orthodox",
             "Catholic", "Protestant", "Jewish", "Sikh", "Taoist"]

LANGUAGES = ["Polish", "Spanish", "German", "Chinese", "Thai", "French",
             "English", "Hindi", "Arabic", "Portuguese", "Lao", "Dutch"]

ORGANISM_GENERA = ["Homo", "Mus", "Rattus", "Danio", "Drosophila",
                   "Saccharomyces", "Escherichia", "Bacillus", "Arabidopsis",
                   "Caenorhabditis"]

PROTEIN_DOMAINS = ["Kringle", "Zinc finger", "Homeobox", "Kinase",
                   "Immunoglobulin", "Lectin", "Helicase", "Protease",
                   "Transferase", "Dehydrogenase"]

JOURNALS = ["SIGMOD Record", "TCS", "JACM", "VLDB Journal", "TODS",
            "Science", "Nature", "Bioinformatics", "IBM Research Report",
            "Astronomy Letters"]

BOOKTITLES = ["ICPP", "ICCD", "SIGMOD", "VLDB", "ICDE", "EDBT", "PODS",
              "CIKM", "WWW", "KDD"]
