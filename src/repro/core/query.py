"""Keyword queries.

A GKS query is a set of keywords ``Q = {k1, …, kn}`` plus the threshold
``s``: a node qualifies when its subtree contains at least ``min(s, |Q|)``
distinct query keywords (paper §1.1).  Keywords can be text keywords or
element names, and the paper writes queries with quoted phrases
(``"Peter Buneman" "Wenfei Fan"``); a phrase is sugar — it contributes each
of its tokens as a keyword, analysed with the same pipeline as the index.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import QueryError
from repro.text.analyzer import DEFAULT_ANALYZER, Analyzer


def split_phrases(raw: str) -> list[str]:
    """Split a raw query string on double quotes into phrase/word chunks.

    ``'"Peter Buneman" database 2001'`` →
    ``['Peter Buneman', 'database', '2001']``.  Unbalanced quotes are
    forgiven: the trailing fragment counts as one phrase.
    """
    chunks: list[str] = []
    parts = raw.split('"')
    for offset, part in enumerate(parts):
        part = part.strip()
        if not part:
            continue
        if offset % 2 == 1:  # inside quotes
            chunks.append(part)
        else:
            chunks.extend(part.split())
    return chunks


@dataclass(frozen=True)
class Query:
    """An analysed keyword query.

    Attributes
    ----------
    keywords:
        Distinct analysed keywords, in first-appearance order.
    s:
        Requested threshold; :attr:`effective_s` clamps it to ``|Q|``.
    raw:
        The original query text, for display.
    """

    keywords: tuple[str, ...]
    s: int = 1
    raw: str = ""
    phrases: tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.keywords:
            raise QueryError(
                f"query {self.raw!r} has no keywords after analysis")
        if self.s < 1:
            raise QueryError(f"threshold s must be >= 1, got {self.s}")
        if len(set(self.keywords)) != len(self.keywords):
            raise QueryError(f"duplicate keywords in {self.keywords}")

    @classmethod
    def parse(cls, raw: str, s: int = 1,
              analyzer: Analyzer = DEFAULT_ANALYZER,
              phrases_as_keywords: bool = True) -> "Query":
        """Analyse a raw query string.

        A quoted phrase is one keyword (``"Peter Buneman"`` → the phrase
        keyword ``"peter buneman"``), matching the paper's query sizes
        (|QD2| = 4) — set ``phrases_as_keywords=False`` to flatten phrases
        into their word tokens instead.

        ``s`` follows the paper's experiments: ``1`` returns every node
        containing any query keyword; ``len(query)`` reproduces the
        AND-semantics of LCA techniques.
        """
        phrases = split_phrases(raw)
        seen: set[str] = set()
        keywords: list[str] = []
        for phrase in phrases:
            analyzed = analyzer.analyze(phrase)
            if phrases_as_keywords:
                candidates = [" ".join(analyzed)] if analyzed else []
            else:
                candidates = analyzed
            for keyword in candidates:
                if keyword and keyword not in seen:
                    seen.add(keyword)
                    keywords.append(keyword)
        return cls(keywords=tuple(keywords), s=s, raw=raw,
                   phrases=tuple(phrases))

    @classmethod
    def of(cls, keywords: list[str] | tuple[str, ...], s: int = 1) -> "Query":
        """Build a query from already-analysed keywords (tests, recursion)."""
        return cls(keywords=tuple(dict.fromkeys(keywords)), s=s,
                   raw=" ".join(keywords))

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.keywords)

    @property
    def effective_s(self) -> int:
        """The paper's ``min(s, |Q|)``."""
        return min(self.s, len(self.keywords))

    def with_s(self, s: int) -> "Query":
        """The same keywords under a different threshold."""
        return Query(keywords=self.keywords, s=s, raw=self.raw,
                     phrases=self.phrases)

    def keyword_index(self) -> dict[str, int]:
        """Keyword → position map (positions tag merged-list entries)."""
        return {keyword: index for index, keyword
                in enumerate(self.keywords)}

    def word_set(self) -> frozenset[str]:
        """Every individual word of every keyword (phrases split open).

        DI exclusion works at the word level: an attribute keyword that is
        part of any query phrase does not enter ``Sw_Q``.
        """
        words: set[str] = set()
        for keyword in self.keywords:
            words.update(keyword.split())
        return frozenset(words)

    def __str__(self) -> str:
        return f"Q={{{', '.join(self.keywords)}}} s={self.s}"
