"""Shared LCA machinery for the baseline algorithms.

The SLCA/ELCA baselines ([13], [17] in the paper) operate on the same
inverted index as GKS: per-keyword sorted Dewey posting lists.  This module
holds the pieces they share — closest-posting lookups and the notion of a
*match set* (one posting per keyword).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Sequence

from repro.core.query import Query
from repro.index.builder import GKSIndex
from repro.xmltree.dewey import Dewey, common_prefix, is_ancestor_or_self


def posting_lists(index: GKSIndex, query: Query) -> list[list[Dewey]]:
    """The per-keyword posting lists ``S1 … Sn`` for a query."""
    return [index.postings(keyword) for keyword in query.keywords]


def left_match(postings: Sequence[Dewey], bound: Dewey) -> Dewey | None:
    """``lm``: the rightmost posting ≤ *bound* (None when none exists)."""
    position = bisect_right(postings, bound)
    if position == 0:
        return None
    return postings[position - 1]


def right_match(postings: Sequence[Dewey], bound: Dewey) -> Dewey | None:
    """``rm``: the leftmost posting ≥ *bound* (None when none exists)."""
    position = bisect_left(postings, bound)
    if position == len(postings):
        return None
    return postings[position]


def closest_match(postings: Sequence[Dewey], anchor: Dewey) -> Dewey | None:
    """The posting whose LCA with *anchor* is deepest.

    Xu & Papakonstantinou's key observation: it is always either the left
    or the right neighbour of *anchor* in the sorted list, because Dewey
    order clusters subtrees.
    """
    left = left_match(postings, anchor)
    right = right_match(postings, anchor)
    if left is None:
        return right
    if right is None:
        return left
    left_depth = len(common_prefix(left, anchor))
    right_depth = len(common_prefix(right, anchor))
    return left if left_depth >= right_depth else right


def match_lca(anchor: Dewey,
              other_lists: list[Sequence[Dewey]]) -> Dewey | None:
    """Deepest node containing *anchor* plus one posting from every list.

    Returns ``None`` when some list is empty or the only common ancestor
    would cross documents.
    """
    lca = anchor
    for postings in other_lists:
        closest = closest_match(postings, anchor)
        if closest is None:
            return None
        lca = common_prefix(lca, closest)
        if not lca:
            return None
    return lca


def remove_ancestors(candidates: list[Dewey]) -> list[Dewey]:
    """Keep only nodes with no candidate strictly inside their subtree.

    Sorted-order trick: a node's strict descendants (if any) directly
    follow it in document order, so one pass over the sorted, deduplicated
    list suffices.
    """
    ordered = sorted(set(candidates))
    survivors = []
    for position, dewey in enumerate(ordered):
        if (position + 1 < len(ordered)
                and is_ancestor_or_self(dewey, ordered[position + 1])):
            continue
        survivors.append(dewey)
    return survivors
