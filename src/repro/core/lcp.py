"""Longest-Common-Prefix (LCP) list generation (paper §4.1, Figs 4–6).

The merged list ``SL`` is swept once with a sliding window ``[l, r]``:

* ``r`` grows until the window holds ``s`` *unique* query keywords — the
  paper's ``sU(l, r, s)`` test (Fig. 5);
* the longest common prefix of the block is, by Lemma 6, the common prefix
  of its first and last Dewey ids — the Dewey id of the lowest common
  ancestor of the whole block;
* the prefix is filed into the LCP list; a repeated prefix increments its
  counter ("if a prefix exists in the LCP list, its counter is increased
  by 1"), so a node's estimated keyword count is ``s + counter − 1``;
* then ``l`` advances by one.  Because dropping the leftmost entry can only
  lose uniqueness, the minimal ``r`` is monotone in ``l`` and the sweep is
  O(|SL|) window operations, O(d·|SL|) total.

Blocks whose entries span two documents have no common ancestor and are
skipped (their common prefix is empty).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.core.budget import SearchBudget
from repro.index.postings import MergedEntry
from repro.xmltree.dewey import Dewey, common_prefix


@dataclass
class LCPEntry:
    """One candidate GKS node: an LCP-list row plus its first block."""

    dewey: Dewey
    counter: int = 1
    first_left: int = 0    # SL position of l when the entry was created
    first_right: int = 0   # SL position of r when the entry was created


@dataclass
class LCPList:
    """Ordered LCP list: entries in first-creation order, with counters."""

    s: int
    entries: dict[Dewey, LCPEntry] = field(default_factory=dict)

    def file(self, dewey: Dewey, left: int, right: int) -> tuple[LCPEntry,
                                                                 bool]:
        """Record one block prefix; returns ``(entry, created)``."""
        entry = self.entries.get(dewey)
        if entry is None:
            entry = LCPEntry(dewey=dewey, counter=1, first_left=left,
                             first_right=right)
            self.entries[dewey] = entry
            return entry, True
        entry.counter += 1
        return entry, False

    def estimated_keyword_count(self, dewey: Dewey) -> int:
        """``s + counter − 1`` for one entry (paper §4.1)."""
        return self.s + self.entries[dewey].counter - 1

    def __len__(self) -> int:
        return len(self.entries)

    def __contains__(self, dewey: Dewey) -> bool:
        return dewey in self.entries

    def deweys(self) -> list[Dewey]:
        """Entry ids in first-creation order."""
        return list(self.entries)


def iter_sliding_blocks(sl: list[MergedEntry],
                        s: int) -> Iterator[tuple[int, int, Dewey]]:
    """Lazily generate the minimal ``s``-unique blocks of the sweep.

    The generator form lets a :class:`SearchBudget` interrupt the sweep
    between blocks without computing the tail.
    """
    counts: dict[int, int] = {}
    unique = 0
    right = -1
    for left in range(len(sl)):
        while unique < s and right + 1 < len(sl):
            right += 1
            keyword = sl[right].keyword
            counts[keyword] = counts.get(keyword, 0) + 1
            if counts[keyword] == 1:
                unique += 1
        if unique < s:
            break  # no block with s unique keywords starts at or after left
        yield (left, right,
               common_prefix(sl[left].dewey, sl[right].dewey))
        keyword = sl[left].keyword
        counts[keyword] -= 1
        if counts[keyword] == 0:
            unique -= 1


def sliding_blocks(sl: list[MergedEntry],
                   s: int) -> list[tuple[int, int, Dewey]]:
    """All minimal ``s``-unique blocks as ``(l, r, prefix)`` triples.

    Exposed separately so tests can check the window invariants; cross-
    document blocks are reported with an empty prefix.
    """
    return list(iter_sliding_blocks(sl, s))


def compute_lcp_list(sl: list[MergedEntry], s: int,
                     budget: SearchBudget | None = None) -> LCPList:
    """Sweep ``SL`` and build the LCP list (the candidate GKS nodes).

    With a budget the sweep polls the deadline between blocks and stops
    early when it trips, leaving a coherent partial LCP list.
    """
    lcp = LCPList(s=s)
    total = len(sl)
    for left, right, prefix in iter_sliding_blocks(sl, s):
        if budget is not None and budget.checkpoint("lcp", left, total):
            break
        if prefix:  # same-document block only
            lcp.file(prefix, left, right)
    return lcp
