"""Hypothesis strategies generating random p-documents.

Emits raw XML *strings* using the ``p:`` attribute convention
(``p:type="IND"|"MUX"`` on a distributional element, ``p:p`` weights on
its uncertain children, MUX weights drawn so normalisation paths get
exercised) — strings only, so this module stays at the testing layer
with no upward imports.  The number of uncertain edges per document is
bounded (default 6) to keep the possible-worlds oracle's enumeration
small; keyword text is drawn from a fixed pool disjoint from the
``p:`` marker tokens so queries never collide with the convention's
own indexed attribute-children.

Hypothesis is imported lazily: production imports of ``repro.testing``
must not require it.
"""

from __future__ import annotations

#: Default keyword pool; analyzer-stable words (no stemming collisions).
KEYWORD_POOL = ("apple", "banana", "cherry", "durian", "fig")

#: Element tag pool, equally analyzer-stable and marker-disjoint.
TAG_POOL = ("item", "rec", "entry", "grp", "leaf")

#: Edge probabilities / MUX weights; includes 1.0 and sums > 1 so both
#: the certain-edge and weight-normalisation paths are generated.
PROB_POOL = (0.25, 0.5, 0.75, 1.0)


def pdoc_documents(max_depth: int = 3, max_breadth: int = 3,
                   max_uncertain: int = 6,
                   keywords: tuple[str, ...] = KEYWORD_POOL):
    """Strategy producing one random p-document as an XML string."""
    from hypothesis import strategies as st

    @st.composite
    def _document(draw) -> str:
        budget = [draw(st.integers(min_value=0,
                                   max_value=max_uncertain))]

        def element(depth: int, extra: str = "") -> str:
            tag = draw(st.sampled_from(TAG_POOL))
            text = " ".join(draw(st.lists(st.sampled_from(keywords),
                                          min_size=0, max_size=2)))
            if depth >= max_depth:
                return f"<{tag}{extra}>{text}</{tag}>"
            width = draw(st.integers(min_value=0, max_value=max_breadth))
            attrs = ""
            child_extras = [""] * width
            if width and budget[0] > 0 and draw(st.booleans()):
                kind = draw(st.sampled_from(("IND", "MUX")))
                attrs = f' p:type="{kind}"'
                for position in range(width):
                    if budget[0] > 0 and draw(st.booleans()):
                        budget[0] -= 1
                        prob = draw(st.sampled_from(PROB_POOL))
                        child_extras[position] = f' p:p="{prob}"'
            children = [element(depth + 1, child_extras[position])
                        for position in range(width)]
            body = text + "".join(children)
            return f"<{tag}{attrs}{extra}>{body}</{tag}>"

        return f"<root>{element(0)}</root>"

    return _document()


def pdoc_corpus(max_documents: int = 2, **kwargs):
    """Strategy producing a small list of p-document XML strings."""
    from hypothesis import strategies as st
    return st.lists(pdoc_documents(**kwargs), min_size=1,
                    max_size=max_documents)
