"""Exhaustive-relaxation oracle for the no-but-semantic-match mode.

Re-derives the single-edit relaxation model of
:mod:`repro.semantics.relax` *independently* and applies it literally:
the vocabulary comes from a definition-literal pairwise walk over the
materialised trees (not the counting trick the production pipeline
uses), every candidate rewrite is evaluated with the plain monolithic
search pipeline, and the documented merge/rank rules — dedup per node
keeping the cheapest edit, order by ``(penalty, -score, dewey)`` — are
applied by hand.  Tests cross-validate the engine's relaxed mode
(which runs sharded and over both codecs) against this.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.bruteforce import node_keywords
from repro.core.query import Query
from repro.core.search import search
from repro.index.builder import build_index
from repro.semantics.relax import PENALTIES
from repro.text.analyzer import DEFAULT_ANALYZER, Analyzer
from repro.xmltree.dewey import Dewey
from repro.xmltree.repository import Repository


@dataclass(frozen=True)
class RelaxedHit:
    """One oracle result node with its winning edit's provenance."""

    dewey: Dewey
    score: float
    penalty: float
    op: str
    source: str
    replacement: str | None


def _pairwise_vocabulary(repository: Repository, analyzer: Analyzer
                         ) -> tuple[dict[str, set[str]],
                                    dict[str, set[str]]]:
    """(tag_parents, siblings) by the literal pairwise definitions."""
    tag_parents: dict[str, set[str]] = {}
    siblings: dict[str, set[str]] = {}
    for document in repository:
        queue = [document.root]
        while queue:
            parent = queue.pop()
            queue.extend(parent.children)
            parent_tags = set(analyzer.analyze_tag(parent.tag))
            for child in parent.children:
                for keyword in analyzer.analyze_tag(child.tag):
                    for tag in parent_tags:
                        if tag != keyword:
                            tag_parents.setdefault(keyword,
                                                   set()).add(tag)
            for a in parent.children:
                for b in parent.children:
                    if a is b:
                        continue
                    for k in node_keywords(a, analyzer):
                        for t in node_keywords(b, analyzer):
                            if t != k:
                                siblings.setdefault(k, set()).add(t)
    return tag_parents, siblings


def _candidate_edits(query: Query, tag_parents: dict[str, set[str]],
                     siblings: dict[str, set[str]]
                     ) -> list[tuple[float, str, str, str | None,
                                     tuple[str, ...]]]:
    """All single edits as (penalty, op, source, replacement, keywords)."""
    keywords = query.keywords
    edits = []
    for keyword in keywords:
        for parent in tag_parents.get(keyword, ()):
            if parent not in keywords:
                edits.append((PENALTIES["generalize"], "generalize",
                              keyword, parent,
                              tuple(parent if k == keyword else k
                                    for k in keywords)))
        for term in siblings.get(keyword, ()):
            if term not in keywords:
                edits.append((PENALTIES["substitute"], "substitute",
                              keyword, term,
                              tuple(term if k == keyword else k
                                    for k in keywords)))
        if len(keywords) > 1:
            edits.append((PENALTIES["drop"], "drop", keyword, None,
                          tuple(k for k in keywords if k != keyword)))
    edits.sort(key=lambda edit: (edit[0], edit[1], edit[2], edit[3] or ""))
    deduped: dict[tuple[str, ...], tuple] = {}
    for edit in edits:
        deduped.setdefault(edit[4], edit)
    return sorted(deduped.values(),
                  key=lambda edit: (edit[0], edit[1], edit[2],
                                    edit[3] or ""))


def exhaustive_relaxation(repository: Repository, query: Query,
                          analyzer: Analyzer = DEFAULT_ANALYZER
                          ) -> list[RelaxedHit]:
    """Evaluate every single-edit rewrite and merge by the book.

    The caller is responsible for only asking about queries whose
    strict result is empty (the oracle does not re-check); the answer
    is what a relaxed-mode engine must return, in order.
    """
    tag_parents, siblings = _pairwise_vocabulary(repository, analyzer)
    index = build_index(repository, analyzer=analyzer)
    merged: dict[Dewey, RelaxedHit] = {}
    for penalty, op, source, replacement, keywords in _candidate_edits(
            query, tag_parents, siblings):
        response = search(index, Query.of(keywords, s=query.s))
        for node in response.nodes:
            if node.dewey not in merged:
                merged[node.dewey] = RelaxedHit(
                    dewey=node.dewey, score=node.score, penalty=penalty,
                    op=op, source=source, replacement=replacement)
    return sorted(merged.values(),
                  key=lambda hit: (hit.penalty, -hit.score, hit.dewey))
