"""E10 — §7.5: crowd-sourced feedback, GKS vs SLCA (simulated raters).

The paper asked 40 users to rate 12 queries on a 1–4 scale
(1 = GKS very useful … 4 = SLCA very useful) and reports 430/480 = 89.6%
of ratings on the GKS side.  Humans are replaced by the rater model of
``repro.eval.feedback`` (criteria taken from the paper's discussion); the
reproduced table has the same layout and the headline rate must land in
the same region.
"""

from __future__ import annotations

from repro.eval.reporting import render_table
from repro.eval.runner import feedback_table


def test_feedback_simulation(results_writer, benchmark):
    table = benchmark.pedantic(feedback_table, rounds=1, iterations=1)

    rows = [(qid, *histogram) for qid, histogram in table.rows.items()]
    summary = (f"GKS-better: {table.gks_better}/{table.total_ratings} "
               f"= {table.gks_better_rate:.1%} (paper: 430/480 = 89.6%)")
    results_writer("sec75_feedback", render_table(
        ["Query", "1", "2", "3", "4"], rows,
        title="§7.5 — simulated user ratings (1=GKS very useful … "
              "4=SLCA very useful)") + "\n" + summary)

    assert table.total_ratings == 480
    assert 0.80 <= table.gks_better_rate <= 0.97
