"""Top-k GKS search with bound-based early termination.

The paper's related work cites top-k XML keyword search [6] as the
efficiency frontier; this module brings the idea to GKS.  When a caller
only wants the ``k`` best nodes of ``RQ(s)``, fully ranking hundreds of
response nodes (QI1 returns 8170 in the paper) is wasted work.

The potential-flow rank of a node with ``P`` distinct query keywords is
bounded by ``P²``: flowing potential is conserved — the terminals of one
keyword are disjoint nodes and jointly receive at most the source
potential ``P``; summing over at most ``P`` matched keywords gives
``P²``.  Distinct-keyword counts cost one pair of binary searches per
keyword, so the algorithm:

1. assembles the response node set exactly as :func:`repro.core.search`,
2. counts distinct keywords per node (cheap),
3. processes nodes in decreasing ``P²`` bound, computing exact ranks,
4. stops as soon as the current k-th best score ≥ the next node's bound.

The result equals the head of the full ranking (same sort key), with the
skipped tail never ranked.
"""

from __future__ import annotations

import heapq

from repro.core.budget import SearchBudget
from repro.core.lce import discover_lce
from repro.core.lcp import compute_lcp_list
from repro.core.merge import merged_list
from repro.core.query import Query
from repro.core.ranking import rank_node
from repro.core.results import GKSResponse, RankedNode, SearchProfile
from repro.core.search import Ranker
from repro.errors import ConfigError
from repro.index.builder import GKSIndex
from repro.index.postings import subtree_range
from repro.obs.stats import QueryStats
from repro.obs.trace import NOOP_TRACER, NullTracer, Tracer
from repro.xmltree.dewey import Dewey


def distinct_keyword_count(index: GKSIndex, query: Query,
                           dewey: Dewey) -> int:
    """Number of distinct query keywords in ``subtree(dewey)``."""
    count = 0
    for keyword in query.keywords:
        postings = index.postings(keyword)
        lo, hi = subtree_range(postings, dewey)
        if lo != hi:
            count += 1
    return count


def search_top_k(index: GKSIndex, query: Query, k: int,
                 ranker: Ranker = rank_node,
                 budget: SearchBudget | None = None,
                 tracer: Tracer | NullTracer | None = None) -> GKSResponse:
    """The k highest-ranked nodes of ``RQ(s)``, skipping tail ranking.

    A :class:`SearchBudget` bounds the candidate stages exactly as in
    :func:`repro.core.search.search`; a tripped budget yields the top-k
    of the partially discovered candidate set, flagged ``degraded``.
    Stage timings come from the *tracer*'s clock (see
    :func:`repro.core.search.search`).
    """
    if k < 1:
        raise ConfigError(f"k must be positive: {k}")
    if tracer is None:
        tracer = NOOP_TRACER
    clock = tracer.clock
    effective = query.with_s(query.effective_s)
    if budget is not None:
        budget.start()

    with tracer.span("search_top_k",
                     query=" ".join(effective.keywords),
                     s=effective.s, k=k) as root:
        started = clock()
        with tracer.span("merge") as span:
            sl = merged_list(index, effective, budget=budget)
            span.add("sl_entries", len(sl))
        after_merge = clock()
        with tracer.span("lcp") as span:
            lcp = compute_lcp_list(sl, effective.s, budget=budget)
            span.add("entries", len(lcp))
        after_lcp = clock()
        with tracer.span("lce") as span:
            lce = discover_lce(lcp, sl, index, budget=budget)
            span.add("nodes", len(lce.lce))
        after_lce = clock()
        fallback = lce.fallback_candidates()
        lce_set = set(lce.lce)

        candidates = lce.response_deweys()
        pre_tripped = budget is not None and budget.tripped
        if pre_tripped:
            candidates = candidates[:budget.recovery_k]

        with tracer.span("rank") as rank_span:
            bounded = sorted(
                ((distinct_keyword_count(index, effective, dewey), dewey)
                 for dewey in candidates),
                key=lambda pair: (-(pair[0] ** 2), pair[1]))

            # min-heap over the current best k, ordered so the root is the
            # *worst* of the best; a sequence number breaks exact key ties.
            best: list[tuple[tuple, int, RankedNode]] = []
            ranked_count = 0
            for sequence, (count, dewey) in enumerate(bounded):
                bound = float(count * count)
                if len(best) >= k and best[0][0] >= _bound_key(bound):
                    break  # nothing later can displace the current top k
                if (budget is not None and not pre_tripped
                        and budget.checkpoint("rank", sequence,
                                              len(bounded))):
                    break
                breakdown = ranker(index, effective, dewey)
                ranked_count += 1
                node = RankedNode(
                    dewey=dewey, score=breakdown.score,
                    distinct_keywords=breakdown.distinct_keywords,
                    matched_keywords=breakdown.matched_keywords,
                    is_lce=dewey in lce_set,
                    estimated_keywords=(
                        lce.lce[dewey].estimated_keywords
                        if dewey in lce.lce
                        else fallback.get(dewey, effective.s)),
                    breakdown=breakdown)
                entry = (_heap_key(node), sequence, node)
                if len(best) < k:
                    heapq.heappush(best, entry)
                elif entry[0] > best[0][0]:
                    heapq.heapreplace(best, entry)
            rank_span.add("ranked", ranked_count)
            rank_span.add("skipped", len(bounded) - ranked_count)

        nodes = sorted((node for _, _, node in best),
                       key=RankedNode.sort_key)
        finished = clock()
        tripped = budget is not None and budget.tripped
        if tripped:
            root.set(degraded=True, trip_stage=budget.report.stage,
                     trip_reason=budget.report.reason)

    profile = SearchProfile(merged_list_size=len(sl),
                            lcp_entries=len(lcp),
                            lce_nodes=len(lce.lce),
                            seconds=finished - started,
                            merge_seconds=after_merge - started,
                            lcp_seconds=after_lcp - after_merge,
                            lce_seconds=after_lce - after_lcp,
                            rank_seconds=finished - after_lce)
    stats = QueryStats(total_seconds=profile.seconds,
                       merge_seconds=profile.merge_seconds,
                       lcp_seconds=profile.lcp_seconds,
                       lce_seconds=profile.lce_seconds,
                       rank_seconds=profile.rank_seconds,
                       postings_scanned=len(sl),
                       lcp_entries=len(lcp),
                       lce_nodes=len(lce.lce),
                       nodes_emitted=len(nodes),
                       budget_trips=1 if tripped else 0,
                       trip_stage=budget.report.stage if tripped else None,
                       trip_reason=budget.report.reason if tripped else None,
                       degraded=tripped)
    return GKSResponse(query=effective, nodes=tuple(nodes),
                       profile=profile, degraded=tripped,
                       degradation=budget.report if tripped else None,
                       stats=stats)


def _heap_key(node: RankedNode) -> tuple:
    """Heap ordering: *better* nodes compare greater.

    Mirrors :meth:`RankedNode.sort_key` (score desc, coverage desc,
    document order asc) with inverted orientation so a min-heap keeps the
    worst of the current best at the root.
    """
    # The positive sentinel keeps ancestor-before-descendant ordering
    # under negation: (0,-1,1) > (0,-1,-5,1) just as (0,1) < (0,1,5).
    return (node.score, node.distinct_keywords,
            tuple(-component for component in node.dewey) + (1,))


def _bound_key(bound: float) -> tuple:
    """The best conceivable heap key for a node with the given bound."""
    return (bound, float("inf"), ())
