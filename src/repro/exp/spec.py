"""Frozen run-table specs: factors × levels × repetitions → run list.

An experiment is declared once, in a JSON or TOML file, and *expanded*
deterministically: the cartesian product of every factor's levels, each
combination repeated ``repetitions`` times, in a stable order (factors
in declaration order, levels in declaration order, repetitions last).
Expanding the same spec twice yields byte-identical run ids, so an
aggregate produced today joins a baseline committed last month row for
row.

Spec shape (JSON shown; TOML is the same tree)::

    {
      "name": "smoke",
      "mode": "inproc",            // or "http": real gks serve subprocess
      "repetitions": 1,
      "base": {                    // defaults every run starts from
        "dataset": {"name": "figure2a", "scale": 1, "seed": 0},
        "engine": {"shards": 1},
        "serve": {"workers": 4, "queue_capacity": 64},
        "load": {"mode": "closed", "concurrency": 4, "iterations": 5,
                 "queries": ["XML Author"], "s": 1}
      },
      "factors": {                 // each factor: list of levels
        "engine.shards": [1, 2],   // scalar level -> set that dotted path
        "shape": [                 // dict level -> several overrides at once
          {"id": "open", "load.mode": "open", "load.rate_rps": 50,
           "load.count": 100}
        ]
      }
    }

A scalar level assigns the factor's own dotted path; a dict level is a
bundle of dotted-path overrides labelled by its ``"id"`` key (or its
position when unlabelled).  Run ids read
``<index>_<factor>=<label>__...__r<rep>`` and double as artifact
directory names, so labels are sanitised to filesystem-safe characters.
"""

from __future__ import annotations

import itertools
import json
import re
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ConfigError

#: Spec keys accepted at the top level (anything else is a typo).
_TOP_KEYS = {"name", "description", "mode", "repetitions", "base",
             "factors", "tolerances"}
_MODES = ("inproc", "http")
_SAFE = re.compile(r"[^A-Za-z0-9._-]+")


def _sanitize(label: str) -> str:
    """A filesystem- and CSV-safe rendering of a level label."""
    cleaned = _SAFE.sub("-", str(label)).strip("-")
    return cleaned or "x"


def set_path(tree: dict, dotted: str, value) -> None:
    """Assign *value* at a dotted path, creating intermediate dicts."""
    parts = dotted.split(".")
    node = tree
    for part in parts[:-1]:
        child = node.get(part)
        if not isinstance(child, dict):
            child = {}
            node[part] = child
        node = child
    node[parts[-1]] = value


def get_path(tree: dict, dotted: str, default=None):
    """Read a dotted path out of a nested dict."""
    node = tree
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return default
        node = node[part]
    return node


def _deep_copy(tree):
    """Plain-data deep copy (specs are JSON/TOML trees, nothing else)."""
    if isinstance(tree, dict):
        return {key: _deep_copy(value) for key, value in tree.items()}
    if isinstance(tree, list):
        return [_deep_copy(item) for item in tree]
    return tree


@dataclass(frozen=True)
class RunSpec:
    """One fully resolved run of the table.

    ``params`` is the base tree with this run's factor levels applied;
    ``factors`` records which level of each factor produced it (the
    aggregate's join columns).
    """

    run_id: str
    index: int
    repetition: int
    factors: tuple[tuple[str, str], ...]
    params: dict = field(hash=False)

    def to_dict(self) -> dict:
        return {
            "run_id": self.run_id,
            "index": self.index,
            "repetition": self.repetition,
            "factors": dict(self.factors),
            "params": self.params,
        }


@dataclass(frozen=True)
class ExperimentSpec:
    """A validated, immutable experiment declaration."""

    name: str
    mode: str = "inproc"
    repetitions: int = 1
    description: str = ""
    base: dict = field(default_factory=dict, hash=False)
    #: (factor name, ((label, {dotted path: value}), ...)) in file order
    factors: tuple[tuple[str, tuple[tuple[str, dict], ...]], ...] = ()
    tolerances: dict = field(default_factory=dict, hash=False)

    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, raw: dict, source: str = "<dict>"
                  ) -> "ExperimentSpec":
        if not isinstance(raw, dict):
            raise ConfigError(f"{source}: spec must be a mapping, "
                              f"got {type(raw).__name__}")
        unknown = set(raw) - _TOP_KEYS
        if unknown:
            raise ConfigError(f"{source}: unknown spec keys "
                              f"{sorted(unknown)}; known: "
                              f"{sorted(_TOP_KEYS)}")
        name = raw.get("name")
        if not name or not isinstance(name, str):
            raise ConfigError(f"{source}: spec needs a non-empty string "
                              f"'name'")
        mode = raw.get("mode", "inproc")
        if mode not in _MODES:
            raise ConfigError(f"{source}: mode must be one of {_MODES}, "
                              f"got {mode!r}")
        repetitions = raw.get("repetitions", 1)
        if not isinstance(repetitions, int) or repetitions < 1:
            raise ConfigError(f"{source}: repetitions must be an int "
                              f">= 1, got {repetitions!r}")
        base = raw.get("base", {})
        if not isinstance(base, dict):
            raise ConfigError(f"{source}: base must be a mapping")
        factors = []
        for factor, levels in (raw.get("factors") or {}).items():
            if not isinstance(levels, list) or not levels:
                raise ConfigError(
                    f"{source}: factor {factor!r} must map to a "
                    f"non-empty list of levels")
            resolved = []
            for position, level in enumerate(levels):
                if isinstance(level, dict):
                    overrides = {key: value for key, value in level.items()
                                 if key != "id"}
                    if not overrides:
                        raise ConfigError(
                            f"{source}: factor {factor!r} level "
                            f"{position} sets nothing")
                    label = str(level.get("id", position))
                else:
                    overrides = {factor: level}
                    label = str(level)
                resolved.append((_sanitize(label), overrides))
            labels = [label for label, _ in resolved]
            if len(set(labels)) != len(labels):
                raise ConfigError(f"{source}: factor {factor!r} has "
                                  f"duplicate level labels {labels}")
            factors.append((factor, tuple(resolved)))
        return cls(name=name, mode=mode, repetitions=repetitions,
                   description=str(raw.get("description", "")),
                   base=base, factors=tuple(factors),
                   tolerances=raw.get("tolerances", {}))

    @classmethod
    def load(cls, path: str | Path) -> "ExperimentSpec":
        """Read a spec file; ``.toml`` via tomllib, anything else JSON."""
        path = Path(path)
        try:
            if path.suffix.lower() == ".toml":
                import tomllib

                raw = tomllib.loads(path.read_text(encoding="utf-8"))
            else:
                raw = json.loads(path.read_text(encoding="utf-8"))
        except OSError as exc:
            raise ConfigError(f"cannot read spec {path}: {exc}") from exc
        except ValueError as exc:
            raise ConfigError(f"cannot parse spec {path}: {exc}") from exc
        return cls.from_dict(raw, source=str(path))

    # ------------------------------------------------------------------
    @property
    def run_count(self) -> int:
        total = self.repetitions
        for _, levels in self.factors:
            total *= len(levels)
        return total

    def expand(self) -> list[RunSpec]:
        """The deterministic run list: factor product × repetitions."""
        level_axes = [
            [(factor, label, overrides) for label, overrides in levels]
            for factor, levels in self.factors
        ]
        runs: list[RunSpec] = []
        index = 0
        for combination in itertools.product(*level_axes):
            for repetition in range(self.repetitions):
                params = _deep_copy(self.base)
                assignment = []
                for factor, label, overrides in combination:
                    for dotted, value in overrides.items():
                        set_path(params, dotted, value)
                    assignment.append((factor, label))
                tag = "__".join(
                    f"{_sanitize(factor)}={label}"
                    for factor, label in assignment)
                run_id = f"{index:03d}" + (f"_{tag}" if tag else "") \
                    + f"__r{repetition}"
                runs.append(RunSpec(run_id=run_id, index=index,
                                    repetition=repetition,
                                    factors=tuple(assignment),
                                    params=params))
                index += 1
        return runs

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "description": self.description,
            "mode": self.mode,
            "repetitions": self.repetitions,
            "base": self.base,
            "factors": {
                factor: [{"id": label, **overrides}
                         for label, overrides in levels]
                for factor, levels in self.factors
            },
            "tolerances": self.tolerances,
        }
