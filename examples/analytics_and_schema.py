"""Beyond the paper's evaluation: the future-work features.

* analytics over raw XML (§8 future work): facets, aggregates and
  histograms over a GKS response;
* schema inference + schema-level categorization (§2.2 future work):
  single-author articles regain their entity-hood;
* keyword search over JSON (the format the paper's intro puts next to
  XML);
* top-k search with early-terminated ranking.

Run:  python examples/analytics_and_schema.py
"""

from repro import GKSEngine, Repository, load_dataset
from repro.schema import (compare_with_instance_level, infer_schema)


def analytics_demo() -> None:
    print("== analytics over a GKS response ==")
    engine = GKSEngine(load_dataset("dblp"))
    response = engine.search('"Prithviraj Banerjee"', s=1)
    print(f"{len(response)} result(s) for Banerjee")

    venues = engine.facets(response, "booktitle", top=3)
    for bucket in venues:
        print(f"  booktitle={bucket.value!r}: {bucket.count} article(s), "
              f"weight {bucket.weight:.2f}")

    years = engine.aggregate(response, "year")
    print(f"  years: min={years.minimum:.0f} max={years.maximum:.0f} "
          f"mean={years.mean:.1f} over {years.count} article(s)\n")


def schema_demo() -> None:
    print("== schema inference & categorization smoothing ==")
    repository = load_dataset("dblp")
    schema = infer_schema(repository)
    article_type = schema.type_of(("dblp", "article"))
    print(f"inferred {len(schema)} element types; dblp/article -> "
          f"{article_type.content_model()}")

    counters = compare_with_instance_level(repository)
    print(f"instance vs schema categorization: "
          f"{counters['agree']}/{counters['total']} agree; "
          f"{counters['promoted_to_entity']} node(s) promoted to entity "
          f"(single-author articles regaining entity-hood)\n")


def json_demo() -> None:
    print("== keyword search over JSON ==")
    repository = Repository()
    repository.parse_json("""
    {
      "catalog": [
        {"name": "Data Mining", "students": ["Karen", "Mike", "John"]},
        {"name": "Algorithms", "students": ["Karen", "Julie"]}
      ]
    }
    """, name="courses.json")
    engine = GKSEngine(repository)
    response = engine.search("karen mike", s=2)
    print(f"'karen mike' (s=2): {len(response)} JSON record(s); top:")
    print(engine.snippet(response[0]))


def topk_demo() -> None:
    print("== top-k search ==")
    engine = GKSEngine(load_dataset("interpro"))
    full = engine.search("kringle domain", s=1)
    top = engine.search_top_k("kringle domain", k=3, s=1)
    print(f"full response: {len(full)} node(s); top-3 equals the head: "
          f"{top.deweys == full.deweys[:3]}")
    for node in top:
        print(" ", engine.describe(node))


def main() -> None:
    analytics_demo()
    schema_demo()
    json_demo()
    topk_demo()


if __name__ == "__main__":
    main()
