"""Edge-case battery across the stack: unusual documents, queries and
content that real-world XML throws at a keyword-search system."""

import pytest

from repro.core.engine import GKSEngine
from repro.core.query import Query
from repro.core.search import search
from repro.errors import QueryError
from repro.index.builder import build_index
from repro.xmltree.repository import Repository


class TestUnusualDocuments:
    def test_single_element_document(self):
        engine = GKSEngine.open(["<only>word</only>"])
        response = engine.search("word")
        assert response.deweys == [(0,)]

    def test_empty_elements_everywhere(self):
        engine = GKSEngine.open(["<r><a/><b/><c><d/></c></r>"])
        # no text, but tags are searchable
        assert len(engine.search("d")) == 1

    def test_whitespace_only_text(self):
        engine = GKSEngine.open(["<r><a>   \n\t  </a></r>"])
        assert engine.index.stats.text_keywords == 0

    def test_unicode_content_and_query(self):
        engine = GKSEngine.open(
            ["<r><name>Bergström Ñandú</name></r>"])
        assert len(engine.search("bergström")) == 1
        assert len(engine.search("ñandú")) == 1

    def test_numeric_and_mixed_tokens(self):
        engine = GKSEngine.open(
            ["<r><id>P53-variant 2001</id></r>"])
        assert len(engine.search("p53")) == 1
        assert len(engine.search("2001")) == 1

    def test_cdata_content_is_indexed(self):
        engine = GKSEngine.open(
            ["<r><code><![CDATA[if karen < mike]]></code></r>"])
        assert len(engine.search("karen mike", s=2)) == 1

    def test_entity_references_in_values(self):
        engine = GKSEngine.open(
            ["<r><t>tom &amp; jerry</t></r>"])
        assert len(engine.search("tom jerry", s=2)) == 1

    def test_very_wide_fanout(self):
        children = "".join(f"<c>word{i}</c>" for i in range(2000))
        engine = GKSEngine.open([f"<r>{children}</r>"])
        response = engine.search("word1999")
        assert len(response) == 1
        # potential flow divides by 2000 children
        assert response[0].score <= 1.0

    def test_repeated_keyword_in_one_element(self):
        engine = GKSEngine.open(
            ["<r><a>spam spam spam spam</a></r>"])
        # deduplicated posting; rank counts it once
        response = engine.search("spam")
        assert len(response) == 1
        assert response[0].distinct_keywords == 1

    def test_same_keyword_as_tag_and_text(self):
        engine = GKSEngine.open(
            ["<r><year>year</year><other>x</other></r>"])
        response = engine.search("year")
        assert len(response) >= 1


class TestUnusualQueries:
    def test_query_larger_than_vocabulary(self, figure1_index):
        query = Query.of(["a", "b", "c", "d", "e", "f", "g", "h"], s=2)
        response = search(figure1_index, query)
        assert len(response) > 0

    def test_all_stopword_query_rejected(self):
        with pytest.raises(QueryError):
            Query.parse("the of and is")

    def test_single_keyword_s_greater_than_size(self, figure1_index):
        response = search(figure1_index, Query.of(["a"], s=5))
        assert response.query.s == 1  # clamped

    def test_duplicate_phrase_and_word(self):
        query = Query.parse('"data mining" data')
        # the phrase and the loose word are distinct keywords
        assert len(query.keywords) == 2

    def test_stemming_unifies_query_and_data(self):
        engine = GKSEngine.open(
            ["<r><t>publications</t></r>"])
        assert len(engine.search("publication")) == 1
        assert len(engine.search("publications")) == 1


class TestMultiDocumentBoundaries:
    def test_no_phantom_matches_across_documents(self):
        # karen in doc 0, mike in doc 1: no node contains both
        repo = Repository.from_texts(
            ["<r><a>karen</a></r>", "<r><a>mike</a></r>"])
        index = build_index(repo)
        response = search(index, Query.of(["karen", "mike"], s=2))
        assert len(response) == 0

    def test_same_structure_in_every_document(self):
        texts = [f"<r><a>karen {i}</a></r>" for i in range(4)]
        index = build_index(Repository.from_texts(texts))
        response = search(index, Query.of(["karen"], s=1))
        assert len(response) == 4
        assert {node.dewey[0] for node in response} == {0, 1, 2, 3}


class TestRankingEdges:
    def test_scores_are_finite(self, figure2a_index):
        response = search(figure2a_index,
                          Query.of(["karen", "mike", "student"], s=1))
        for node in response:
            assert node.score == node.score  # not NaN
            assert node.score != float("inf")

    def test_deterministic_across_runs(self, figure2a_index):
        query = Query.of(["karen", "mike", "john", "student"], s=2)
        first = search(figure2a_index, query)
        second = search(figure2a_index, query)
        assert first.deweys == second.deweys
        assert [node.score for node in first] == \
            [node.score for node in second]
