"""Tests for top-k search: exactness vs the full ranking + termination."""

import pytest

from repro.core.query import Query
from repro.core.search import search
from repro.core.topk import distinct_keyword_count, search_top_k
from repro.datasets.registry import load_dataset
from repro.index.builder import build_index


@pytest.fixture(scope="module")
def dblp_index():
    return build_index(load_dataset("dblp"))


@pytest.fixture(scope="module")
def interpro_index():
    return build_index(load_dataset("interpro"))


class TestDistinctCount:
    def test_counts_match_search_results(self, figure1_index, fig1_ids):
        query = Query.of(["a", "b", "c", "d"], s=2)
        response = search(figure1_index, query)
        for node in response:
            assert distinct_keyword_count(figure1_index, query,
                                          node.dewey) == \
                node.distinct_keywords


class TestExactness:
    QUERIES = [
        (["a", "b", "c", "d"], 1, 2),
        (["a", "b", "c", "d"], 2, 3),
        (["a", "b"], 1, 1),
    ]

    @pytest.mark.parametrize("keywords,s,k", QUERIES)
    def test_topk_equals_head_of_full_ranking_figure1(self, figure1_index,
                                                      keywords, s, k):
        query = Query.of(keywords, s=s)
        full = search(figure1_index, query)
        top = search_top_k(figure1_index, query, k)
        assert top.deweys == full.deweys[:k]
        assert [node.score for node in top] == \
            [node.score for node in full][:k]

    @pytest.mark.parametrize("k", [1, 3, 10, 50])
    def test_topk_equals_head_on_corpus(self, interpro_index, k):
        query = Query.of(["kringl", "domain"], s=1)
        full = search(interpro_index, query)
        top = search_top_k(interpro_index, query, k)
        expected = full.deweys[:k]
        assert top.deweys == expected

    def test_k_larger_than_response(self, figure1_index):
        query = Query.of(["a", "b"], s=2)
        full = search(figure1_index, query)
        top = search_top_k(figure1_index, query, 100)
        assert top.deweys == full.deweys

    def test_lce_flags_preserved(self, dblp_index):
        query = Query.of(["peter buneman"], s=1)
        full = search(dblp_index, query)
        top = search_top_k(dblp_index, query, 3)
        flags = {node.dewey: node.is_lce for node in full}
        for node in top:
            assert node.is_lce == flags[node.dewey]


class TestBehaviour:
    def test_invalid_k_rejected(self, figure1_index):
        with pytest.raises(ValueError):
            search_top_k(figure1_index, Query.of(["a"]), 0)

    def test_empty_result(self, figure1_index):
        top = search_top_k(figure1_index, Query.of(["zzz"]), 5)
        assert len(top) == 0

    def test_profile_populated(self, dblp_index):
        top = search_top_k(dblp_index, Query.of(["peter buneman"]), 2)
        assert top.profile.merged_list_size > 0
        assert top.profile.seconds >= 0

    def test_scores_bounded_by_p_squared(self, interpro_index):
        query = Query.of(["kringl", "domain", "famili"], s=1)
        top = search_top_k(interpro_index, query, 20)
        for node in top:
            assert node.score <= node.distinct_keywords ** 2 + 1e-9

    def test_engine_facade(self):
        from repro.core.engine import GKSEngine

        engine = GKSEngine(load_dataset("figure2a"))
        top = engine.search_top_k("karen mike", k=2, s=1)
        full = engine.search("karen mike", s=1)
        assert top.deweys == full.deweys[:2]
