"""Deterministic fault injection and race harnessing for tests/benches."""

from repro.testing.faults import (BurstyArrivals, FakeClock, IndexCorruptor,
                                  SlowEngine, StoreCorruptor, TornWriter,
                                  XMLCorruptor, corrupt_corpus)
from repro.testing.pdocs import (KEYWORD_POOL, PROB_POOL, TAG_POOL,
                                 pdoc_corpus, pdoc_documents)
from repro.testing.race import (LockOrderInversion, PreemptingEngine,
                                RaceHarness, RaceReport, RacyCache,
                                drive_cache_workload, drive_durable_workload,
                                drive_swap_workload, preemption_gap)

__all__ = ["BurstyArrivals", "FakeClock", "IndexCorruptor", "SlowEngine",
           "StoreCorruptor", "TornWriter", "XMLCorruptor", "corrupt_corpus",
           "KEYWORD_POOL", "PROB_POOL", "TAG_POOL", "pdoc_corpus",
           "pdoc_documents",
           "LockOrderInversion", "PreemptingEngine", "RaceHarness",
           "RaceReport", "RacyCache", "drive_cache_workload",
           "drive_durable_workload", "drive_swap_workload",
           "preemption_gap"]
