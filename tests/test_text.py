"""Unit tests for the text-analysis substrate (tokenizer, stop words,
Porter stemmer, analyzer pipeline)."""

import pytest

from repro.text.analyzer import Analyzer
from repro.text.stemmer import porter_stem
from repro.text.stopwords import DEFAULT_STOPWORDS, is_stopword
from repro.text.tokenizer import tokenize


class TestTokenizer:
    def test_lowercases_and_splits(self):
        assert tokenize("Hello World") == ["hello", "world"]

    def test_hyphen_and_punctuation_split(self):
        assert tokenize("Jean-Marc Cadiou!") == ["jean", "marc", "cadiou"]

    def test_digits_kept_whole(self):
        assert tokenize("year 2001, vol. 2") == ["year", "2001", "vol", "2"]

    def test_empty_and_symbol_only(self):
        assert tokenize("") == []
        assert tokenize("... --- !!!") == []

    def test_unicode_words(self):
        assert tokenize("Bergström") == ["bergström"]


class TestStopwords:
    def test_function_words_flagged(self):
        for word in ("the", "and", "of", "is"):
            assert is_stopword(word)

    def test_content_words_kept(self):
        # QM2 searches for the tags 'country' and 'name'
        for word in ("country", "name", "year", "search"):
            assert not is_stopword(word)

    def test_stopword_set_is_lowercase(self):
        assert all(word == word.lower() for word in DEFAULT_STOPWORDS)


class TestPorterStemmer:
    # reference pairs from the published Porter test vocabulary
    @pytest.mark.parametrize("word,stem", [
        ("caresses", "caress"), ("ponies", "poni"), ("cats", "cat"),
        ("agreed", "agre"), ("plastered", "plaster"), ("motoring", "motor"),
        ("hopping", "hop"), ("falling", "fall"), ("filing", "file"),
        ("happy", "happi"), ("sky", "sky"), ("relational", "relat"),
        ("conditional", "condit"), ("digitizer", "digit"),
        ("operator", "oper"), ("feudalism", "feudal"),
        ("decisiveness", "decis"), ("triplicate", "triplic"),
        ("formative", "form"), ("electrical", "electr"),
        ("hopeful", "hope"), ("goodness", "good"), ("revival", "reviv"),
        ("allowance", "allow"), ("inference", "infer"),
        ("adjustable", "adjust"), ("replacement", "replac"),
        ("adoption", "adopt"), ("activate", "activ"),
        ("effective", "effect"), ("rate", "rate"), ("cease", "ceas"),
        ("controll", "control"), ("roll", "roll"),
        ("publications", "public"), ("searching", "search"),
    ])
    def test_reference_vocabulary(self, word, stem):
        assert porter_stem(word) == stem

    def test_short_words_unchanged(self):
        assert porter_stem("is") == "is"
        assert porter_stem("ab") == "ab"

    def test_non_alpha_unchanged(self):
        assert porter_stem("2001") == "2001"
        assert porter_stem("p53") == "p53"

    def test_common_stems_are_stable(self):
        # Porter is not idempotent in general ("databases" → "databas" →
        # "databa"); these stems, however, are fixed points and queries
        # rely on them matching the indexed form.
        words = ["relational", "searching", "happiness", "organization",
                 "probabilistic"]
        for word in words:
            once = porter_stem(word)
            assert porter_stem(once) == once


class TestAnalyzer:
    def test_full_pipeline(self):
        analyzer = Analyzer()
        assert analyzer.analyze("The Publications of 2002 Science") == \
            ["public", "2002", "scienc"]

    def test_preserves_multiplicity(self):
        analyzer = Analyzer()
        assert analyzer.analyze("data data data") == ["data"] * 3

    def test_analyze_unique_dedups_in_order(self):
        analyzer = Analyzer()
        assert analyzer.analyze_unique("search data search") == \
            ["search", "data"]

    def test_stemming_can_be_disabled(self):
        analyzer = Analyzer(use_stemming=False)
        assert analyzer.analyze("publications") == ["publications"]

    def test_stopwords_can_be_disabled(self):
        analyzer = Analyzer(use_stopwords=False, use_stemming=False)
        assert analyzer.analyze("the cat") == ["the", "cat"]

    def test_tags_skip_stopword_filter(self):
        analyzer = Analyzer()
        # a tag named <for> must stay searchable
        assert analyzer.analyze_tag("for") == ["for"]
        assert analyzer.analyze_tag("Dept_Name") == ["dept", "name"]
