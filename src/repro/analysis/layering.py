"""Architecture-conformance rules: the package import DAG.

The repository's layering (DESIGN.md §5.4)::

    errors  →  text, xmltree  →  index, schema  →  core, obs
            →  serve, baselines, eval  →  cli, shell

``L001`` flags a module whose *top-level* imports reach a higher layer
than its own; ``L002`` flags import cycles between packages.  Two
documented refinements:

* **Cross-cutting sinks.**  ``errors`` and ``obs`` are importable from
  any layer: both depend on nothing above ``errors``, so importing them
  can never create a cycle, and the timing-discipline rule (``T001``)
  *requires* ``index``/``core`` to reach the tracer clock in ``obs``.
  ``obs`` itself is still held to its layer (it may import only
  ``errors``).
* **Deferred imports are exempt.**  Only module-level (top-level)
  imports define the architecture graph.  An import inside a function
  body is the sanctioned plug-point for a lower layer to call *up* at
  runtime (e.g. the engine lazily importing ``analytics``) — it cannot
  create an import-time cycle and is not counted.

Packages the original DAG statement does not name are slotted where
their dependencies put them: ``datasets``/``testing`` with
``index``/``schema``; ``semantics`` (the query-modes subsystem: it
imports ``index`` and ``core.config``, and ``core.engine`` calls it
through deferred imports) with ``core``/``obs``;
``analytics``/``analysis``/``serve`` with ``baselines``/``eval``; the
experiment harness (``exp``, which drives ``serve`` and ``eval``) and
the ``__init__``/``__main__`` facades with the CLI.
"""

from __future__ import annotations

import ast
from typing import Iterator, Sequence

from repro.analysis.findings import Finding
from repro.analysis.lint import ModuleInfo, Rule, register

#: Package → layer number; imports may only point at the same or a
#: lower layer (cross-cutting sinks excepted).
LAYER_OF = {
    "errors": 0,
    "text": 1, "xmltree": 1,
    "index": 2, "schema": 2, "datasets": 2, "testing": 2,
    "core": 3, "obs": 3, "semantics": 3,
    "baselines": 4, "eval": 4, "analytics": 4, "analysis": 4,
    "serve": 4,
    "cli": 5, "shell": 5, "exp": 5, "api": 5, "__init__": 5,
    "__main__": 5,
}

#: Packages importable from any layer (no repro dependencies above
#: ``errors``, so no cycle is possible through them).
CROSS_CUTTING = frozenset({"errors", "obs"})


def _top_level_imports(module: ModuleInfo) -> Iterator[tuple[int, str]]:
    """(line, repro-package) for every module-level import edge."""
    if module.tree is None:
        return
    for node in ast.iter_child_nodes(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                parts = alias.name.split(".")
                if parts[0] == "repro" and len(parts) > 1:
                    yield node.lineno, parts[1]
        elif isinstance(node, ast.ImportFrom) and node.level == 0 \
                and node.module:
            parts = node.module.split(".")
            if parts[0] != "repro":
                continue
            if len(parts) > 1:
                yield node.lineno, parts[1]
            else:
                # ``from repro import X`` — the facade, top layer
                yield node.lineno, "__init__"


@register
class LayeringRule(Rule):
    """L001 — no module-level import of a higher layer."""

    rule_id = "L001"
    title = ("package imports must follow the layer DAG errors -> "
             "text/xmltree -> index/schema -> core/obs -> "
             "baselines/eval -> cli/shell")

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        if module.package is None:
            return
        own_layer = LAYER_OF.get(module.package)
        if own_layer is None:
            return
        for line, target in _top_level_imports(module):
            if target == module.package or target in CROSS_CUTTING:
                continue
            target_layer = LAYER_OF.get(target)
            if target_layer is None or target_layer <= own_layer:
                continue
            yield self.finding(
                module, line,
                f"{module.module} (layer {own_layer}, "
                f"{module.package}) imports repro.{target} (layer "
                f"{target_layer}); imports must point down the DAG — "
                f"defer the import into the using function if this is "
                f"a runtime plug-point")


@register
class ImportCycleRule(Rule):
    """L002 — no import cycles between repro packages."""

    rule_id = "L002"
    title = "no cyclic module-level imports between repro packages"

    def check_project(self,
                      modules: Sequence[ModuleInfo]) -> Iterator[Finding]:
        edges: dict[str, set[str]] = {}
        witness: dict[tuple[str, str], tuple[ModuleInfo, int]] = {}
        for module in modules:
            if module.package is None:
                continue
            for line, target in _top_level_imports(module):
                if target == module.package:
                    continue
                edges.setdefault(module.package, set()).add(target)
                witness.setdefault((module.package, target),
                                   (module, line))
        for cycle in _find_cycles(edges):
            # report on the witness of the cycle's first edge
            module, line = witness[(cycle[0], cycle[1])]
            loop = " -> ".join([*cycle, cycle[0]])
            yield self.finding(
                module, line,
                f"import cycle between repro packages: {loop}")


def _find_cycles(edges: dict[str, set[str]]) -> list[list[str]]:
    """Package cycles (each reported once, from its smallest member)."""
    cycles: list[list[str]] = []
    seen: set[frozenset] = set()

    def visit(start: str, node: str, path: list[str],
              on_path: set[str]) -> None:
        for target in sorted(edges.get(node, ())):
            if target == start and len(path) > 1:
                key = frozenset(path)
                if key not in seen:
                    seen.add(key)
                    least = min(range(len(path)),
                                key=lambda i: path[i])
                    cycles.append(path[least:] + path[:least])
            elif target not in on_path and target in edges:
                visit(start, target, path + [target],
                      on_path | {target})

    for start in sorted(edges):
        visit(start, start, [start], {start})
    # deduplicate rotations discovered from different starts
    unique: dict[tuple, list[str]] = {}
    for cycle in cycles:
        unique.setdefault(tuple(cycle), cycle)
    return [cycle for _, cycle in sorted(unique.items())]
