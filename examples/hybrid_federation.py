"""Hybrid queries over a federated repository (paper §7.6).

Two corpora with different schemas — DBLP and SIGMOD Record — are merged
under one common root, with the SIGMOD side buried two connecting nodes
deeper.  A single query whose keywords target *two different entity
types* returns exactly the right nodes from both sides, and ranking is
depth-independent: the tight two-author SIGMOD articles beat the crowded
DBLP inproceedings despite sitting deeper in the tree.

Run:  python examples/hybrid_federation.py
"""

from repro import GKSEngine
from repro.eval.runner import build_hybrid_repository
from repro.eval.workload import HYBRID_QUERY


def main() -> None:
    print("building merged DBLP + SIGMOD repository ...")
    repository = build_hybrid_repository()
    engine = GKSEngine(repository)
    print(f"one document, {repository.total_nodes} nodes, "
          f"max depth {repository.depth}\n")

    print(f"hybrid query: {HYBRID_QUERY}  (s=2)")
    response = engine.search(HYBRID_QUERY, s=2)
    print(f"{len(response)} node(s) — the paper reports 8 "
          f"(3 inproceedings + 5 articles):\n")

    for position, node in enumerate(response, start=1):
        element = engine.node_at(node.dewey)
        authors = [child.subtree_text()
                   for child in element.iter_subtree()
                   if child.tag == "author"]
        print(f"  #{position} <{element.tag}> depth={len(node.dewey) - 1} "
              f"score={node.score:.3f} authors={authors}")

    first = engine.node_at(response[0].dewey)
    print(f"\ntop-ranked element type: <{first.tag}> — the deeper SIGMOD "
          f"articles win because their author lists are tight "
          f"(depth-independent potential-flow ranking, §7.6)")


if __name__ == "__main__":
    main()
