"""E7 — Tables 6+7: result counts and ranking quality per workload query.

Paper-reported shape (Table 7): GKS at s=1 returns far more nodes than
SLCA (often SLCA = 0/root-only); GKS at s=|Q|/2 is non-zero for every
query; the max-keyword column matches the planted co-authorships (QS4: 8,
QD4: 6); the rank score is ≈1 almost everywhere.
"""

from __future__ import annotations

import pytest

from repro.eval.reporting import render_table
from repro.eval.runner import engine_for, table7_rows
from repro.eval.workload import TABLE6, by_id


@pytest.mark.parametrize("qid", [query.qid for query in TABLE6])
def test_query_speed(qid, benchmark):
    workload = by_id(qid)
    engine = engine_for(workload.dataset)
    response = benchmark(lambda: engine.search(workload.text, s=1, use_cache=False))
    assert len(response) > 0


def test_table7_report(results_writer, benchmark):
    rows = benchmark.pedantic(table7_rows, rounds=1, iterations=1)
    results_writer("table7_quality", render_table(
        ["Query", "#GKS,s=1", "#GKS,s=|Q|/2", "SLCA",
         "Max keywords", "Rank Score"],
        [(row.qid, row.gks_s1, row.gks_half, row.slca,
          row.max_keywords, row.rank_score) for row in rows],
        title="Table 7 — comparison with SLCA and rank score"))

    by_qid = {row.qid: row for row in rows}
    # GKS's search space exceeds SLCA's everywhere (the headline claim)
    for row in rows:
        assert row.gks_s1 >= row.slca
        assert row.gks_half >= 1          # non-zero at s=|Q|/2 (paper)
        assert row.gks_half <= row.gks_s1  # Lemma 2's shape
    # planted co-authorship sizes
    assert by_qid["QS4"].max_keywords == 8
    assert by_qid["QD4"].max_keywords == 6
    assert by_qid["QD3"].max_keywords == 5
    assert by_qid["QS1"].max_keywords == 1   # never co-author
    # ranking quality: potential flow puts true nodes on top
    high_scores = [row for row in rows if row.rank_score >= 0.7]
    assert len(high_scores) >= 12
