"""The v4 binary codec: round-trips, raw equivalence, deep audits.

The load-bearing guarantee mirrors the sharding suite's: the codec is
an implementation detail no caller can observe through results.  For
every corpus — including adversarial near-duplicate subtrees built to
stress the DAG sharing — a ``varint-dag`` index must answer every
query node-for-node, score-for-score identically to the ``raw``
envelope, across shard counts and under budget degradation.  On top of
that: semantic corruption sealed behind fresh block CRCs must be
invisible to the structural check and caught by ``--deep``, and the
:class:`~repro.core.config.SearchOptions` record must mean the same
thing at the engine, broker and HTTP surfaces.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.cli import main
from repro.core.budget import SearchBudget
from repro.core.config import EngineConfig, SearchOptions, Texts
from repro.core.engine import GKSEngine
from repro.errors import ConfigError, StorageError, ValidationError
from repro.index.builder import IndexBuilder, build_index
from repro.index.codec import (CODEC_NAMES, Codec, RawCodec, VarintDagCodec,
                               decode_file, is_binary_index,
                               load_binary_index, resolve_codec,
                               write_binary_index)
from repro.index.sharding import build_sharded_index
from repro.index.storage import check_index, describe_layout, load_index
from repro.analysis.invariants import INVARIANT_NAMES, verify_store
from repro.testing.faults import FakeClock, IndexCorruptor, TornWriter
from repro.xmltree.node import build_tree
from repro.xmltree.repository import Repository

pytestmark = pytest.mark.codec

KEYWORDS = ["kilo", "lima", "mike", "november", "oscar"]
TAGS = ["va", "vb", "vc", "vd"]

CORPUS = [
    "<bib><paper><author>Peter Buneman</author>"
    "<title>keyword search</title></paper></bib>",
    "<bib><paper><author>Wenfei Fan</author>"
    "<title>graph search</title></paper>"
    "<paper><author>Peter Buneman</author>"
    "<title>archiving data</title></paper></bib>",
    "<bib><paper><author>Karen Smith</author>"
    "<title>data mining keyword</title></paper></bib>",
    "<bib><book><author>Wenfei Fan</author>"
    "<title>keyword mining</title></book></bib>",
    "<bib><paper><title>search engines</title></paper></bib>",
]

QUERIES = ["keyword", "keyword search", "buneman fan",
           "data mining search"]


def _signature(response):
    """Everything a caller can observe about a response's content."""
    return (
        tuple((node.dewey, node.score, node.distinct_keywords,
               node.matched_keywords, node.is_lce, node.estimated_keywords)
              for node in response.nodes),
        response.degraded,
    )


def _index_fingerprint(index):
    """Full observable content of a (possibly lazy) loaded index."""
    if hasattr(index, "shards"):
        return (index.strategy, tuple(index.document_names),
                tuple(_index_fingerprint(shard.index)
                      for shard in index.shards))
    return (
        tuple(sorted((kw, tuple(map(tuple, postings)))
                     for kw, postings in index.inverted.items())),
        tuple(sorted(index.hashes.entity_table.items())),
        tuple(sorted(index.hashes.element_table.items())),
        tuple(index.document_names),
    )


def spec_strategy():
    """Nested (tag, text?, children?) specs for build_tree."""
    leaf = st.tuples(st.sampled_from(TAGS), st.sampled_from(KEYWORDS))
    return st.recursive(
        leaf,
        lambda children: st.tuples(
            st.sampled_from(TAGS),
            st.lists(children, min_size=1, max_size=4)),
        max_leaves=16,
    ).map(lambda spec: ("root", [spec]) if not isinstance(spec[1], list)
          else ("root", spec[1]))


def _roundtrip(index, tmp_path, name="rt.gksindex"):
    path = tmp_path / name
    write_binary_index(index, path)
    assert is_binary_index(path)
    return load_binary_index(path)


# ---------------------------------------------------------------------------
# Round-trips
# ---------------------------------------------------------------------------
class TestRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(specs=st.lists(spec_strategy(), min_size=1, max_size=4))
    def test_random_trees_roundtrip(self, specs, tmp_path_factory):
        repo = Repository()
        for spec in specs:
            repo.add_root(build_tree(spec))
        index = build_index(repo)
        tmp_path = tmp_path_factory.mktemp("codec")
        loaded = _roundtrip(index, tmp_path)
        assert _index_fingerprint(loaded) == _index_fingerprint(index)

    def test_empty_index_roundtrip(self, tmp_path):
        index = IndexBuilder().build()
        loaded = _roundtrip(index, tmp_path)
        assert _index_fingerprint(loaded) == _index_fingerprint(index)
        assert len(loaded.inverted) == 0

    def test_single_document_roundtrip(self, tmp_path):
        index = build_index(Repository.from_texts([CORPUS[0]]))
        loaded = _roundtrip(index, tmp_path)
        assert _index_fingerprint(loaded) == _index_fingerprint(index)

    @settings(max_examples=20, deadline=None)
    @given(depth=st.integers(min_value=10, max_value=60))
    def test_deep_dewey_paths_roundtrip(self, depth, tmp_path_factory):
        text = ("".join(f"<d{i}>" for i in range(depth))
                + "kilo lima"
                + "".join(f"</d{i}>" for i in reversed(range(depth))))
        index = build_index(Repository.from_texts([f"<r>{text}</r>"]))
        tmp_path = tmp_path_factory.mktemp("deep")
        loaded = _roundtrip(index, tmp_path)
        assert _index_fingerprint(loaded) == _index_fingerprint(index)

    @settings(max_examples=20, deadline=None)
    @given(copies=st.integers(min_value=2, max_value=8),
           twist=st.integers(min_value=0, max_value=7))
    def test_near_duplicate_subtrees_roundtrip(self, copies, twist,
                                               tmp_path_factory):
        # many repeats of one subtree plus a near-duplicate differing in
        # exactly one keyword — the adversarial case for DAG sharing:
        # the codec must never conflate the twisted copy with the rest
        block = ("<rec><name>kilo lima</name>"
                 "<note>mike november</note></rec>")
        twisted = ("<rec><name>kilo oscar</name>"
                   "<note>mike november</note></rec>")
        parts = [block] * copies
        parts.insert(twist % (copies + 1), twisted)
        index = build_index(Repository.from_texts(
            ["<r>" + "".join(parts) + "</r>"]))
        tmp_path = tmp_path_factory.mktemp("dup")
        loaded = _roundtrip(index, tmp_path)
        assert _index_fingerprint(loaded) == _index_fingerprint(index)

    def test_sharded_roundtrip(self, tmp_path):
        sharded = build_sharded_index(Repository.from_texts(CORPUS),
                                      shards=3)
        loaded = _roundtrip(sharded, tmp_path)
        assert _index_fingerprint(loaded) == _index_fingerprint(sharded)

    def test_no_dag_roundtrip(self, tmp_path):
        index = build_index(Repository.from_texts(CORPUS))
        path = tmp_path / "nodag.gksindex"
        write_binary_index(index, path, use_dag=False)
        loaded = load_binary_index(path)
        assert _index_fingerprint(loaded) == _index_fingerprint(index)


# ---------------------------------------------------------------------------
# Codec registry and EngineConfig surface
# ---------------------------------------------------------------------------
class TestCodecAPI:
    def test_registry_names(self):
        assert CODEC_NAMES == ("raw", "varint-dag")
        for name in CODEC_NAMES:
            codec = resolve_codec(name)
            assert isinstance(codec, Codec)
            assert codec.name == name

    def test_unknown_codec_is_config_error(self):
        with pytest.raises(ConfigError):
            resolve_codec("lz4-of-the-future")
        with pytest.raises(ConfigError):
            EngineConfig(codec="lz4-of-the-future")

    def test_sniff_disambiguates(self, tmp_path):
        index = build_index(Repository.from_texts(CORPUS))
        raw_path, v4_path = tmp_path / "raw.idx", tmp_path / "v4.idx"
        RawCodec().save(index, raw_path)
        VarintDagCodec().save(index, v4_path)
        assert not RawCodec().sniff(v4_path)
        assert RawCodec().sniff(raw_path)
        assert VarintDagCodec().sniff(v4_path)
        assert not VarintDagCodec().sniff(raw_path)

    def test_describe_layout_reports_codec(self, tmp_path):
        index = build_index(Repository.from_texts(CORPUS))
        raw_path, v4_path = tmp_path / "raw.idx", tmp_path / "v4.idx"
        RawCodec().save(index, raw_path)
        VarintDagCodec().save(index, v4_path)
        raw_layout = describe_layout(raw_path)
        v4_layout = describe_layout(v4_path)
        assert raw_layout["codec"] == "raw"
        assert v4_layout["codec"] == "varint-dag"
        assert v4_layout["version"] == 4
        assert raw_layout["layout"] == v4_layout["layout"] == "monolithic"

    def test_either_codec_opens_the_other(self, tmp_path):
        index = build_index(Repository.from_texts(CORPUS))
        for writer in (RawCodec(), VarintDagCodec()):
            path = tmp_path / f"{writer.name}.idx"
            writer.save(index, path)
            assert _index_fingerprint(load_index(path)) == \
                _index_fingerprint(index)


# ---------------------------------------------------------------------------
# Node-for-node search equivalence
# ---------------------------------------------------------------------------
class TestEquivalence:
    @pytest.mark.parametrize("shards", (1, 2, 4))
    def test_codec_invisible_through_results(self, shards, tmp_path):
        raw = GKSEngine.open(Texts(CORPUS), shards=shards,
                             index_path=tmp_path / "raw.idx", codec="raw")
        dag = GKSEngine.open(Texts(CORPUS), shards=shards,
                             index_path=tmp_path / "dag.idx",
                             codec="varint-dag")
        assert describe_layout(tmp_path / "dag.idx")["codec"] == \
            "varint-dag"
        # the lazy reopen is the interesting path: query straight off
        # the mmap-backed index, nothing pre-materialized
        reopened = GKSEngine.open(Texts(CORPUS), shards=shards,
                                  index_path=tmp_path / "dag.idx",
                                  codec="varint-dag")
        for query in QUERIES:
            want = _signature(raw.search(query, use_cache=False))
            assert _signature(dag.search(query, use_cache=False)) == want
            assert _signature(
                reopened.search(query, use_cache=False)) == want

    @pytest.mark.parametrize("shards", (1, 2))
    def test_degraded_budget_path_equivalence(self, shards, tmp_path):
        raw = GKSEngine.open(Texts(CORPUS * 4), shards=shards)
        GKSEngine.open(Texts(CORPUS * 4), shards=shards,
                       index_path=tmp_path / "dag.idx", codec="varint-dag")
        lazy = GKSEngine.open(Texts(CORPUS * 4), shards=shards,
                              index_path=tmp_path / "dag.idx",
                              codec="varint-dag")
        budget = lambda: SearchBudget(max_sl=2)  # noqa: E731
        for query in QUERIES:
            want = raw.search(query, budget=budget(), use_cache=False)
            got = lazy.search(query, budget=budget(), use_cache=False)
            assert _signature(got) == _signature(want)
            assert got.degraded == want.degraded

    def test_codec_switch_rewrites_cache(self, tmp_path):
        path = tmp_path / "cache.idx"
        GKSEngine.open(Texts(CORPUS), index_path=path, codec="varint-dag")
        assert describe_layout(path)["codec"] == "varint-dag"
        GKSEngine.open(Texts(CORPUS), index_path=path, codec="raw")
        assert describe_layout(path)["codec"] == "raw"

    def test_top_k_equivalence_on_lazy_index(self, tmp_path):
        GKSEngine.open(Texts(CORPUS), index_path=tmp_path / "d.idx",
                       codec="varint-dag")
        lazy = GKSEngine.open(Texts(CORPUS), index_path=tmp_path / "d.idx",
                              codec="varint-dag")
        eager = GKSEngine.open(Texts(CORPUS))
        for query in QUERIES:
            assert _signature(lazy.search_top_k(query, 3)) == \
                _signature(eager.search_top_k(query, 3))


# ---------------------------------------------------------------------------
# Fault injection and the deep audit
# ---------------------------------------------------------------------------
class TestDeepAudit:
    def _binary_index(self, tmp_path, shards=1):
        repo = Repository.from_texts(CORPUS)
        index = (build_index(repo) if shards == 1
                 else build_sharded_index(repo, shards=shards))
        path = tmp_path / "audit.gksindex"
        write_binary_index(index, path)
        return path

    def test_codec_names_registered(self):
        for name in ("codec-block-crc", "codec-block-metadata",
                     "codec-dag-suffix"):
            assert name in INVARIANT_NAMES

    def test_healthy_binary_index_audits_clean(self, tmp_path):
        path = self._binary_index(tmp_path)
        assert check_index(path)["ok"]
        assert verify_store(path) == []

    def test_healthy_sharded_binary_audits_clean(self, tmp_path):
        path = self._binary_index(tmp_path, shards=3)
        assert verify_store(path) == []

    def test_corrupt_codec_block_is_deep_only(self, tmp_path):
        path = self._binary_index(tmp_path)
        IndexCorruptor(seed=11).corrupt_codec_block(path)
        # structural checks pass end to end: CRCs were resealed
        assert check_index(path)["ok"]
        load_binary_index(path)
        # only the deep audit can tell
        violations = {v.invariant for v in verify_store(path)}
        assert "postings-sorted" in violations

    def test_corrupt_codec_block_exits_2_from_cli(self, tmp_path, capsys):
        path = self._binary_index(tmp_path)
        IndexCorruptor(seed=11).corrupt_codec_block(path)
        assert main(["check-index", str(path)]) == 0
        assert main(["check-index", str(path), "--deep"]) == 2
        assert "postings-sorted" in capsys.readouterr().out

    def test_byte_corruption_is_structural(self, tmp_path):
        path = self._binary_index(tmp_path)
        TornWriter(seed=5).tear(path, fraction=0.6)
        # a torn binary file is a structural failure — exit 1 without
        # needing --deep (the bytes-level region audit catches it even
        # when the lazy loader has not touched the torn region yet)
        assert main(["check-index", str(path)]) == 1

    def test_torn_header_fails_at_load(self, tmp_path):
        path = self._binary_index(tmp_path)
        TornWriter(seed=5).tear(path, fraction=0.01)
        with pytest.raises(StorageError):
            load_binary_index(path)
        assert check_index(path)["ok"] is False

    def test_decode_file_collects_instead_of_raising(self, tmp_path):
        path = self._binary_index(tmp_path)
        data = bytearray(path.read_bytes())
        data[-3] ^= 0xFF  # flip a byte inside the last posting region
        path.write_bytes(bytes(data))
        collected: list[tuple[str, str]] = []
        decode_file(path, on_violation=lambda name, detail:
                    collected.append((name, detail)))
        assert collected, "tampered region must surface a codec violation"
        assert all(name.startswith("codec-") for name, _ in collected)


# ---------------------------------------------------------------------------
# check-index --json
# ---------------------------------------------------------------------------
class TestCheckIndexJson:
    def _report(self, capsys, *argv):
        exit_code = main(["check-index", *argv, "--json"])
        report = json.loads(capsys.readouterr().out)
        assert report["exit"] == exit_code
        return report

    @pytest.mark.parametrize("codec", CODEC_NAMES)
    def test_json_reports_format_block(self, codec, tmp_path, capsys):
        index = build_index(Repository.from_texts(CORPUS))
        path = tmp_path / "idx"
        resolve_codec(codec).save(index, path)
        report = self._report(capsys, str(path))
        assert report["ok"] is True and report["exit"] == 0
        assert report["format"]["codec"] == codec
        assert report["format"]["layout"] == "monolithic"
        assert report["summary"]["documents"] == len(CORPUS)

    def test_json_is_stable(self, tmp_path, capsys):
        index = build_index(Repository.from_texts(CORPUS))
        path = tmp_path / "idx"
        VarintDagCodec().save(index, path)
        first = self._report(capsys, str(path))
        second = self._report(capsys, str(path))
        assert first == second

    def test_json_on_broken_file(self, tmp_path, capsys):
        path = tmp_path / "broken.idx"
        path.write_bytes(b"GKSIDX04 but not really")
        report = self._report(capsys, str(path))
        assert report["ok"] is False and report["exit"] == 1

    def test_json_on_store_directory(self, tmp_path, capsys):
        engine = GKSEngine.open(Texts(CORPUS),
                                store_path=tmp_path / "store")
        engine.close()
        report = self._report(capsys, str(tmp_path / "store"))
        assert report["ok"] is True
        assert report["format"]["layout"] == "store"
        assert report["format"]["codec"] == "raw"


# ---------------------------------------------------------------------------
# SearchOptions across every surface
# ---------------------------------------------------------------------------
class TestSearchOptions:
    def test_validation(self):
        with pytest.raises(ConfigError):
            SearchOptions(s=0)
        with pytest.raises(ConfigError):
            SearchOptions(k=0)
        with pytest.raises(ConfigError):
            SearchOptions(deadline_s=-1)

    def test_from_mapping_rejects_unknown_keys(self):
        with pytest.raises(ValidationError):
            SearchOptions.from_mapping({"strict": True})
        with pytest.raises(ValidationError):
            SearchOptions.from_mapping({"s": "not-a-number"})
        with pytest.raises(ValidationError):
            SearchOptions.from_mapping([1, 2])

    def test_from_mapping_wire_spelling(self):
        options = SearchOptions.from_mapping(
            {"s": 2, "k": 3, "deadline_ms": 1500, "use_cache": False})
        assert options == SearchOptions(s=2, k=3, deadline_s=1.5,
                                        use_cache=False)

    def test_engine_options_equal_explicit_kwargs(self):
        engine = GKSEngine.open(Texts(CORPUS))
        via_kwargs = engine.search("keyword search", s=2, use_cache=False)
        via_options = engine.search(
            "keyword search",
            options=SearchOptions(s=2, use_cache=False))
        assert _signature(via_options) == _signature(via_kwargs)

    def test_explicit_kwargs_beat_options(self):
        engine = GKSEngine.open(Texts(CORPUS))
        response = engine.search("keyword search", s=1,
                                 options=SearchOptions(s=2))
        assert _signature(response) == \
            _signature(engine.search("keyword search", s=1))

    def test_top_k_via_options(self):
        engine = GKSEngine.open(Texts(CORPUS))
        via_options = engine.search_top_k("keyword",
                                          options=SearchOptions(k=2))
        assert _signature(via_options) == \
            _signature(engine.search_top_k("keyword", 2))
        with pytest.raises(ValidationError):
            engine.search_top_k("keyword")

    def test_strict_deadline_via_options(self):
        from repro.errors import SearchTimeout

        engine = GKSEngine.open(Texts(CORPUS * 4))
        clock = FakeClock(auto_advance=1.0)
        budget = SearchBudget(deadline_s=0.5, clock=clock)
        with pytest.raises(SearchTimeout):
            engine.search("keyword", budget=budget,
                          options=SearchOptions(strict_deadline=True))

    def test_server_core_accepts_options(self):
        from repro.serve.core import ServerCore

        engine = GKSEngine.open(Texts(CORPUS))
        core = ServerCore(engine)
        try:
            via_options = core.search("keyword",
                                      options=SearchOptions(k=1))
            assert len(via_options.nodes) <= 1
            assert _signature(via_options) == \
                _signature(core.search("keyword", k=1))
        finally:
            core.close()

    def test_option_requests_skip_ttl_cache(self):
        from repro.obs.metrics import MetricsRegistry
        from repro.serve.config import ServeConfig
        from repro.serve.core import ServerCore

        engine = GKSEngine.open(Texts(CORPUS))
        registry = MetricsRegistry()
        core = ServerCore(engine, ServeConfig(ttl_s=60.0),
                          registry=registry)
        try:
            core.search("keyword")
            core.search("keyword")   # TTL hit: identical, option-less
            hits = registry.counter("gks_serve_ttl_hits_total")
            assert hits.total() == 1
            # an engine-tuning option excludes the request from the
            # serve cache in both directions: no hit, no store
            core.search("keyword", options=SearchOptions(use_cache=False))
            assert hits.total() == 1
        finally:
            core.close()


@pytest.fixture()
def http_server():
    from repro.obs.metrics import MetricsRegistry
    from repro.serve.config import ServeConfig
    from repro.serve.core import ServerCore
    from repro.serve.http import serve_http

    engine = GKSEngine.open(Texts(CORPUS))
    core = ServerCore(engine, ServeConfig(workers=2),
                      registry=MetricsRegistry())
    server = serve_http(core)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield f"http://127.0.0.1:{server.server_address[1]}"
    server.shutdown()
    server.server_close()
    core.close()


class TestHTTPOptions:
    def _post(self, base, body: dict):
        request = urllib.request.Request(
            f"{base}/search", data=json.dumps(body).encode(),
            headers={"Content-Type": "application/json"})
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.load(response)

    def test_options_object_travels_to_the_engine(self, http_server):
        status, payload = self._post(
            http_server, {"q": "keyword", "options": {"k": 1, "s": 1}})
        assert status == 200
        assert len(payload["nodes"]) <= 1

    def test_unknown_option_is_400(self, http_server):
        with pytest.raises(urllib.error.HTTPError) as caught:
            self._post(http_server,
                       {"q": "keyword", "options": {"turbo": True}})
        assert caught.value.code == 400

    def test_explicit_params_win_over_options(self, http_server):
        _, via_options = self._post(
            http_server, {"q": "keyword search", "s": 1,
                          "options": {"s": 2}})
        _, direct = self._post(http_server, {"q": "keyword search",
                                             "s": 1})
        assert [n["dewey"] for n in via_options["nodes"]] == \
            [n["dewey"] for n in direct["nodes"]]


# ---------------------------------------------------------------------------
# The api facade and the D001 deprecation rule
# ---------------------------------------------------------------------------
class TestApiFacade:
    def test_every_name_resolves(self):
        import repro.api as api

        for name in api.__all__:
            assert getattr(api, name) is not None

    def test_facade_is_the_real_surface(self):
        import repro.api as api

        assert api.GKSEngine is GKSEngine
        assert api.EngineConfig is EngineConfig
        assert api.SearchOptions is SearchOptions
        assert api.resolve_codec is resolve_codec

    def test_quickstart_works_end_to_end(self, tmp_path):
        from repro.api import EngineConfig as Config
        from repro.api import GKSEngine as Engine
        from repro.api import SearchOptions as Options

        config = Config(index_path=tmp_path / "q.idx", codec="varint-dag")
        engine = Engine.open(CORPUS, config=config)
        response = engine.search("keyword search", options=Options(s=2))
        assert response.nodes


class TestD001:
    def _findings(self, tmp_path, source: str):
        from repro.analysis.lint import ModuleInfo, lint_modules
        from repro.analysis.rules import DeprecatedFactoryRule

        path = tmp_path / "snippet.py"
        path.write_text(source)
        return lint_modules([ModuleInfo.from_path(path)],
                            rules=[DeprecatedFactoryRule()])

    def test_deprecated_factories_flagged(self, tmp_path):
        findings = self._findings(
            tmp_path,
            "engine = GKSEngine.from_texts(['<a/>'])\n"
            "other = GKSEngine.from_paths(['a.xml'])\n")
        assert [f.rule_id for f in findings] == ["D001", "D001"]
        assert "GKSEngine.open" in findings[0].message

    def test_open_is_not_flagged(self, tmp_path):
        assert self._findings(
            tmp_path, "engine = GKSEngine.open(['<a/>'])\n") == []

    def test_suppression_marker_works(self, tmp_path):
        assert self._findings(
            tmp_path,
            "engine = GKSEngine.from_texts(x)  # gks: ignore[D001]\n"
        ) == []

    def test_rule_in_default_catalog(self):
        from repro.analysis.lint import rule_catalog

        assert any(rule.rule_id == "D001" for rule in rule_catalog())
