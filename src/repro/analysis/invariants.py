"""Deep data-level invariant verification for built and saved indexes.

A checksum proves a file holds the bytes that were written; it cannot
prove the bytes were *right*.  This module audits the semantic
invariants every GKS correctness argument rests on — the structural
guarantees that make merge/LCP/LCE binary searches, scatter-gather
equivalence and ranking potential-flow sound:

``postings-sorted``
    Every posting list is strictly ascending in Dewey order (strictness
    also rules out duplicates) — the precondition of every binary
    search and k-way merge in the pipeline.
``postings-document``
    Every posting's leading Dewey component names a known document.
``hash-cross-consistency``
    A node present in both ``entityHash`` and ``elementHash`` (a
    dual-role entity+repeating node) carries the same direct-child
    count in both; no child count is negative; every entity node's
    parent is itself indexed.
``stats-agreement``
    ``stats.documents`` matches the recorded document names;
    ``stats.entity_nodes`` matches the entity table; distinct postings
    never exceed the keyword occurrences counted at build time.
``shard-partition``
    The shard manifest partitions the document set exactly once — no
    document unassigned, none assigned twice (an unassigned document
    silently vanishes from every query; a doubly-assigned one is
    double-counted by scatter-gather).
``shard-routing``
    Each document lives on the shard its partitioning strategy names.
``shard-ownership``
    Every posting and hash key of a shard belongs to a document that
    shard owns.
``manifest-crc``
    Each manifest entry's stored CRC32 matches its shard payload.
``codec-block-crc`` / ``codec-block-metadata`` / ``codec-dag-suffix``
    Binary (v4) indexes only: every posting block's stored bytes match
    their CRC32, decoded block content agrees with the directory
    metadata (counts, first keys, frame bounds), and the DAG
    shared-subtree tables are present, sorted and consistent with
    their occurrence prefixes.

:func:`verify_index` audits an in-memory index (monolithic or sharded);
:func:`verify_store` audits a saved file through the **raw** envelope
(:func:`repro.index.storage.read_envelope`), catching on-disk rot that
``load_index`` would silently repair (its ``from_mapping`` re-sorts
posting lists).  Binary v4 files are fully expanded block by block via
:func:`repro.index.codec.decode_file`, which surfaces the codec-layer
invariants above on top of the same generic content audit.  Both
return violation lists; empty means sound.  ``gks check-index --deep``
exits 2 when this audit fails — distinct from exit 1 for
structural/CRC failures.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

from repro.index.builder import GKSIndex
from repro.index.sharding import (PARTITION_STRATEGIES, ShardedIndex,
                                  shard_of)
from repro.index.storage import payload_crc32, read_envelope
from repro.xmltree.dewey import Dewey, format_dewey, parse_dewey


@dataclass(frozen=True)
class InvariantViolation:
    """One violated invariant: which one, and the offending detail."""

    invariant: str
    detail: str

    def render(self) -> str:
        return f"{self.invariant}: {self.detail}"


#: Cap on violations reported per invariant class, so a wholly rotten
#: index produces a readable report instead of one line per posting.
MAX_PER_INVARIANT = 5


class _Report:
    """Accumulates violations with per-invariant caps."""

    def __init__(self) -> None:
        self.violations: list[InvariantViolation] = []
        self._counts: dict[str, int] = {}

    def add(self, invariant: str, detail: str) -> None:
        count = self._counts.get(invariant, 0)
        self._counts[invariant] = count + 1
        if count < MAX_PER_INVARIANT:
            self.violations.append(InvariantViolation(invariant, detail))
        elif count == MAX_PER_INVARIANT:
            self.violations.append(InvariantViolation(
                invariant, "... further violations elided"))


# ----------------------------------------------------------------------
# In-memory audits
# ----------------------------------------------------------------------

def verify_index(index: GKSIndex | ShardedIndex) -> list[InvariantViolation]:
    """Audit a built index; empty list means every invariant holds."""
    report = _Report()
    if isinstance(index, ShardedIndex):
        _audit_sharded(index, report)
    else:
        _audit_monolithic(index, len(index.document_names), report)
    return report.violations


def _audit_monolithic(index: GKSIndex, documents: int, report: _Report,
                      owned: Iterable[int] | None = None,
                      label: str = "") -> None:
    where = f" [{label}]" if label else ""
    owned_set = None if owned is None else set(owned)

    for keyword, postings in index.inverted.items():
        _audit_posting_list(keyword, postings, documents, owned_set,
                            report, where)

    entity = index.hashes.entity_table
    element = index.hashes.element_table
    for table_name, table in (("entityHash", entity),
                              ("elementHash", element)):
        for dewey, child_count in table.items():
            if child_count < 0:
                report.add("hash-cross-consistency",
                           f"{table_name}[{format_dewey(dewey)}]{where} "
                           f"has negative child count {child_count}")
            if dewey[0] >= documents:
                report.add("postings-document",
                           f"{table_name}{where} references unknown "
                           f"document {dewey[0]}")
            elif owned_set is not None and dewey[0] not in owned_set:
                report.add("shard-ownership",
                           f"{table_name}{where} holds "
                           f"{format_dewey(dewey)} of unowned document "
                           f"{dewey[0]}")
    for dewey in set(entity) & set(element):
        if entity[dewey] != element[dewey]:
            report.add("hash-cross-consistency",
                       f"dual-role node {format_dewey(dewey)}{where} has "
                       f"child count {entity[dewey]} in entityHash but "
                       f"{element[dewey]} in elementHash")
    known = set(entity) | set(element)
    for dewey in entity:
        parent = dewey[:-1]
        if len(parent) >= 1 and parent not in known:
            report.add("hash-cross-consistency",
                       f"entity {format_dewey(dewey)}{where} has an "
                       f"unindexed parent")

    stats = index.stats
    local_documents = len(index.document_names)
    if stats.documents != local_documents:
        report.add("stats-agreement",
                   f"stats.documents={stats.documents}{where} but "
                   f"{local_documents} document name(s) recorded")
    if stats.entity_nodes != len(entity):
        report.add("stats-agreement",
                   f"stats.entity_nodes={stats.entity_nodes}{where} but "
                   f"entityHash holds {len(entity)} node(s)")
    occurrences = stats.text_keywords + stats.tag_keywords
    total_postings = index.inverted.total_postings
    if occurrences and total_postings > occurrences:
        report.add("stats-agreement",
                   f"{total_postings} distinct postings{where} exceed "
                   f"the {occurrences} keyword occurrence(s) counted at "
                   f"build time")


def _audit_posting_list(keyword: str, postings: list[Dewey],
                        documents: int, owned_set: set[int] | None,
                        report: _Report, where: str = "") -> None:
    if not postings:
        report.add("postings-sorted",
                   f"empty posting list for {keyword!r}{where}")
        return
    for previous, current in zip(postings, postings[1:]):
        if previous == current:
            report.add("postings-sorted",
                       f"duplicate posting {format_dewey(current)} for "
                       f"{keyword!r}{where}")
            break
        if previous > current:
            report.add("postings-sorted",
                       f"posting list for {keyword!r}{where} is out of "
                       f"order at {format_dewey(current)}")
            break
    for dewey in postings:
        if dewey[0] >= documents:
            report.add("postings-document",
                       f"posting {format_dewey(dewey)} of {keyword!r}"
                       f"{where} references unknown document {dewey[0]}")
            break
        if owned_set is not None and dewey[0] not in owned_set:
            report.add("shard-ownership",
                       f"posting {format_dewey(dewey)} of {keyword!r}"
                       f"{where} belongs to document {dewey[0]} not "
                       f"owned by this shard")
            break


def _audit_sharded(index: ShardedIndex, report: _Report) -> None:
    documents = len(index.document_names)
    _audit_partition(
        [(shard.shard_id, shard.doc_ids) for shard in index.shards],
        list(index.document_names), index.strategy, report)
    for shard in index.shards:
        _audit_monolithic(shard.index, documents, report,
                          owned=shard.doc_ids,
                          label=f"shard {shard.shard_id}")


def _audit_partition(assignments: list[tuple[int, tuple[int, ...]]],
                     document_names: list[str], strategy: str,
                     report: _Report, *,
                     invariants: tuple[str, str] = ("shard-partition",
                                                    "shard-routing"),
                     shards: int | None = None) -> None:
    """Shared by in-memory, raw-store and segmented-store audits.

    ``shards`` defaults to one shard per assignment row; segmented
    stores pass the manifest's shard count explicitly (several segment
    records share a shard there).
    """
    partition_inv, routing_inv = invariants
    documents = len(document_names)
    if shards is None:
        shards = len(assignments)
    owner: dict[int, int] = {}
    for shard_id, doc_ids in assignments:
        for doc_id in doc_ids:
            if doc_id in owner:
                report.add(partition_inv,
                           f"document {doc_id} is assigned to both "
                           f"shard {owner[doc_id]} and shard {shard_id}")
                continue
            owner[doc_id] = shard_id
            if not 0 <= doc_id < documents:
                report.add(partition_inv,
                           f"shard {shard_id} claims unknown document "
                           f"{doc_id}")
    for doc_id in range(documents):
        if doc_id not in owner:
            report.add(partition_inv,
                       f"document {doc_id} "
                       f"({document_names[doc_id]!r}) is assigned to no "
                       f"shard — it would vanish from every query")
    if strategy not in PARTITION_STRATEGIES:
        report.add(routing_inv,
                   f"unknown partitioning strategy {strategy!r}")
        return
    for doc_id, shard_id in sorted(owner.items()):
        if not 0 <= doc_id < documents:
            continue
        expected = shard_of(doc_id, document_names[doc_id], shards,
                            strategy)
        if expected != shard_id:
            report.add(routing_inv,
                       f"document {doc_id} lives on shard {shard_id} "
                       f"but strategy {strategy!r} routes it to shard "
                       f"{expected}")


# ----------------------------------------------------------------------
# Raw on-disk audits
# ----------------------------------------------------------------------

def verify_store(path: str | Path) -> list[InvariantViolation]:
    """Audit a saved index file through the raw (unrepaired) envelope.

    Structural failures (unreadable, truncated, bad CRC at the envelope
    level) raise :class:`~repro.errors.StorageError` exactly as
    ``load_index`` would — callers distinguish *broken file* (exit 1)
    from *consistent-but-wrong file* (exit 2, the violations returned
    here).

    Binary (v4) files take the codec path: the whole file is expanded
    block by block, collecting ``codec-block-crc`` /
    ``codec-block-metadata`` / ``codec-dag-suffix`` violations, then
    the expanded postings and hash tables get the same content audit
    as an envelope payload.
    """
    from repro.index.codec import is_binary_index

    if is_binary_index(path):
        return _verify_binary_store(path)
    envelope = read_envelope(path)
    report = _Report()
    version = envelope.get("version")
    if version == 3:
        _audit_store_sharded(envelope, report)
    else:
        payload = envelope if version == 1 else envelope.get("payload", {})
        documents = len(payload.get("document_names", ()))
        _audit_store_payload(payload, documents, None, report)
    return report.violations


def _audit_store_sharded(envelope: dict, report: _Report) -> None:
    manifest = envelope.get("manifest", {})
    payloads = envelope.get("shards", [])
    entries = manifest.get("shards", [])
    document_names = list(manifest.get("document_names", ()))
    _audit_partition(
        [(int(entry.get("shard_id", position)),
          tuple(entry.get("doc_ids", ())))
         for position, entry in enumerate(entries)],
        document_names, manifest.get("strategy", "round_robin"), report)
    for entry, payload in zip(entries, payloads):
        shard_id = entry.get("shard_id")
        if entry.get("crc32") != payload_crc32(payload):
            report.add("manifest-crc",
                       f"manifest CRC for shard {shard_id} does not "
                       f"match its payload")
        _audit_store_payload(payload, len(document_names),
                             set(entry.get("doc_ids", ())), report,
                             label=f"shard {shard_id}")


def _audit_store_payload(payload: dict, documents: int,
                         owned: set[int] | None, report: _Report,
                         label: str = "") -> None:
    where = f" [{label}]" if label else ""
    for keyword, raw_postings in payload.get("postings", {}).items():
        postings = [parse_dewey(text) for text in raw_postings]
        _audit_posting_list(keyword, postings, documents, owned, report,
                            where)
    entity = {parse_dewey(text): count
              for text, count in payload.get("entity_hash", {}).items()}
    element = {parse_dewey(text): count
               for text, count in payload.get("element_hash", {}).items()}
    _audit_tables_and_stats(entity, element, payload.get("stats", {}),
                            len(payload.get("document_names", ())),
                            documents, owned, report, where)


def _audit_tables_and_stats(entity: dict, element: dict, stats: dict,
                            local_documents: int, documents: int,
                            owned: set[int] | None, report: _Report,
                            where: str) -> None:
    """Hash-table and stats audit shared by the envelope and codec paths."""
    for table_name, table in (("entityHash", entity),
                              ("elementHash", element)):
        for dewey, child_count in table.items():
            if child_count < 0:
                report.add("hash-cross-consistency",
                           f"{table_name}[{format_dewey(dewey)}]{where} "
                           f"has negative child count {child_count}")
            if dewey[0] >= documents:
                report.add("postings-document",
                           f"{table_name}{where} references unknown "
                           f"document {dewey[0]}")
            elif owned is not None and dewey[0] not in owned:
                report.add("shard-ownership",
                           f"{table_name}{where} holds "
                           f"{format_dewey(dewey)} of unowned document "
                           f"{dewey[0]}")
    for dewey in set(entity) & set(element):
        if entity[dewey] != element[dewey]:
            report.add("hash-cross-consistency",
                       f"dual-role node {format_dewey(dewey)}{where} "
                       f"disagrees on child count between the tables")
    if stats.get("documents", local_documents) != local_documents:
        report.add("stats-agreement",
                   f"stats.documents={stats.get('documents')}{where} "
                   f"but {local_documents} document name(s) recorded")
    if "entity_nodes" in stats and stats["entity_nodes"] != len(entity):
        report.add("stats-agreement",
                   f"stats.entity_nodes={stats['entity_nodes']}{where} "
                   f"but entityHash holds {len(entity)} node(s)")


# ----------------------------------------------------------------------
# Binary (v4) on-disk audits
# ----------------------------------------------------------------------

def _verify_binary_store(path: str | Path) -> list[InvariantViolation]:
    """Audit a v4 binary file: codec invariants plus the content audit.

    :func:`repro.index.codec.decode_file` expands every posting block
    and DAG table, reporting ``codec-block-crc`` /
    ``codec-block-metadata`` / ``codec-dag-suffix`` through the
    collector instead of raising; the expanded shards then get the same
    generic audit as an envelope payload.  Header-level failures (bad
    magic, truncated header, header CRC) still raise ``StorageError``.
    """
    from repro.index.codec import decode_file

    report = _Report()
    decoded = decode_file(path, on_violation=report.add)
    documents = len(decoded.document_names)
    sharded = decoded.layout == "sharded"
    if sharded:
        _audit_partition(
            [(shard.shard_id, tuple(shard.doc_ids or ()))
             for shard in decoded.shards],
            list(decoded.document_names),
            decoded.strategy or "round_robin", report)
    for shard in decoded.shards:
        owned = (set(shard.doc_ids)
                 if sharded and shard.doc_ids is not None else None)
        where = f" [shard {shard.shard_id}]" if sharded else ""
        for keyword, postings in shard.postings.items():
            _audit_posting_list(keyword, postings, documents, owned,
                                report, where)
        _audit_tables_and_stats(shard.entity, shard.element,
                                dict(shard.stats),
                                len(shard.document_names), documents,
                                owned, report, where)
    return report.violations


# ----------------------------------------------------------------------
# Segmented-store audits
# ----------------------------------------------------------------------

def verify_segmented_store(directory: str | Path
                           ) -> list[InvariantViolation]:
    """Audit a segmented store directory (manifest + segments + WAL).

    Covers the durability-specific invariants on top of the per-segment
    payload audit:

    ``manifest-generation``
        The manifest generation is positive, no segment or texts file
        claims a newer generation than the manifest, and every record's
        generation agrees with its file name — a regressed manifest
        would resurrect deleted documents after the next compaction.
    ``segment-orphan`` / ``segment-missing`` / ``segment-crc``
        Every file the manifest names exists with the recorded CRC32,
        and no unreferenced segment/texts/temp file lingers (an orphan
        is a crash residue the store should have cleaned, or worse, a
        manifest that lost a reference).
    ``segment-partition`` / ``segment-routing``
        The segment records partition the document set exactly once per
        shard strategy, and the texts sidecars cover each appended
        document exactly once.
    ``wal-consistency``
        The WAL exists, replays (a torn tail is legal crash residue),
        and its post-checkpoint tail continues the manifest: frames
        numbered from ``wal_lsn + 1`` appending documents numbered from
        ``len(document_names)``.

    Structural manifest failures raise :class:`StorageError` (exit 1 in
    the CLI); the returned violations are exit 2.
    """
    from repro.index.segments import (SEGMENT_PATTERN, TEXTS_PATTERN,
                                      WAL_NAME, file_crc32, read_manifest)

    directory = Path(directory)
    manifest = read_manifest(directory)
    report = _Report()

    if manifest.generation < 1:
        report.add("manifest-generation",
                   f"manifest generation {manifest.generation} is not "
                   f"positive")
    referenced: set[str] = set()
    for record in manifest.segments:
        referenced.add(record.file)
        if record.generation > manifest.generation:
            report.add("manifest-generation",
                       f"segment {record.file} claims generation "
                       f"{record.generation} newer than the manifest's "
                       f"{manifest.generation}")
        match = SEGMENT_PATTERN.match(record.file)
        if match and (int(match.group(1)) != record.generation
                      or int(match.group(2)) != record.shard_id):
            report.add("manifest-generation",
                       f"segment {record.file} disagrees with its record "
                       f"(generation {record.generation}, shard "
                       f"{record.shard_id})")
    for record in manifest.texts:
        referenced.add(record.file)
        match = TEXTS_PATTERN.match(record.file)
        if match and int(match.group(1)) > manifest.generation:
            report.add("manifest-generation",
                       f"texts file {record.file} is newer than the "
                       f"manifest generation {manifest.generation}")

    for entry in sorted(directory.iterdir()):
        name = entry.name
        if name in referenced or name in ("MANIFEST", WAL_NAME):
            continue
        if (name.endswith(".tmp") or SEGMENT_PATTERN.match(name)
                or TEXTS_PATTERN.match(name)):
            report.add("segment-orphan",
                       f"unreferenced file {name} in {directory}")

    documents = len(manifest.document_names)
    for record in list(manifest.segments) + list(manifest.texts):
        path = directory / record.file
        if not path.exists():
            report.add("segment-missing",
                       f"manifest references missing file {record.file}")
            continue
        if file_crc32(path) != record.crc32:
            report.add("segment-crc",
                       f"{record.file} does not match its manifest CRC32")

    _audit_partition(
        [(record.shard_id, record.doc_ids)
         for record in manifest.segments],
        list(manifest.document_names), manifest.strategy, report,
        invariants=("segment-partition", "segment-routing"),
        shards=manifest.shards)
    appended = set(range(manifest.base_documents, documents))
    texts_seen: dict[int, str] = {}
    for record in manifest.texts:
        for doc_id in record.doc_ids:
            if doc_id in texts_seen:
                report.add("segment-partition",
                           f"appended document {doc_id} appears in both "
                           f"{texts_seen[doc_id]} and {record.file}")
            texts_seen[doc_id] = record.file
            if doc_id not in appended:
                report.add("segment-partition",
                           f"texts file {record.file} covers {doc_id}, "
                           f"which is not an appended document")
    for doc_id in sorted(appended - set(texts_seen)):
        report.add("segment-partition",
                   f"appended document {doc_id} has no texts sidecar — "
                   f"it cannot be recovered")

    _audit_wal_tail(directory / WAL_NAME, manifest, report)

    # deep payload audit of every intact segment
    for record in manifest.segments:
        path = directory / record.file
        if not path.exists():
            continue
        try:
            envelope = read_envelope(path)
        except Exception:  # noqa: BLE001 - broken file already reported
            continue
        payload = (envelope if envelope.get("version") == 1
                   else envelope.get("payload", {}))
        _audit_store_payload(payload, documents, set(record.doc_ids),
                             report, label=record.file)
    return report.violations


def _audit_wal_tail(path: Path, manifest, report: _Report) -> None:
    from repro.errors import StorageError
    from repro.index.wal import replay_wal

    if not path.exists():
        report.add("wal-consistency",
                   f"missing WAL {path.name}: acknowledged writes may "
                   f"be lost")
        return
    try:
        replay = replay_wal(path)
    except StorageError as exc:
        report.add("wal-consistency", f"WAL does not replay: {exc}")
        return
    tail = [frame for frame in replay.frames
            if frame.lsn > manifest.wal_lsn]
    if tail and tail[0].lsn != manifest.wal_lsn + 1:
        report.add("wal-consistency",
                   f"WAL tail starts at lsn {tail[0].lsn} but the "
                   f"manifest checkpointed lsn {manifest.wal_lsn} — "
                   f"frames in between are lost")
        return
    doc_id = len(manifest.document_names)
    for frame in tail:
        record = frame.record
        if (not isinstance(record, dict) or record.get("op") != "add"
                or record.get("doc_id") != doc_id
                or not isinstance(record.get("text"), str)):
            report.add("wal-consistency",
                       f"WAL frame {frame.lsn} does not continue the "
                       f"manifest (expected add of document {doc_id})")
            return
        doc_id += 1


#: Invariant names, for the docs and the CLI's "what was checked" line.
INVARIANT_NAMES = (
    "postings-sorted", "postings-document", "hash-cross-consistency",
    "stats-agreement", "shard-partition", "shard-routing",
    "shard-ownership", "manifest-crc", "manifest-generation",
    "segment-orphan", "segment-missing", "segment-crc",
    "segment-partition", "segment-routing", "wal-consistency",
    "codec-block-crc", "codec-block-metadata", "codec-dag-suffix",
)
