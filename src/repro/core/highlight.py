"""Keyword highlighting inside result snippets.

The engine's snippets are plain XML; a terminal/UI wants the matched
query keywords marked.  The highlighter re-analyses each text value with
the engine's analyzer and wraps the *original* word whenever its
analysed form is a query keyword (or a word of a phrase keyword) — so
``Publications`` lights up for the query keyword ``public``.
"""

from __future__ import annotations

from repro.core.query import Query
from repro.text.analyzer import DEFAULT_ANALYZER, Analyzer
from repro.xmltree.node import XMLNode
from repro.xmltree.serialize import escape_text


def highlight_text(text: str, query: Query,
                   analyzer: Analyzer = DEFAULT_ANALYZER,
                   marker: str = "**") -> str:
    """Wrap each query-matching word of *text* in *marker*s."""
    wanted = query.word_set()
    pieces: list[str] = []
    cursor = 0
    for start, end, token in _token_spans(text):
        analysed = analyzer.analyze(token)
        hit = bool(analysed) and analysed[0] in wanted
        pieces.append(text[cursor:start])
        if hit:
            pieces.append(f"{marker}{text[start:end]}{marker}")
        else:
            pieces.append(text[start:end])
        cursor = end
    pieces.append(text[cursor:])
    return "".join(pieces)


def _token_spans(text: str):
    """(start, end, token) runs of alphanumerics, like the tokenizer."""
    start = -1
    for index, char in enumerate(text):
        if char.isalnum():
            if start < 0:
                start = index
        elif start >= 0:
            yield start, index, text[start:index]
            start = -1
    if start >= 0:
        yield start, len(text), text[start:]


def highlight_snippet(element: XMLNode, query: Query,
                      analyzer: Analyzer = DEFAULT_ANALYZER,
                      indent: int = 2, marker: str = "**") -> str:
    """Serialize *element* with query keywords marked in text values.

    Tags are never marked (a tag hit is visible from the query anyway);
    XML escaping applies to the text, not to the markers.
    """
    lines: list[str] = []
    _render(element, query, analyzer, indent, marker, 0, lines)
    return "\n".join(lines)


def _render(node: XMLNode, query: Query, analyzer: Analyzer,
            indent: int, marker: str, level: int,
            lines: list[str]) -> None:
    pad = " " * (indent * level)
    if node.is_leaf and node.has_text:
        value = highlight_text(escape_text(node.text.strip()), query,
                               analyzer, marker)
        lines.append(f"{pad}<{node.tag}>{value}</{node.tag}>")
        return
    if node.is_leaf:
        lines.append(f"{pad}<{node.tag}/>")
        return
    lines.append(f"{pad}<{node.tag}>")
    if node.has_text:
        lines.append(pad + " " * indent + highlight_text(
            escape_text(node.text.strip()), query, analyzer, marker))
    for child in node.children:
        _render(child, query, analyzer, indent, marker, level + 1, lines)
    lines.append(f"{pad}</{node.tag}>")
