"""Static-analysis suite: lint rules, layering, deep invariants, CLI.

Every rule gets three fixtures — one that fires it (positive), one that
must stay silent (negative), and one where an inline ``# gks: ignore``
suppression waives the finding.  Layering runs over a synthetic module
graph; the invariant tests use :class:`repro.testing.faults.
IndexCorruptor` to produce consistent-but-wrong stores and assert the
deep audit catches what checksums and ``load_index`` cannot.
"""

from __future__ import annotations

import shutil
import textwrap
from pathlib import Path

import pytest

from repro.analysis import (InvariantViolation, lint_paths, rule_catalog,
                            verify_index, verify_store)
from repro.analysis.lint import ModuleInfo, lint_modules
from repro.cli import main
from repro.errors import ConfigError, StorageError
from repro.index.builder import IndexBuilder
from repro.index.sharding import ParallelIndexBuilder
from repro.index.storage import load_index, save_index
from repro.testing.faults import IndexCorruptor, TornWriter
from repro.xmltree.parser import parse_document

pytestmark = pytest.mark.analysis

BOOKS = (
    "<bib><book><title>XML keyword search</title>"
    "<author>Liu</author></book>"
    "<book><title>query engines</title><author>Chen</author></book></bib>",
    "<bib><book><title>ranking with potential</title>"
    "<author>Agarwal</author></book>"
    "<book><title>keyword semantics</title><author>Kim</author>"
    "</book></bib>",
    "<bib><book><title>dewey encodings</title><author>Rantzau</author>"
    "</book></bib>",
)


def module_from(tmp_path: Path, relative: str, source: str) -> ModuleInfo:
    """Materialise *source* at *relative* under tmp_path and parse it."""
    path = tmp_path / relative
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return ModuleInfo.from_path(path)


def findings_for(tmp_path: Path, relative: str, source: str,
                 rule_id: str) -> list:
    module = module_from(tmp_path, relative, source)
    return [finding for finding in lint_modules([module])
            if finding.rule_id == rule_id]


# ----------------------------------------------------------------------
# Engine plumbing
# ----------------------------------------------------------------------

class TestEngine:
    def test_rule_catalog_ids(self):
        ids = [rule.rule_id for rule in rule_catalog()]
        assert len(ids) == len(set(ids))  # unique
        for expected in ("L001", "L002", "T001", "E001", "E002",
                         "M001", "M002", "F001", "C001", "C002", "C003"):
            assert expected in ids

    def test_module_roles(self, tmp_path):
        lib = module_from(tmp_path, "src/repro/index/x.py", "a = 1\n")
        assert lib.role == "library"
        assert lib.module == "repro.index.x"
        assert lib.package == "index"
        test = module_from(tmp_path, "tests/test_x.py", "a = 1\n")
        assert test.role == "tests" and test.package is None
        bench = module_from(tmp_path, "benchmarks/bench_x.py", "a = 1\n")
        assert bench.role == "benchmarks"

    def test_unparseable_file_yields_p001(self, tmp_path):
        module = module_from(tmp_path, "src/repro/index/bad.py",
                             "def broken(:\n")
        findings = lint_modules([module])
        assert [finding.rule_id for finding in findings] == ["P001"]

    def test_suppress_all_marker(self, tmp_path):
        findings = findings_for(
            tmp_path, "src/repro/core/x.py",
            "import time\n"
            "t = time.perf_counter()  # gks: ignore\n", "T001")
        assert findings == []

    def test_duplicate_rule_id_rejected(self):
        from repro.analysis.lint import Rule, register
        with pytest.raises(ConfigError):
            register(type("Dup", (Rule,), {"rule_id": "T001"}))


# ----------------------------------------------------------------------
# Rule fixtures: positive / negative / suppressed
# ----------------------------------------------------------------------

class TestAdHocClockRule:
    POSITIVE = "import time\n\nstart = time.perf_counter()\n"

    def test_fires_in_core(self, tmp_path):
        findings = findings_for(tmp_path, "src/repro/core/x.py",
                                self.POSITIVE, "T001")
        assert len(findings) == 1
        assert "tracer clock" in findings[0].message

    def test_fires_on_from_import(self, tmp_path):
        findings = findings_for(
            tmp_path, "src/repro/index/x.py",
            "from time import perf_counter\n", "T001")
        assert len(findings) == 1

    def test_silent_outside_disciplined_packages(self, tmp_path):
        assert findings_for(tmp_path, "src/repro/eval/x.py",
                            self.POSITIVE, "T001") == []
        assert findings_for(tmp_path, "benchmarks/bench_x.py",
                            self.POSITIVE, "T001") == []

    def test_silent_on_injected_clock(self, tmp_path):
        source = """\
            from repro.obs.trace import DEFAULT_CLOCK

            def f(clock=None):
                clock = clock if clock is not None else DEFAULT_CLOCK
                return clock()
            """
        assert findings_for(tmp_path, "src/repro/core/x.py",
                            source, "T001") == []

    def test_suppressed(self, tmp_path):
        findings = findings_for(
            tmp_path, "src/repro/core/x.py",
            "import time\n"
            "start = time.perf_counter()  # gks: ignore[T001]\n",
            "T001")
        assert findings == []


class TestBareExceptRule:
    def test_fires_everywhere(self, tmp_path):
        source = "try:\n    pass\nexcept:\n    pass\n"
        assert findings_for(tmp_path, "src/repro/eval/x.py",
                            source, "E001")
        assert findings_for(tmp_path, "tests/test_x.py", source, "E001")

    def test_silent_on_named_except(self, tmp_path):
        source = "try:\n    pass\nexcept ValueError:\n    pass\n"
        assert findings_for(tmp_path, "src/repro/eval/x.py",
                            source, "E001") == []

    def test_suppressed(self, tmp_path):
        source = ("try:\n    pass\n"
                  "except:  # gks: ignore[E001]\n    pass\n")
        assert findings_for(tmp_path, "src/repro/eval/x.py",
                            source, "E001") == []


class TestBuiltinRaiseRule:
    POSITIVE = 'def f():\n    raise ValueError("bad")\n'

    def test_fires_in_library(self, tmp_path):
        findings = findings_for(tmp_path, "src/repro/text/x.py",
                                self.POSITIVE, "E002")
        assert len(findings) == 1
        assert "GKSError" in findings[0].message

    def test_fires_on_bare_name_runtime_error(self, tmp_path):
        assert findings_for(tmp_path, "src/repro/text/x.py",
                            "def f():\n    raise RuntimeError\n",
                            "E002")

    def test_silent_in_tests_and_on_typed_errors(self, tmp_path):
        assert findings_for(tmp_path, "tests/test_x.py",
                            self.POSITIVE, "E002") == []
        source = ("from repro.errors import ValidationError\n"
                  "def f():\n"
                  '    raise ValidationError("bad")\n')
        assert findings_for(tmp_path, "src/repro/text/x.py",
                            source, "E002") == []

    def test_suppressed(self, tmp_path):
        source = ("def f():\n"
                  '    raise ValueError("bad")  # gks: ignore[E002]\n')
        assert findings_for(tmp_path, "src/repro/text/x.py",
                            source, "E002") == []


class TestMutableDefaultRule:
    def test_fires_on_list_dict_and_factory(self, tmp_path):
        source = ("def f(a=[], b={}, c=dict()):\n    return a, b, c\n")
        findings = findings_for(tmp_path, "src/repro/eval/x.py",
                                source, "M001")
        assert len(findings) == 3

    def test_fires_on_kwonly_and_lambda(self, tmp_path):
        source = ("def f(*, a=set()):\n    return a\n"
                  "g = lambda a=[]: a\n")
        assert len(findings_for(tmp_path, "src/repro/eval/x.py",
                                source, "M001")) == 2

    def test_silent_on_none_and_tuples(self, tmp_path):
        source = "def f(a=None, b=(), c=0):\n    return a, b, c\n"
        assert findings_for(tmp_path, "src/repro/eval/x.py",
                            source, "M001") == []

    def test_suppressed(self, tmp_path):
        source = "def f(a=[]):  # gks: ignore[M001]\n    return a\n"
        assert findings_for(tmp_path, "src/repro/eval/x.py",
                            source, "M001") == []


class TestFrozenDataclassRule:
    POSITIVE = """\
        from dataclasses import dataclass

        @dataclass
        class Config:
            value: int = 0
        """

    def test_fires_in_scoped_module(self, tmp_path):
        findings = findings_for(tmp_path, "src/repro/core/config.py",
                                self.POSITIVE, "M002")
        assert len(findings) == 1
        assert "frozen=True" in findings[0].message

    def test_fires_on_call_without_frozen(self, tmp_path):
        source = ("from dataclasses import dataclass\n"
                  "@dataclass(order=True)\n"
                  "class Stats:\n    value: int = 0\n")
        assert findings_for(tmp_path, "src/repro/obs/stats.py",
                            source, "M002")

    def test_silent_when_frozen_or_out_of_scope(self, tmp_path):
        frozen = ("from dataclasses import dataclass\n"
                  "@dataclass(frozen=True)\n"
                  "class Config:\n    value: int = 0\n")
        assert findings_for(tmp_path, "src/repro/core/config.py",
                            frozen, "M002") == []
        assert findings_for(tmp_path, "src/repro/eval/other.py",
                            self.POSITIVE, "M002") == []

    def test_suppressed(self, tmp_path):
        source = ("from dataclasses import dataclass\n"
                  "@dataclass  # gks: ignore[M002]\n"
                  "class Config:\n    value: int = 0\n")
        # the finding anchors on the class line; suppress there too
        anchored = ("from dataclasses import dataclass\n"
                    "@dataclass\n"
                    "class Config:  # gks: ignore[M002]\n"
                    "    value: int = 0\n")
        assert findings_for(tmp_path, "src/repro/core/config.py",
                            anchored, "M002") == []
        del source


class TestForkSafetyRule:
    POSITIVE = """\
        STATE = {}

        def worker(i):
            STATE[i] = i

        def run(pool):
            return pool.map(worker, range(4))
        """

    def test_fires_on_worker_mutation(self, tmp_path):
        findings = findings_for(tmp_path, "src/repro/index/x.py",
                                self.POSITIVE, "F001")
        assert len(findings) == 1
        assert "read-only" in findings[0].message

    def test_fires_on_mutating_method(self, tmp_path):
        source = """\
            JOBS = []

            def worker(i):
                JOBS.append(i)

            def run(executor):
                return executor.submit(worker, 1)
            """
        assert findings_for(tmp_path, "src/repro/index/x.py",
                            source, "F001")

    def test_silent_on_parent_side_mutation(self, tmp_path):
        source = """\
            STATE = {}

            def worker(i):
                return STATE[i]

            def run(pool):
                STATE[0] = 1          # parent mutates before the fork
                return pool.map(worker, range(4))
            """
        assert findings_for(tmp_path, "src/repro/index/x.py",
                            source, "F001") == []

    def test_suppressed(self, tmp_path):
        source = """\
            STATE = {}

            def worker(i):
                STATE[i] = i  # gks: ignore[F001]

            def run(pool):
                return pool.map(worker, range(4))
            """
        assert findings_for(tmp_path, "src/repro/index/x.py",
                            source, "F001") == []


# ----------------------------------------------------------------------
# Layering on a synthetic module graph
# ----------------------------------------------------------------------

class TestLayering:
    def test_upward_import_fires(self, tmp_path):
        module = module_from(tmp_path, "src/repro/xmltree/x.py",
                             "from repro.core.engine import GKSEngine\n")
        findings = [finding for finding in lint_modules([module])
                    if finding.rule_id == "L001"]
        assert len(findings) == 1
        assert "layer" in findings[0].message

    def test_downward_and_cross_cutting_imports_pass(self, tmp_path):
        modules = [
            module_from(tmp_path, "src/repro/core/x.py",
                        "from repro.index.builder import IndexBuilder\n"
                        "from repro.errors import GKSError\n"
                        "from repro.obs.trace import DEFAULT_CLOCK\n"),
            module_from(tmp_path, "src/repro/cli2.py",
                        "from repro.core.engine import GKSEngine\n"),
        ]
        findings = [finding for finding in lint_modules(modules)
                    if finding.rule_id == "L001"]
        assert findings == []

    def test_deferred_import_exempt(self, tmp_path):
        module = module_from(
            tmp_path, "src/repro/core/x.py",
            "def plug():\n"
            "    from repro.analytics.aggregate import facet\n"
            "    return facet\n")
        findings = [finding for finding in lint_modules([module])
                    if finding.rule_id == "L001"]
        assert findings == []

    def test_cycle_detected(self, tmp_path):
        modules = [
            module_from(tmp_path, "src/repro/text/x.py",
                        "import repro.xmltree.y\n"),
            module_from(tmp_path, "src/repro/xmltree/y.py",
                        "import repro.text.x\n"),
        ]
        findings = [finding for finding in lint_modules(modules)
                    if finding.rule_id == "L002"]
        assert len(findings) == 1
        assert "cycle" in findings[0].message

    def test_repo_itself_is_clean(self):
        findings = lint_paths(["src", "tests", "benchmarks"])
        assert findings == [], "\n".join(
            finding.render() for finding in findings)


# ----------------------------------------------------------------------
# Deep invariants
# ----------------------------------------------------------------------

def build_corpus_index():
    builder = IndexBuilder()
    for doc_id, text in enumerate(BOOKS):
        builder.add_document(parse_document(text, doc_id=doc_id,
                                            name=f"doc{doc_id}.xml"))
    return builder.build()


def build_sharded_index(shards: int = 2):
    return ParallelIndexBuilder(shards=shards, workers=1).build_from_texts(
        list(BOOKS), names=[f"doc{i}.xml" for i in range(len(BOOKS))])


class TestInvariants:
    def test_clean_indexes_have_no_violations(self, tmp_path):
        mono, sharded = build_corpus_index(), build_sharded_index()
        assert verify_index(mono) == []
        assert verify_index(sharded) == []
        for name, index in (("mono.gks", mono), ("shard.gks", sharded)):
            path = tmp_path / name
            save_index(index, path)
            assert verify_store(path) == []

    def test_violation_render_names_invariant(self):
        violation = InvariantViolation("postings-sorted", "detail")
        assert violation.render().startswith("postings-sorted:")

    def test_corrupted_postings_detected(self, tmp_path):
        path = tmp_path / "mono.gks"
        save_index(build_corpus_index(), path)
        IndexCorruptor(seed=11).corrupt_postings(path)
        load_index(path)  # CRCs were resealed: the file loads cleanly
        violations = verify_store(path)
        assert any(violation.invariant == "postings-sorted"
                   for violation in violations)

    def test_manifest_drop_detected(self, tmp_path):
        path = tmp_path / "shard.gks"
        save_index(build_sharded_index(), path)
        IndexCorruptor(seed=11).drop_manifest_document(path)
        load_index(path)
        violations = verify_store(path)
        assert any(violation.invariant == "shard-partition"
                   for violation in violations)

    def test_skewed_child_count_detected(self, tmp_path):
        path = tmp_path / "mono.gks"
        save_index(build_corpus_index(), path)
        IndexCorruptor(seed=11).skew_child_count(path)
        load_index(path)
        violations = verify_store(path)
        assert any(violation.invariant == "hash-cross-consistency"
                   for violation in violations)

    def test_in_memory_shard_misrouting_detected(self):
        sharded = build_sharded_index()
        # misdeclare the strategy: hash routing disagrees with the
        # round-robin placement the shards were actually built with
        # (CRC-hash routes every docN.xml to shard 0; round-robin put
        # doc1 on shard 1, so the disagreement is deterministic)
        sharded.strategy = "hash"
        violations = verify_index(sharded)
        assert any(violation.invariant == "shard-routing"
                   for violation in violations)
        sharded.strategy = "round_robin"
        assert verify_index(sharded) == []

    def test_torn_store_still_raises_storage_error(self, tmp_path):
        path = tmp_path / "mono.gks"
        save_index(build_corpus_index(), path)
        TornWriter(seed=1).tear(path, fraction=0.5)
        with pytest.raises(StorageError):
            verify_store(path)


# ----------------------------------------------------------------------
# CLI exit-code contract
# ----------------------------------------------------------------------

class TestCli:
    def test_lint_clean_tree_exits_zero(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert main(["lint", str(tmp_path)]) == 0

    def test_lint_findings_exit_one(self, tmp_path, capsys):
        bad = tmp_path / "src" / "repro" / "core" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import time\nt = time.time()\n")
        assert main(["lint", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "T001" in out

    def test_lint_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("L001", "T001", "E002", "F001", "C001", "C002",
                        "C003"):
            assert rule_id in out

    def test_check_index_deep_exit_codes(self, tmp_path, capsys):
        path = tmp_path / "shard.gks"
        save_index(build_sharded_index(), path)
        assert main(["check-index", str(path), "--deep"]) == 0

        corrupted = tmp_path / "corrupted.gks"
        shutil.copy(path, corrupted)
        IndexCorruptor(seed=5).drop_manifest_document(corrupted)
        # shallow check cannot see it ...
        assert main(["check-index", str(corrupted)]) == 0
        # ... the deep audit exits 2 and names the invariant
        assert main(["check-index", str(corrupted), "--deep"]) == 2
        out = capsys.readouterr().out
        assert "invariant violated" in out
        assert "shard-partition" in out

    def test_check_index_structural_failure_still_exits_one(
            self, tmp_path, capsys):
        path = tmp_path / "mono.gks"
        save_index(build_corpus_index(), path)
        TornWriter(seed=1).tear(path, fraction=0.4)
        assert main(["check-index", str(path), "--deep"]) == 1
