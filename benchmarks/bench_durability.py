"""Durability benchmark: WAL throughput, recovery latency, hot swap.

Four stages over a replicated figure-2a corpus, recorded to
``benchmarks/results/BENCH_durability.json``:

1. **WAL append** — fsync'd append throughput and per-record latency.
2. **Ingest** — durable ``add_document`` throughput through the engine
   (WAL + memtable + periodic segment flush), ending in a compaction.
3. **Recovery** — cold-open latency of the store written by stage 2
   versus a from-scratch rebuild of the same corpus, asserting the
   recovered index answers node-for-node identically.
4. **Swap under load** — a closed loop drives search traffic while the
   engine is hot-swapped repeatedly; the run must finish with **zero**
   failed, shed or timed-out requests attributable to the swaps.

Timing numbers are machine-dependent and recorded, not asserted; the
equivalence and zero-downtime invariants are asserted unconditionally.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path

from repro.core import EngineConfig, GKSEngine, Texts
from repro.datasets.registry import load_dataset
from repro.index.segments import read_manifest
from repro.index.wal import WriteAheadLog, replay_wal
from repro.serve import LoadGenerator, ServeConfig, ServerCore
from repro.xmltree.serialize import serialize_document

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_durability.json"

BASE_DOCUMENTS = 8
INGEST_DOCUMENTS = 24
MEMTABLE_DOCS = 4
COMPACT_SEGMENTS = 3
WAL_RECORDS = 200
QUERIES = ["karen mike", "data mining students", "student karen mike john"]
SWAP_CONCURRENCY = 4
SWAP_ITERATIONS = 30


def _corpus() -> list[str]:
    document = load_dataset("figure2a")[0]
    return [serialize_document(document)] * BASE_DOCUMENTS


def _ingest_texts() -> list[str]:
    document = load_dataset("figure2a")[0]
    text = serialize_document(document)
    return [text] * INGEST_DOCUMENTS


def _signature(engine) -> list:
    out = []
    for query in QUERIES:
        response = engine.search(query, s=1)
        out.append(sorted((node.dewey, node.score)
                          for node in response.nodes))
    return out


def _wal_stage(tmp_dir: Path) -> dict:
    path = tmp_dir / "bench-wal.log"
    wal = WriteAheadLog.create(path)
    record = {"op": "add", "doc_id": 0, "name": "bench.xml",
              "text": "<dblp><article><title>x</title></article></dblp>"}
    started = time.perf_counter()
    for i in range(WAL_RECORDS):
        wal.append(dict(record, doc_id=i))
    elapsed = time.perf_counter() - started
    wal.close()
    replay_started = time.perf_counter()
    replay = replay_wal(path)
    replay_elapsed = time.perf_counter() - replay_started
    assert len(replay.frames) == WAL_RECORDS
    path.unlink()
    print(f"  wal: {WAL_RECORDS} fsync'd appends in {elapsed:.3f}s "
          f"({WAL_RECORDS / elapsed:.0f}/s), replay {replay_elapsed:.3f}s")
    return {"records": WAL_RECORDS, "append_seconds": elapsed,
            "appends_per_second": WAL_RECORDS / elapsed,
            "append_fsync_ms": elapsed / WAL_RECORDS * 1000.0,
            "replay_seconds": replay_elapsed}


def _ingest_stage(store_dir: Path) -> dict:
    config = EngineConfig(store_path=store_dir,
                          memtable_docs=MEMTABLE_DOCS,
                          compact_segments=COMPACT_SEGMENTS)
    engine = GKSEngine.open(Texts(_corpus()), config=config)
    texts = _ingest_texts()
    started = time.perf_counter()
    flushes = 0
    for i, text in enumerate(texts):
        info = engine.add_document(text, name=f"ingest{i}.xml")
        flushes += int(info["flushed"])
    engine.flush()
    ingest_elapsed = time.perf_counter() - started
    compact_started = time.perf_counter()
    compacted = engine.compact()
    compact_elapsed = time.perf_counter() - compact_started
    engine.close()
    manifest = read_manifest(store_dir)
    print(f"  ingest: {INGEST_DOCUMENTS} docs in {ingest_elapsed:.3f}s "
          f"({INGEST_DOCUMENTS / ingest_elapsed:.0f}/s, {flushes} "
          f"auto-flushes), compact {compact_elapsed:.3f}s "
          f"-> generation {manifest.generation}")
    return {"documents": INGEST_DOCUMENTS,
            "memtable_docs": MEMTABLE_DOCS,
            "ingest_seconds": ingest_elapsed,
            "documents_per_second": INGEST_DOCUMENTS / ingest_elapsed,
            "auto_flushes": flushes,
            "compact_seconds": compact_elapsed,
            "compacted_shards": compacted["compacted_shards"],
            "final_generation": manifest.generation}


def _recovery_stage(store_dir: Path) -> dict:
    config = EngineConfig(store_path=store_dir,
                          memtable_docs=MEMTABLE_DOCS,
                          compact_segments=COMPACT_SEGMENTS)
    started = time.perf_counter()
    recovered = GKSEngine.open(Texts(_corpus()), config=config)
    recover_elapsed = time.perf_counter() - started

    rebuild_started = time.perf_counter()
    reference = GKSEngine.open(Texts(_corpus() + _ingest_texts()),
                               config=EngineConfig(cache_size=0))
    rebuild_elapsed = time.perf_counter() - rebuild_started

    assert _signature(recovered) == _signature(reference), \
        "recovered index diverges from a from-scratch rebuild"
    documents = len(recovered.repository)
    recovered.close()
    print(f"  recovery: cold open {recover_elapsed:.3f}s vs rebuild "
          f"{rebuild_elapsed:.3f}s ({documents} documents, "
          f"node-for-node identical)")
    return {"documents": documents,
            "cold_open_seconds": recover_elapsed,
            "rebuild_seconds": rebuild_elapsed,
            "speedup_vs_rebuild": rebuild_elapsed / recover_elapsed
            if recover_elapsed > 0 else None}


def _swap_stage() -> dict:
    engine = GKSEngine.open(Texts(_corpus()), config=EngineConfig())
    with ServerCore(engine, ServeConfig(workers=4,
                                        queue_capacity=256)) as core:
        stop = threading.Event()
        swaps: list[int] = []

        def swapper() -> None:
            while not stop.is_set():
                replacement = GKSEngine.open(Texts(_corpus()),
                                             config=EngineConfig())
                swaps.append(core.swap_engine(replacement))

        thread = threading.Thread(target=swapper, daemon=True)
        thread.start()
        try:
            report = LoadGenerator(core).run_closed(
                QUERIES, concurrency=SWAP_CONCURRENCY,
                iterations=SWAP_ITERATIONS, s=1)
        finally:
            stop.set()
            thread.join()
    assert report.errors == 0, report.to_dict()
    assert report.shed == 0, report.to_dict()
    assert report.timeouts == 0, report.to_dict()
    assert report.completed == report.submitted, report.to_dict()
    assert swaps, "swap thread never published a generation"
    print(f"  swap: {report.render()} | {len(swaps)} engine swap(s), "
          f"zero swap-attributable failures")
    return {"swaps": len(swaps), "report": report.to_dict()}


def test_durability_benchmark_report(tmp_path):
    print()
    started = time.perf_counter()
    store_dir = tmp_path / "store"
    record = {
        "cpu_count": os.cpu_count(),
        "base_documents": BASE_DOCUMENTS,
        "wal": _wal_stage(tmp_path),
        "ingest": _ingest_stage(store_dir),
        "recovery": _recovery_stage(store_dir),
        "swap_under_load": _swap_stage(),
    }
    record["bench_seconds"] = time.perf_counter() - started
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(record, indent=2, sort_keys=True)
                            + "\n", encoding="utf-8")
    print(f"durability bench -> {RESULTS_PATH}")
