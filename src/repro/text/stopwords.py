"""English stop-word list used before indexing (paper §2.4).

The list is the classic Van Rijsbergen / SMART-style core set of English
function words.  It is intentionally conservative: domain words that look
like stop words in other corpora ("can", "may" as modal verbs) are included,
but short content words ("year", "name") are not, because the paper's
queries search for element names such as ``name`` and ``country`` (QM2).
"""

from __future__ import annotations

DEFAULT_STOPWORDS: frozenset[str] = frozenset("""
a about above after again against all am an and any are aren't as at be
because been before being below between both but by can cannot could
couldn't did didn't do does doesn't doing don't down during each few for
from further had hadn't has hasn't have haven't having he he'd he'll he's
her here here's hers herself him himself his how how's i i'd i'll i'm i've
if in into is isn't it it's its itself let's me more most mustn't my myself
no nor not of off on once only or other ought our ours ourselves out over
own same shan't she she'd she'll she's should shouldn't so some such than
that that's the their theirs them themselves then there there's these they
they'd they'll they're they've this those through to too under until up
very was wasn't we we'd we'll we're we've were weren't what what's when
when's where where's which while who who's whom why why's with won't would
wouldn't you you'd you'll you're you've your yours yourself yourselves
""".split())


def is_stopword(token: str,
                stopwords: frozenset[str] = DEFAULT_STOPWORDS) -> bool:
    """True when the (already lower-cased) token is a stop word."""
    return token in stopwords
