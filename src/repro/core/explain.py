"""Human-readable explanations of rank computations (paper §5).

The potential-flow model is easy to trust when you can see the flow: for
each matched keyword this module renders the path from the result node
to every terminal point, the child-count divisions along it, and the
potential that arrives — the arithmetic of the paper's Example 5,
reproduced per result.

``explain_rank`` works from a :class:`RankBreakdown` plus the index (for
child counts); ``GKSEngine.explain`` adds element tags from the
repository for readability.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.ranking import RankBreakdown, received_potential
from repro.index.builder import GKSIndex
from repro.xmltree.dewey import Dewey, format_dewey
from repro.xmltree.repository import Repository


@dataclass(frozen=True)
class FlowStep:
    """One division of the potential on its way down."""

    dewey: Dewey
    tag: str | None
    child_count: int


@dataclass(frozen=True)
class TerminalExplanation:
    keyword: str
    terminal: Dewey
    received: float
    steps: tuple[FlowStep, ...]


@dataclass(frozen=True)
class RankExplanation:
    dewey: Dewey
    score: float
    initial_potential: int
    terminals: tuple[TerminalExplanation, ...]

    def render(self) -> str:
        lines = [
            f"node {format_dewey(self.dewey)}: "
            f"P = {self.initial_potential} distinct keyword(s), "
            f"rank = {self.score:.4f}"
        ]
        for terminal in self.terminals:
            route = " / ".join(
                f"{step.tag or '?'}[{step.child_count}]"
                for step in terminal.steps) or "(at the node itself)"
            lines.append(
                f"  {terminal.keyword!r} -> "
                f"{format_dewey(terminal.terminal)}  via {route}  "
                f"receives {terminal.received:.4f}")
        return "\n".join(lines)


def explain_rank(index: GKSIndex, breakdown: RankBreakdown,
                 repository: Repository | None = None) -> RankExplanation:
    """Expand a :class:`RankBreakdown` into per-terminal flow accounts."""
    potential = float(breakdown.initial_potential)
    explanations: list[TerminalExplanation] = []
    for keyword, points in breakdown.terminals.items():
        for terminal in points:
            steps = _flow_steps(index, breakdown.dewey, terminal,
                                repository)
            received = received_potential(index, breakdown.dewey,
                                          terminal, potential)
            explanations.append(TerminalExplanation(
                keyword=keyword, terminal=terminal, received=received,
                steps=tuple(steps)))
    return RankExplanation(dewey=breakdown.dewey, score=breakdown.score,
                           initial_potential=breakdown.initial_potential,
                           terminals=tuple(explanations))


def _flow_steps(index: GKSIndex, root: Dewey, terminal: Dewey,
                repository: Repository | None) -> list[FlowStep]:
    steps: list[FlowStep] = []
    for length in range(len(root), len(terminal)):
        prefix = terminal[:length]
        children = index.hashes.child_count(prefix) or 1
        tag = None
        if repository is not None:
            node = repository.node_at(prefix)
            tag = node.tag if node is not None else None
        steps.append(FlowStep(dewey=prefix, tag=tag,
                              child_count=children))
    return steps
