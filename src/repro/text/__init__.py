"""Text analysis substrate: tokenizer, stop words, Porter stemmer."""

from repro.text.analyzer import DEFAULT_ANALYZER, Analyzer
from repro.text.stemmer import porter_stem
from repro.text.stopwords import DEFAULT_STOPWORDS, is_stopword
from repro.text.tokenizer import iter_tokens, tokenize

__all__ = [
    "Analyzer", "DEFAULT_ANALYZER", "DEFAULT_STOPWORDS", "is_stopword",
    "iter_tokens", "porter_stem", "tokenize",
]
