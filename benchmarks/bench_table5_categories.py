"""E6 — Table 5: node-category distribution per corpus.

The paper's claim: real-world repositories are *normalized* — attribute,
entity and repeating nodes dominate, with connecting nodes a small
fraction (≈3% for DBLP up to ≈15% for InterPro); single-author DBLP
articles appear as connecting nodes.  Our synthetic corpora must show the
same profile.
"""

from __future__ import annotations

import pytest

from repro.datasets.registry import load_dataset
from repro.eval.reporting import render_table
from repro.index.builder import build_index

CORPORA = ["sigmod", "dblp", "mondial", "interpro", "swissprot"]


@pytest.mark.parametrize("name", CORPORA)
def test_categorization_speed(name, benchmark):
    repository = load_dataset(name)
    index = benchmark(build_index, repository)
    assert index.stats.total_nodes == repository.total_nodes


def test_table5_report(results_writer, benchmark):
    def categorize_all():
        rows = []
        for name in CORPORA:
            stats = build_index(load_dataset(name)).stats
            row = stats.category_row()
            rows.append((name, row["AN"], row["EN"], row["RN"],
                         row["CN"], row["total"]))
        return rows

    rows = benchmark.pedantic(categorize_all, rounds=1, iterations=1)
    results_writer("table5_categories", render_table(
        ["Data Set", "Count of AN", "Count of EN", "Count of RN",
         "Count of CN", "Total Nodes"], rows,
        title="Table 5 — distribution of XML node categories"))

    for name, an, en, rn, cn, total in rows:
        # normalization claim: connecting nodes are a minority everywhere
        assert cn / total < 0.35, f"{name} has too many connecting nodes"
        assert en > 0 and rn > 0 and an > 0
