"""XML document wrapper: a rooted tree plus document-level metadata."""

from __future__ import annotations

from typing import Iterator

from repro.errors import ValidationError
from repro.xmltree import dewey as dw
from repro.xmltree.dewey import Dewey
from repro.xmltree.node import XMLNode


class XMLDocument:
    """One XML document: a rooted labeled tree with a document number.

    The document number is the first component of every Dewey id in the tree
    (paper §2.4: "Dewey id for each node has been appended with the document
    id"), which is what lets a single index span a multi-file repository.
    """

    def __init__(self, root: XMLNode, name: str | None = None) -> None:
        if len(root.dewey) != 1:
            raise ValidationError(
                f"document root must have a one-component Dewey id, got "
                f"{dw.format_dewey(root.dewey)}")
        self.root = root
        self.name = name or f"doc{root.dewey[0]}"

    @property
    def doc_id(self) -> int:
        """The document number shared by every Dewey id in this tree."""
        return self.root.dewey[0]

    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[XMLNode]:
        return self.root.iter_subtree()

    def __len__(self) -> int:
        return sum(1 for _ in self.root.iter_subtree())

    @property
    def depth(self) -> int:
        """Number of edges from the root to the deepest element (§4.1)."""
        return max(node.depth for node in self.root.iter_subtree())

    def node_at(self, dewey: Dewey) -> XMLNode | None:
        """Resolve a Dewey id to its node, or ``None`` when out of range.

        Resolution walks child ordinals, so it is O(depth).
        """
        if not dewey or dewey[0] != self.doc_id:
            return None
        node = self.root
        for ordinal in dewey[1:]:
            if ordinal >= len(node.children):
                return None
            node = node.children[ordinal]
        return node

    def renumber(self, doc_id: int, name: str | None = None) -> "XMLDocument":
        """Return a structural copy of this document under a new doc number.

        Used by the scalability experiment (Fig. 10), which replicates a
        corpus: replicas share structure and content but occupy disjoint
        Dewey ranges.
        """
        new_root = XMLNode(self.root.tag, (doc_id,), text=self.root.text,
                           xml_attributes=dict(self.root.xml_attributes))
        stack = [(self.root, new_root)]
        while stack:
            old, new = stack.pop()
            for child in old.children:
                copy = new.add_child(child.tag, text=child.text,
                                     xml_attributes=dict(child.xml_attributes))
                stack.append((child, copy))
        return XMLDocument(new_root, name=name or f"{self.name}*")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<XMLDocument {self.name!r} doc={self.doc_id}>"
