"""Segmented on-disk index layout: immutable runs + manifest + WAL.

The durable write path is LSM-shaped, which the paper's Dewey-interval
index makes exact rather than approximate: a document's postings and
hash entries all carry its document number as the first Dewey component,
so immutable per-document (and per-shard) runs merge into precisely the
index a from-scratch build would produce — disjoint sorted unions, no
tombstones, no reconciliation.

On-disk layout (one directory per store)::

    MANIFEST                   gzip JSON envelope, version 4, atomic
    wal.log                    CRC-framed write-ahead log (repro.index.wal)
    seg-g000001-s0.gksindex    one v2 index envelope per (generation, shard)
    txt-g000002.json.gz        document texts appended at each flush

The MANIFEST is the single commit point: every flush/compaction writes
its new segment files first, then publishes a manifest with a strictly
larger generation via atomic rename.  A crash in between leaves
unreferenced files, which :meth:`SegmentStore.open` deletes; a crash
after the rename but before WAL truncation leaves already-flushed
frames in the log, which recovery skips by comparing against the
manifest's ``wal_lsn``.  At no point is there a state from which the
index cannot be reconstructed node-for-node.

Serving reads go through :class:`StackedIndex`, an immutable stack of
index units (on-disk segments plus one mini-index per unflushed
document) that duck-types :class:`~repro.index.builder.GKSIndex`.
Appending produces a *new* stack sharing the old units — in-flight
searches keep the snapshot they started on, which is what makes the
serve layer's hot swap race-free.
"""

from __future__ import annotations

import gzip
import json
import re
import zlib
from dataclasses import dataclass, field
from heapq import merge as heap_merge
from pathlib import Path
from typing import Iterator, Sequence

from repro.errors import StorageError, ValidationError
from repro.index.builder import GKSIndex
from repro.index.hashtables import NodeHashes
from repro.index.inverted import InvertedIndex
from repro.index.sharding import ShardedIndex
from repro.index.statistics import IndexStats
from repro.index.storage import (atomic_write_json_gz, load_index,
                                 payload_crc32, save_index)
from repro.index.wal import WALFrame, WriteAheadLog, fsync_directory
from repro.obs.metrics import global_registry
from repro.text.analyzer import DEFAULT_ANALYZER, Analyzer
from repro.xmltree.dewey import Dewey

MANIFEST_NAME = "MANIFEST"
WAL_NAME = "wal.log"
MANIFEST_VERSION = 4
SEGMENT_PATTERN = re.compile(r"^seg-g(\d{6})-s(\d+)\.gksindex$")
TEXTS_PATTERN = re.compile(r"^txt-g(\d{6})\.json\.gz$")


def segment_file_name(generation: int, shard_id: int) -> str:
    return f"seg-g{generation:06d}-s{shard_id}.gksindex"


def texts_file_name(generation: int) -> str:
    return f"txt-g{generation:06d}.json.gz"


def file_crc32(path: str | Path) -> int:
    """CRC32 of a file's raw bytes (manifest-level integrity unit)."""
    try:
        return zlib.crc32(Path(path).read_bytes()) & 0xFFFFFFFF
    except OSError as exc:
        raise StorageError(f"cannot read {path}: {exc}",
                           diagnosis="unreadable", path=path) from exc


# ----------------------------------------------------------------------
# Merging immutable runs
# ----------------------------------------------------------------------
def merge_stats(stats_list: Sequence[IndexStats]) -> IndexStats:
    """Sum per-run :class:`IndexStats` (max depth maxes, counters add)."""
    total = IndexStats()
    for stats in stats_list:
        total.documents += stats.documents
        total.total_nodes += stats.total_nodes
        total.attribute_nodes += stats.attribute_nodes
        total.entity_nodes += stats.entity_nodes
        total.repeating_nodes += stats.repeating_nodes
        total.connecting_nodes += stats.connecting_nodes
        total.text_keywords += stats.text_keywords
        total.tag_keywords += stats.tag_keywords
        total.max_depth = max(total.max_depth, stats.max_depth)
        total.build_seconds += stats.build_seconds
        for tag, category in stats.category_by_tag.items():
            total.category_by_tag.setdefault(tag, category)
    return total


def merge_indexes(indexes: Sequence[GKSIndex],
                  analyzer: Analyzer | None = None) -> GKSIndex:
    """K-way merge of indexes over disjoint document sets.

    Callers pass runs in ascending document order (runs are built
    append-only, so their doc-id ranges are disjoint and ordered); the
    merged posting lists are then the exact disjoint sorted unions a
    monolithic build over the same documents would produce.
    """
    indexes = list(indexes)
    if analyzer is None:
        analyzer = indexes[0].analyzer if indexes else DEFAULT_ANALYZER
    collected: dict[str, list] = {}
    for index in indexes:
        for keyword, postings in index.inverted.items():
            collected.setdefault(keyword, []).append(postings)
    inverted = InvertedIndex()
    inverted._postings = {keyword: list(heap_merge(*lists))
                          for keyword, lists in collected.items()}
    entity: dict[Dewey, int] = {}
    element: dict[Dewey, int] = {}
    for index in indexes:
        entity.update(index.hashes.entity_table)
        element.update(index.hashes.element_table)
    return GKSIndex(
        inverted=inverted,
        hashes=NodeHashes.from_mappings(entity=entity, element=element),
        stats=merge_stats([index.stats for index in indexes]),
        analyzer=analyzer,
        document_names=tuple(name for index in indexes
                             for name in index.document_names))


# ----------------------------------------------------------------------
# Snapshot-safe serving facade
# ----------------------------------------------------------------------
class _StackedHashes:
    """A :class:`NodeHashes` view over a unit stack, routed by document.

    Same contract as the sharded router: every hash key's first Dewey
    component is its document number and a document lives in exactly one
    unit, so lookups forward to the owning unit's tables and ancestor
    walks never cross a unit boundary.
    """

    def __init__(self, stacked: "StackedIndex") -> None:
        self._stacked = stacked

    def _tables_for(self, dewey: Dewey) -> NodeHashes | None:
        unit = self._stacked.unit_for_document(dewey[0]) if dewey else None
        return None if unit is None else unit.hashes

    def is_entity(self, dewey: Dewey) -> int | None:
        hashes = self._tables_for(dewey)
        return None if hashes is None else hashes.is_entity(dewey)

    def is_element(self, dewey: Dewey) -> int | None:
        hashes = self._tables_for(dewey)
        return None if hashes is None else hashes.is_element(dewey)

    def child_count(self, dewey: Dewey) -> int | None:
        hashes = self._tables_for(dewey)
        return None if hashes is None else hashes.child_count(dewey)

    def is_attribute(self, dewey: Dewey) -> bool:
        hashes = self._tables_for(dewey)
        return True if hashes is None else hashes.is_attribute(dewey)

    def nearest_entity(self, dewey: Dewey) -> Dewey | None:
        hashes = self._tables_for(dewey)
        return None if hashes is None else hashes.nearest_entity(dewey)

    def entity_ancestors(self, dewey: Dewey) -> Iterator[Dewey]:
        hashes = self._tables_for(dewey)
        if hashes is not None:
            yield from hashes.entity_ancestors(dewey)

    @property
    def entity_count(self) -> int:
        return sum(unit.hashes.entity_count
                   for unit in self._stacked.units)

    @property
    def element_count(self) -> int:
        return sum(unit.hashes.element_count
                   for unit in self._stacked.units)

    @property
    def entity_table(self) -> dict[Dewey, int]:
        merged: dict[Dewey, int] = {}
        for unit in self._stacked.units:
            merged.update(unit.hashes.entity_table)
        return merged

    @property
    def element_table(self) -> dict[Dewey, int]:
        merged: dict[Dewey, int] = {}
        for unit in self._stacked.units:
            merged.update(unit.hashes.element_table)
        return merged

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<StackedHashes units={len(self._stacked.units)} "
                f"entities={self.entity_count}>")


class StackedIndex:
    """Immutable stack of index units behind the GKSIndex interface.

    A unit is an ordinary :class:`GKSIndex` over a subset of the
    repository's documents with **global** Dewey ids — an on-disk
    segment or an in-memory mini-index of one just-added document.
    Units own disjoint document sets in ascending order, so
    ``postings()`` is a disjoint sorted union (cached per keyword),
    exactly the monolithic list.

    The stack itself is never mutated: :meth:`with_unit` returns a new
    stack sharing the old units.  A search that captured the previous
    stack keeps a consistent snapshot for its whole run — the invariant
    the serving layer's zero-downtime swap rests on.
    """

    def __init__(self, units: Sequence[GKSIndex],
                 unit_doc_ids: Sequence[Sequence[int]],
                 analyzer: Analyzer = DEFAULT_ANALYZER) -> None:
        self.units: tuple[GKSIndex, ...] = tuple(units)
        self.unit_doc_ids: tuple[tuple[int, ...], ...] = tuple(
            tuple(ids) for ids in unit_doc_ids)
        if len(self.units) != len(self.unit_doc_ids):
            raise ValidationError(
                f"{len(self.units)} units but {len(self.unit_doc_ids)} "
                f"doc-id groups")
        self.analyzer = analyzer
        self.document_names: tuple[str, ...] = tuple(
            name for unit in self.units for name in unit.document_names)
        self.hashes = _StackedHashes(self)
        self._doc_to_unit: dict[int, int] = {
            doc_id: position
            for position, ids in enumerate(self.unit_doc_ids)
            for doc_id in ids}
        self._postings_cache: dict[str, list[Dewey]] = {}
        self._merged_inverted: InvertedIndex | None = None
        self._merged_stats: IndexStats | None = None

    # -- routing --------------------------------------------------------
    def unit_for_document(self, doc_id: int) -> GKSIndex | None:
        position = self._doc_to_unit.get(doc_id)
        return None if position is None else self.units[position]

    @property
    def doc_ids(self) -> tuple[int, ...]:
        return tuple(doc_id for ids in self.unit_doc_ids for doc_id in ids)

    # -- GKSIndex interface ---------------------------------------------
    @property
    def depth(self) -> int:
        return max((unit.depth for unit in self.units), default=0)

    def postings(self, keyword: str) -> list[Dewey]:
        """Disjoint sorted union over units (phrases intersect per unit:
        all word occurrences of one element live in one document)."""
        cached = self._postings_cache.get(keyword)
        if cached is None:
            cached = list(heap_merge(
                *(unit.postings(keyword) for unit in self.units)))
            self._postings_cache[keyword] = cached
        return cached

    @property
    def inverted(self) -> InvertedIndex:
        if self._merged_inverted is None:
            collected: dict[str, list] = {}
            for unit in self.units:
                for keyword, postings in unit.inverted.items():
                    collected.setdefault(keyword, []).append(postings)
            index = InvertedIndex()
            index._postings = {keyword: list(heap_merge(*lists))
                               for keyword, lists in collected.items()}
            self._merged_inverted = index
        return self._merged_inverted

    @property
    def stats(self) -> IndexStats:
        if self._merged_stats is None:
            self._merged_stats = merge_stats(
                [unit.stats for unit in self.units])
        return self._merged_stats

    # -- snapshot append ------------------------------------------------
    def with_unit(self, unit: GKSIndex,
                  doc_ids: Sequence[int]) -> "StackedIndex":
        """A new stack with *unit* appended; this stack is untouched."""
        return StackedIndex(self.units + (unit,),
                            self.unit_doc_ids + (tuple(doc_ids),),
                            analyzer=self.analyzer)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<StackedIndex units={len(self.units)} "
                f"docs={len(self.document_names)}>")


# ----------------------------------------------------------------------
# Manifest
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SegmentRecord:
    """One immutable on-disk segment: a v2 index envelope for one shard."""

    file: str
    crc32: int
    shard_id: int
    doc_ids: tuple[int, ...]
    generation: int

    def to_dict(self) -> dict:
        return {"file": self.file, "crc32": self.crc32,
                "shard_id": self.shard_id, "doc_ids": list(self.doc_ids),
                "generation": self.generation}

    @classmethod
    def from_dict(cls, raw: dict) -> "SegmentRecord":
        return cls(file=str(raw["file"]), crc32=int(raw["crc32"]),
                   shard_id=int(raw["shard_id"]),
                   doc_ids=tuple(int(i) for i in raw["doc_ids"]),
                   generation=int(raw["generation"]))


@dataclass(frozen=True)
class TextsRecord:
    """One texts sidecar: the raw XML of documents flushed past the WAL."""

    file: str
    crc32: int
    doc_ids: tuple[int, ...]

    def to_dict(self) -> dict:
        return {"file": self.file, "crc32": self.crc32,
                "doc_ids": list(self.doc_ids)}

    @classmethod
    def from_dict(cls, raw: dict) -> "TextsRecord":
        return cls(file=str(raw["file"]), crc32=int(raw["crc32"]),
                   doc_ids=tuple(int(i) for i in raw["doc_ids"]))


@dataclass(frozen=True)
class StoreManifest:
    """The generation-stamped commit record of a segmented store."""

    generation: int
    wal_lsn: int
    shards: int
    strategy: str
    index_tags: bool
    use_stopwords: bool
    use_stemming: bool
    base_documents: int
    document_names: tuple[str, ...]
    segments: tuple[SegmentRecord, ...] = ()
    texts: tuple[TextsRecord, ...] = ()

    def to_dict(self) -> dict:
        return {
            "generation": self.generation,
            "wal_lsn": self.wal_lsn,
            "shards": self.shards,
            "strategy": self.strategy,
            "index_tags": self.index_tags,
            "analyzer": {"use_stopwords": self.use_stopwords,
                         "use_stemming": self.use_stemming},
            "base_documents": self.base_documents,
            "document_names": list(self.document_names),
            "segments": [record.to_dict() for record in self.segments],
            "texts": [record.to_dict() for record in self.texts],
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "StoreManifest":
        analyzer = raw.get("analyzer", {})
        return cls(
            generation=int(raw["generation"]),
            wal_lsn=int(raw["wal_lsn"]),
            shards=int(raw["shards"]),
            strategy=str(raw["strategy"]),
            index_tags=bool(raw["index_tags"]),
            use_stopwords=bool(analyzer.get("use_stopwords", True)),
            use_stemming=bool(analyzer.get("use_stemming", True)),
            base_documents=int(raw["base_documents"]),
            document_names=tuple(str(n) for n in raw["document_names"]),
            segments=tuple(SegmentRecord.from_dict(entry)
                           for entry in raw.get("segments", ())),
            texts=tuple(TextsRecord.from_dict(entry)
                        for entry in raw.get("texts", ())))


def read_manifest(directory: str | Path) -> StoreManifest:
    """Read and verify the MANIFEST of the store at *directory*.

    Raises :class:`StorageError` with the storage diagnoses —
    ``unreadable`` / ``truncated`` / ``corrupted`` / ``version-mismatch``
    — mirroring :func:`repro.index.storage.read_envelope`.
    """
    path = Path(directory) / MANIFEST_NAME
    try:
        with gzip.open(path, "rt", encoding="utf-8") as handle:
            envelope = json.load(handle)
    except EOFError as exc:
        raise StorageError(
            f"cannot read store manifest {path}: file is truncated "
            f"({exc})", diagnosis="truncated", path=path) from exc
    except (gzip.BadGzipFile, json.JSONDecodeError, UnicodeDecodeError,
            zlib.error) as exc:
        raise StorageError(
            f"cannot read store manifest {path}: file is corrupted "
            f"({exc})", diagnosis="corrupted", path=path) from exc
    except OSError as exc:
        raise StorageError(f"cannot read store manifest {path}: {exc}",
                           diagnosis="unreadable", path=path) from exc
    if not isinstance(envelope, dict) or "manifest" not in envelope:
        raise StorageError(
            f"cannot read store manifest {path}: not a manifest envelope",
            diagnosis="corrupted", path=path)
    if envelope.get("version") != MANIFEST_VERSION:
        raise StorageError(
            f"unsupported store manifest version "
            f"{envelope.get('version')!r} in {path}",
            diagnosis="version-mismatch", path=path)
    body = envelope["manifest"]
    if envelope.get("crc32") != payload_crc32(body):
        raise StorageError(
            f"store manifest checksum mismatch in {path} — the file is "
            f"corrupted", diagnosis="corrupted", path=path)
    try:
        return StoreManifest.from_dict(body)
    except (KeyError, TypeError, ValueError) as exc:
        raise StorageError(
            f"cannot read store manifest {path}: malformed body ({exc})",
            diagnosis="corrupted", path=path) from exc


def write_manifest(directory: str | Path, manifest: StoreManifest) -> Path:
    """Atomically publish *manifest* (temp + fsync + rename + dir fsync)."""
    body = manifest.to_dict()
    envelope = {"version": MANIFEST_VERSION, "crc32": payload_crc32(body),
                "manifest": body}
    path = atomic_write_json_gz(envelope, Path(directory) / MANIFEST_NAME)
    fsync_directory(directory)
    return path


# ----------------------------------------------------------------------
# The store
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PendingDocument:
    """One acknowledged-but-unflushed document (WAL + memtable unit)."""

    lsn: int
    doc_id: int
    shard_id: int
    name: str
    text: str
    unit: GKSIndex = field(compare=False)


def _read_texts_file(path: Path) -> list[tuple[int, str, str]]:
    try:
        with gzip.open(path, "rt", encoding="utf-8") as handle:
            body = json.load(handle)
        return [(int(doc_id), str(name), str(text))
                for doc_id, name, text in body["documents"]]
    except OSError as exc:
        raise StorageError(f"cannot read texts sidecar {path}: {exc}",
                           diagnosis="unreadable", path=path) from exc
    except (EOFError, gzip.BadGzipFile, json.JSONDecodeError,
            UnicodeDecodeError, zlib.error, KeyError, TypeError,
            ValueError) as exc:
        raise StorageError(
            f"cannot read texts sidecar {path}: file is corrupted ({exc})",
            diagnosis="corrupted", path=path) from exc


class SegmentStore:
    """The on-disk half of a durable engine: WAL + segments + manifest.

    The store knows nothing about searching; it persists and recovers
    immutable index runs and the raw texts needed to rebuild the
    repository.  The engine composes what the store returns into its
    serving :class:`StackedIndex` stacks.
    """

    def __init__(self, directory: Path, manifest: StoreManifest,
                 wal: WriteAheadLog) -> None:
        self.directory = directory
        self.manifest = manifest
        self.wal = wal
        self._observe_manifest()

    def _observe_manifest(self) -> None:
        """Publish the store's shape as gauges (scraped via /metrics)."""
        registry = global_registry()
        registry.gauge(
            "gks_store_generation",
            help="Generation of the committed store manifest."
        ).set(self.manifest.generation)
        registry.gauge(
            "gks_store_segments",
            help="Immutable segment files referenced by the manifest."
        ).set(len(self.manifest.segments))
        registry.gauge(
            "gks_store_documents",
            help="Documents covered by the committed manifest."
        ).set(len(self.manifest.document_names))

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def create(cls, directory: str | Path,
               index: GKSIndex | ShardedIndex, *, shards: int,
               strategy: str, index_tags: bool,
               fsync: bool = True) -> "SegmentStore":
        """Initialise a store from a freshly built base index (gen 1)."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        if isinstance(index, ShardedIndex):
            parts = [(shard.shard_id, shard.doc_ids, shard.index)
                     for shard in index.shards if shard.doc_ids]
            analyzer = index.analyzer
            names = index.document_names
        else:
            names = index.document_names
            parts = ([(0, tuple(range(len(names))), index)]
                     if names else [])
            analyzer = index.analyzer
        records = []
        for shard_id, doc_ids, unit in parts:
            file_name = segment_file_name(1, shard_id)
            save_index(unit, directory / file_name)
            records.append(SegmentRecord(
                file=file_name, crc32=file_crc32(directory / file_name),
                shard_id=shard_id, doc_ids=tuple(doc_ids), generation=1))
        manifest = StoreManifest(
            generation=1, wal_lsn=0, shards=shards, strategy=strategy,
            index_tags=index_tags,
            use_stopwords=analyzer.use_stopwords,
            use_stemming=analyzer.use_stemming,
            base_documents=len(names), document_names=tuple(names),
            segments=tuple(records))
        write_manifest(directory, manifest)
        wal = WriteAheadLog.create(directory / WAL_NAME, fsync=fsync)
        return cls(directory, manifest, wal)

    @classmethod
    def open(cls, directory: str | Path, *,
             fsync: bool = True) -> "SegmentStore":
        """Recover the store at *directory*.

        Verifies the manifest, requires the WAL to exist (a missing log
        is corruption, not a torn tail — its absence could hide
        acknowledged writes), deletes orphaned segment/sidecar files
        left by a crash between file writes and the manifest rename, and
        truncates any torn WAL tail.
        """
        directory = Path(directory)
        manifest = read_manifest(directory)
        cls._remove_orphans(directory, manifest)
        wal_path = directory / WAL_NAME
        if not wal_path.exists():
            raise StorageError(
                f"store at {directory} has a manifest but no write-ahead "
                f"log — acknowledged writes may be lost",
                diagnosis="corrupted", path=wal_path)
        wal, replay = WriteAheadLog.open(wal_path, fsync=fsync)
        # LSNs must keep counting past frames the last flush truncated
        wal.ensure_lsn(manifest.wal_lsn)
        tail = [frame for frame in replay.frames
                if frame.lsn > manifest.wal_lsn]
        if tail and tail[0].lsn > manifest.wal_lsn + 1:
            raise StorageError(
                f"WAL at {wal_path} skips lsns {manifest.wal_lsn + 1}.."
                f"{tail[0].lsn - 1} — acknowledged writes are missing",
                diagnosis="corrupted", path=wal_path)
        store = cls(directory, manifest, wal)
        store._tail = tuple(tail)
        return store

    _tail: tuple[WALFrame, ...] = ()

    def close(self) -> None:
        self.wal.close()

    @staticmethod
    def _remove_orphans(directory: Path, manifest: StoreManifest) -> int:
        referenced = ({record.file for record in manifest.segments}
                      | {record.file for record in manifest.texts})
        removed = 0
        for entry in sorted(directory.iterdir()):
            name = entry.name
            orphan = (name.endswith(".tmp")
                      or (SEGMENT_PATTERN.match(name)
                          and name not in referenced)
                      or (TEXTS_PATTERN.match(name)
                          and name not in referenced))
            if orphan:
                try:
                    entry.unlink()
                    removed += 1
                except OSError:
                    pass  # an undeletable orphan is reported by --deep
        if removed:
            global_registry().counter(
                "gks_store_orphans_removed_total",
                help="Crash-residue files removed at store open."
            ).inc(removed)
        return removed

    # ------------------------------------------------------------------
    # Recovery reads
    # ------------------------------------------------------------------
    def pending_frames(self) -> tuple[WALFrame, ...]:
        """WAL frames past the manifest's ``wal_lsn`` (unflushed tail)."""
        return self._tail

    def appended_documents(self) -> list[tuple[int, str, str]]:
        """Flushed post-base documents as ``(doc_id, name, text)``.

        Read from the texts sidecars, verified against the manifest's
        per-file CRCs, and checked to cover document ids
        ``base_documents .. len(document_names)-1`` exactly once.
        """
        collected: dict[int, tuple[str, str]] = {}
        for record in self.manifest.texts:
            path = self.directory / record.file
            if file_crc32(path) != record.crc32:
                raise StorageError(
                    f"texts sidecar checksum mismatch for {path}",
                    diagnosis="corrupted", path=path)
            for doc_id, name, text in _read_texts_file(path):
                if doc_id in collected:
                    raise StorageError(
                        f"document {doc_id} appears in multiple texts "
                        f"sidecars of {self.directory}",
                        diagnosis="corrupted", path=path)
                collected[doc_id] = (name, text)
        expected = set(range(self.manifest.base_documents,
                             len(self.manifest.document_names)))
        if set(collected) != expected:
            raise StorageError(
                f"texts sidecars of {self.directory} cover documents "
                f"{sorted(collected)} but the manifest names "
                f"{sorted(expected)}", diagnosis="corrupted",
                path=self.directory / MANIFEST_NAME)
        return [(doc_id, name, text)
                for doc_id, (name, text) in sorted(collected.items())]

    def load_segment_units(self) -> dict[int, list[tuple[SegmentRecord,
                                                         GKSIndex]]]:
        """Verified segment indexes grouped per shard, in run order."""
        by_shard: dict[int, list[tuple[SegmentRecord, GKSIndex]]] = {}
        for record in self.manifest.segments:
            path = self.directory / record.file
            if file_crc32(path) != record.crc32:
                raise StorageError(
                    f"segment checksum mismatch for {path}",
                    diagnosis="corrupted", path=path)
            unit = load_index(path)
            by_shard.setdefault(record.shard_id, []).append((record, unit))
        for runs in by_shard.values():
            runs.sort(key=lambda pair: min(pair[0].doc_ids))
        return by_shard

    # ------------------------------------------------------------------
    # The write path
    # ------------------------------------------------------------------
    def append(self, doc_id: int, name: str | None, text: str) -> int:
        """Durably log one add_document; returns its LSN."""
        return self.wal.append({"op": "add", "doc_id": doc_id,
                                "name": name, "text": text})

    def flush(self, pending: Sequence[PendingDocument]
              ) -> dict[int, tuple[SegmentRecord, GKSIndex]]:
        """Persist the memtable: new segments + sidecar, then commit.

        Writes one merged segment per shard holding pending documents
        and one texts sidecar, publishes a manifest with the next
        generation, and finally truncates the WAL through the flushed
        frames.  Returns the merged per-shard units so the engine can
        collapse its in-memory stacks without re-reading the files.
        """
        pending = sorted(pending, key=lambda doc: doc.doc_id)
        if not pending:
            return {}
        manifest = self.manifest
        expected = list(range(len(manifest.document_names),
                              len(manifest.document_names) + len(pending)))
        if [doc.doc_id for doc in pending] != expected:
            raise ValidationError(
                f"flush expects documents {expected}, got "
                f"{[doc.doc_id for doc in pending]}")
        generation = manifest.generation + 1
        by_shard: dict[int, list[PendingDocument]] = {}
        for doc in pending:
            by_shard.setdefault(doc.shard_id, []).append(doc)
        merged_units: dict[int, tuple[SegmentRecord, GKSIndex]] = {}
        for shard_id in sorted(by_shard):
            docs = by_shard[shard_id]
            merged = merge_indexes([doc.unit for doc in docs])
            file_name = segment_file_name(generation, shard_id)
            save_index(merged, self.directory / file_name)
            record = SegmentRecord(
                file=file_name,
                crc32=file_crc32(self.directory / file_name),
                shard_id=shard_id,
                doc_ids=tuple(doc.doc_id for doc in docs),
                generation=generation)
            merged_units[shard_id] = (record, merged)
        texts_name = texts_file_name(generation)
        atomic_write_json_gz(
            {"version": 1,
             "documents": [[doc.doc_id, doc.name, doc.text]
                           for doc in pending]},
            self.directory / texts_name)
        texts_record = TextsRecord(
            file=texts_name, crc32=file_crc32(self.directory / texts_name),
            doc_ids=tuple(doc.doc_id for doc in pending))
        last_lsn = max(doc.lsn for doc in pending)
        self.manifest = StoreManifest(
            generation=generation, wal_lsn=last_lsn,
            shards=manifest.shards, strategy=manifest.strategy,
            index_tags=manifest.index_tags,
            use_stopwords=manifest.use_stopwords,
            use_stemming=manifest.use_stemming,
            base_documents=manifest.base_documents,
            document_names=manifest.document_names
            + tuple(doc.name for doc in pending),
            segments=manifest.segments
            + tuple(record for record, _ in merged_units.values()),
            texts=manifest.texts + (texts_record,))
        write_manifest(self.directory, self.manifest)
        # checkpoint: flushed frames are now redundant with the manifest
        self.wal.truncate_through(last_lsn)
        global_registry().counter(
            "gks_store_flushes_total",
            help="Memtable flushes committed to the store.").inc()
        global_registry().counter(
            "gks_store_flushed_documents_total",
            help="Documents flushed from the memtable to segments."
        ).inc(len(pending))
        self._observe_manifest()
        return merged_units

    def compact(self) -> dict[int, tuple[SegmentRecord, GKSIndex]]:
        """Merge each shard's segment chain down to one run.

        Shards with a single segment are left alone; texts sidecars are
        merged alongside.  The replaced files are deleted only *after*
        the new manifest is durable — a crash anywhere in between leaves
        orphans for the next open, never a dangling reference.  Returns
        the compacted per-shard units ({} when there was nothing to do).
        """
        manifest = self.manifest
        by_shard: dict[int, list[SegmentRecord]] = {}
        for record in manifest.segments:
            by_shard.setdefault(record.shard_id, []).append(record)
        todo = {shard_id: records for shard_id, records in by_shard.items()
                if len(records) >= 2}
        merge_texts = len(manifest.texts) >= 2
        if not todo and not merge_texts:
            return {}
        generation = manifest.generation + 1
        merged_units: dict[int, tuple[SegmentRecord, GKSIndex]] = {}
        replaced: list[str] = []
        for shard_id in sorted(todo):
            records = sorted(todo[shard_id],
                             key=lambda record: min(record.doc_ids))
            units = []
            for record in records:
                path = self.directory / record.file
                if file_crc32(path) != record.crc32:
                    raise StorageError(
                        f"segment checksum mismatch for {path}",
                        diagnosis="corrupted", path=path)
                units.append(load_index(path))
            merged = merge_indexes(units)
            file_name = segment_file_name(generation, shard_id)
            save_index(merged, self.directory / file_name)
            merged_units[shard_id] = (SegmentRecord(
                file=file_name,
                crc32=file_crc32(self.directory / file_name),
                shard_id=shard_id,
                doc_ids=tuple(doc_id for record in records
                              for doc_id in record.doc_ids),
                generation=generation), merged)
            replaced.extend(record.file for record in records)
        texts_records = manifest.texts
        if merge_texts:
            documents: list[tuple[int, str, str]] = []
            for record in manifest.texts:
                documents.extend(_read_texts_file(self.directory
                                                  / record.file))
            documents.sort(key=lambda entry: entry[0])
            texts_name = texts_file_name(generation)
            atomic_write_json_gz(
                {"version": 1,
                 "documents": [list(entry) for entry in documents]},
                self.directory / texts_name)
            texts_records = (TextsRecord(
                file=texts_name,
                crc32=file_crc32(self.directory / texts_name),
                doc_ids=tuple(entry[0] for entry in documents)),)
            replaced.extend(record.file for record in manifest.texts)
        segments = tuple(
            record for record in manifest.segments
            if record.shard_id not in merged_units
        ) + tuple(record for record, _ in merged_units.values())
        self.manifest = StoreManifest(
            generation=generation, wal_lsn=manifest.wal_lsn,
            shards=manifest.shards, strategy=manifest.strategy,
            index_tags=manifest.index_tags,
            use_stopwords=manifest.use_stopwords,
            use_stemming=manifest.use_stemming,
            base_documents=manifest.base_documents,
            document_names=manifest.document_names,
            segments=segments, texts=texts_records)
        write_manifest(self.directory, self.manifest)
        for file_name in replaced:
            try:
                (self.directory / file_name).unlink()
            except OSError:
                pass  # an orphan; the next open removes it
        global_registry().counter(
            "gks_store_compactions_total",
            help="Segment compactions committed to the store.").inc()
        self._observe_manifest()
        return merged_units

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<SegmentStore {self.directory} "
                f"gen={self.manifest.generation} "
                f"segments={len(self.manifest.segments)}>")
