"""E4 — Figure 9: response time vs number of query keywords n.

The paper: n ∈ {2, 4, 8, 16}; the time complexity O(d·|SL|·log n) means
doubling n less than doubles the response time when |SL| grows only
mildly (the NASA observation).  We reproduce the series and check that
response time is monotone-ish in n but clearly sub-linear relative to the
keyword count.
"""

from __future__ import annotations

import pytest

from repro.core.query import Query
from repro.core.search import search
from repro.eval.reporting import render_series
from repro.eval.runner import engine_for, figure9_series, frequency_ladder


@pytest.mark.parametrize("dataset", ["nasa", "swissprot"])
@pytest.mark.parametrize("n", [2, 4, 8, 16])
def test_search_speed_vs_n(dataset, n, benchmark):
    engine = engine_for(dataset, scale=2)
    keywords = frequency_ladder(engine.index, count=n)
    if len(keywords) < n:
        pytest.skip("vocabulary too small for this n")
    query = Query.of(keywords, s=max(1, n // 2))
    response = benchmark(lambda: search(engine.index, query))
    assert len(response.query.keywords) == n


@pytest.mark.parametrize("dataset", ["nasa", "swissprot"])
def test_figure9_series(dataset, results_writer, benchmark):
    points = benchmark.pedantic(
        lambda: figure9_series(dataset, scale=2), rounds=1, iterations=1)
    assert len(points) >= 3
    from repro.eval.figures import render_bar_chart

    results_writer(f"figure9_{dataset}", render_series(
        f"Figure 9 — response time vs n ({dataset})",
        [(n, f"{ms:.2f}") for n, ms in points],
        x_label="n", y_label="RT (ms)") + "\n\n" + render_bar_chart(
        "RT by n", [(f"n={n}", ms) for n, ms in points], y_label=" ms"))

    # the paper's observation: growing n from 8 to 16 increases RT by
    # (much) less than 8×; allow generous slack for timer noise
    by_n = dict(points)
    if 2 in by_n and 16 in by_n and by_n[2] > 0:
        assert by_n[16] / by_n[2] < 64
