"""Tests for the interactive shell (driven programmatically)."""

import io

import pytest

from repro.core.engine import GKSEngine
from repro.datasets.registry import load_dataset
from repro.shell import Shell, run_shell


@pytest.fixture
def shell_io():
    engine = GKSEngine(load_dataset("figure2a"))
    lines: list[str] = []
    shell = Shell(engine, lines.append)
    return shell, lines


class TestQueries:
    def test_plain_line_searches(self, shell_io):
        shell, lines = shell_io
        shell.handle("karen mike")
        assert any("node(s) for" in line for line in lines)
        assert any("score=" in line for line in lines)

    def test_empty_line_ignored(self, shell_io):
        shell, lines = shell_io
        shell.handle("   ")
        assert lines == []

    def test_no_match_query(self, shell_io):
        shell, lines = shell_io
        shell.handle("zzzzz")
        assert any("0 node(s)" in line for line in lines)

    def test_all_stopwords_reports_error(self, shell_io):
        shell, lines = shell_io
        shell.handle("the of and")
        assert any("error" in line for line in lines)


class TestCommands:
    def test_set_s(self, shell_io):
        shell, lines = shell_io
        shell.handle(":s 3")
        assert shell.s == 3
        assert "s = 3" in lines

    def test_di_after_query(self, shell_io):
        shell, lines = shell_io
        shell.handle("karen mike john")
        lines.clear()
        shell.handle(":di")
        assert any("Data Mining" in line for line in lines)
        assert any("refine[" in line for line in lines)

    def test_refine_runs_suggestion(self, shell_io):
        shell, lines = shell_io
        shell.handle("karen mike zzz")
        lines.clear()
        shell.handle(":refine 0")
        assert any("node(s) for" in line for line in lines)

    def test_drill_down(self, shell_io):
        shell, lines = shell_io
        shell.handle("karen")
        lines.clear()
        shell.handle(":drill")
        assert any("node(s) for" in line for line in lines)

    def test_explain_and_snippet(self, shell_io):
        shell, lines = shell_io
        shell.handle("karen mike")
        lines.clear()
        shell.handle(":explain 0")
        assert any("rank =" in line for line in lines)
        lines.clear()
        shell.handle(":snippet 0")
        assert any("**Karen**" in line for line in lines)

    def test_back(self, shell_io):
        shell, lines = shell_io
        shell.handle("karen")
        shell.handle("mike")
        lines.clear()
        shell.handle(":back")
        assert any("karen" in line for line in lines)

    def test_history(self, shell_io):
        shell, lines = shell_io
        shell.handle("karen")
        lines.clear()
        shell.handle(":history")
        assert any("step 1" in line for line in lines)

    def test_unknown_command(self, shell_io):
        shell, lines = shell_io
        shell.handle(":nope")
        assert any("unknown command" in line for line in lines)

    def test_out_of_range_result(self, shell_io):
        shell, lines = shell_io
        shell.handle("karen")
        lines.clear()
        shell.handle(":explain 99")
        assert any("error" in line for line in lines)

    def test_command_before_query_errors_gracefully(self, shell_io):
        shell, lines = shell_io
        shell.handle(":di")
        assert any("error" in line for line in lines)

    def test_stats_reports_session_counters(self):
        from repro.obs.metrics import MetricsRegistry

        # a private registry so other tests' searches don't leak into
        # the session counter
        engine = GKSEngine(load_dataset("figure2a"),
                           metrics=MetricsRegistry())
        lines: list[str] = []
        shell = Shell(engine, lines.append)
        shell.handle("karen mike")
        shell.handle("karen mike")
        shell.handle(":stats")
        text = "\n".join(lines)
        assert "searches: 2" in text
        assert "cache: 1 hit(s) / 1 miss(es)" in text
        assert "slow queries" in text

    def test_help_and_quit(self, shell_io):
        shell, lines = shell_io
        shell.handle(":help")
        assert any("commands:" in line for line in lines)
        shell.handle(":quit")
        assert shell.running is False


class TestRunLoop:
    def test_scripted_session(self):
        engine = GKSEngine(load_dataset("figure2a"))
        lines: list[str] = []
        stdin = io.StringIO("karen mike\n:di\n:quit\n")
        run_shell(engine, stdin, lines.append)
        text = "\n".join(lines)
        assert "GKS shell" in text
        assert "node(s) for" in text

    def test_eof_terminates(self):
        engine = GKSEngine(load_dataset("figure2a"))
        lines: list[str] = []
        run_shell(engine, io.StringIO(""), lines.append)
        assert lines  # greeted, then exited on EOF
