"""Document-partitioned index shards with parallel build (§2.4 scaled up).

The paper notes that "the XML data could be spread over multiple files"
and handles it by prefixing every Dewey id with its document number.
That same prefix is what makes *sharding* exact: a shard owns a subset
of the repository's documents, every posting and hash entry of a
document lives wholly inside its shard, and no GKS pipeline stage ever
combines information across documents —

* a merged-list entry belongs to one document;
* an LCP block (common prefix of consecutive SL entries) is empty across
  a document boundary, so every non-trivial block lies inside one
  document;
* LCE discovery walks entity ancestors of LCP nodes — ancestors share
  the document prefix;
* ranking flows potential inside ``subtree(node)`` — again one document.

Hence the union of per-shard responses, re-sorted by the global ranking
key, equals the monolithic response node-for-node and score-for-score
(:mod:`repro.core.scatter` exploits this).

This module provides the three pieces underneath that guarantee:
partitioning strategies, the :class:`ShardedIndex` facade (quacks like a
:class:`~repro.index.builder.GKSIndex`, so validation, insights and
persistence work unchanged), and :class:`ParallelIndexBuilder`, which
builds shards concurrently via ``multiprocessing`` and falls back to a
serial loop when ``workers=1``.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from heapq import merge as heap_merge
from typing import Iterator, Sequence

from repro.errors import ConfigError, IndexError_
from repro.index.builder import GKSIndex, IndexBuilder
from repro.index.hashtables import NodeHashes
from repro.index.inverted import InvertedIndex
from repro.index.statistics import IndexStats
from repro.obs.locks import new_lock
from repro.text.analyzer import DEFAULT_ANALYZER, Analyzer
from repro.xmltree.dewey import Dewey
from repro.xmltree.repository import Repository
from repro.xmltree.tree import XMLDocument

PARTITION_STRATEGIES = ("round_robin", "hash")


def shard_of(doc_id: int, name: str, shards: int, strategy: str) -> int:
    """The shard a document belongs to under *strategy*.

    ``round_robin`` spreads consecutive doc ids evenly; ``hash`` keys on
    the document *name* (CRC-32), keeping a document on the same shard
    across corpus versions where names are stable but positions are not.
    """
    if shards < 1:
        raise ConfigError(f"shard count must be >= 1: {shards}")
    if strategy == "round_robin":
        return doc_id % shards
    if strategy == "hash":
        return zlib.crc32(name.encode("utf-8")) % shards
    raise ConfigError(
        f"unknown shard strategy {strategy!r}; "
        f"expected one of {PARTITION_STRATEGIES}")


def partition_documents(names: Sequence[str], shards: int,
                        strategy: str = "round_robin"
                        ) -> list[tuple[int, ...]]:
    """Assign doc ids 0..n-1 to shards; returns per-shard sorted id tuples.

    Shards may come out empty (more shards than documents, or an unlucky
    hash): an empty shard holds an empty index and contributes nothing
    to any query, which is exactly correct.
    """
    assignments: list[list[int]] = [[] for _ in range(shards)]
    for doc_id, name in enumerate(names):
        assignments[shard_of(doc_id, name, shards, strategy)].append(doc_id)
    return [tuple(ids) for ids in assignments]


@dataclass(frozen=True)
class Shard:
    """One shard: which documents it owns and their private index.

    ``index`` is an ordinary :class:`GKSIndex` whose postings and hash
    keys carry **global** Dewey ids (document numbers are repository-wide
    — see :meth:`IndexBuilder.add_document_unchecked`); only its
    ``document_names``/``stats`` are local to the shard.
    """

    shard_id: int
    doc_ids: tuple[int, ...]
    index: GKSIndex


class _RoutedHashes:
    """A :class:`NodeHashes` view over all shards, routed by document.

    Every hash key's first Dewey component is its document number, and a
    document lives in exactly one shard, so each lookup forwards to the
    owning shard's tables.  Ancestor walks stay inside one document,
    hence inside one shard.
    """

    def __init__(self, sharded: "ShardedIndex") -> None:
        self._sharded = sharded

    def _tables_for(self, dewey: Dewey) -> NodeHashes | None:
        shard = self._sharded.shard_for_document(dewey[0]) if dewey else None
        return None if shard is None else shard.index.hashes

    # -- the paper's two functions ------------------------------------
    def is_entity(self, dewey: Dewey) -> int | None:
        hashes = self._tables_for(dewey)
        return None if hashes is None else hashes.is_entity(dewey)

    def is_element(self, dewey: Dewey) -> int | None:
        hashes = self._tables_for(dewey)
        return None if hashes is None else hashes.is_element(dewey)

    # -- derived lookups ----------------------------------------------
    def child_count(self, dewey: Dewey) -> int | None:
        hashes = self._tables_for(dewey)
        return None if hashes is None else hashes.child_count(dewey)

    def is_attribute(self, dewey: Dewey) -> bool:
        hashes = self._tables_for(dewey)
        return True if hashes is None else hashes.is_attribute(dewey)

    def nearest_entity(self, dewey: Dewey) -> Dewey | None:
        hashes = self._tables_for(dewey)
        return None if hashes is None else hashes.nearest_entity(dewey)

    def entity_ancestors(self, dewey: Dewey) -> Iterator[Dewey]:
        hashes = self._tables_for(dewey)
        if hashes is not None:
            yield from hashes.entity_ancestors(dewey)

    # -- aggregates (validation, stats, persistence) -------------------
    @property
    def entity_count(self) -> int:
        return sum(shard.index.hashes.entity_count
                   for shard in self._sharded.shards)

    @property
    def element_count(self) -> int:
        return sum(shard.index.hashes.element_count
                   for shard in self._sharded.shards)

    @property
    def entity_table(self) -> dict[Dewey, int]:
        merged: dict[Dewey, int] = {}
        for shard in self._sharded.shards:
            merged.update(shard.index.hashes.entity_table)
        return merged

    @property
    def element_table(self) -> dict[Dewey, int]:
        merged: dict[Dewey, int] = {}
        for shard in self._sharded.shards:
            merged.update(shard.index.hashes.element_table)
        return merged

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<RoutedHashes shards={len(self._sharded.shards)} "
                f"entities={self.entity_count}>")


class ShardedIndex:
    """N document shards behind the :class:`GKSIndex` interface.

    Scatter-gather search (:mod:`repro.core.scatter`) runs the pipeline
    per shard; everything else — validation, insights, snippet lookups,
    ``suggest_s`` — talks to this object exactly as it would to a
    monolithic index.  ``postings()`` answers with the k-way merge of
    the shard posting lists (cached per keyword): shards own disjoint
    document sets, so the merge is a disjoint sorted union identical to
    the monolithic posting list.
    """

    def __init__(self, shards: Sequence[Shard], strategy: str,
                 document_names: Sequence[str],
                 analyzer: Analyzer = DEFAULT_ANALYZER) -> None:
        if strategy not in PARTITION_STRATEGIES:
            raise ConfigError(
                f"unknown shard strategy {strategy!r}; "
                f"expected one of {PARTITION_STRATEGIES}")
        self.shards: tuple[Shard, ...] = tuple(shards)
        if not self.shards:
            raise ConfigError("a ShardedIndex needs at least one shard")
        self.strategy = strategy
        self.document_names: tuple[str, ...] = tuple(document_names)
        self.analyzer = analyzer
        self.hashes = _RoutedHashes(self)
        self._doc_to_shard: dict[int, int] = {
            doc_id: shard.shard_id
            for shard in self.shards for doc_id in shard.doc_ids}
        self._postings_cache: dict[str, list[Dewey]] = {}
        self._merged_inverted: InvertedIndex | None = None
        self._merged_stats: IndexStats | None = None
        # The lazily merged views are probed from the scatter-gather
        # worker pool; without the lock two threads could interleave a
        # check-then-merge and publish half-built state.
        # guards: _postings_cache, _merged_inverted, _merged_stats
        self._cache_lock = new_lock("sharding.cache")

    # ------------------------------------------------------------------
    # Shard routing
    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return len(self.shards)

    def shard_for_document(self, doc_id: int) -> Shard | None:
        """The shard owning *doc_id* (None for unknown documents)."""
        shard_id = self._doc_to_shard.get(doc_id)
        return None if shard_id is None else self.shards[shard_id]

    # ------------------------------------------------------------------
    # GKSIndex interface
    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        return max((shard.index.depth for shard in self.shards), default=0)

    def postings(self, keyword: str) -> list[Dewey]:
        """Global posting list: disjoint sorted union over shards.

        Phrase keywords intersect *within* each shard first — every word
        occurrence of one element lives in that element's document,
        hence in one shard, so the per-shard intersection union equals
        the global intersection.
        """
        with self._cache_lock:
            cached = self._postings_cache.get(keyword)
        if cached is None:
            merged = list(heap_merge(
                *(shard.index.postings(keyword) for shard in self.shards)))
            with self._cache_lock:
                # setdefault publishes exactly one list per keyword even
                # when two threads merged it concurrently
                cached = self._postings_cache.setdefault(keyword, merged)
        return cached

    @property
    def inverted(self) -> InvertedIndex:
        """Merged inverted index (lazy; for validation and persistence)."""
        with self._cache_lock:
            if self._merged_inverted is None:
                merged: dict[str, list[Dewey]] = {}
                for shard in self.shards:
                    for keyword, postings in shard.index.inverted.items():
                        merged.setdefault(keyword, []).append(postings)
                index = InvertedIndex()
                index._postings = {
                    keyword: list(heap_merge(*lists))
                    for keyword, lists in merged.items()}
                self._merged_inverted = index
            return self._merged_inverted

    @property
    def stats(self) -> IndexStats:
        """Aggregated corpus statistics over all shards."""
        with self._cache_lock:
            if self._merged_stats is None:
                total = IndexStats()
                for shard in self.shards:
                    stats = shard.index.stats
                    total.documents += stats.documents
                    total.total_nodes += stats.total_nodes
                    total.attribute_nodes += stats.attribute_nodes
                    total.entity_nodes += stats.entity_nodes
                    total.repeating_nodes += stats.repeating_nodes
                    total.connecting_nodes += stats.connecting_nodes
                    total.text_keywords += stats.text_keywords
                    total.tag_keywords += stats.tag_keywords
                    total.max_depth = max(total.max_depth, stats.max_depth)
                    total.build_seconds += stats.build_seconds
                    for tag, category in stats.category_by_tag.items():
                        total.category_by_tag.setdefault(tag, category)
                self._merged_stats = total
            return self._merged_stats

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def with_appended(self, document: XMLDocument,
                      index_tags: bool = True) -> "ShardedIndex":
        """A new sharded index covering the old corpus plus *document*.

        Routes the document to its shard under this index's strategy and
        extends that shard's structures in place (same contract as
        :func:`repro.index.incremental.append_document`: treat the input
        index as consumed).  The returned wrapper starts with fresh
        caches, so no stale merged posting list can survive the append.
        """
        expected = len(self.document_names)
        if document.doc_id != expected:
            raise IndexError_(
                f"document {document.name!r} has doc id {document.doc_id}, "
                f"expected {expected} (append-only maintenance)")
        name = document.name
        target = shard_of(document.doc_id, name, self.num_shards,
                          self.strategy)
        old = self.shards[target]
        builder = IndexBuilder(analyzer=self.analyzer, index_tags=index_tags)
        builder._names.extend(old.index.document_names)
        builder._stats = old.index.stats
        builder._inverted = old.index.inverted
        builder._hashes = old.index.hashes
        builder.add_document_unchecked(document)
        rebuilt = Shard(shard_id=target,
                        doc_ids=old.doc_ids + (document.doc_id,),
                        index=builder.build())
        shards = tuple(rebuilt if shard.shard_id == target else shard
                       for shard in self.shards)
        return ShardedIndex(shards, strategy=self.strategy,
                            document_names=self.document_names + (name,),
                            analyzer=self.analyzer)

    # ------------------------------------------------------------------
    # Introspection (CLI `gks stats --shards`)
    # ------------------------------------------------------------------
    def shard_table(self) -> list[dict]:
        """One summary row per shard for stats displays."""
        return [{
            "shard": shard.shard_id,
            "documents": len(shard.doc_ids),
            "nodes": shard.index.stats.total_nodes,
            "postings": shard.index.inverted.total_postings,
            "vocabulary": len(shard.index.inverted),
            "entities": shard.index.hashes.entity_count,
        } for shard in self.shards]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<ShardedIndex shards={self.num_shards} "
                f"strategy={self.strategy!r} "
                f"docs={len(self.document_names)}>")


# ----------------------------------------------------------------------
# Parallel build
# ----------------------------------------------------------------------

# Fork-inherited state for repository builds: the parent parks the
# repository (and build options) here right before spawning the pool;
# forked children read it without any pickling of XML trees.
_FORK_STATE: dict = {}


def _build_shard_from_fork_state(shard_id: int) -> tuple[int, GKSIndex]:
    repository = _FORK_STATE["repository"]
    doc_ids = _FORK_STATE["partitions"][shard_id]
    builder = IndexBuilder(analyzer=_FORK_STATE["analyzer"],
                           index_tags=_FORK_STATE["index_tags"])
    for doc_id in doc_ids:
        builder.add_document_unchecked(repository[doc_id])
    return shard_id, builder.build()


def _build_shard_from_texts(shard_id: int,
                            documents: list[tuple[int, str, str]],
                            analyzer: Analyzer,
                            index_tags: bool) -> tuple[int, GKSIndex]:
    """Worker for text-based builds (start-method agnostic: args pickle)."""
    builder = IndexBuilder(analyzer=analyzer, index_tags=index_tags)
    for doc_id, name, text in documents:
        builder.add_xml(text, name=name, doc_id=doc_id)
    return shard_id, builder.build()


class ParallelIndexBuilder:
    """Builds a :class:`ShardedIndex`, one worker process per shard.

    ``workers=1`` (the default) builds every shard serially in-process —
    no multiprocessing machinery is touched.  With ``workers>1`` shards
    build concurrently in a ``fork`` process pool (repository builds
    inherit the parsed trees through fork, so nothing but the finished
    shard indexes crosses a process boundary); when the platform offers
    no ``fork`` start method the builder silently degrades to serial,
    because shipping whole XML trees through pickle would cost more than
    it saves.
    """

    def __init__(self, analyzer: Analyzer = DEFAULT_ANALYZER,
                 index_tags: bool = True, shards: int = 1,
                 workers: int = 1,
                 strategy: str = "round_robin") -> None:
        if shards < 1:
            raise ConfigError(f"shard count must be >= 1: {shards}")
        if workers < 1:
            raise ConfigError(f"worker count must be >= 1: {workers}")
        if strategy not in PARTITION_STRATEGIES:
            raise ConfigError(
                f"unknown shard strategy {strategy!r}; "
                f"expected one of {PARTITION_STRATEGIES}")
        self.analyzer = analyzer
        self.index_tags = index_tags
        self.shards = shards
        self.workers = workers
        self.strategy = strategy

    # ------------------------------------------------------------------
    def build(self, repository: Repository) -> ShardedIndex:
        """Index *repository* into shards (parallel when configured)."""
        names = [document.name for document in repository]
        partitions = partition_documents(names, self.shards, self.strategy)
        if self.workers > 1 and len(repository) > 0:
            indexes = self._run_forked(repository, partitions)
        else:
            indexes = None
        if indexes is None:
            indexes = []
            for doc_ids in partitions:
                builder = IndexBuilder(analyzer=self.analyzer,
                                       index_tags=self.index_tags)
                for doc_id in doc_ids:
                    builder.add_document_unchecked(repository[doc_id])
                indexes.append(builder.build())
        return self._assemble(indexes, partitions, names)

    def build_from_texts(self, texts: Sequence[str],
                         names: Sequence[str] | None = None) -> ShardedIndex:
        """Index raw XML texts into shards without materialising trees.

        Workers parse *and* index their shard's texts concurrently, so a
        parallel text build overlaps the dominant parsing cost — this is
        the path the sharding benchmark exercises.
        """
        resolved = [names[i] if names is not None else f"doc{i}"
                    for i in range(len(texts))]
        partitions = partition_documents(resolved, self.shards,
                                         self.strategy)
        jobs = [[(doc_id, resolved[doc_id], texts[doc_id])
                 for doc_id in doc_ids] for doc_ids in partitions]
        indexes: list[GKSIndex] | None = None
        if self.workers > 1 and texts:
            indexes = self._run_pool(jobs)
        if indexes is None:
            indexes = [_build_shard_from_texts(shard_id, job, self.analyzer,
                                               self.index_tags)[1]
                       for shard_id, job in enumerate(jobs)]
        return self._assemble(indexes, partitions, resolved)

    # ------------------------------------------------------------------
    def _pool(self, jobs: int):
        import multiprocessing
        from concurrent.futures import ProcessPoolExecutor

        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - platform without fork
            return None
        max_workers = max(1, min(self.workers, jobs))
        return ProcessPoolExecutor(max_workers=max_workers,
                                   mp_context=context)

    def _run_forked(self, repository: Repository,
                    partitions: list[tuple[int, ...]]
                    ) -> list[GKSIndex] | None:
        busy = [shard_id for shard_id, doc_ids in enumerate(partitions)
                if doc_ids]
        pool = self._pool(len(busy))
        if pool is None:  # pragma: no cover - platform without fork
            return None
        _FORK_STATE.update(repository=repository, partitions=partitions,
                           analyzer=self.analyzer,
                           index_tags=self.index_tags)
        try:
            with pool:
                built = dict(pool.map(_build_shard_from_fork_state, busy))
        finally:
            _FORK_STATE.clear()
        return [built[shard_id] if shard_id in built
                else IndexBuilder(analyzer=self.analyzer,
                                  index_tags=self.index_tags).build()
                for shard_id in range(len(partitions))]

    def _run_pool(self, jobs: list[list[tuple[int, str, str]]]
                  ) -> list[GKSIndex] | None:
        busy = [shard_id for shard_id, job in enumerate(jobs) if job]
        pool = self._pool(len(busy))
        if pool is None:  # pragma: no cover - platform without fork
            return None
        with pool:
            futures = [pool.submit(_build_shard_from_texts, shard_id,
                                   jobs[shard_id], self.analyzer,
                                   self.index_tags)
                       for shard_id in busy]
            built = dict(future.result() for future in futures)
        return [built[shard_id] if shard_id in built
                else IndexBuilder(analyzer=self.analyzer,
                                  index_tags=self.index_tags).build()
                for shard_id in range(len(jobs))]

    def _assemble(self, indexes: list[GKSIndex],
                  partitions: list[tuple[int, ...]],
                  names: Sequence[str]) -> ShardedIndex:
        shards = [Shard(shard_id=shard_id, doc_ids=doc_ids, index=index)
                  for shard_id, (doc_ids, index)
                  in enumerate(zip(partitions, indexes))]
        return ShardedIndex(shards, strategy=self.strategy,
                            document_names=names, analyzer=self.analyzer)


def build_sharded_index(repository: Repository,
                        analyzer: Analyzer = DEFAULT_ANALYZER,
                        index_tags: bool = True, shards: int = 1,
                        workers: int = 1,
                        strategy: str = "round_robin") -> ShardedIndex:
    """One-call convenience mirroring :func:`repro.index.builder.build_index`."""
    return ParallelIndexBuilder(analyzer=analyzer, index_tags=index_tags,
                                shards=shards, workers=workers,
                                strategy=strategy).build(repository)
