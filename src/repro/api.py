"""The stable public API surface, in one import.

Everything a GKS *user* (as opposed to a contributor poking at
internals) needs lives here: the engine and its one factory, the two
frozen configuration records, the response types, the typed error
hierarchy and the codec registry.  The promise is narrow on purpose —
these names are the compatibility surface; everything else under
``repro.*`` is implementation detail that may move between releases.

Quickstart::

    from repro.api import EngineConfig, GKSEngine, SearchOptions

    config = EngineConfig(index_path="corpus.gksindex",
                          codec="varint-dag", shards=2)
    engine = GKSEngine.open(["a.xml", "b.xml"], config=config)
    response = engine.search("karen mike data mining",
                             options=SearchOptions(s=2))
    for node in response.top(5):
        print(engine.describe(node))

Query semantics are part of the surface too: ``EngineConfig.mode`` /
``SearchOptions.mode`` select one of :data:`MODES` (``strict`` |
``probabilistic`` | ``relaxed``), probabilistic results carry
``RankedNode.probability`` and relaxed results a
:class:`RelaxationStep` in ``RankedNode.relaxation``; non-strict
responses describe themselves in ``GKSResponse.semantics``
(:class:`SemanticsInfo`).

``GKSEngine.open`` is the one blessed constructor — it sniffs raw XML
texts, corpus paths and :class:`~repro.xmltree.repository.Repository`
objects (wrap iterables in :class:`Texts` / :class:`Paths` to skip the
sniff) and consumes every :class:`EngineConfig` knob, including the
``codec`` that picks the on-disk index representation.  The legacy
``from_texts`` / ``from_paths`` classmethods still work but are
deprecated (lint rule ``D001`` flags them).
"""

from __future__ import annotations

from repro.core.budget import SearchBudget
from repro.core.config import (MODES, EngineConfig, Paths,
                               SearchOptions, Texts)
from repro.core.engine import GKSEngine
from repro.core.results import (GKSResponse, RankedNode,
                                RelaxationStep, SemanticsInfo)
from repro.errors import (ConfigError, GKSError, Overloaded, QueryError,
                          SearchTimeout, StorageError, ValidationError,
                          XMLSyntaxError)
from repro.index.codec import CODEC_NAMES, Codec, resolve_codec

__all__ = [
    "CODEC_NAMES", "Codec", "ConfigError", "EngineConfig", "GKSEngine",
    "GKSError", "GKSResponse", "MODES", "Overloaded", "Paths",
    "QueryError", "RankedNode", "RelaxationStep", "SearchBudget",
    "SearchOptions", "SearchTimeout", "SemanticsInfo", "StorageError",
    "Texts", "ValidationError", "XMLSyntaxError", "resolve_codec",
]
