"""Tests for the random workload generator."""

import pytest

from repro.core.search import search
from repro.eval.querygen import (WorkloadSpec, generate_queries,
                                 vocabulary_by_frequency)
from repro.index.builder import build_index
from repro.datasets.registry import load_dataset


@pytest.fixture(scope="module")
def index():
    return build_index(load_dataset("figure2a"))


class TestVocabulary:
    def test_sorted_rare_to_frequent(self, index):
        vocabulary = vocabulary_by_frequency(index)
        frequencies = [index.inverted.document_frequency(keyword)
                       for keyword in vocabulary]
        assert frequencies == sorted(frequencies)


class TestGeneration:
    def test_deterministic(self, index):
        spec = WorkloadSpec(queries=10, seed=4)
        first = generate_queries(index, spec)
        second = generate_queries(index, spec)
        assert [query.keywords for query in first] == \
            [query.keywords for query in second]

    def test_counts_and_bounds(self, index):
        spec = WorkloadSpec(queries=25, min_keywords=2, max_keywords=4,
                            seed=1)
        queries = generate_queries(index, spec)
        assert len(queries) == 25
        for query in queries:
            assert 2 <= len(query.keywords) <= 4
            assert 1 <= query.s <= len(query.keywords)

    def test_selectivity_bias(self, index):
        frequent = generate_queries(index, WorkloadSpec(
            queries=40, selectivity=1.0, noise=0.0, seed=2))
        rare = generate_queries(index, WorkloadSpec(
            queries=40, selectivity=0.0, noise=0.0, seed=2))

        def mean_df(queries):
            dfs = [index.inverted.document_frequency(keyword)
                   for query in queries for keyword in query.keywords]
            return sum(dfs) / len(dfs)

        assert mean_df(frequent) > mean_df(rare)

    def test_noise_produces_unknown_keywords(self, index):
        queries = generate_queries(index, WorkloadSpec(
            queries=40, noise=1.0, seed=3))
        for query in queries:
            for keyword in query.keywords:
                assert keyword.startswith("zz")

    def test_all_generated_queries_are_searchable(self, index):
        for query in generate_queries(index, WorkloadSpec(queries=30,
                                                          seed=5)):
            response = search(index, query)  # must not raise
            for node in response:
                assert node.distinct_keywords >= query.effective_s

    def test_invalid_specs_rejected(self, index):
        with pytest.raises(ValueError):
            generate_queries(index, WorkloadSpec(min_keywords=0))
        with pytest.raises(ValueError):
            generate_queries(index, WorkloadSpec(min_keywords=3,
                                                 max_keywords=2))
        with pytest.raises(ValueError):
            generate_queries(index, WorkloadSpec(selectivity=2.0))
