#!/usr/bin/env bash
# Static-analysis smoke test: the lint gate is clean on the real source
# trees, and the deep invariant audit distinguishes the three health
# states of a saved index — healthy (exit 0), structurally broken
# (exit 1), and consistent-but-wrong (exit 2, only --deep can see it).
#
# Usage:  bash scripts/smoke_analysis.sh
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH=src

WORKDIR="$(mktemp -d)"
trap 'rm -rf "$WORKDIR"' EXIT

echo "== rule catalog =="
python -m repro lint --list-rules

echo "== lint gate over src/tests/benchmarks =="
python -m repro lint src tests benchmarks
echo "lint clean"

echo "== machine-readable lint report =="
python -m repro lint --json src tests benchmarks | python -m json.tool >/dev/null
echo "lint --json parses"

echo "== lock inventory =="
LOCKS="$(python -m repro lint --locks src 2>/dev/null)"
for name in serve.core engine.cache engine.mutation sharding.cache index.wal; do
    grep -q "$name" <<<"$LOCKS" || {
        echo "FAIL: lock inventory is missing $name" >&2; exit 1; }
done
echo "inventory names all serving/durability locks"

echo "== runtime race detection (gks race, all scenarios) =="
python -m repro dataset figure2a -o "$WORKDIR"
RACE="$(python -m repro race "$WORKDIR"/figure2a_0.xml --scenario all --json)"
grep -q '"ok": true' <<<"$RACE" || {
    echo "FAIL: gks race reported findings on the clean serving path" >&2
    echo "$RACE" >&2; exit 1; }
grep -q 'engine.mutation -> index.wal' <<<"$RACE" || {
    echo "FAIL: race run never observed the mutation->wal ordering" >&2
    echo "$RACE" >&2; exit 1; }
echo "race harness clean; expected lock orderings observed"

echo "== build a sharded index =="
python -m repro dataset figure1 -o "$WORKDIR"
python -m repro dataset figure2a -o "$WORKDIR"
python -m repro index "$WORKDIR"/figure*.xml \
    -o "$WORKDIR/sharded.gks" --shards 2

echo "== healthy index: deep audit passes (exit 0) =="
python -m repro check-index "$WORKDIR/sharded.gks" --deep

echo "== consistent-but-wrong index: deep audit exits 2 =="
cp "$WORKDIR/sharded.gks" "$WORKDIR/wrong.gks"
python - "$WORKDIR/wrong.gks" <<'EOF'
import sys
from repro.testing.faults import IndexCorruptor
IndexCorruptor(seed=42).drop_manifest_document(sys.argv[1])
EOF
# the shallow check must NOT see the damage (CRCs were resealed) ...
python -m repro check-index "$WORKDIR/wrong.gks" || {
    echo "FAIL: shallow check rejected a structurally clean file" >&2
    exit 1; }
# ... while --deep exits 2 and names the violated invariant
set +e
OUT="$(python -m repro check-index "$WORKDIR/wrong.gks" --deep)"
CODE=$?
set -e
echo "$OUT"
[ "$CODE" -eq 2 ] || {
    echo "FAIL: expected exit 2 from --deep, got $CODE" >&2; exit 1; }
grep -q "invariant violated" <<<"$OUT" || {
    echo "FAIL: --deep did not name the violated invariant" >&2; exit 1; }

echo "== structurally broken index: exit 1 =="
python - "$WORKDIR/sharded.gks" <<'EOF'
import sys
from repro.testing.faults import TornWriter
TornWriter(seed=1).tear(sys.argv[1], fraction=0.5)
EOF
set +e
python -m repro check-index "$WORKDIR/sharded.gks" --deep
CODE=$?
set -e
[ "$CODE" -eq 1 ] || {
    echo "FAIL: expected exit 1 for a torn file, got $CODE" >&2; exit 1; }

echo "smoke_analysis OK"
