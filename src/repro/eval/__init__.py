"""Evaluation harness: metrics, workloads, feedback, experiment runners."""

from repro.eval.feedback import (FeedbackTable, QueryComparison,
                                 simulate_feedback)
from repro.eval.metrics import (precision_at, rank_score,
                                rank_score_from_positions, recall,
                                reciprocal_rank, response_rank_score)
from repro.eval.reporting import render_series, render_table
from repro.eval.workload import (HYBRID_QUERY, TABLE6, WorkloadQuery, by_id,
                                 for_dataset)

__all__ = [
    "FeedbackTable", "HYBRID_QUERY", "QueryComparison", "TABLE6",
    "WorkloadQuery", "by_id", "for_dataset", "precision_at", "rank_score",
    "rank_score_from_positions", "recall", "reciprocal_rank",
    "render_series", "render_table", "response_rank_score",
    "simulate_feedback",
]
