"""Deterministic, seedable fault injectors.

Resilience claims are only testable when the faults are reproducible.
This module provides the injectors the ``tests/test_resilience.py`` and
``tests/test_analysis.py`` suites and ``benchmarks/bench_robustness.py``
build on:

* :class:`XMLCorruptor` — byte-level corruption of XML text that is
  *guaranteed* to make the strict parser reject the document (each
  mutation is verified; a deterministic fallback breaker is appended when
  a random mutation happens to leave the document well-formed),
* :class:`TornWriter` — simulates a crash mid-write by truncating a file
  at a deterministic cut point (what a power loss during a non-atomic
  write leaves behind),
* :class:`IndexCorruptor` — *semantic* corruption of saved index files
  with every CRC recomputed, producing consistent-but-wrong stores only
  the deep invariant audit (``gks check-index --deep``) can detect,
* :class:`StoreCorruptor` — the same idea aimed at segmented store
  directories (orphaned segments, regressed manifest generations, WAL
  damage, resealed bad segments) for the durability audit,
* :class:`FakeClock` — an injectable time source for
  :class:`repro.core.budget.SearchBudget`, so deadline tests never sleep,
* :class:`SlowEngine` — a delegating engine wrapper with injectable
  sleep, for serve-layer coalescing/overload tests that need a search to
  predictably dawdle,
* :class:`BurstyArrivals` — deterministic bursty arrival offsets for
  driving :class:`repro.serve.loadgen.OpenLoopSchedule`-style overload
  scenarios.

Everything is driven by :class:`random.Random` seeded explicitly; the same
seed always injects the same faults.
"""

from __future__ import annotations

import random
from pathlib import Path

from repro.errors import ValidationError, XMLSyntaxError
from repro.xmltree.parser import iter_events


class FakeClock:
    """A callable clock for deterministic deadline tests.

    Each call returns the current fake time and then advances it by
    ``auto_advance`` — so a budget polling the clock N times observes a
    monotonically increasing timeline without any real sleeping.
    """

    def __init__(self, start: float = 0.0, auto_advance: float = 0.0) -> None:
        self._now = start
        self.auto_advance = auto_advance
        self.calls = 0

    def __call__(self) -> float:
        self.calls += 1
        now = self._now
        self._now += self.auto_advance
        return now

    def advance(self, seconds: float) -> None:
        """Jump the clock forward manually."""
        self._now += seconds

    @property
    def now(self) -> float:
        return self._now


class SlowEngine:
    """A delegating engine wrapper that dawdles before every search.

    Duck-types :class:`~repro.core.engine.GKSEngine` by forwarding every
    attribute; only ``search`` / ``search_top_k`` are intercepted to
    sleep ``delay_s`` first and count the call.  The sleeper is
    injectable: pass ``sleeper=fake.advance`` with a :class:`FakeClock`
    to make "slowness" advance virtual time instantly, so serve-layer
    deadline and coalescing tests are deterministic and never block.

    ``calls`` counts *engine executions* — the observable singleflight
    coalescing guarantee is that N concurrent identical requests leave
    ``calls == 1``.
    """

    def __init__(self, engine, delay_s: float = 0.0,
                 sleeper=None) -> None:
        if delay_s < 0:
            raise ValidationError(f"delay_s must be >= 0: {delay_s}")
        if sleeper is None:
            import time

            sleeper = time.sleep
        self._engine = engine
        self.delay_s = delay_s
        self._sleep = sleeper
        self.calls = 0

    def __getattr__(self, name: str):
        return getattr(self._engine, name)

    def search(self, *args, **kwargs):
        self.calls += 1
        if self.delay_s:
            self._sleep(self.delay_s)
        return self._engine.search(*args, **kwargs)

    def search_top_k(self, *args, **kwargs):
        self.calls += 1
        if self.delay_s:
            self._sleep(self.delay_s)
        return self._engine.search_top_k(*args, **kwargs)


class BurstyArrivals:
    """Deterministic bursty arrival offsets for overload tests.

    Produces ``bursts`` clusters of ``burst_size`` arrivals each: the
    arrivals inside a cluster land ``jitter_s`` apart (effectively
    simultaneous relative to service time), clusters start ``gap_s``
    apart.  The seeded RNG only perturbs *which* cluster each jitter
    draw lands in — the same seed always yields the same offsets, so a
    test asserting "exactly N requests shed" replays identically.
    """

    def __init__(self, bursts: int, burst_size: int, gap_s: float,
                 jitter_s: float = 0.0, seed: int = 0) -> None:
        if bursts < 1:
            raise ValidationError(f"bursts must be >= 1: {bursts}")
        if burst_size < 1:
            raise ValidationError(f"burst_size must be >= 1: {burst_size}")
        if gap_s < 0:
            raise ValidationError(f"gap_s must be >= 0: {gap_s}")
        if jitter_s < 0:
            raise ValidationError(f"jitter_s must be >= 0: {jitter_s}")
        self.bursts = bursts
        self.burst_size = burst_size
        self.gap_s = gap_s
        self.jitter_s = jitter_s
        self._rng = random.Random(seed)

    def offsets(self) -> list[float]:
        """All arrival offsets from t=0, sorted ascending."""
        arrivals = []
        for burst in range(self.bursts):
            base = burst * self.gap_s
            for position in range(self.burst_size):
                jitter = (self._rng.uniform(0, self.jitter_s)
                          if self.jitter_s else 0.0)
                arrivals.append(base + position * 1e-9 + jitter)
        return sorted(arrivals)


class XMLCorruptor:
    """Seedable byte-level corruptor for XML documents.

    ``corrupt`` applies one randomly chosen mutation — dropping a closing
    tag, breaking a tag name, truncating the tail, injecting a stray
    ``<`` or unbalancing a quote — and verifies the result no longer
    strict-parses.  If the mutation accidentally left the document
    well-formed, a guaranteed breaker (a stray top-level closing tag) is
    appended instead, so every returned text is genuinely malformed.
    """

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)

    # -- individual mutations ------------------------------------------
    def _drop_closing_tag(self, text: str) -> str:
        closers = [i for i in range(len(text)) if text.startswith("</", i)]
        if not closers:
            return text
        start = self._rng.choice(closers)
        end = text.find(">", start)
        if end < 0:
            return text
        return text[:start] + text[end + 1:]

    def _break_tag_name(self, text: str) -> str:
        opens = [i for i in range(len(text))
                 if text[i] == "<" and i + 1 < len(text)
                 and text[i + 1].isalpha()]
        if not opens:
            return text
        position = self._rng.choice(opens) + 1
        return text[:position] + "<" + text[position + 1:]

    def _truncate_tail(self, text: str) -> str:
        if len(text) < 8:
            return text
        cut = self._rng.randrange(len(text) // 4, 3 * len(text) // 4)
        return text[:cut]

    def _stray_open(self, text: str) -> str:
        if not text:
            return "<"
        position = self._rng.randrange(len(text))
        return text[:position] + "<" + text[position:]

    def _unbalance_quote(self, text: str) -> str:
        quotes = [i for i, ch in enumerate(text) if ch == '"']
        if not quotes:
            return text
        position = self._rng.choice(quotes)
        return text[:position] + text[position + 1:]

    # -- public API -----------------------------------------------------
    def corrupt(self, text: str) -> str:
        """One deterministic, verified-malformed corruption of *text*."""
        mutation = self._rng.choice([
            self._drop_closing_tag, self._break_tag_name,
            self._truncate_tail, self._stray_open, self._unbalance_quote])
        mutated = mutation(text)
        if not self._is_malformed(mutated):
            # the mutation was a no-op or left the text well-formed:
            # append a stray top-level closing tag — always an error
            mutated = mutated + "</torn-injected>"
        return mutated

    @staticmethod
    def _is_malformed(text: str) -> bool:
        try:
            for _ in iter_events(text):
                pass
        except XMLSyntaxError:
            return True
        return False


def corrupt_corpus(texts: list[str], fraction: float,
                   seed: int = 0) -> tuple[list[str], set[int]]:
    """Corrupt a deterministic *fraction* of the corpus.

    Returns ``(mutated_texts, corrupted_positions)``; exactly
    ``round(len(texts) * fraction)`` documents are corrupted, chosen by
    the seeded RNG, each verified malformed.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValidationError(f"fraction must be in [0, 1]: {fraction}")
    rng = random.Random(seed)
    count = round(len(texts) * fraction)
    victims = set(rng.sample(range(len(texts)), count))
    corruptor = XMLCorruptor(seed=rng.randrange(2 ** 31))
    mutated = [corruptor.corrupt(text) if position in victims else text
               for position, text in enumerate(texts)]
    return mutated, victims


class IndexCorruptor:
    """Semantic corruption of saved indexes that checksums cannot see.

    Where :class:`TornWriter` produces *structurally* broken files (bad
    gzip/CRC — ``load_index`` refuses them, ``gks check-index`` exits 1),
    this injector produces **consistent-but-wrong** files: it edits the
    persisted payload and then *recomputes every CRC*, so the file loads
    cleanly and only the deep invariant audit
    (:func:`repro.analysis.verify_store`, ``gks check-index --deep``,
    exit 2) can tell it from a healthy index.

    Deferred imports keep :mod:`repro.testing` importable without the
    index layer loaded.
    """

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)

    # -- helpers --------------------------------------------------------
    @staticmethod
    def _reseal(envelope: dict, path: Path) -> Path:
        """Recompute all CRCs bottom-up and write the envelope back."""
        from repro.index.storage import payload_crc32, write_envelope
        if envelope.get("version") == 3:
            manifest = envelope["manifest"]
            for entry, payload in zip(manifest.get("shards", ()),
                                      envelope.get("shards", ())):
                entry["crc32"] = payload_crc32(payload)
            envelope["crc32"] = payload_crc32(manifest)
        else:
            envelope["crc32"] = payload_crc32(envelope.get("payload", {}))
        return write_envelope(envelope, path)

    def _pick_payload(self, envelope: dict,
                      want: str = "postings") -> dict:
        """A payload dict holding a non-empty *want* mapping."""
        if envelope.get("version") == 3:
            candidates = [payload for payload in envelope.get("shards", ())
                          if payload.get(want)]
        else:
            payload = envelope.get("payload", envelope)
            candidates = [payload] if payload.get(want) else []
        if not candidates:
            raise ValidationError(
                f"index file has no non-empty {want!r} to corrupt")
        return self._rng.choice(candidates)

    # -- public API -----------------------------------------------------
    def corrupt_postings(self, path: str | Path) -> Path:
        """Break posting-list order in place (CRCs recomputed).

        Picks a posting list with at least two entries and either swaps
        its first and last entries (order violation) or duplicates an
        entry (strictness violation) — the seeded RNG decides.  The
        resulting file still loads (``from_mapping`` would silently
        re-sort it), but the raw-envelope audit reports
        ``postings-sorted``.
        """
        from repro.index.storage import read_envelope
        path = Path(path)
        envelope = read_envelope(path)
        payload = self._pick_payload(envelope, "postings")
        postings = payload["postings"]
        plural = [keyword for keyword, entries in sorted(postings.items())
                  if len(entries) >= 2]
        if plural:
            keyword = self._rng.choice(plural)
            entries = postings[keyword]
            if self._rng.random() < 0.5:
                entries[0], entries[-1] = entries[-1], entries[0]
                if entries == sorted(entries):   # palindromic swap: force
                    entries.insert(0, entries[-1])
            else:
                entries.append(entries[self._rng.randrange(len(entries))])
        else:
            # every list is a singleton: duplicate one entry
            keyword = self._rng.choice(sorted(postings))
            postings[keyword].append(postings[keyword][0])
        return self._reseal(envelope, path)

    def corrupt_codec_block(self, path: str | Path) -> Path:
        """Break posting order inside a binary (v4) index, CRCs resealed.

        The codec's block checksums make byte-level tampering a
        *structural* failure (exit 1) — so this injector goes through
        the codec itself: :func:`repro.index.codec.decode_file` expands
        the file, one posting list is reordered or given a duplicate
        entry, and :func:`repro.index.codec.encode_decoded` reseals it
        with fresh block CRCs.  The result loads cleanly and passes
        ``gks check-index``; only the deep audit (exit 2,
        ``postings-sorted``) can tell it from a healthy index.
        """
        from repro.index.codec import (decode_file, encode_decoded,
                                       is_binary_index)
        path = Path(path)
        if not is_binary_index(path):
            raise ValidationError(f"{path} is not a binary (v4) index file")
        decoded = decode_file(path)
        shards = [shard for shard in decoded.shards if shard.postings]
        if not shards:
            raise ValidationError(
                f"{path} has no non-empty postings to corrupt")
        shard = self._rng.choice(shards)
        postings = shard.postings
        plural = [keyword for keyword, entries in sorted(postings.items())
                  if len(entries) >= 2]
        if plural:
            keyword = self._rng.choice(plural)
            entries = postings[keyword]
            if self._rng.random() < 0.5:
                entries[0], entries[-1] = entries[-1], entries[0]
                if entries == sorted(entries):   # palindromic swap: force
                    entries.insert(0, entries[-1])
            else:
                entries.append(entries[self._rng.randrange(len(entries))])
        else:
            keyword = self._rng.choice(sorted(postings))
            postings[keyword].append(postings[keyword][0])
        return encode_decoded(decoded, path)

    def drop_manifest_document(self, path: str | Path) -> Path:
        """Unassign one document from the v3 shard manifest (CRCs resealed).

        Removes a document id from its owning shard's ``doc_ids`` entry,
        so the manifest no longer partitions the document set — the
        classic silent data-loss shape scatter-gather cannot detect at
        query time.  The deep audit reports ``shard-partition``.
        """
        from repro.index.storage import read_envelope
        path = Path(path)
        envelope = read_envelope(path)
        if envelope.get("version") != 3:
            raise ValidationError(
                f"{path} is not a sharded (v3) index file")
        entries = [entry for entry in
                   envelope["manifest"].get("shards", ())
                   if entry.get("doc_ids")]
        if not entries:
            raise ValidationError(f"{path} assigns no documents to drop")
        entry = self._rng.choice(entries)
        doc_ids = list(entry["doc_ids"])
        doc_ids.pop(self._rng.randrange(len(doc_ids)))
        entry["doc_ids"] = doc_ids
        return self._reseal(envelope, path)

    def skew_child_count(self, path: str | Path) -> Path:
        """Desynchronise a dual-role node's two hash-table counts.

        Finds a node present in both ``entity_hash`` and
        ``element_hash`` and bumps one side, violating
        ``hash-cross-consistency``.  When no dual-role node exists it
        negates a count in whichever table is populated — also a
        ``hash-cross-consistency`` violation.
        """
        from repro.index.storage import read_envelope
        path = Path(path)
        envelope = read_envelope(path)
        try:
            payload = self._pick_payload(envelope, "entity_hash")
        except ValidationError:
            payload = self._pick_payload(envelope, "element_hash")
        entity = payload.get("entity_hash", {})
        element = payload.get("element_hash", {})
        dual = sorted(set(entity) & set(element))
        if dual:
            key = self._rng.choice(dual)
            entity[key] = entity[key] + 1 + self._rng.randrange(3)
        else:
            table = entity if entity else element
            key = self._rng.choice(sorted(table))
            table[key] = -abs(table[key]) - 1
        return self._reseal(envelope, path)


class StoreCorruptor:
    """Fault injection aimed at a segmented store directory.

    Mirrors :class:`IndexCorruptor` for the durable write path: every
    method damages a ``store_path`` directory in a way that is invisible
    to a naive reader but caught by
    :func:`repro.analysis.verify_segmented_store` (``gks check-index
    --deep`` on the directory, exit 2) — except where noted, where the
    structural check itself (exit 1) must refuse the store.

    Deferred imports keep :mod:`repro.testing` importable without the
    index layer loaded.
    """

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)

    @staticmethod
    def _read_manifest_envelope(directory: Path) -> dict:
        import gzip
        import json

        with gzip.open(directory / "MANIFEST", "rb") as handle:
            return json.loads(handle.read().decode("utf-8"))

    @staticmethod
    def _write_manifest_envelope(directory: Path, envelope: dict) -> Path:
        from repro.index.storage import atomic_write_json_gz, payload_crc32

        envelope["crc32"] = payload_crc32(envelope["manifest"])
        return atomic_write_json_gz(envelope, directory / "MANIFEST")

    def _segment_files(self, directory: Path) -> list[Path]:
        from repro.index.segments import SEGMENT_PATTERN

        return sorted(path for path in directory.iterdir()
                      if SEGMENT_PATTERN.match(path.name))

    # -- public API -----------------------------------------------------
    def orphan_segment(self, directory: str | Path) -> Path:
        """Plant an unreferenced segment file (``segment-orphan``).

        Copies an existing segment under a generation the manifest never
        issued — the residue of a crash the store failed to clean, or a
        manifest that lost a reference.
        """
        directory = Path(directory)
        segments = self._segment_files(directory)
        if not segments:
            raise ValidationError(f"{directory} holds no segment to copy")
        source = self._rng.choice(segments)
        orphan = directory / "seg-g999999-s0.gksindex"
        orphan.write_bytes(source.read_bytes())
        return orphan

    def regress_generation(self, directory: str | Path) -> Path:
        """Rewind the manifest generation to 0 (``manifest-generation``).

        The manifest CRC is resealed, so only the generation invariant
        — not a checksum — can notice the regression.
        """
        directory = Path(directory)
        envelope = self._read_manifest_envelope(directory)
        envelope["manifest"]["generation"] = 0
        return self._write_manifest_envelope(directory, envelope)

    def corrupt_wal_magic(self, directory: str | Path) -> Path:
        """Flip the WAL magic (``wal-consistency`` / structural refusal).

        Unlike a torn tail this cannot result from a crash: replay
        raises ``corrupted`` and the audit reports the log as
        non-replayable.
        """
        directory = Path(directory)
        path = directory / "wal.log"
        data = bytearray(path.read_bytes())
        if not data:
            raise ValidationError(f"{path} is empty")
        data[0] ^= 0xFF
        path.write_bytes(bytes(data))
        return path

    def corrupt_segment_postings(self, directory: str | Path) -> Path:
        """Break a segment's posting order with every CRC resealed.

        Reuses :meth:`IndexCorruptor.corrupt_postings` on one segment,
        then rewrites the manifest's file CRC for that segment — the
        structural check passes end to end and only the deep payload
        audit (``postings-sorted``) can tell the store is wrong.
        """
        from repro.index.segments import file_crc32

        directory = Path(directory)
        segments = self._segment_files(directory)
        if not segments:
            raise ValidationError(f"{directory} holds no segment")
        victim = self._rng.choice(segments)
        IndexCorruptor(seed=self._rng.randrange(2 ** 31)) \
            .corrupt_postings(victim)
        envelope = self._read_manifest_envelope(directory)
        for record in envelope["manifest"].get("segments", ()):
            if record.get("file") == victim.name:
                record["crc32"] = file_crc32(victim)
        self._write_manifest_envelope(directory, envelope)
        return victim


class TornWriter:
    """Simulates a crash mid-write: the file keeps only a prefix.

    This is what a non-atomic ``save_index`` would leave behind after a
    power loss — the storage layer's atomic temp-file + rename protocol
    plus the embedded checksum must turn such remnants into a clean
    :class:`~repro.errors.StorageError` rather than a half-loaded index.
    """

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)

    def tear(self, path: str | Path, fraction: float | None = None) -> Path:
        """Truncate *path* in place at a deterministic cut point.

        ``fraction`` pins the cut (0 < fraction < 1); omitted, a random
        cut inside the middle half of the file is chosen.
        """
        path = Path(path)
        data = path.read_bytes()
        if fraction is None:
            cut = self._rng.randrange(max(1, len(data) // 4),
                                      max(2, 3 * len(data) // 4))
        else:
            if not 0.0 < fraction < 1.0:
                raise ValidationError(f"fraction must be in (0, 1): {fraction}")
            cut = max(1, int(len(data) * fraction))
        path.write_bytes(data[:cut])
        return path

    def torn_copy(self, source: str | Path, destination: str | Path,
                  fraction: float | None = None) -> Path:
        """Write a torn copy of *source* at *destination*."""
        source, destination = Path(source), Path(destination)
        destination.write_bytes(source.read_bytes())
        return self.tear(destination, fraction=fraction)
