"""Concurrent query serving over a :class:`~repro.core.engine.GKSEngine`.

The serving subsystem in three parts, each importable from here:

* :class:`ServerCore` (:mod:`repro.serve.core`) — the transport-agnostic
  request broker: worker pool, bounded admission with typed load
  shedding, per-request deadlines, singleflight coalescing, TTL result
  cache, graceful drain.
* :func:`serve_http` (:mod:`repro.serve.http`) — the stdlib JSON/HTTP
  front end (``/search``, ``/documents``, ``/admin/flush``,
  ``/admin/compact``, ``/healthz``, ``/metrics``) wired up as
  ``gks serve``.
* :class:`LoadGenerator` (:mod:`repro.serve.loadgen`) — open/closed-loop
  load generation with deterministic arrival schedules and bounded
  :class:`RetryPolicy` backoff for 429 sheds, driving
  ``benchmarks/bench_serving.py``.

The broker also fronts the engine's durable mutation path:
:meth:`ServerCore.add_document` WAL-appends through the engine,
:meth:`ServerCore.swap_engine` atomically publishes a new engine
snapshot (in-flight searches finish on the old one), and every observed
mutation invalidates the TTL cache under a generation fence.

Quickstart::

    from repro import GKSEngine
    from repro.serve import ServeConfig, ServerCore

    engine = GKSEngine.from_texts(corpus)
    with ServerCore(engine, ServeConfig(workers=4)) as core:
        response = core.search("keyword query", deadline_s=0.2)
"""

from repro.serve.config import ServeConfig
from repro.serve.core import ServerCore
from repro.serve.http import ServeHTTPServer, serve_http
from repro.serve.loadgen import (LoadGenerator, LoadReport, LoadRequest,
                                 OpenLoopSchedule, RequestOutcome,
                                 RetryPolicy, percentile)

__all__ = [
    "LoadGenerator", "LoadReport", "LoadRequest", "OpenLoopSchedule",
    "RequestOutcome", "RetryPolicy", "ServeConfig", "ServeHTTPServer",
    "ServerCore", "percentile", "serve_http",
]
