"""Unit tests for the XML serializer (incl. parse round-trips)."""

from repro.xmltree.node import build_tree
from repro.xmltree.parser import parse_document
from repro.xmltree.serialize import (escape_attribute, escape_text,
                                     serialize_document, serialize_node)
from repro.xmltree.tree import XMLDocument


class TestEscaping:
    def test_text_escapes(self):
        assert escape_text("a < b & c > d") == "a &lt; b &amp; c &gt; d"

    def test_attribute_escapes_quotes_too(self):
        assert escape_attribute('say "hi"') == "say &quot;hi&quot;"


class TestSerialization:
    def test_compact_output(self):
        root = build_tree(("r", [("a", "x"), ("b",)]))
        assert serialize_node(root) == "<r><a>x</a><b/></r>"

    def test_pretty_output_indents(self):
        root = build_tree(("r", [("a", "x")]))
        text = serialize_node(root, indent=2)
        assert "\n  <a>x</a>\n" in text

    def test_document_declaration(self):
        doc = XMLDocument(build_tree(("r",)))
        assert serialize_document(doc).startswith(
            '<?xml version="1.0" encoding="UTF-8"?>')
        assert serialize_document(doc, declaration=False) == "<r/>"

    def test_keep_predicate_prunes(self):
        root = build_tree(("r", [("keep", "x"), ("drop", "y")]))
        text = serialize_node(root, keep=lambda n: n.tag != "drop")
        assert "drop" not in text and "keep" in text

    def test_special_characters_round_trip(self):
        root = build_tree(("r", [("a", 'x < y & "z"')]))
        reparsed = parse_document(serialize_node(root))
        assert reparsed.root.children[0].text == 'x < y & "z"'

    def test_structure_round_trip(self):
        root = build_tree(("r", [
            ("a", "one", [("b", "two")]),
            ("c", [("d",), ("d", "x")]),
        ]))
        reparsed = parse_document(serialize_node(root))
        original = [(n.dewey, n.tag, n.text)
                    for n in root.iter_subtree()]
        rebuilt = [(n.dewey, n.tag, n.text)
                   for n in reparsed.root.iter_subtree()]
        assert original == rebuilt

    def test_pretty_round_trip_preserves_text(self):
        root = build_tree(("r", [("a", "hello world", [("b", "bye")])]))
        reparsed = parse_document(serialize_node(root, indent=2))
        assert reparsed.root.children[0].text == "hello world"
        assert reparsed.root.children[0].children[0].text == "bye"
