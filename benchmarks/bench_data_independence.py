"""§7.1.2 — response time is data-size independent at fixed |SL|.

"For a query run on the DBLP dataset, the RT was found to be 2 ms for
|SL| = 213.  Hence, RT depends on the query, i.e., depth d, n and SL
(O(d·|SL|·log n)), and not on the size of the data being queried."

The planted author pairs occur a *fixed* number of times regardless of
the bulk `scale`, so the same query has (almost) the same |SL| on a 1×
and a 4× corpus — response times must stay in the same band while the
corpus grows fourfold.
"""

from __future__ import annotations

import pytest

from repro.core.engine import GKSEngine
from repro.datasets.registry import load_dataset
from repro.eval.reporting import render_table
from repro.eval.runner import timed_search

QUERY = '"Dimitrios Georgakopoulos" "Marek Rusinkiewicz"'


@pytest.mark.parametrize("scale", [1, 4])
def test_fixed_query_speed_at_scale(scale, benchmark):
    engine = GKSEngine(load_dataset("dblp", scale=scale))
    query = engine.parse_query(QUERY, s=2)
    from repro.core.search import search

    response = benchmark(lambda: search(engine.index, query))
    assert len(response) == 10  # planted count is scale-independent


def test_data_independence_report(results_writer, benchmark):
    def measure():
        rows = []
        for scale in (1, 2, 4):
            engine = GKSEngine(load_dataset("dblp", scale=scale))
            query = engine.parse_query(QUERY, s=2)
            seconds, sl_size = timed_search(engine, query, repeats=5)
            rows.append((scale, engine.index.stats.total_nodes, sl_size,
                         seconds * 1000.0))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    results_writer("sec712_data_independence", render_table(
        ["corpus scale", "total nodes", "|SL|", "RT (ms)"],
        [(scale, nodes, sl, f"{ms:.3f}") for scale, nodes, sl, ms
         in rows],
        title="§7.1.2 — fixed-|SL| query vs corpus size"))

    # |SL| is scale-independent (planted authors don't multiply) …
    assert len({sl for _, _, sl, _ in rows}) == 1
    # … and RT stays within a generous noise band while nodes grow 4×
    times = [ms for _, _, _, ms in rows]
    assert max(times) < max(10 * min(times), 5.0)