"""Tests for target-type deduction and the FSLCA (MESSIAH-style)
baseline."""

import pytest

from repro.baselines.fslca import fslca
from repro.baselines.target_type import (deduce_target_type,
                                         entity_type_instances,
                                         score_types)
from repro.core.engine import GKSEngine
from repro.core.query import Query
from repro.datasets.registry import load_dataset


@pytest.fixture(scope="module")
def dblp():
    engine = GKSEngine(load_dataset("dblp"))
    return engine.repository, engine.index


@pytest.fixture(scope="module")
def mondial():
    engine = GKSEngine(load_dataset("mondial"))
    return engine.repository, engine.index


class TestEntityInstances:
    def test_instances_grouped_by_type(self, dblp):
        repository, _ = dblp
        instances = entity_type_instances(repository)
        assert ("dblp", "article") in instances
        assert ("dblp", "inproceedings") in instances
        for deweys in instances.values():
            assert deweys == sorted(deweys)

    def test_instance_counts_match_tree(self, dblp):
        repository, _ = dblp
        instances = entity_type_instances(repository)
        total = sum(len(deweys) for deweys in instances.values())
        # schema-level entity instances ≥ instance-level entities
        # (missing-element smoothing)
        assert total >= 300


class TestTargetType:
    def test_author_query_targets_bibliographic_type(self, dblp):
        repository, index = dblp
        query = Query.parse('"Peter Buneman" "Wenfei Fan"')
        target = deduce_target_type(repository, index, query)
        assert target is not None
        assert target.tag in ("article", "inproceedings")

    def test_country_query_targets_country(self, mondial):
        repository, index = mondial
        query = Query.parse("Muslim Buddhism population")
        target = deduce_target_type(repository, index, query)
        assert target is not None
        assert target.tag == "country"

    def test_unmatchable_query_returns_none(self, dblp):
        repository, index = dblp
        query = Query.of(["zzzzz", "qqqqq"])
        assert deduce_target_type(repository, index, query) is None

    def test_scores_sorted_descending(self, dblp):
        repository, index = dblp
        query = Query.parse('"E. F. Codd"')
        scores = score_types(index, query,
                             entity_type_instances(repository))
        values = [score.score for score in scores]
        assert values == sorted(values, reverse=True)


class TestFSLCA:
    def test_perfect_query_matches_target_instances(self, dblp):
        repository, index = dblp
        query = Query.parse(
            '"Dimitrios Georgakopoulos" "Marek Rusinkiewicz"')
        result = fslca(repository, index, query)
        assert result.target is not None
        assert len(result) == 10              # the planted joint articles
        assert result.forgiven_keywords == ()

    def test_missing_element_is_forgiven(self, mondial):
        repository, index = mondial
        # 'skyscraper' never occurs under <country>: a missing element
        query = Query.of(["muslim", "skyscraper"])
        result = fslca(repository, index, query)
        assert result.target is not None
        assert "skyscraper" in result.forgiven_keywords
        assert len(result) > 0                # Muslim countries returned

    def test_hopeless_query_returns_empty(self, dblp):
        repository, index = dblp
        result = fslca(repository, index, Query.of(["zzzzz"]))
        assert result.target is None
        assert len(result) == 0

    def test_nodes_are_target_type_instances(self, dblp):
        repository, index = dblp
        query = Query.parse('"Prithviraj Banerjee"')
        result = fslca(repository, index, query)
        assert result.target is not None
        for dewey in result:
            node = repository.node_at(dewey)
            assert node.tag == result.target.tag

    def test_gks_top_node_in_fslca_set(self, mondial):
        """§7.3: 'the top XML node for both QI1 and QI2 for GKS was
        present in FSLCA result set' — same shape on QM1."""
        repository, index = mondial
        engine = GKSEngine(repository, index=index)
        response = engine.search("country Muslim", s=2)
        result = fslca(repository, index,
                       engine.parse_query("country Muslim"))
        assert response[0].dewey in set(result.nodes)


class TestRankingModels:
    def test_xrank_and_xsearch_are_ranker_compatible(self, dblp):
        from repro.baselines.ranking_models import (xrank_ranker,
                                                    xsearch_ranker)
        from repro.core.search import search

        repository, index = dblp
        query = Query.parse('"Peter Buneman"')
        for ranker in (xrank_ranker, xsearch_ranker):
            response = search(index, query, ranker=ranker)
            assert len(response) > 0
            assert all(node.score > 0 for node in response)

    def test_xrank_decay_prefers_shallow_matches(self, figure1_index,
                                                 fig1_ids):
        from repro.baselines.ranking_models import xrank_ranker

        query = Query.of(["a", "b", "d"], s=2)
        x3 = xrank_ranker(figure1_index, query, fig1_ids["x3"])
        # a, b at distance 1 (decay^1), d at distance 2 (decay^2)
        assert x3.score == pytest.approx(0.85 + 0.85 + 0.85 ** 2)

    def test_custom_decay_factory(self, figure1_index, fig1_ids):
        from repro.baselines.ranking_models import make_xrank_ranker

        query = Query.of(["a"], s=1)
        strict = make_xrank_ranker(0.5)(figure1_index, query,
                                        fig1_ids["x3"])
        assert strict.score == pytest.approx(0.5)

    def test_xsearch_idf_favours_rare_keywords(self, dblp):
        from repro.baselines.ranking_models import xsearch_ranker

        repository, index = dblp
        # one node containing a rare vs a frequent keyword
        rare_query = Query.parse('"Marek Rusinkiewicz"')
        articles = index.postings("marek rusinkiewicz")
        node = articles[0][:2]  # the article element
        rare = xsearch_ranker(index, rare_query, node)
        common = xsearch_ranker(index, Query.of(["articl"]), node)
        # 'articl'... may not be present; fall back to a frequent tag
        frequent_kw = Query.of(["author"])
        common = xsearch_ranker(index, frequent_kw, node)
        assert rare.score > common.score
