"""Synthetic Mondial corpus (paper §7 workloads QM1–QM4).

The real Mondial 3.0 is geographic: countries with name/population
attributes, repeating religion/language/ethnicgroup percentages, provinces
and cities.  Most data lives in XML attributes in the original; with the
library's attributes-as-children convention the same information appears
as attribute nodes, which is what the QM queries search (``country`` and
``name`` are *element names* in QM2, so tag indexing matters here).

Planted structure:

* every country element is named ``country`` (QM1/QM2 search the tag);
* religions include *Muslim*, *Catholic*, … with percentage values —
  QM1 = {country, Muslim} must hit many countries (the paper reports 230
  GKS nodes vs 98 SLCA);
* *Laos* and *Zimbabwe* exist with full name/population_growth data (the
  QM2 DI reported in Table 8 exposes ``<Name: Zimbabwe>``);
* languages include Polish/Spanish/German and a city *Bruges* near
  *Luxembourg* for QM3.
"""

from __future__ import annotations

from repro.datasets import names
from repro.datasets.synthesis import Synth
from repro.xmltree.node import XMLNode


def generate_mondial(scale: int = 1, seed: int = 0) -> XMLNode:
    """Build the synthetic Mondial tree (~30·scale countries)."""
    synth = Synth(seed ^ 0x30D1A1)
    root = XMLNode("mondial", (0,))

    country_names = list(names.COUNTRIES)
    for _ in range(max(0, 30 * scale - len(country_names))):
        country_names.append(synth.code("Terra", 3))

    for position, name in enumerate(country_names):
        _add_country(root, synth, name, position)

    organizations = root.add_child("organizations")
    for org in ("UN", "EU", "ASEAN", "OAS"):
        node = organizations.add_child("organization")
        node.add_child("name", text=org)
        node.add_child("abbrev", text=org)
        members = node.add_child("members")
        for member in synth.sample(country_names, 5):
            members.add_child("member", text=member)
    return root


def _add_country(root: XMLNode, synth: Synth, name: str,
                 position: int) -> None:
    country = root.add_child("country")
    country.add_child("id", text=f"f0_{300 + position * 7}")
    country.add_child("name", text=name)
    country.add_child("population", text=str(synth.int_between(10 ** 5,
                                                               10 ** 8)))
    country.add_child("population_growth",
                      text=f"{synth.int_between(0, 400) / 100:.2f}")
    country.add_child("infant_mortality",
                      text=f"{synth.int_between(2, 90)}.{position % 10}")
    country.add_child("gdp_total", text=str(synth.int_between(10 ** 3,
                                                              10 ** 6)))
    country.add_child("indep_date",
                      text=f"19{synth.int_between(10, 90)}-0"
                           f"{synth.int_between(1, 9)}-01")

    _add_percentages(country, synth, "religions", names.RELIGIONS,
                     low=2, high=4, planted=_planted_religions(name))
    _add_percentages(country, synth, "languages", names.LANGUAGES,
                     low=1, high=3, planted=_planted_languages(name))
    _add_percentages(country, synth, "ethnicgroups",
                     ["Bantu", "Han", "Slavic", "Nordic", "Malay", "Quechua"],
                     low=1, high=2, planted=[])

    provinces = synth.int_between(2, 4)
    for province_no in range(provinces):
        province = country.add_child("province")
        province.add_child("name",
                           text=f"{name} Province {province_no + 1}")
        province.add_child("area", text=str(synth.int_between(100, 90000)))
        cities = synth.int_between(1, 3)
        for _ in range(cities):
            city = province.add_child("city")
            city.add_child("name", text=_city_name(synth, name))
            city.add_child("population",
                           text=str(synth.int_between(10 ** 4, 10 ** 7)))


def _planted_religions(country: str) -> list[str]:
    if country in ("Laos", "Thailand", "China"):
        return ["Buddhism"]
    if country in ("Zimbabwe", "Jordan", "Tunisia", "Oman", "Qatar",
                   "Senegal", "Albania", "Brunei"):
        return ["Muslim"]
    if country in ("Luxembourg", "Belgium", "Spain", "Poland"):
        return ["Catholic"]
    return []


def _planted_languages(country: str) -> list[str]:
    mapping = {"Poland": ["Polish"], "Spain": ["Spanish"],
               "Germany": ["German"], "Luxembourg": ["German", "French"],
               "Belgium": ["Dutch", "French"], "Laos": ["Lao"],
               "Thailand": ["Thai"], "China": ["Chinese"]}
    return mapping.get(country, [])


def _city_name(synth: Synth, country: str) -> str:
    if country == "Belgium":
        return "Bruges"  # QM3's planted city
    return synth.pick(names.CITIES)


def _add_percentages(country: XMLNode, synth: Synth, holder_tag: str,
                     pool: list[str], low: int, high: int,
                     planted: list[str]) -> None:
    """Repeating percentage entries (religion/language/ethnicgroup)."""
    holder = country.add_child(holder_tag)
    chosen = list(planted)
    for candidate in synth.sample(pool, synth.int_between(low, high)):
        if candidate not in chosen:
            chosen.append(candidate)
    total = 100
    for position, value in enumerate(chosen):
        entry = holder.add_child(holder_tag.rstrip("s"))
        share = total if position == len(chosen) - 1 \
            else synth.int_between(5, max(6, total // 2))
        total = max(0, total - share)
        entry.add_child("name", text=value)
        entry.add_child("percentage", text=str(share))
