"""Synthetic NASA astronomy corpus (paper §7.1.2 response-time workload).

The real nasa.xml (ADC repository, ~24 MB) stores astronomical dataset
descriptions: title, alternate names, authors inside ``<reference>``
blocks, journal/date metadata and table/field definitions.  The paper
reports an average keyword depth of 6.7–6.9 here — noticeably deeper than
SwissProt's 3.1–3.5 — so this generator nests authors and dates inside
``reference/source/other`` chains to land keywords deep in the tree.
"""

from __future__ import annotations

from repro.datasets import names
from repro.datasets.synthesis import Synth
from repro.xmltree.node import XMLNode

_OBJECTS = ["quasar", "pulsar", "nebula", "cluster", "galaxy", "supernova",
            "binary", "cepheid", "asteroid", "comet"]
_SURVEYS = ["photometric", "spectroscopic", "astrometric", "radial",
            "infrared", "ultraviolet", "radio", "xray"]


def generate_nasa(scale: int = 1, seed: int = 0) -> XMLNode:
    """Build the synthetic NASA tree (~150·scale datasets)."""
    synth = Synth(seed ^ 0x9A5A)
    root = XMLNode("datasets", (0,))
    pool = names.synthetic_authors()
    for _ in range(150 * scale):
        _add_dataset(root, synth, pool)
    return root


def _add_dataset(root: XMLNode, synth: Synth, pool: list[str]) -> None:
    dataset = root.add_child("dataset")
    dataset.add_child("subject", text=synth.pick(_OBJECTS))
    dataset.add_child(
        "title",
        text=f"{synth.pick(_SURVEYS)} catalog of "
             f"{synth.pick(_OBJECTS)} sources")
    dataset.add_child("altname", text=synth.code("ADC", 4))

    reference = dataset.add_child("reference")
    source = reference.add_child("source")
    other = source.add_child("other")
    other.add_child("title", text=synth.title())
    author_holder = other.add_child("author")
    for _ in range(synth.int_between(1, 3)):
        author = pool[synth.skewed_index(len(pool))]
        person = author_holder.add_child("initial")
        first, last = author.split(" ", 1)
        person.add_child("first", text=first)
        person.add_child("lastName", text=last)
    other.add_child("name", text=synth.pick(names.JOURNALS))
    date = other.add_child("date")
    date.add_child("year", text=synth.year(1950, 2000))

    tableHead = dataset.add_child("tableHead")
    for _ in range(synth.int_between(2, 5)):
        field = tableHead.add_child("field")
        field.add_child("name", text=synth.pick(
            ["ra", "dec", "magnitude", "flux", "parallax", "epoch"]))
        field.add_child("units", text=synth.pick(
            ["deg", "mag", "jansky", "mas", "year"]))

    history = dataset.add_child("history")
    ingest = history.add_child("ingest")
    ingest.add_child("creator", text=pool[synth.skewed_index(len(pool))])
    ingest_date = ingest.add_child("date")
    ingest_date.add_child("year", text=synth.year(1990, 2005))
