"""LCA algorithm race: three SLCA implementations plus two ELCAs
(paper refs [7], [13] and [17]).

The related work's progression of SLCA/ELCA algorithms is reproduced as
interchangeable implementations; this bench races them on identical
queries so their trade-offs (binary search vs linear merge vs hash
probes vs stack sweep) are visible, and asserts each family agrees.
"""

from __future__ import annotations

import pytest

from repro.baselines.elca import elca
from repro.baselines.elca_stack import elca_stack
from repro.baselines.slca import slca_indexed_lookup_eager, slca_scan
from repro.baselines.slca_intersect import slca_set_intersection
from repro.core.query import Query
from repro.eval.reporting import render_table
from repro.eval.runner import engine_for, frequency_ladder

ALGORITHMS = {
    "indexed_lookup_eager": slca_indexed_lookup_eager,
    "merge_scan": slca_scan,
    "set_intersection": slca_set_intersection,
}

ELCA_ALGORITHMS = {
    "closure": elca,
    "dewey_stack": elca_stack,
}


def _query(n: int = 3) -> tuple:
    engine = engine_for("swissprot", scale=2)
    keywords = frequency_ladder(engine.index, count=n)
    return engine, Query.of(keywords, s=n)


@pytest.mark.parametrize("name", sorted(ALGORITHMS))
def test_slca_algorithm_speed(name, benchmark):
    engine, query = _query()
    algorithm = ALGORITHMS[name]
    result = benchmark(lambda: algorithm(engine.index, query))
    assert isinstance(result, list)


def test_algorithms_agree_and_report(results_writer, benchmark):
    def measure():
        import time

        engine, query = _query()
        rows = []
        reference = None
        for name, algorithm in sorted(ALGORITHMS.items()):
            started = time.perf_counter()
            for _ in range(5):
                result = algorithm(engine.index, query)
            elapsed = (time.perf_counter() - started) / 5
            if reference is None:
                reference = result
            assert result == reference, f"{name} disagrees"
            rows.append((name, len(result), f"{elapsed * 1000:.2f}"))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    results_writer("slca_algorithms", render_table(
        ["algorithm", "|SLCA|", "ms (mean of 5)"], rows,
        title="SLCA algorithm race (swissprot, 3 frequent keywords)"))
    counts = {row[1] for row in rows}
    assert len(counts) == 1  # all three agree


@pytest.mark.parametrize("name", sorted(ELCA_ALGORITHMS))
def test_elca_algorithm_speed(name, benchmark):
    engine, query = _query()
    algorithm = ELCA_ALGORITHMS[name]
    result = benchmark(lambda: algorithm(engine.index, query))
    assert isinstance(result, list)


def test_elca_algorithms_agree(benchmark):
    engine, query = _query()

    def both():
        return {name: algorithm(engine.index, query)
                for name, algorithm in ELCA_ALGORITHMS.items()}

    results = benchmark.pedantic(both, rounds=1, iterations=1)
    assert results["closure"] == results["dewey_stack"]
