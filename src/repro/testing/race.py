"""Schedule-perturbing race harness: shake out atomicity violations.

The :class:`RaceHarness` drives a set of operations from several
threads while shrinking the interpreter's thread switch interval, so
context switches land *between* the bytecodes of check-then-act windows
instead of politely at call boundaries.  Determinism is the same
seeded-randomness discipline as :mod:`repro.testing.faults`: each
thread's operation sequence comes from its own ``random.Random(seed +
thread)``, so a failing schedule replays from the same seed (the OS
still chooses the interleaving, which is the point — the harness makes
bad interleavings *likely*, invariant checks make them *visible*).

Companion injectors, in the :class:`SlowEngine` delegating style:

* :class:`PreemptingEngine` — wraps an engine, yielding the GIL before
  and after every delegated call (``sys.setswitchinterval`` alone cannot
  force a switch inside C-implemented dict ops; an explicit ``sleep(0)``
  at the call boundary can).
* :class:`RacyCache` — a deliberately unsynchronized bounded cache with
  a seeded check-then-act window (the ``gap`` hook runs between the
  membership check and the insert).  The harness must catch it; the
  fixture is the positive control proving the harness can see races.
* :class:`LockOrderInversion` — two locks taken in opposite orders by
  two methods; driving each method once from its own thread records the
  ``a -> b`` and ``b -> a`` edges the
  :class:`~repro.obs.locks.LockMonitor` cycle detector must report.
"""

from __future__ import annotations

import random
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.errors import ValidationError
from repro.obs.locks import LockMonitor, new_lock


@dataclass
class RaceReport:
    """What one :meth:`RaceHarness.run` observed."""

    rounds: int = 0
    operations: int = 0
    exceptions: list = field(default_factory=list)   # (op index, repr)
    violations: list = field(default_factory=list)   # invariant messages

    @property
    def ok(self) -> bool:
        return not self.exceptions and not self.violations

    def render(self) -> str:
        if self.ok:
            return (f"race harness: {self.operations} operations over "
                    f"{self.rounds} rounds, no findings")
        lines = [f"race harness: {len(self.exceptions)} exception(s), "
                 f"{len(self.violations)} invariant violation(s) in "
                 f"{self.operations} operations / {self.rounds} rounds"]
        lines.extend(f"  exception in op[{index}]: {text}"
                     for index, text in self.exceptions)
        lines.extend(f"  violation: {text}" for text in self.violations)
        return "\n".join(lines)


class RaceHarness:
    """Run *operations* concurrently under an aggressive scheduler.

    Parameters
    ----------
    threads:
        Concurrent drivers per round.
    rounds:
        Independent rounds; each round resets (via the ``reset`` hook),
        runs every thread to completion, then checks invariants.
    iterations:
        Operations each thread performs per round (chosen by its seeded
        PRNG from the operation list).
    switch_interval:
        ``sys.setswitchinterval`` value in force while driving (restored
        afterwards).  The default 1e-5 makes the interpreter consider a
        thread switch roughly every hundred bytecodes.
    seed:
        Base seed; thread *t* in round *r* uses ``seed + 1000*r + t``.
    """

    def __init__(self, threads: int = 4, rounds: int = 5,
                 iterations: int = 50, switch_interval: float = 1e-5,
                 seed: int = 0) -> None:
        if threads < 2:
            raise ValidationError(
                f"a race needs >= 2 threads: {threads}")
        if rounds < 1 or iterations < 1:
            raise ValidationError(
                f"rounds and iterations must be >= 1: "
                f"{rounds}, {iterations}")
        self.threads = threads
        self.rounds = rounds
        self.iterations = iterations
        self.switch_interval = switch_interval
        self.seed = seed

    def run(self, operations: Sequence[Callable[[random.Random], object]],
            check: Callable[[], Sequence[str] | str | None] | None = None,
            reset: Callable[[], None] | None = None) -> RaceReport:
        """Drive *operations*; collect exceptions and invariant breaks.

        Each operation is called with the driving thread's PRNG (for
        seeded argument choice).  *check* runs after every round's
        threads have joined and returns violation message(s) or a
        false-y value; *reset* runs before each round.
        """
        if not operations:
            raise ValidationError("operations must be non-empty")
        report = RaceReport()
        previous = sys.getswitchinterval()
        sys.setswitchinterval(self.switch_interval)
        try:
            for round_no in range(self.rounds):
                if reset is not None:
                    reset()
                self._run_round(operations, round_no, report)
                if check is not None:
                    found = check()
                    if found:
                        if isinstance(found, str):
                            found = [found]
                        report.violations.extend(found)
                report.rounds += 1
        finally:
            sys.setswitchinterval(previous)
        return report

    def _run_round(self, operations, round_no: int,
                   report: RaceReport) -> None:
        barrier = threading.Barrier(self.threads)
        failures: list = []
        failures_lock = threading.Lock()
        counter = [0]

        def drive(thread_no: int) -> None:
            rng = random.Random(self.seed + 1000 * round_no + thread_no)
            barrier.wait()  # aligned start maximizes overlap
            for _ in range(self.iterations):
                index = rng.randrange(len(operations))
                try:
                    operations[index](rng)
                except Exception as exc:  # collected, not fatal
                    with failures_lock:
                        failures.append((index, repr(exc)))
                with failures_lock:
                    counter[0] += 1

        threads = [threading.Thread(target=drive, args=(n,), daemon=True,
                                    name=f"race-{round_no}-{n}")
                   for n in range(self.threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        report.exceptions.extend(failures)
        report.operations += counter[0]


def preemption_gap(seconds: float = 0.0005) -> None:
    """Yield the GIL long enough for another runnable thread to enter.

    ``time.sleep`` releases the GIL even for tiny durations — this is
    the seeded "scheduler pause" injected into check-then-act windows.
    """
    time.sleep(seconds)


class PreemptingEngine:
    """Delegating engine wrapper that yields the GIL around every call.

    Same shape as :class:`repro.testing.faults.SlowEngine` but the delay
    is a scheduling yield, not simulated latency: it widens the windows
    between an engine call and the caller's next shared-state touch, so
    races in the *calling* layer (broker accounting, cache population)
    surface under the harness.
    """

    def __init__(self, engine, gap_s: float = 0.0002) -> None:
        self._engine = engine
        self._gap_s = gap_s
        self.calls = 0

    def __getattr__(self, name: str):
        value = getattr(self._engine, name)
        if not callable(value):
            return value

        def preempting(*args, **kwargs):
            self.calls += 1
            preemption_gap(self._gap_s)
            try:
                return value(*args, **kwargs)
            finally:
                preemption_gap(self._gap_s)

        return preempting


class RacyCache:
    """A bounded cache with a seeded check-then-act race (fixture).

    ``get_or_compute`` checks membership, *then* computes and inserts —
    with no lock and a deliberate preemption gap between the check and
    the act.  Two threads asking for the same absent key both compute:
    ``computes`` exceeding ``len(seen_keys)`` is the lost-update
    signature the race harness must flag.  The eviction path has the
    same window, so ``len(cache) > capacity`` is a second observable.
    """

    def __init__(self, capacity: int = 8, gap_s: float = 0.0005) -> None:
        self.capacity = capacity
        self.data: dict = {}
        self.computes = 0
        self.seen_keys: set = set()
        self._gap_s = gap_s

    def get_or_compute(self, key) -> object:
        value = self.data.get(key)
        if value is not None:
            return value
        preemption_gap(self._gap_s)      # the check-then-act window
        self.computes += 1
        self.seen_keys.add(key)
        if len(self.data) >= self.capacity:
            oldest = next(iter(self.data), None)
            preemption_gap(self._gap_s)  # widen the eviction race too
            if oldest is not None:
                self.data.pop(oldest, None)
        value = ("value", key)
        self.data[key] = value
        return value

    def violations(self) -> list[str]:
        found = []
        if self.computes > len(self.seen_keys):
            found.append(
                f"check-then-act: {self.computes} computes for "
                f"{len(self.seen_keys)} distinct keys (duplicate work "
                f"means two threads raced through the membership check)")
        if len(self.data) > self.capacity:
            found.append(
                f"capacity breach: {len(self.data)} entries > capacity "
                f"{self.capacity}")
        return found


class LockOrderInversion:
    """Two locks, two methods, opposite acquisition orders (fixture).

    ``forward`` takes ``a`` then ``b``; ``backward`` takes ``b`` then
    ``a``.  Driving each once from separate threads *sequentially*
    (never overlapping — the fixture must not actually deadlock the
    test suite) records both ordering edges, which the
    :class:`~repro.obs.locks.LockMonitor` must report as a cycle with
    both witness stacks.
    """

    def __init__(self, monitor: LockMonitor) -> None:
        self.lock_a = new_lock("fixture.a", monitor=monitor)
        self.lock_b = new_lock("fixture.b", monitor=monitor)

    def forward(self) -> None:
        with self.lock_a:
            with self.lock_b:
                pass

    def backward(self) -> None:
        with self.lock_b:
            with self.lock_a:
                pass

    def record_both_orders(self) -> None:
        """Run forward then backward on separate threads, sequentially."""
        for method in (self.forward, self.backward):
            thread = threading.Thread(target=method, daemon=True)
            thread.start()
            thread.join()


# ----------------------------------------------------------------------
# Scripted workloads (shared by ``gks race`` and the concurrency suite)
# ----------------------------------------------------------------------
def drive_cache_workload(engine, queries: Sequence[str],
                         harness: RaceHarness) -> RaceReport:
    """Hammer the engine LRU probe/store/evict path concurrently.

    Mixed cached searches (probe + re-insert), uncached searches and
    occasional mutations; the invariant check is the cache accounting
    the engine itself exposes (size within capacity, non-negative
    counters).
    """
    def search_cached(rng: random.Random) -> None:
        engine.search(rng.choice(list(queries)))

    def search_uncached(rng: random.Random) -> None:
        engine.search(rng.choice(list(queries)), use_cache=False)

    def check() -> list[str]:
        info = engine.cache_info()
        found = []
        if info["capacity"] and info["size"] > info["capacity"]:
            found.append(f"engine LRU over capacity: {info['size']} > "
                         f"{info['capacity']}")
        if min(info["hits"], info["misses"], info["evictions"]) < 0:
            found.append(f"negative cache counter: {info}")
        return found

    return harness.run([search_cached, search_cached, search_uncached],
                       check=check)


def drive_swap_workload(core, engines: Sequence[object],
                        harness: RaceHarness,
                        queries: Sequence[str]) -> RaceReport:
    """Hot-swap engines under concurrent search traffic.

    Every search must complete (on whichever snapshot it captured) and
    the broker's accounting must return to rest between rounds.
    """
    def search(rng: random.Random) -> None:
        core.search(rng.choice(list(queries)))

    def swap(rng: random.Random) -> None:
        core.swap_engine(rng.choice(list(engines)))

    def check() -> list[str]:
        snapshot = core.stats()
        found = []
        if snapshot["queued"] != 0 or snapshot["running"] != 0:
            found.append(
                f"broker accounting did not return to rest: "
                f"queued={snapshot['queued']} "
                f"running={snapshot['running']}")
        return found

    return harness.run([search, search, search, swap], check=check)


def drive_durable_workload(engine, harness: RaceHarness,
                           queries: Sequence[str]) -> RaceReport:
    """Concurrent add_document / flush / search on a durable engine.

    The invariant ties the memtable to the log: every acknowledged
    append is either pending or flushed, and the repository never loses
    a document.
    """
    documents = [0]
    documents_lock = threading.Lock()

    def add(rng: random.Random) -> None:
        with documents_lock:
            documents[0] += 1
            serial = documents[0]
        engine.add_document(
            f"<doc><body>race payload {serial}</body></doc>",
            name=f"race-{serial}.xml")

    def flush(rng: random.Random) -> None:
        engine.flush()

    def search(rng: random.Random) -> None:
        engine.search(rng.choice(list(queries)))

    def check() -> list[str]:
        found = []
        expected = documents[0]
        actual = len(engine.repository) - check.baseline
        if actual != expected:
            found.append(
                f"durable corpus lost writes: {expected} acknowledged "
                f"appends, {actual} documents beyond the baseline")
        return found

    check.baseline = len(engine.repository)
    return harness.run([add, search, search, flush], check=check)
