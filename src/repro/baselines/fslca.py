"""FSLCA — missing-element-conscious SLCA (paper ref [19], MESSIAH).

MESSIAH's premise: keyword queries target specific node types; when a
document instance lacks an optional element ("missing element"), strict
SLCA degrades to an unintended ancestor.  FSLCA repairs this by judging
containment *per target-type instance* and forgiving keywords the type
cannot supply.

This reproduction implements the behaviour the GKS paper measures
against (§7.3):

1. deduce the target entity type for the query (XReal-style scorer);
2. a target-type instance qualifies when it contains every query keyword
   that occurs under the target type *anywhere* in the corpus — a
   keyword that never occurs below the type is a "missing element" and
   is forgiven;
3. instances are returned in document order.

With a 'perfect' query this coincides with SLCA restricted to the target
type; with an 'imperfect' keyword (QM2's tag-only keywords, QD2's
Banerjee) it returns the intended nodes where SLCA collapses to the
root, and returns nothing when no target type covers the query at all —
the paper's "for QM2, no FSLCA node exists".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.target_type import (TypeScore, entity_type_instances,
                                         score_types)
from repro.core.query import Query
from repro.index.builder import GKSIndex
from repro.index.postings import subtree_range
from repro.schema.inference import Schema
from repro.xmltree.dewey import Dewey
from repro.xmltree.repository import Repository


@dataclass(frozen=True)
class FSLCAResult:
    """Outcome of an FSLCA query."""

    target: TypeScore | None
    nodes: tuple[Dewey, ...]
    forgiven_keywords: tuple[str, ...]   # the 'missing elements'

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self):
        return iter(self.nodes)


def fslca(repository: Repository, index: GKSIndex, query: Query,
          schema: Schema | None = None,
          min_coverage: float = 0.0) -> FSLCAResult:
    """Run the FSLCA baseline for *query*.

    A keyword is forgiven ("missing element") for the target type when
    its coverage over the type's instances does not exceed
    ``min_coverage`` — with the default 0.0, only keywords that occur in
    *no* instance of the type are forgiven, the literal reading of a
    missing element.
    """
    instances = entity_type_instances(repository, schema)
    ranked_types = score_types(index, query, instances)

    for candidate in ranked_types:
        supported = [keyword for keyword, fraction
                     in candidate.keyword_coverage.items()
                     if fraction > min_coverage]
        if not supported:
            continue
        forgiven = tuple(keyword for keyword in query.keywords
                         if keyword not in supported)
        nodes = _instances_containing(index, instances[candidate.path],
                                      supported)
        if nodes:
            return FSLCAResult(target=candidate, nodes=tuple(nodes),
                               forgiven_keywords=forgiven)
    return FSLCAResult(target=None, nodes=(), forgiven_keywords=())


def _instances_containing(index: GKSIndex, deweys: list[Dewey],
                          keywords: list[str]) -> list[Dewey]:
    """Instances whose subtree holds every keyword in *keywords*."""
    survivors = []
    for dewey in deweys:
        if all(_occurs(index, keyword, dewey) for keyword in keywords):
            survivors.append(dewey)
    return survivors


def _occurs(index: GKSIndex, keyword: str, dewey: Dewey) -> bool:
    postings = index.postings(keyword)
    lo, hi = subtree_range(postings, dewey)
    return lo != hi
