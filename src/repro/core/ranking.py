"""Potential-flow node ranking (paper §5, Example 5).

Each response node ``e`` starts with potential ``P|e`` = the number of
distinct query keywords in its subtree.  The potential flows down the tree,
dividing equally among a node's direct children at every step; the rank of
``e`` is the total potential arriving at the *terminal points* — the
highest (shallowest) occurrence(s) of each query keyword inside ``e``'s
subtree.  A keyword occurring several times at its highest level
contributes one terminal per occurrence.

Everything is computed from the index alone: keyword occurrences come from
posting-list subtree ranges (contiguous by Dewey order), and the division
factors are the direct-child counts stored in the hash tables — exactly why
the paper stores child counts there (§2.4).  A terminal at ``e`` itself
(the keyword occurs in ``e``'s own text or tag) receives the undivided
``P|e``.

Intuition: many children dilute the flow, so among nodes with equal
keyword coverage the one whose matches sit in a leaner context ranks
higher — the paper's Example 2 ranks an article with few co-authors above
one with many.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.query import Query
from repro.index.builder import GKSIndex
from repro.index.postings import subtree_range
from repro.xmltree.dewey import Dewey


@dataclass(frozen=True)
class RankBreakdown:
    """Rank of one node plus the evidence behind it."""

    dewey: Dewey
    score: float
    initial_potential: int
    #: keyword → its terminal points (highest occurrences in the subtree).
    terminals: dict[str, tuple[Dewey, ...]]

    @property
    def matched_keywords(self) -> tuple[str, ...]:
        return tuple(self.terminals)

    @property
    def distinct_keywords(self) -> int:
        return self.initial_potential


def keyword_occurrences(index: GKSIndex, keyword: str,
                        dewey: Dewey) -> list[Dewey]:
    """All postings of *keyword* inside ``subtree(dewey)`` (document
    order)."""
    postings = index.postings(keyword)
    lo, hi = subtree_range(postings, dewey)
    return postings[lo:hi]


def terminal_points(occurrences: list[Dewey]) -> tuple[Dewey, ...]:
    """The highest occurrences: all postings at the minimal depth."""
    if not occurrences:
        return ()
    min_length = min(len(occurrence) for occurrence in occurrences)
    return tuple(occurrence for occurrence in occurrences
                 if len(occurrence) == min_length)


def received_potential(index: GKSIndex, root: Dewey, terminal: Dewey,
                       potential: float) -> float:
    """Potential arriving at *terminal* when *potential* starts at *root*.

    Divides by the direct-child count of every node on the path from
    *root* down to the terminal's parent.  Child counts come from the hash
    tables; attribute nodes are leaves so they never appear mid-path.
    """
    if terminal == root:
        return potential
    flowed = potential
    for length in range(len(root), len(terminal)):
        children = index.hashes.child_count(terminal[:length])
        if children and children > 1:
            flowed /= children
    return flowed


def rank_node(index: GKSIndex, query: Query, dewey: Dewey) -> RankBreakdown:
    """Rank one response node for *query* with the potential-flow model."""
    terminals: dict[str, tuple[Dewey, ...]] = {}
    for keyword in query.keywords:
        points = terminal_points(keyword_occurrences(index, keyword, dewey))
        if points:
            terminals[keyword] = points

    potential = len(terminals)
    score = 0.0
    for points in terminals.values():
        for terminal in points:
            score += received_potential(index, dewey, terminal,
                                        float(potential))
    return RankBreakdown(dewey=dewey, score=score,
                         initial_potential=potential, terminals=terminals)


def rank_by_keyword_count(index: GKSIndex, query: Query,
                          dewey: Dewey) -> RankBreakdown:
    """Ablation baseline (bench A2): rank = distinct-keyword count only.

    Shares the terminal bookkeeping so the two rankers are comparable.
    """
    terminals: dict[str, tuple[Dewey, ...]] = {}
    for keyword in query.keywords:
        points = terminal_points(keyword_occurrences(index, keyword, dewey))
        if points:
            terminals[keyword] = points
    return RankBreakdown(dewey=dewey, score=float(len(terminals)),
                         initial_potential=len(terminals),
                         terminals=terminals)
