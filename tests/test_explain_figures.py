"""Tests for rank explanations and the ASCII figure renderers."""

import pytest

from repro.core.explain import explain_rank
from repro.core.query import Query
from repro.core.ranking import rank_node
from repro.core.search import search
from repro.eval.figures import render_bar_chart, render_scatter


class TestExplain:
    def test_explanation_sums_to_score(self, figure1_index, figure1_repo,
                                       fig1_ids):
        query = Query.of(["a", "b", "c", "d"], s=2)
        breakdown = rank_node(figure1_index, query, fig1_ids["x3"])
        explanation = explain_rank(figure1_index, breakdown,
                                   repository=figure1_repo)
        total = sum(terminal.received
                    for terminal in explanation.terminals)
        assert total == pytest.approx(breakdown.score)

    def test_steps_carry_tags_and_counts(self, figure1_index,
                                         figure1_repo, fig1_ids):
        query = Query.of(["d"], s=1)
        breakdown = rank_node(figure1_index, query, fig1_ids["x3"])
        explanation = explain_rank(figure1_index, breakdown,
                                   repository=figure1_repo)
        d_terminal = explanation.terminals[0]
        tags = [step.tag for step in d_terminal.steps]
        assert tags == ["x3", "y"]
        counts = [step.child_count for step in d_terminal.steps]
        assert counts == [3, 2]

    def test_render_mentions_everything(self, figure1_index,
                                        figure1_repo, fig1_ids):
        query = Query.of(["a", "b"], s=2)
        breakdown = rank_node(figure1_index, query, fig1_ids["x2"])
        text = explain_rank(figure1_index, breakdown,
                            repository=figure1_repo).render()
        assert "P = 2" in text
        assert "'a'" in text and "'b'" in text
        assert "receives" in text

    def test_engine_explain_facade(self, figure2a_engine):
        response = figure2a_engine.search("karen mike", s=2)
        text = figure2a_engine.explain(response[0])
        assert "rank =" in text
        assert "Students" in text

    def test_terminal_at_node_itself(self, figure2a_engine):
        # tag keyword 'course' terminates at the Course node itself
        response = figure2a_engine.search("course", s=1)
        top = response[0]
        text = figure2a_engine.explain(top)
        assert "(at the node itself)" in text


class TestBarChart:
    def test_bars_scale_to_peak(self):
        text = render_bar_chart("T", [("a", 10.0), ("b", 5.0)], width=10)
        lines = text.splitlines()
        assert lines[0] == "T"
        assert lines[1].count("#") == 10
        assert lines[2].count("#") == 5

    def test_zero_values(self):
        text = render_bar_chart("T", [("a", 0.0)])
        assert "#" not in text

    def test_empty_series(self):
        assert "(no data)" in render_bar_chart("T", [])

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            render_bar_chart("T", [("a", 1.0)], width=0)

    def test_labels_aligned(self):
        text = render_bar_chart("T", [("x", 1.0), ("long", 2.0)])
        lines = text.splitlines()[1:]
        assert lines[0].index("|") == lines[1].index("|")


class TestScatter:
    def test_grid_dimensions(self):
        text = render_scatter("S", [(0, 0), (10, 10)], width=20,
                              height=5)
        lines = text.splitlines()
        assert len(lines) == 1 + 5 + 2  # title + grid + axis + ranges
        assert all(len(line) == 21 for line in lines[1:6])

    def test_extremes_are_plotted(self):
        text = render_scatter("S", [(0, 0), (10, 10)], width=10,
                              height=4)
        lines = text.splitlines()
        assert lines[1].rstrip().endswith("*")   # top-right
        assert lines[4].startswith("|*")          # bottom-left

    def test_single_point(self):
        text = render_scatter("S", [(3, 3)])
        assert "*" in text

    def test_empty(self):
        assert "(no data)" in render_scatter("S", [])
