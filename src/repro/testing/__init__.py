"""Deterministic fault injection for resilience tests and benchmarks."""

from repro.testing.faults import (FakeClock, TornWriter, XMLCorruptor,
                                  corrupt_corpus)

__all__ = ["FakeClock", "TornWriter", "XMLCorruptor", "corrupt_corpus"]
