"""Brute-force oracles: straight-from-the-tree reference semantics.

These walk the materialised trees and apply the definitions literally.
They are deliberately slow and simple — their only job is to catch bugs in
the efficient index-based algorithms, which the test suite cross-validates
against them on both crafted and randomized documents.
"""

from __future__ import annotations

from repro.core.query import Query
from repro.text.analyzer import DEFAULT_ANALYZER, Analyzer
from repro.xmltree.dewey import Dewey
from repro.xmltree.node import XMLNode
from repro.xmltree.repository import Repository


def node_keywords(node: XMLNode, analyzer: Analyzer = DEFAULT_ANALYZER,
                  include_tags: bool = True) -> set[str]:
    """Keywords directly contained by one element (its text + its tag)."""
    keywords: set[str] = set()
    if node.has_text:
        assert node.text is not None
        keywords.update(analyzer.analyze(node.text))
    if include_tags:
        keywords.update(analyzer.analyze_tag(node.tag))
    return keywords


def subtree_keyword_map(repository: Repository,
                        analyzer: Analyzer = DEFAULT_ANALYZER,
                        include_tags: bool = True
                        ) -> dict[Dewey, set[str]]:
    """Dewey → set of keywords anywhere in that node's subtree."""
    mapping: dict[Dewey, set[str]] = {}
    for document in repository:
        _fill(document.root, mapping, analyzer, include_tags)
    return mapping


def _fill(node: XMLNode, mapping: dict[Dewey, set[str]],
          analyzer: Analyzer, include_tags: bool) -> set[str]:
    keywords = node_keywords(node, analyzer, include_tags)
    for child in node.children:
        keywords |= _fill(child, mapping, analyzer, include_tags)
    mapping[node.dewey] = keywords
    return keywords


def brute_candidates(repository: Repository, query: Query,
                     analyzer: Analyzer = DEFAULT_ANALYZER) -> list[Dewey]:
    """All nodes whose subtree holds ≥ ``min(s, |Q|)`` distinct keywords.

    This is the *reference search space* of GKS (paper §1.1); the efficient
    pipeline returns its SLCA-style frontier, so tests check containment
    and coverage rather than equality.
    """
    wanted = set(query.keywords)
    threshold = query.effective_s
    mapping = subtree_keyword_map(repository, analyzer)
    return sorted(dewey for dewey, keywords in mapping.items()
                  if len(keywords & wanted) >= threshold)


def brute_slca(repository: Repository, query: Query,
               analyzer: Analyzer = DEFAULT_ANALYZER) -> list[Dewey]:
    """SLCA by definition: deepest nodes containing every keyword."""
    wanted = set(query.keywords)
    mapping = subtree_keyword_map(repository, analyzer)
    full = {dewey for dewey, keywords in mapping.items()
            if wanted <= keywords}
    return sorted(
        dewey for dewey in full
        if not any(other != dewey and other[:len(dewey)] == dewey
                   for other in full))


def brute_elca(repository: Repository, query: Query,
               analyzer: Analyzer = DEFAULT_ANALYZER) -> list[Dewey]:
    """ELCA by definition, via per-node exclusive-witness counting."""
    wanted = set(query.keywords)
    mapping = subtree_keyword_map(repository, analyzer)
    full = {dewey for dewey, keywords in mapping.items()
            if wanted <= keywords}

    results: list[Dewey] = []
    for document in repository:
        for node in document.root.iter_subtree():
            if node.dewey not in full:
                continue
            if _exclusive_witnesses(node, wanted, full, analyzer):
                results.append(node.dewey)
    return sorted(results)


def _exclusive_witnesses(node: XMLNode, wanted: set[str],
                         full: set[Dewey], analyzer: Analyzer) -> bool:
    remaining = set(wanted)
    _discount(node, remaining, full, analyzer, is_root=True)
    return not remaining


def _discount(node: XMLNode, remaining: set[str], full: set[Dewey],
              analyzer: Analyzer, is_root: bool) -> None:
    if not is_root and node.dewey in full:
        return  # occurrences below an all-keyword descendant do not count
    remaining -= node_keywords(node, analyzer)
    if not remaining:
        return
    for child in node.children:
        _discount(child, remaining, full, analyzer, is_root=False)
        if not remaining:
            return
