"""Per-node path-probability tables for p-documents (PrXML IND/MUX).

A *p-document* marks some ordinary XML elements as **distributional
nodes** via the ``p:`` attribute convention (``p:type="IND"`` or
``p:type="MUX"``); a child carrying ``p:p="0.4"`` exists in a random
instance with that probability (IND: independently of its siblings;
MUX: the siblings form one mutually-exclusive choice whose weights are
normalised to sum at most 1).  Everything the probabilistic evaluator
needs at query time compresses into two maps keyed by Dewey id:

* ``kinds``  — distributional node → ``"IND"`` | ``"MUX"``,
* ``edge_p`` — uncertain child → its (normalised) edge probability.

:class:`ProbTables` is that pair as a frozen, JSON-serialisable value —
compiled once at index time (see :mod:`repro.semantics.pdoc`) and
persisted alongside the postings by both the raw envelope and the v4
binary codec.  It lives in the index layer so the storage/codec modules
can serialise it without importing upward into ``repro.semantics``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ValidationError
from repro.xmltree.dewey import Dewey, format_dewey, parse_dewey

#: The two PrXML distributional node kinds this model supports.
DIST_KINDS = ("IND", "MUX")


@dataclass(frozen=True)
class ProbTables:
    """Compiled p-document probability tables for one corpus (or shard).

    ``kinds`` maps each distributional node's Dewey id to its kind;
    ``edge_p`` maps each uncertain child's Dewey id to the probability
    that it exists given its parent exists (for MUX children: the
    normalised choice weight).  Every other edge is certain.
    """

    kinds: dict[Dewey, str] = field(default_factory=dict)
    edge_p: dict[Dewey, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for dewey, kind in self.kinds.items():
            if kind not in DIST_KINDS:
                raise ValidationError(
                    f"unknown distributional kind {kind!r} at "
                    f"{format_dewey(dewey)} (expected one of {DIST_KINDS})")
        for dewey, prob in self.edge_p.items():
            if not 0.0 <= prob <= 1.0:
                raise ValidationError(
                    f"edge probability {prob!r} at {format_dewey(dewey)} "
                    "outside [0, 1]")

    def __bool__(self) -> bool:
        return bool(self.kinds) or bool(self.edge_p)

    # -- queries --------------------------------------------------------
    def existence(self, dewey: Dewey) -> float:
        """P(node exists) = product of uncertain edges on its root path."""
        prob = 1.0
        for depth in range(2, len(dewey) + 1):
            edge = self.edge_p.get(dewey[:depth])
            if edge is not None:
                prob *= edge
        return prob

    def mux_siblings(self, parent: Dewey) -> list[Dewey]:
        """The participating children of a MUX node, in document order."""
        if self.kinds.get(parent) != "MUX":
            return []
        width = len(parent) + 1
        return sorted(d for d in self.edge_p
                      if len(d) == width and d[:-1] == parent)

    def restrict(self, doc_ids: frozenset[int] | set[int]) -> "ProbTables":
        """The tables restricted to documents in *doc_ids* (per-shard)."""
        return ProbTables(
            kinds={d: k for d, k in self.kinds.items() if d[0] in doc_ids},
            edge_p={d: p for d, p in self.edge_p.items()
                    if d[0] in doc_ids})

    # -- serialisation --------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "kinds": {format_dewey(d): kind
                      for d, kind in sorted(self.kinds.items())},
            "edge_p": {format_dewey(d): prob
                       for d, prob in sorted(self.edge_p.items())},
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ProbTables":
        if not isinstance(payload, dict):
            raise ValidationError(
                f"probability tables must be a mapping, got "
                f"{type(payload).__name__}")
        try:
            kinds = {parse_dewey(text): str(kind)
                     for text, kind in payload.get("kinds", {}).items()}
            edge_p = {parse_dewey(text): float(prob)
                      for text, prob in payload.get("edge_p", {}).items()}
        except (TypeError, ValueError, AttributeError) as exc:
            raise ValidationError(
                f"malformed probability tables: {exc}") from exc
        return cls(kinds=kinds, edge_p=edge_p)


def merge_tables(parts: "list[ProbTables]") -> ProbTables:
    """Union disjoint per-shard tables back into one corpus-wide table."""
    kinds: dict[Dewey, str] = {}
    edge_p: dict[Dewey, float] = {}
    for part in parts:
        kinds.update(part.kinds)
        edge_p.update(part.edge_p)
    return ProbTables(kinds=kinds, edge_p=edge_p)
