"""Building the merged Dewey-id list ``SL`` for a query (paper §4.1).

"For the query keywords ki ∈ Q, we first merge their respective inverted
index lists such that in the merged list, keywords follow their arrival
order in the XML document."  Dewey order is document order, so the k-way
merge of the sorted posting lists yields exactly that ordering.
"""

from __future__ import annotations

from repro.core.budget import SearchBudget
from repro.index.builder import GKSIndex
from repro.index.postings import MergedEntry, merge_posting_lists
from repro.core.query import Query


def merged_list(index: GKSIndex, query: Query,
                budget: SearchBudget | None = None) -> list[MergedEntry]:
    """The sorted merged list ``SL`` of all query-keyword postings.

    Entry *i* carries ``keyword`` = the index of its keyword in
    ``query.keywords``.  Keywords absent from the corpus simply contribute
    empty lists; ``|SL| <= Σ|Si|`` with equality unless an element holds
    two query keywords at the same Dewey id under the same keyword
    (impossible — posting lists are deduplicated per keyword).

    A :class:`SearchBudget` caps the result at ``max_sl`` entries (the
    kept prefix is a coherent leading slice of the corpus in document
    order) and charges the merge against the deadline.
    """
    sl = merge_posting_lists(
        index.postings(keyword) for keyword in query.keywords)
    if budget is not None:
        sl = budget.admit_sl(sl)
        budget.checkpoint("merge", len(sl), len(sl))
    return sl
