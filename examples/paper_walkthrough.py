"""The paper, example by example.

Walks every worked example of the paper in order on this implementation
and prints the paper's claim next to the measured outcome:

  Table 1 / Example 1   GKS vs ELCA vs SLCA on the Fig. 1 tree
  Example 2 (QD2)       the four-author DBLP query
  Example 3 (Q4)        the 'imperfect' university query
  Example 4             the LCP/LCE bookkeeping on its merged list
  Example 5             the potential-flow ranks
  §6.1                  Q3's subset refinements
  §7.4                  the DI-driven refinement payoff

Run:  python examples/paper_walkthrough.py
"""

from repro import GKSEngine, Query, load_dataset
from repro.baselines import elca, slca_indexed_lookup_eager
from repro.core.lcp import compute_lcp_list
from repro.core.merge import merged_list
from repro.core.refinement import suggest_subsets

NAMES = {(0,): "r", (0, 0): "x1", (0, 0, 3): "x2", (0, 1): "x3",
         (0, 2): "x4"}


def name_of(dewey):
    return NAMES.get(dewey, ".".join(map(str, dewey)))


def table1_and_example5() -> None:
    print("== Table 1 + Example 5 (Fig. 1) ==")
    engine = GKSEngine(load_dataset("figure1"))
    for qid, keywords, s in (("Q1", ["a", "b", "c"], 3),
                             ("Q2", ["a", "b", "e"], 2),
                             ("Q3", ["a", "b", "c", "d"], 2)):
        response = engine.search(Query.of(keywords, s=s))
        gks = [f"{name_of(node.dewey)}({node.score:g})"
               for node in response]
        full = Query.of(keywords, s=len(keywords))
        elcas = [name_of(dewey) for dewey in elca(engine.index, full)]
        slcas = [name_of(dewey)
                 for dewey in slca_indexed_lookup_eager(engine.index,
                                                        full)]
        print(f"  {qid} s={s}: GKS={gks or 'NULL'}  "
              f"ELCA={elcas or 'NULL'}  SLCA={slcas or 'NULL'}")
    print("  paper: Q3 ranks x2=3, x3=2.5, x4=2\n")


def example2() -> None:
    print("== Example 2 (QD2 on DBLP) ==")
    engine = GKSEngine(load_dataset("dblp"))
    response = engine.search(
        '"Peter Buneman" "Wenfei Fan" "Scott Weinstein" '
        '"Prithviraj Banerjee"', s=1)
    print(f"  {len(response)} articles for s=1 (paper: 234 on real DBLP)")
    trio_on_top = all(node.distinct_keywords == 3
                      for node in response.top(4))
    print(f"  top-4 are three-author articles: {trio_on_top} "
          f"(paper: 4 of the 5 joint articles rank top)")
    insights = engine.insights(response, top=6)
    rendered = [insight.render() for insight in insights]
    print(f"  DI: {rendered[:4]}")
    print("  paper DI: <ip: journal: SIGMOD Record>, <ip: year: 2001>, "
          "<ip: author: Alok N Choudhary>, <ip: booktitle: ICPP>\n")


def example3() -> None:
    print("== Example 3 (Q4 on Fig. 2(a)) ==")
    engine = GKSEngine(load_dataset("figure2a"))
    response = engine.search("student karen mike john harry", s=2)
    for node in response.top(3):
        element = engine.node_at(node.dewey)
        course = element.find_first("Name").text
        print(f"  <Course {course}> score={node.score:g} "
              f"keywords={node.matched_keywords}")
    print("  paper: the three courses, ranked, with course names as "
          "context\n")


def example4() -> None:
    print("== Example 4 (LCP list arithmetic) ==")
    engine = GKSEngine(load_dataset("figure2a"))
    query = Query.of(["karen", "mike"], s=2)
    sl = merged_list(engine.index, query)
    lcp = compute_lcp_list(sl, 2)
    print(f"  |SL|={len(sl)}, LCP entries={len(lcp)}")
    for dewey, entry in lcp.entries.items():
        print(f"    {'.'.join(map(str, dewey))}: counter={entry.counter} "
              f"-> estimate {lcp.estimated_keyword_count(dewey)}")
    print("  paper: estimates are s + counter - 1\n")


def refinement_walk() -> None:
    print("== §6.1 + §7.4 (refinement) ==")
    engine = GKSEngine(load_dataset("figure1"))
    response = engine.search(Query.of(["a", "b", "c", "d"], s=2))
    subsets = [" ".join(refinement.keywords)
               for refinement in suggest_subsets(response)]
    print(f"  Q3 refines to: {subsets[:2]} (paper: {{a,b,c}}, {{a,b,d}})")

    dblp = GKSEngine(load_dataset("dblp"))
    qd1 = dblp.search('"Dimitrios Georgakopoulos" "Joe D. Morrison"')
    report = dblp.insights(qd1, top=10)
    coauthor = next((insight for insight in report
                     if "Rusinkiewicz" in insight.value), None)
    print(f"  QD1 DI reveals: {coauthor.render() if coauthor else '??'}")
    refined = dblp.search(
        '"Dimitrios Georgakopoulos" "Marek Rusinkiewicz"', s=2)
    print(f"  refined query finds {len(refined)} joint articles "
          f"(paper: 10)")


def main() -> None:
    table1_and_example5()
    example2()
    example3()
    example4()
    refinement_walk()


if __name__ == "__main__":
    main()
