"""Shared machinery for the synthetic corpus generators.

The paper evaluates on real repositories from the UW XML collection [21]
(DBLP, SIGMOD Record, Mondial, Shakespeare's plays, TreeBank, SwissProt,
InterPro, Protein Sequence, NASA).  Those files are not available offline,
so each generator in this package rebuilds the corpus *shape*: the same
element hierarchy, the same node-category mix, similar fan-outs and depth,
and a keyword distribution with planted structure for the paper's queries
(Table 6).  All generation is deterministic given ``(scale, seed)``.

Conventions shared by every generator:

* ``scale`` linearly multiplies the number of top-level entities
  (articles, countries, proteins, …); ``scale=1`` is a laptop-size corpus.
* ``seed`` drives a private :class:`random.Random`; two calls with equal
  arguments produce byte-identical documents.
* Generators return an :class:`XMLNode` root; callers wrap it into a
  :class:`Repository` (see :mod:`repro.datasets.registry`).
"""

from __future__ import annotations

import random
from typing import Sequence

_TITLE_HEAD = [
    "efficient", "scalable", "adaptive", "incremental", "distributed",
    "parallel", "robust", "generic", "semantic", "probabilistic",
    "approximate", "declarative", "streaming", "secure", "optimal",
]

_TITLE_CORE = [
    "keyword", "search", "query", "index", "join", "ranking", "schema",
    "transaction", "storage", "cache", "graph", "stream", "cluster",
    "partition", "sampling", "recovery", "replication", "compression",
    "optimization", "integration",
]

_TITLE_TAIL = [
    "databases", "systems", "networks", "repositories", "collections",
    "documents", "workloads", "architectures", "engines", "services",
]

_PROSE_WORDS = [
    "data", "node", "tree", "query", "result", "user", "model", "method",
    "cost", "time", "space", "value", "label", "path", "level", "rank",
    "set", "list", "table", "field", "term", "token", "match", "score",
    "graph", "edge", "index", "scan", "merge", "sort", "hash", "page",
]


class Synth:
    """A seeded pocket of randomness with corpus-building helpers."""

    def __init__(self, seed: int) -> None:
        self.rng = random.Random(seed)

    # ------------------------------------------------------------------
    # Primitive draws
    # ------------------------------------------------------------------
    def pick(self, pool: Sequence[str]) -> str:
        return self.rng.choice(pool)

    def sample(self, pool: Sequence[str], count: int) -> list[str]:
        count = min(count, len(pool))
        return self.rng.sample(list(pool), count)

    def int_between(self, low: int, high: int) -> int:
        return self.rng.randint(low, high)

    def chance(self, probability: float) -> bool:
        return self.rng.random() < probability

    def skewed_index(self, size: int, alpha: float = 1.3) -> int:
        """Zipf-ish index into a pool: small indexes far more likely.

        Keyword frequencies in the real corpora are heavily skewed; this
        keeps merged-list sizes realistic without a true Zipf sampler.
        """
        u = self.rng.random()
        position = int(size * (u ** alpha))
        return min(position, size - 1)

    # ------------------------------------------------------------------
    # Text fabrication
    # ------------------------------------------------------------------
    def title(self) -> str:
        """A plausible article/dataset title, 3–6 words."""
        words = [self.pick(_TITLE_HEAD), self.pick(_TITLE_CORE)]
        if self.chance(0.6):
            words.append(self.pick(_TITLE_CORE))
        words.extend(["for" if self.chance(0.5) else "over",
                      self.pick(_TITLE_TAIL)])
        return " ".join(words).capitalize()

    def sentence(self, words: int) -> str:
        return " ".join(self.pick(_PROSE_WORDS) for _ in range(words))

    def year(self, low: int = 1975, high: int = 2014) -> str:
        return str(self.int_between(low, high))

    def pages(self) -> tuple[str, str]:
        start = self.int_between(1, 500)
        return str(start), str(start + self.int_between(4, 30))

    def code(self, prefix: str, width: int = 5) -> str:
        return f"{prefix}{self.rng.randrange(10 ** width):0{width}d}"
