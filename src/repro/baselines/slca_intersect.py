"""SLCA via set intersection (paper ref [17], Zhou et al., ICDE 2012).

The third SLCA algorithm family the paper's related work covers: treat
each keyword's occurrence list as a set of ancestor ids and intersect.
The formulation here:

1. For the *shortest* posting list, walk each occurrence's ancestor
   chain (O(d) per occurrence).
2. A hash set per other keyword holds every ancestor-or-self of its
   occurrences (built once, O(d·|S_i|)).
3. The deepest ancestor of the anchor occurrence present in **all** hash
   sets is an all-keyword node — collect it; ancestor removal yields the
   SLCAs.

Compared with Indexed Lookup Eager this trades binary searches for hash
probes — faster when lists are short and the tree is shallow, heavier in
memory.  The SLCA-algorithms bench races the three implementations; the
test suite cross-validates them against the brute-force oracle.
"""

from __future__ import annotations

from repro.baselines.lca import posting_lists, remove_ancestors
from repro.core.query import Query
from repro.index.builder import GKSIndex
from repro.xmltree.dewey import Dewey


def ancestor_set(postings: list[Dewey]) -> set[Dewey]:
    """Every ancestor-or-self of every posting (one hash set)."""
    closure: set[Dewey] = set()
    for dewey in postings:
        # walk upward from the occurrence; once an ancestor is present,
        # everything above it is too (the closure is ancestor-closed)
        for length in range(len(dewey), 0, -1):
            prefix = dewey[:length]
            if prefix in closure:
                break
            closure.add(prefix)
    return closure


def slca_set_intersection(index: GKSIndex, query: Query) -> list[Dewey]:
    """SLCA nodes via ancestor-set intersection, in document order."""
    lists = posting_lists(index, query)
    if any(not postings for postings in lists):
        return []
    if len(lists) == 1:
        return remove_ancestors(list(lists[0]))

    shortest = min(lists, key=len)
    closures = [ancestor_set(postings) for postings in lists
                if postings is not shortest]

    candidates: list[Dewey] = []
    for anchor in shortest:
        deepest = _deepest_common(anchor, closures)
        if deepest is not None:
            candidates.append(deepest)
    return remove_ancestors(candidates)


def _deepest_common(anchor: Dewey,
                    closures: list[set[Dewey]]) -> Dewey | None:
    """Deepest ancestor-or-self of *anchor* present in every closure."""
    for length in range(len(anchor), 0, -1):
        prefix = anchor[:length]
        if all(prefix in closure for closure in closures):
            return prefix
    return None
