"""Exporting responses and reports as JSON-ready dictionaries.

Library clients (web frontends, notebooks) want plain data, not
dataclasses.  ``response_to_dict`` captures the ranked nodes with their
evidence; ``insights_to_dict`` the DI; ``session_to_dict`` a whole
exploration transcript.  Everything nests only JSON types, so
``json.dumps`` works directly.
"""

from __future__ import annotations

from typing import Any

from repro.core.insights import InsightReport
from repro.core.results import GKSResponse, RankedNode
from repro.core.session import ExplorationSession
from repro.xmltree.dewey import format_dewey
from repro.xmltree.repository import Repository


def node_to_dict(node: RankedNode,
                 repository: Repository | None = None) -> dict[str, Any]:
    payload: dict[str, Any] = {
        "dewey": format_dewey(node.dewey),
        "score": node.score,
        "distinct_keywords": node.distinct_keywords,
        "matched_keywords": list(node.matched_keywords),
        "is_lce": node.is_lce,
        "estimated_keywords": node.estimated_keywords,
    }
    # conditional keys: strict payloads stay byte-identical
    if node.probability is not None:
        payload["probability"] = node.probability
    if node.relaxation is not None:
        payload["relaxation"] = node.relaxation.to_dict()
    if repository is not None:
        element = repository.node_at(node.dewey)
        if element is not None:
            payload["tag"] = element.tag
            payload["tag_path"] = element.tag_path()
    return payload


def response_to_dict(response: GKSResponse,
                     repository: Repository | None = None
                     ) -> dict[str, Any]:
    profile = response.profile
    payload: dict[str, Any] = {
        "query": {
            "keywords": list(response.query.keywords),
            "s": response.query.s,
            "raw": response.query.raw,
        },
        "profile": {
            "merged_list_size": profile.merged_list_size,
            "lcp_entries": profile.lcp_entries,
            "lce_nodes": profile.lce_nodes,
            "seconds": profile.seconds,
            "stages": profile.stage_breakdown(),
        },
        "nodes": [node_to_dict(node, repository) for node in response],
    }
    if response.semantics is not None:
        payload["semantics"] = response.semantics.to_dict()
    return payload


def insights_to_dict(report: InsightReport) -> dict[str, Any]:
    return {
        "insights": [
            {
                "render": insight.render(),
                "keyword": insight.keyword,
                "phrase_keyword": insight.phrase_keyword,
                "value": insight.value,
                "path": list(insight.path),
                "weight": insight.weight,
                "supporting_nodes": insight.supporting_nodes,
            }
            for insight in report
        ],
        "weighted_keywords": dict(report.weighted_keywords),
    }


def session_to_dict(session: ExplorationSession,
                    repository: Repository | None = None
                    ) -> dict[str, Any]:
    return {
        "steps": [
            {
                "note": step.note,
                "response": response_to_dict(step.response, repository),
                "insights": insights_to_dict(step.insights),
                "refinements": [
                    {
                        "kind": refinement.kind.value,
                        "keywords": list(refinement.keywords),
                        "support": refinement.support,
                        "node_count": refinement.node_count,
                    }
                    for refinement in step.refinements
                ],
            }
            for step in session.steps
        ]
    }
