"""Concurrent-serving benchmark: capacity, coalescing and overload.

Three stages against a :class:`~repro.serve.core.ServerCore` broker over
the replicated figure-2a corpus, each with its own private metrics
registry so the counters can be reconciled against the load report:

1. **Capacity** — closed-loop throughput and p50/p95/p99 latency at
   concurrency ∈ {1, 4, 8}.
2. **Coalescing** — an open-loop burst of identical queries against a
   deliberately slow engine; duplicates must ride the in-flight leader
   (one engine call, ``gks_serve_coalesced_total`` picks up the rest).
3. **Overload** — open-loop arrivals well above capacity with a small
   queue and a per-request deadline; the broker must shed the excess at
   admission (``gks_serve_shed_total`` accounts for every shed) while
   the requests it *does* accept still answer within the deadline.

The record lands in ``benchmarks/results/BENCH_serving.json``.
Throughput numbers are machine-dependent and recorded, not asserted;
the coalesce/shed/deadline invariants are asserted unconditionally.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.core import EngineConfig, GKSEngine, Texts
from repro.datasets.registry import load_dataset
from repro.obs.metrics import MetricsRegistry
from repro.serve import (LoadGenerator, OpenLoopSchedule, ServeConfig,
                         ServerCore)
from repro.testing import SlowEngine
from repro.xmltree.serialize import serialize_document

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_serving.json"

CORPUS_DOCUMENTS = 24
CONCURRENCY_LEVELS = (1, 4, 8)
CLOSED_ITERATIONS = 30
QUERIES = ["karen mike", "data mining students", "student karen mike john"]

COALESCE_DELAY_S = 0.05
COALESCE_BURST = 8

OVERLOAD_DELAY_S = 0.02
OVERLOAD_RATE_RPS = 200.0
OVERLOAD_COUNT = 40
OVERLOAD_DEADLINE_S = 0.5
# scheduler jitter allowance on top of the hard deadline: the budget is
# checked at stage boundaries, so a request admitted with headroom can
# overshoot by one OS scheduling quantum, not by a stage
OVERLOAD_SLACK_S = 0.1


def _engine() -> GKSEngine:
    document = load_dataset("figure2a")[0]
    texts = [serialize_document(document)] * CORPUS_DOCUMENTS
    return GKSEngine.open(Texts(texts), config=EngineConfig())


def _capacity_stage(engine: GKSEngine) -> dict:
    levels: dict[str, dict] = {}
    for concurrency in CONCURRENCY_LEVELS:
        registry = MetricsRegistry()
        with ServerCore(engine, ServeConfig(workers=4),
                        registry=registry) as core:
            report = LoadGenerator(core).run_closed(
                QUERIES, concurrency=concurrency,
                iterations=CLOSED_ITERATIONS, s=1)
        record = report.to_dict()
        assert report.completed == concurrency * CLOSED_ITERATIONS, \
            record  # closed loops never shed: offered load self-limits
        levels[str(concurrency)] = record
        print(f"  concurrency {concurrency}: {report.render()}")
    return levels


def _coalesce_stage(engine: GKSEngine) -> dict:
    registry = MetricsRegistry()
    slow = SlowEngine(engine, delay_s=COALESCE_DELAY_S)
    with ServerCore(slow, ServeConfig(workers=1),
                    registry=registry) as core:
        schedule = OpenLoopSchedule.uniform(
            rate_rps=1000.0, count=COALESCE_BURST,
            queries=[QUERIES[0]], s=1)
        report = LoadGenerator(core).run_open(schedule)
        coalesced = registry.counter("gks_serve_coalesced_total").total()
    assert report.completed == COALESCE_BURST, report.to_dict()
    assert coalesced >= 1, "duplicate burst produced no coalescing"
    assert slow.calls + coalesced == COALESCE_BURST, \
        (slow.calls, coalesced)  # every request: computed or coalesced
    print(f"  coalesce: {report.render()} | {slow.calls} engine call(s), "
          f"{coalesced} coalesced")
    return {"burst": COALESCE_BURST, "engine_calls": slow.calls,
            "coalesced_total": coalesced, "report": report.to_dict()}


def _overload_stage(engine: GKSEngine) -> dict:
    registry = MetricsRegistry()
    slow = SlowEngine(engine, delay_s=OVERLOAD_DELAY_S)
    config = ServeConfig(workers=1, queue_capacity=2, coalesce=False)
    with ServerCore(slow, config, registry=registry) as core:
        schedule = OpenLoopSchedule.uniform(
            rate_rps=OVERLOAD_RATE_RPS, count=OVERLOAD_COUNT,
            queries=QUERIES, s=1, deadline_s=OVERLOAD_DEADLINE_S)
        report = LoadGenerator(core).run_open(schedule)
        shed_total = registry.counter("gks_serve_shed_total").total()
    assert report.shed > 0, \
        "offered load 4x capacity must overflow a 2-slot queue"
    assert shed_total == report.shed, (shed_total, report.shed)
    p99 = report.latency_percentiles()["p99"]
    assert p99 <= OVERLOAD_DEADLINE_S + OVERLOAD_SLACK_S, \
        f"accepted p99 {p99:.3f}s blew the {OVERLOAD_DEADLINE_S}s deadline"
    print(f"  overload: {report.render()} | shed_total={shed_total}")
    return {"offered_rps": OVERLOAD_RATE_RPS, "count": OVERLOAD_COUNT,
            "deadline_s": OVERLOAD_DEADLINE_S, "shed_total": shed_total,
            "accepted_p99_s": p99, "report": report.to_dict()}


def test_serving_benchmark_report():
    engine = _engine()
    print()
    started = time.perf_counter()
    record = {
        "cpu_count": os.cpu_count(),
        "corpus_documents": CORPUS_DOCUMENTS,
        "closed_loop_by_concurrency": _capacity_stage(engine),
        "coalesce": _coalesce_stage(engine),
        "overload": _overload_stage(engine),
    }
    record["bench_seconds"] = time.perf_counter() - started
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(record, indent=2, sort_keys=True)
                            + "\n", encoding="utf-8")
    print(f"serving bench -> {RESULTS_PATH}")
