"""Index persistence (paper §2.4: "Creating the index is a onetime
activity").

An index is written as a single gzip-compressed JSON file.  Dewey ids are
stored in the paper's dotted notation; posting lists stay sorted on disk so
loading needs no re-sort (a checksum of sortedness is verified on load).
The format is versioned; loading an unknown version fails loudly rather
than guessing.

Table 4's "Index Size" column is measured with :func:`index_size_bytes`.
"""

from __future__ import annotations

import gzip
import json
from pathlib import Path

from repro.errors import StorageError
from repro.index.builder import GKSIndex
from repro.index.hashtables import NodeHashes
from repro.index.inverted import InvertedIndex
from repro.index.statistics import IndexStats
from repro.text.analyzer import Analyzer
from repro.xmltree.dewey import format_dewey, parse_dewey

FORMAT_VERSION = 1


def save_index(index: GKSIndex, path: str | Path) -> Path:
    """Write *index* to *path* (gzip JSON).  Returns the path written."""
    path = Path(path)
    payload = {
        "version": FORMAT_VERSION,
        "analyzer": {
            "use_stopwords": index.analyzer.use_stopwords,
            "use_stemming": index.analyzer.use_stemming,
        },
        "document_names": list(index.document_names),
        "stats": index.stats.to_dict(),
        "entity_hash": {format_dewey(dewey): count
                        for dewey, count in index.hashes.entity_table.items()},
        "element_hash": {format_dewey(dewey): count
                         for dewey, count
                         in index.hashes.element_table.items()},
        "postings": {keyword: [format_dewey(dewey) for dewey in posting_list]
                     for keyword, posting_list in index.inverted.items()},
    }
    try:
        with gzip.open(path, "wt", encoding="utf-8") as handle:
            json.dump(payload, handle, separators=(",", ":"))
    except OSError as exc:
        raise StorageError(f"cannot write index to {path}: {exc}") from exc
    return path


def load_index(path: str | Path) -> GKSIndex:
    """Read an index previously written by :func:`save_index`."""
    path = Path(path)
    try:
        with gzip.open(path, "rt", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, EOFError, json.JSONDecodeError) as exc:
        # EOFError: truncated gzip stream
        raise StorageError(f"cannot read index from {path}: {exc}") from exc

    version = payload.get("version")
    if version != FORMAT_VERSION:
        raise StorageError(
            f"unsupported index format version {version!r} in {path}")

    inverted = InvertedIndex.from_mapping({
        keyword: [parse_dewey(text) for text in posting_list]
        for keyword, posting_list in payload["postings"].items()})
    if not inverted.check_integrity():
        raise StorageError(f"corrupt posting lists in {path}")

    hashes = NodeHashes.from_mappings(
        entity={parse_dewey(text): count
                for text, count in payload["entity_hash"].items()},
        element={parse_dewey(text): count
                 for text, count in payload["element_hash"].items()})

    analyzer_config = payload.get("analyzer", {})
    analyzer = Analyzer(
        use_stopwords=analyzer_config.get("use_stopwords", True),
        use_stemming=analyzer_config.get("use_stemming", True))

    return GKSIndex(
        inverted=inverted, hashes=hashes,
        stats=IndexStats.from_dict(payload.get("stats", {})),
        analyzer=analyzer,
        document_names=tuple(payload.get("document_names", ())))


def index_size_bytes(path: str | Path) -> int:
    """On-disk size of a saved index (Table 4's "Index Size" column)."""
    return Path(path).stat().st_size
