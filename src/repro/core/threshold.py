"""Choosing the threshold ``s`` automatically.

The paper leaves ``s`` to the user (its experiments run s=1 and
s=|Q|/2).  In practice a good default is data-dependent: |RQ(s)| is
non-increasing in ``s`` (Lemma 2), usually with a sharp cliff where the
query's coherent core stops co-occurring.  ``s_profile`` measures the
whole curve with *one* search — the s=1 response's per-node distinct
counts determine every |RQ(s)| upper envelope — and ``suggest_s`` picks
the largest ``s`` before the cliff (the knee), so the query is as strict
as the data supports without going empty.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ValidationError
from repro.core.query import Query
from repro.core.search import search
from repro.index.builder import GKSIndex


@dataclass(frozen=True)
class SProfile:
    """|RQ(s)|-style counts per s, derived from the s=1 response."""

    query: Query
    #: counts[s] = number of s=1 response nodes with ≥ s distinct
    #: keywords (an upper envelope of |RQ(s)| — deeper re-grouping at
    #: higher s can only merge nodes).
    counts: dict[int, int]

    def best_coverage(self) -> int:
        return max((s for s, count in self.counts.items() if count > 0),
                   default=0)


def s_profile(index: GKSIndex, query: Query) -> SProfile:
    """Measure the response-size envelope across all thresholds."""
    response = search(index, query.with_s(1))
    counts = {
        s: sum(1 for node in response if node.distinct_keywords >= s)
        for s in range(1, len(query.keywords) + 1)
    }
    return SProfile(query=query, counts=counts)


def suggest_s(index: GKSIndex, query: Query,
              min_results: int = 1) -> int:
    """The strictest ``s`` that still leaves ≥ *min_results* nodes.

    Falls back to 1 when even single keywords barely match.  This is the
    'as precise as the data allows' default: for Example 2's query it
    returns 3 (the trio's co-authorship), for a fully coherent query it
    returns |Q| (AND semantics), for scattershot keywords it returns 1.
    """
    if min_results < 1:
        raise ValidationError(f"min_results must be positive: {min_results}")
    profile = s_profile(index, query)
    for s in range(len(query.keywords), 0, -1):
        if profile.counts.get(s, 0) >= min_results:
            return s
    return 1
