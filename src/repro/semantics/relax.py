"""No-but-semantic-match relaxation for empty strict results.

When strict ``min(s, |Q|)`` search returns nothing, this pipeline
rewrites the query with *single-edit* relaxations drawn from a
vocabulary derived from the corpus itself — the same attribute
co-occurrence structure the §6 data-independence analysis mines — and
serves the union of the rewrites' strict results, penalty-ranked and
provenance-marked:

* **tag generalization** (penalty 0.25): a query keyword that names an
  element tag is replaced by a parent tag's keyword — climbing the
  schema one level (``title`` → ``book``).
* **sibling-term substitution** (penalty 0.30): a keyword is replaced
  by a term that co-occurs in a *sibling* element somewhere in the
  corpus — the DI intuition that siblings of a match carry the
  semantically adjacent vocabulary.
* **keyword drop** (penalty 0.40): one keyword is removed (only for
  ``|Q| > 1``); the cheapest edit semantically but the costliest in
  precision, hence the highest penalty.

Candidates are enumerated exhaustively (no sampling, no caps — the
brute-force oracle in ``repro.baselines.relaxation`` re-derives the
same set independently), evaluated in deterministic ``(penalty, op,
source, replacement)`` order through the caller-supplied strict search
function, deduplicated per result node keeping the cheapest edit, and
ranked by ``(penalty, -score, dewey)``.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Iterable

from repro.core.budget import SearchBudget
from repro.core.query import Query
from repro.core.results import (GKSResponse, RankedNode, RelaxationStep,
                                SearchProfile, SemanticsInfo)
from repro.obs.metrics import MetricsRegistry, global_registry
from repro.obs.stats import QueryStats
from repro.obs.trace import NOOP_TRACER
from repro.text.analyzer import Analyzer
from repro.xmltree.node import XMLNode
from repro.xmltree.repository import Repository

#: Fixed edit penalties; cheaper edits always outrank costlier ones.
PENALTIES = {"generalize": 0.25, "substitute": 0.30, "drop": 0.40}

SearchFn = Callable[[Query], GKSResponse]


@dataclasses.dataclass(frozen=True)
class RelaxVocabulary:
    """The corpus-derived rewrite vocabulary.

    ``tag_parents`` maps a tag keyword to the tag keywords of elements
    it appears *under*; ``siblings`` maps a directly-contained keyword
    to the keywords directly contained by its sibling elements.
    """

    tag_parents: dict[str, frozenset[str]]
    siblings: dict[str, frozenset[str]]


def _direct_keywords(node: XMLNode, analyzer: Analyzer) -> set[str]:
    keywords = set(analyzer.analyze_tag(node.tag))
    if node.has_text:
        keywords.update(analyzer.analyze(node.text))
    return keywords


def relaxation_vocabulary(repository: Repository,
                          analyzer: Analyzer) -> RelaxVocabulary:
    """Walk the corpus once and derive the single-edit vocabulary.

    A term ``t`` is a sibling term of ``k`` iff some parent has two
    distinct children ``a ≠ b`` with ``k`` directly in ``a`` and ``t``
    directly in ``b``; a tag keyword ``g`` generalizes ``k`` iff some
    element whose tag analyzes to ``k`` sits under an element whose tag
    analyzes to ``g``.
    """
    tag_parents: dict[str, set[str]] = {}
    siblings: dict[str, set[str]] = {}
    for document in repository:
        stack = [document.root]
        while stack:
            node = stack.pop()
            stack.extend(node.children)
            if not node.children:
                continue
            parent_tags = set(analyzer.analyze_tag(node.tag))
            child_terms = [_direct_keywords(child, analyzer)
                           for child in node.children]
            counts: dict[str, int] = {}
            for terms in child_terms:
                for term in terms:
                    counts[term] = counts.get(term, 0) + 1
            for child, terms in zip(node.children, child_terms):
                for keyword in analyzer.analyze_tag(child.tag):
                    tag_parents.setdefault(keyword, set()).update(
                        parent_tags)
                # Terms in other children: count≥2 means the term also
                # occurs outside this child; count==1 outside means it
                # occurs only elsewhere.
                others = {term for term, count in counts.items()
                          if count >= 2 or term not in terms}
                for keyword in terms:
                    siblings.setdefault(keyword, set()).update(
                        others - {keyword})
    return RelaxVocabulary(
        tag_parents={k: frozenset(v - {k}) for k, v in tag_parents.items()},
        siblings={k: frozenset(v) for k, v in siblings.items()})


def relaxation_candidates(vocabulary: RelaxVocabulary,
                          query: Query) -> list[RelaxationStep]:
    """Every single-edit rewrite of *query*, cheapest first.

    Rewrites that collapse onto an existing query keyword are skipped;
    duplicate keyword tuples keep only their cheapest edit.  The order —
    ``(penalty, op, source, replacement)`` — is total and deterministic,
    and the exhaustive-relaxation oracle reproduces it.
    """
    keywords = query.keywords
    steps: list[RelaxationStep] = []
    for keyword in keywords:
        rest = tuple(k for k in keywords if k != keyword)
        for parent in sorted(vocabulary.tag_parents.get(keyword, ())):
            if parent not in keywords:
                steps.append(RelaxationStep(
                    op="generalize", source=keyword, replacement=parent,
                    keywords=tuple(parent if k == keyword else k
                                   for k in keywords),
                    penalty=PENALTIES["generalize"]))
        for term in sorted(vocabulary.siblings.get(keyword, ())):
            if term not in keywords:
                steps.append(RelaxationStep(
                    op="substitute", source=keyword, replacement=term,
                    keywords=tuple(term if k == keyword else k
                                   for k in keywords),
                    penalty=PENALTIES["substitute"]))
        if len(keywords) > 1:
            steps.append(RelaxationStep(
                op="drop", source=keyword, replacement=None, keywords=rest,
                penalty=PENALTIES["drop"]))
    steps.sort(key=lambda step: (step.penalty, step.op, step.source,
                                 step.replacement or ""))
    deduped: dict[tuple[str, ...], RelaxationStep] = {}
    for step in steps:
        deduped.setdefault(step.keywords, step)
    return sorted(deduped.values(),
                  key=lambda step: (step.penalty, step.op, step.source,
                                    step.replacement or ""))


def merge_relaxed(results: Iterable[tuple[RelaxationStep, GKSResponse]]
                  ) -> list[RankedNode]:
    """Dedup per-rewrite results by node, keeping the cheapest edit.

    *results* must already be in candidate (cheapest-first) order; ties
    on a node therefore resolve to the earlier candidate.  The merged
    list ranks by ``(penalty, -score, dewey)``.
    """
    merged: dict[tuple, RankedNode] = {}
    for step, response in results:
        for node in response.nodes:
            if node.dewey not in merged:
                merged[node.dewey] = dataclasses.replace(
                    node, relaxation=step)
    return sorted(merged.values(),
                  key=lambda node: (node.relaxation.penalty, -node.score,
                                    node.dewey))


def relax_search(query: Query, vocabulary: RelaxVocabulary,
                 search_fn: SearchFn, *,
                 budget: SearchBudget | None = None,
                 tracer=None,
                 registry: MetricsRegistry | None = None) -> GKSResponse:
    """Rescue an empty strict result via single-edit relaxations.

    The caller has already established that strict search over *query*
    is empty; *search_fn* runs one strict query (the engine passes its
    own monolithic/sharded pipeline).  Under a tripped *budget* the
    candidate sweep stops early and the response degrades with whatever
    rewrites completed — a strict subset of the unbudgeted answer.
    """
    if tracer is None:
        tracer = NOOP_TRACER
    if registry is None:
        registry = global_registry()
    clock = tracer.clock
    effective = query.with_s(query.effective_s)
    # The budget is deliberately NOT (re)armed here: the engine's relaxed
    # flow passes the budget that already timed the strict phase, and
    # restarting it would hand the sweep a fresh deadline.  A cold budget
    # auto-arms at the first checkpoint.

    candidates = relaxation_candidates(vocabulary, effective)
    hits: list[tuple[RelaxationStep, GKSResponse]] = []
    with tracer.span("relax_search", query=" ".join(effective.keywords),
                     s=effective.s, candidates=len(candidates)) as root:
        started = clock()
        for processed, step in enumerate(candidates):
            if budget is not None and budget.checkpoint(
                    "relax", processed, len(candidates)):
                break
            rewritten = Query.of(step.keywords, s=effective.s)
            with tracer.span("candidate", op=step.op,
                             rewrite=" ".join(step.keywords)) as span:
                response = search_fn(rewritten)
                span.add("nodes", len(response))
            registry.counter(
                "gks_semantics_relaxations_total",
                help="Relaxation rewrites evaluated, by operator."
            ).inc(labels={"op": step.op})
            if response.nodes:
                hits.append((step, response))
        nodes = merge_relaxed(hits)
        finished = clock()
        tripped = budget is not None and budget.tripped
        root.set(mode="relaxed", emitted=len(nodes))
        if tripped:
            root.set(degraded=True, trip_stage=budget.report.stage,
                     trip_reason=budget.report.reason)

    seconds = finished - started
    applied = []
    for node in nodes:
        if node.relaxation not in applied:
            applied.append(node.relaxation)
    registry.counter(
        "gks_semantics_searches_total",
        help="Searches served by the repro.semantics subsystem."
    ).inc(labels={"mode": "relaxed"})
    registry.counter(
        "gks_semantics_relaxation_triggered_total",
        help="Empty strict results rescued by the relaxation pipeline."
    ).inc()
    registry.histogram(
        "gks_semantics_seconds",
        help="Wall time of semantics-mode searches."
    ).observe(seconds, labels={"mode": "relaxed"})

    profile = SearchProfile(merged_list_size=0, lcp_entries=0, lce_nodes=0,
                            seconds=seconds, rank_seconds=seconds)
    stats = QueryStats(total_seconds=seconds, rank_seconds=seconds,
                       nodes_emitted=len(nodes),
                       budget_trips=1 if tripped else 0,
                       trip_stage=budget.report.stage if tripped else None,
                       trip_reason=budget.report.reason if tripped else None,
                       degraded=tripped, mode="relaxed",
                       semantics_candidates=len(candidates),
                       relaxed=True)
    return GKSResponse(query=effective, nodes=tuple(nodes), profile=profile,
                       degraded=tripped,
                       degradation=budget.report if tripped else None,
                       stats=stats,
                       semantics=SemanticsInfo(mode="relaxed", relaxed=True,
                                               relaxations=tuple(applied)))
