"""End-to-end search tests pinning the paper's Table 1 and Example 3."""

import pytest

from repro.core.query import Query
from repro.core.search import search


class TestTable1:
    """Fig. 1 queries Q1–Q3 with the thresholds of Table 1."""

    def test_q1_s3_returns_x2_only(self, figure1_index, fig1_ids):
        response = search(figure1_index, Query.of(["a", "b", "c"], s=3))
        assert response.deweys == [fig1_ids["x2"]]

    def test_q2_s2_returns_x2_then_x3(self, figure1_index, fig1_ids):
        response = search(figure1_index, Query.of(["a", "b", "e"], s=2))
        assert response.deweys == [fig1_ids["x2"], fig1_ids["x3"]]

    def test_q3_s2_returns_x2_x3_x4_ranked(self, figure1_index, fig1_ids):
        response = search(figure1_index,
                          Query.of(["a", "b", "c", "d"], s=2))
        assert response.deweys == [fig1_ids["x2"], fig1_ids["x3"],
                                   fig1_ids["x4"]]
        scores = [node.score for node in response]
        assert scores == pytest.approx([3.0, 2.5, 2.0])

    def test_q3_full_and_semantics_returns_root_region(self, figure1_index,
                                                       fig1_ids):
        # with s=|Q| GKS behaves like SLCA: only the root covers all four
        response = search(figure1_index,
                          Query.of(["a", "b", "c", "d"], s=4))
        assert response.deweys == [fig1_ids["r"]]

    def test_root_never_returned_when_deeper_nodes_match(self,
                                                         figure1_index,
                                                         fig1_ids):
        response = search(figure1_index, Query.of(["a", "b"], s=2))
        assert fig1_ids["r"] not in response.deweys
        assert fig1_ids["x1"] not in response.deweys  # ancestor of x2


class TestExample3:
    """Q4 = {student, karen, mike, john, harry}, s=2 over Fig. 2(a)."""

    def test_courses_returned_as_lce_nodes(self, figure2a_index):
        query = Query.of(["student", "karen", "mike", "john", "harri"],
                         s=2)
        response = search(figure2a_index, query)
        returned = set(response.deweys)
        assert {(0, 1, 1, 0), (0, 1, 1, 1), (0, 1, 1, 2)} <= returned
        for node in response:
            if node.dewey in {(0, 1, 1, 0), (0, 1, 1, 1), (0, 1, 1, 2)}:
                assert node.is_lce

    def test_data_mining_course_ranks_first(self, figure2a_index):
        # the Data Mining course holds karen+mike+john+student tags
        query = Query.of(["student", "karen", "mike", "john", "harri"],
                         s=2)
        response = search(figure2a_index, query)
        assert response[0].dewey == (0, 1, 1, 0)

    def test_example3_perfect_query_exposes_course(self, figure2a_index):
        # §2.3: Q5 = {student, karen, mike, john} with s=|Q| — LCA gives
        # the <Students> holder; GKS's LCE is the Course
        query = Query.of(["student", "karen", "mike", "john"], s=4)
        response = search(figure2a_index, query)
        assert response[0].dewey == (0, 1, 1, 0)
        assert response[0].is_lce


class TestResponseShape:
    def test_profile_counts(self, figure1_index):
        response = search(figure1_index, Query.of(["a", "b"], s=2))
        assert response.profile.merged_list_size == 7  # 4×a + 3×b
        assert response.profile.seconds >= 0.0
        assert response.profile.lcp_entries >= len(response)

    def test_effective_s_is_clamped(self, figure1_index):
        response = search(figure1_index, Query.of(["a", "b"], s=99))
        assert response.query.s == 2

    def test_sorted_by_score_then_document_order(self, figure1_index):
        response = search(figure1_index, Query.of(["a", "b", "c", "d"],
                                                  s=1))
        keys = [(-node.score, -node.distinct_keywords, node.dewey)
                for node in response]
        assert keys == sorted(keys)

    def test_exact_distinct_counts(self, figure1_index, fig1_ids):
        response = search(figure1_index,
                          Query.of(["a", "b", "c", "d"], s=2))
        by_dewey = {node.dewey: node for node in response}
        assert by_dewey[fig1_ids["x2"]].distinct_keywords == 3
        assert by_dewey[fig1_ids["x4"]].distinct_keywords == 2

    def test_no_results_for_absent_keywords(self, figure1_index):
        response = search(figure1_index, Query.of(["zzz", "qqq"], s=1))
        assert len(response) == 0

    def test_monotone_result_counts_in_s(self, figure1_index):
        # Lemma 2's shape: raising s cannot grow the response
        query = Query.of(["a", "b", "c", "d"])
        sizes = [len(search(figure1_index, query.with_s(s)))
                 for s in (1, 2, 3, 4)]
        assert sizes == sorted(sizes, reverse=True)

    def test_top_slices_ranked_list(self, figure1_index):
        response = search(figure1_index, Query.of(["a", "b", "c", "d"],
                                                  s=2))
        assert list(response.top(2)) == list(response.nodes[:2])

    def test_max_distinct_and_true_nodes(self, figure1_index, fig1_ids):
        response = search(figure1_index,
                          Query.of(["a", "b", "c", "d"], s=2))
        assert response.max_distinct_keywords() == 3
        true_nodes = {node.dewey
                      for node in response.nodes_with_max_keywords()}
        assert true_nodes == {fig1_ids["x2"], fig1_ids["x3"]}
