"""Query refinement (paper §6.1).

GKS helps a user repair an 'imperfect' query in two ways:

* **Partition/shrink** — the response itself shows how the query keywords
  are distributed: grouping response nodes by the keyword subset they match
  suggests sub-queries such as Q3 → {a, b, c} and {a, b, d} (Example 1).
* **Grow** — DI supplies highly relevant keywords absent from the query;
  adding one yields queries such as QD1 + "Marek Rusinkiewicz" (§7.4),
  which surfaced ten joint articles where the original found one.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.core.insights import InsightReport
from repro.core.query import Query
from repro.core.results import GKSResponse


class RefinementKind(str, Enum):
    SUBSET = "subset"       # drop keywords: match an observed distribution
    EXPANSION = "expansion"  # add a DI keyword


@dataclass(frozen=True)
class Refinement:
    """One suggested refined query."""

    kind: RefinementKind
    keywords: tuple[str, ...]
    support: float           # summed rank of the nodes backing it
    node_count: int          # how many response nodes match this subset

    def as_query(self, s: int | None = None) -> Query:
        return Query.of(list(self.keywords),
                        s=s if s is not None else len(self.keywords))


def suggest_subsets(response: GKSResponse, top: int = 5,
                    min_size: int = 2) -> list[Refinement]:
    """Sub-queries from the observed keyword distribution (§6.1).

    Groups response nodes by their matched keyword set; a group's support
    is the summed rank of its nodes.  Subsets equal to the whole query are
    skipped (they are not refinements), as are singletons below
    *min_size*.
    """
    groups: dict[tuple[str, ...], list[float]] = {}
    full = set(response.query.keywords)
    for node in response.nodes:
        matched = tuple(sorted(node.matched_keywords))
        if len(matched) < min_size or set(matched) == full:
            continue
        groups.setdefault(matched, []).append(node.score)

    refinements = [
        Refinement(kind=RefinementKind.SUBSET,
                   keywords=_in_query_order(matched, response.query),
                   support=sum(scores), node_count=len(scores))
        for matched, scores in groups.items()
    ]
    refinements.sort(key=lambda r: (-r.support, -len(r.keywords),
                                    r.keywords))
    return refinements[:top]


def suggest_expansions(response: GKSResponse, insights: InsightReport,
                       top: int = 5) -> list[Refinement]:
    """Grown queries: original keywords plus one top DI keyword (§7.4)."""
    refinements: list[Refinement] = []
    seen: set[str] = set()
    for insight in insights:
        # grow by the whole attribute value (a phrase keyword) so the
        # refined query reads like the paper's §7.4 example —
        # QD1 + "Marek Rusinkiewicz"
        addition = insight.phrase_keyword or insight.keyword
        if addition in seen or addition in response.query.keywords:
            continue
        seen.add(addition)
        refinements.append(Refinement(
            kind=RefinementKind.EXPANSION,
            keywords=response.query.keywords + (addition,),
            support=insight.weight,
            node_count=insight.supporting_nodes))
        if len(refinements) >= top:
            break
    return refinements


def suggest(response: GKSResponse, insights: InsightReport | None = None,
            top: int = 5) -> list[Refinement]:
    """Combined suggestion list: subsets first, then expansions."""
    suggestions = suggest_subsets(response, top=top)
    if insights is not None:
        suggestions.extend(suggest_expansions(response, insights, top=top))
    return suggestions


def _in_query_order(keywords: tuple[str, ...],
                    query: Query) -> tuple[str, ...]:
    order = query.keyword_index()
    return tuple(sorted(keywords, key=lambda keyword: order[keyword]))
