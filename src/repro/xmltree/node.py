"""Labeled ordered XML tree nodes (paper §2.1).

The data model follows the paper: an XML document is a rooted labeled tree
whose nodes are XML elements; an element may *directly contain* its text
value (what the paper calls a "text node": "an XML element directly
containing its value").  Text therefore lives on the element itself and does
not consume a Dewey component — exactly as in Table 3 where the keyword
``Karen`` is posted at the Dewey id of its ``<Student>`` element.

XML attributes (``<a key="v">``) are not part of the paper's model; the
parser can either keep them in :attr:`XMLNode.xml_attributes` or materialise
them as child elements (see :mod:`repro.xmltree.parser`), which is how real
datasets such as Mondial expose attribute data to keyword search.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.errors import ValidationError
from repro.xmltree import dewey as dw
from repro.xmltree.dewey import Dewey


class XMLNode:
    """One element of a labeled ordered XML tree.

    Parameters
    ----------
    tag:
        The element label (e.g. ``"author"``).
    dewey:
        The node's Dewey id, including the document prefix.
    text:
        Direct text content of the element, or ``None``.
    xml_attributes:
        Raw XML attributes, kept for fidelity when round-tripping documents.
    """

    __slots__ = ("tag", "dewey", "text", "children", "parent",
                 "xml_attributes")

    def __init__(self, tag: str, dewey: Dewey, text: str | None = None,
                 xml_attributes: dict[str, str] | None = None) -> None:
        self.tag = tag
        self.dewey = dewey
        self.text = text
        self.children: list[XMLNode] = []
        self.parent: XMLNode | None = None
        self.xml_attributes: dict[str, str] = xml_attributes or {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_child(self, tag: str, text: str | None = None,
                  xml_attributes: dict[str, str] | None = None) -> "XMLNode":
        """Append a new child element and return it.

        The child receives the next ordinal under this node's Dewey id.
        """
        child = XMLNode(tag, dw.child_of(self.dewey, len(self.children)),
                        text=text, xml_attributes=xml_attributes)
        child.parent = self
        self.children.append(child)
        return child

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------
    @property
    def child_count(self) -> int:
        """Number of direct element children (the ``m`` of the ranking)."""
        return len(self.children)

    @property
    def is_leaf(self) -> bool:
        """True when the element has no child elements."""
        return not self.children

    @property
    def has_text(self) -> bool:
        """True when the element directly contains a (non-blank) value."""
        return bool(self.text and self.text.strip())

    @property
    def depth(self) -> int:
        """Depth below the document root (root is 0)."""
        return dw.depth_of(self.dewey)

    def iter_subtree(self) -> Iterator["XMLNode"]:
        """Yield this node and all descendants in document (pre-) order."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def iter_descendants(self) -> Iterator["XMLNode"]:
        """Yield all strict descendants in document order."""
        subtree = self.iter_subtree()
        next(subtree)
        yield from subtree

    def iter_ancestors(self) -> Iterator["XMLNode"]:
        """Yield strict ancestors, nearest first."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def find_first(self, tag: str) -> "XMLNode | None":
        """First descendant-or-self with the given tag, in document order."""
        for node in self.iter_subtree():
            if node.tag == tag:
                return node
        return None

    def find_all(self, tag: str) -> list["XMLNode"]:
        """All descendants-or-self with the given tag, in document order."""
        return [node for node in self.iter_subtree() if node.tag == tag]

    def path_from(self, ancestor: "XMLNode") -> list["XMLNode"]:
        """Nodes on the path *ancestor* → … → self, both ends included.

        Raises :class:`~repro.errors.ValidationError` when *ancestor* is
        not an ancestor-or-self.
        """
        if not dw.is_ancestor_or_self(ancestor.dewey, self.dewey):
            raise ValidationError(
                f"{dw.format_dewey(ancestor.dewey)} is not an ancestor of "
                f"{dw.format_dewey(self.dewey)}")
        chain: list[XMLNode] = [self]
        node = self
        while node.dewey != ancestor.dewey:
            assert node.parent is not None
            node = node.parent
            chain.append(node)
        chain.reverse()
        return chain

    def tag_path(self) -> list[str]:
        """Element labels from the document root down to this node."""
        labels = [node.tag for node in self.iter_ancestors()]
        labels.reverse()
        labels.append(self.tag)
        return labels

    # ------------------------------------------------------------------
    # Content queries
    # ------------------------------------------------------------------
    def subtree_text(self, separator: str = " ") -> str:
        """Concatenated text of this node's subtree, in document order."""
        chunks = [node.text for node in self.iter_subtree() if node.has_text]
        return separator.join(chunk.strip() for chunk in chunks
                              if chunk is not None)

    def same_label_sibling_count(self) -> int:
        """Number of *other* children of the parent sharing this tag.

        This is the ``u*`` test of §2.1: a node with one or more same-label
        siblings is a repeating-node candidate.
        """
        if self.parent is None:
            return 0
        return sum(1 for sibling in self.parent.children
                   if sibling.tag == self.tag) - 1

    # ------------------------------------------------------------------
    # Dunder helpers
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        value = f" {self.text!r}" if self.has_text else ""
        return f"<XMLNode {self.tag} {dw.format_dewey(self.dewey)}{value}>"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, XMLNode):
            return NotImplemented
        return self.dewey == other.dewey and self.tag == other.tag

    def __hash__(self) -> int:
        return hash(self.dewey)


def build_tree(spec: Sequence, doc: int = 0) -> XMLNode:
    """Build a tree from a nested ``(tag, text?, children?)`` spec.

    The spec format is convenient for tests and toy datasets::

        build_tree(("r", [
            ("x1", [("a", "a1"), ("b", "b1")]),
        ]))

    Each item is ``(tag,)``, ``(tag, text)``, ``(tag, children)`` or
    ``(tag, text, children)``.
    """
    tag, text, children = _unpack_spec(spec)
    root = XMLNode(tag, (doc,), text=text)
    _attach_children(root, children)
    return root


def _unpack_spec(spec: Sequence) -> tuple[str, str | None, Sequence]:
    tag = spec[0]
    text: str | None = None
    children: Sequence = ()
    for part in spec[1:]:
        if isinstance(part, str):
            text = part
        else:
            children = part
    return tag, text, children


def _attach_children(parent: XMLNode, specs: Sequence) -> None:
    for spec in specs:
        tag, text, children = _unpack_spec(spec)
        child = parent.add_child(tag, text=text)
        _attach_children(child, children)
