"""GKS core: search pipeline, ranking, insights, refinement, engine."""

from repro.core.budget import DegradationReport, SearchBudget
from repro.core.chunks import chunk_keep_set, response_chunk
from repro.core.config import EngineConfig, Paths, SearchOptions, Texts
from repro.core.engine import GKSEngine
from repro.core.scatter import sharded_search, sharded_top_k
from repro.core.explain import RankExplanation, explain_rank
from repro.core.export import (insights_to_dict, node_to_dict,
                               response_to_dict, session_to_dict)
from repro.core.highlight import highlight_snippet, highlight_text
from repro.core.threshold import SProfile, s_profile, suggest_s
from repro.core.grouping import ResultGroup, dominant_group, group_by_tag
from repro.core.session import ExplorationSession, SessionStep
from repro.core.insights import (Insight, InsightReport, attribute_nodes_of,
                                 discover_insights, discover_recursive)
from repro.core.lce import LCEInfo, LCEResult, discover_lce
from repro.core.lcp import LCPEntry, LCPList, compute_lcp_list, sliding_blocks
from repro.core.merge import merged_list
from repro.core.query import Query, split_phrases
from repro.core.ranking import (RankBreakdown, rank_by_keyword_count,
                                rank_node, received_potential,
                                terminal_points)
from repro.core.refinement import (Refinement, RefinementKind, suggest,
                                   suggest_expansions, suggest_subsets)
from repro.core.results import GKSResponse, RankedNode, SearchProfile
from repro.core.search import search
from repro.core.topk import distinct_keyword_count, search_top_k

__all__ = [
    "DegradationReport", "EngineConfig", "Paths", "SearchBudget",
    "SearchOptions", "Texts",
    "sharded_search", "sharded_top_k",
    "ExplorationSession", "GKSEngine", "GKSResponse", "Insight",
    "InsightReport", "LCEInfo", "RankExplanation", "ResultGroup",
    "SProfile", "SessionStep", "chunk_keep_set", "dominant_group",
    "explain_rank", "group_by_tag", "highlight_snippet",
    "highlight_text", "insights_to_dict", "node_to_dict",
    "response_chunk", "response_to_dict", "s_profile", "session_to_dict",
    "suggest_s",
    "LCEResult", "LCPEntry", "LCPList", "Query", "RankBreakdown",
    "RankedNode", "Refinement", "RefinementKind", "SearchProfile",
    "attribute_nodes_of", "compute_lcp_list", "discover_insights",
    "discover_lce", "discover_recursive", "merged_list",
    "distinct_keyword_count", "rank_by_keyword_count", "rank_node",
    "received_potential", "search", "search_top_k", "sliding_blocks",
    "split_phrases", "suggest", "suggest_expansions", "suggest_subsets",
    "terminal_points",
]
