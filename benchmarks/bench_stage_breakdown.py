"""Stage-level cost decomposition of the search pipeline (§4.2).

The complexity analysis says merge and LCP dominate and grow with
``|SL|`` (O(d·|SL|·log n) and O(d·|SL|)), LCE adds the entity walk, and
ranking grows with the *response* size.  This bench prints the measured
split per query size so the claim is visible, and checks that the stage
sum accounts for the total.
"""

from __future__ import annotations

import pytest

from repro.core.query import Query
from repro.core.search import search
from repro.eval.reporting import render_table
from repro.eval.runner import engine_for, frequency_ladder


def _queries():
    engine = engine_for("swissprot", scale=2)
    ladder = frequency_ladder(engine.index, count=16)
    return engine, [
        Query.of(ladder[:n], s=max(1, n // 2)) for n in (2, 4, 8, 16)
        if len(ladder) >= n
    ]


@pytest.mark.parametrize("position", [0, 1, 2, 3])
def test_stage_timing_overhead(position, benchmark):
    """Timing instrumentation must not change results."""
    engine, queries = _queries()
    if position >= len(queries):
        pytest.skip("vocabulary too small")
    query = queries[position]
    response = benchmark(lambda: search(engine.index, query))
    assert response.stats.total_seconds >= 0


def test_stage_breakdown_report(results_writer, benchmark):
    """The stage split, read from each response's QueryStats record."""
    def measure():
        engine, queries = _queries()
        rows = []
        for query in queries:
            # median-ish of three runs for stable splits
            stats = sorted(
                (search(engine.index, query).stats for _ in range(3)),
                key=lambda item: item.total_seconds)[1]
            total = stats.total_seconds or 1e-9
            stages = stats.stage_breakdown()
            rows.append((len(query.keywords),
                         stats.postings_scanned,
                         f"{stats.total_seconds * 1000:.2f}",
                         *(f"{stages[name] / total:.0%}"
                           for name in ("merge", "lcp", "lce", "rank"))))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    results_writer("stage_breakdown", render_table(
        ["n", "|SL|", "total ms", "merge", "lcp", "lce", "rank"], rows,
        title="§4.2 — pipeline stage breakdown (swissprot)"))
    assert rows


def test_stage_sum_accounts_for_total():
    engine, queries = _queries()
    stats = search(engine.index, queries[-1]).stats
    assert stats.stage_sum() == pytest.approx(stats.total_seconds,
                                              rel=0.05)
