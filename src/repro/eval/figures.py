"""ASCII rendering of the figure series (Figs 8–10).

The paper's figures are scatter/line plots; the benchmark harness is
text-only, so each figure is rendered as a horizontal bar chart — good
enough to eyeball linearity and crossovers in ``benchmarks/results``.
"""

from __future__ import annotations

from typing import Sequence
from repro.errors import ValidationError


def render_bar_chart(title: str, points: Sequence[tuple[object, float]],
                     width: int = 50, y_label: str = "") -> str:
    """One bar per (label, value) pair, scaled to *width* characters."""
    if width < 1:
        raise ValidationError(f"width must be positive: {width}")
    lines = [title]
    if not points:
        lines.append("(no data)")
        return "\n".join(lines)

    peak = max(value for _, value in points)
    label_width = max(len(str(label)) for label, _ in points)
    for label, value in points:
        bar = "#" * (round(width * value / peak) if peak > 0 else 0)
        lines.append(f"{str(label).rjust(label_width)} | "
                     f"{bar} {value:.2f}{y_label}")
    return "\n".join(lines)


def render_scatter(title: str, points: Sequence[tuple[float, float]],
                   width: int = 60, height: int = 12,
                   x_label: str = "x", y_label: str = "y") -> str:
    """A coarse dot plot on a character grid (for Fig. 8's cloud)."""
    if not points:
        return f"{title}\n(no data)"
    xs = [x for x, _ in points]
    ys = [y for _, y in points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    x_span = (x_high - x_low) or 1.0
    y_span = (y_high - y_low) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for x, y in points:
        column = min(int((x - x_low) / x_span * (width - 1)), width - 1)
        row = min(int((y - y_low) / y_span * (height - 1)), height - 1)
        grid[height - 1 - row][column] = "*"

    lines = [title]
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f" {x_label}: {x_low:g} .. {x_high:g}   "
                 f"{y_label}: {y_low:g} .. {y_high:g}")
    return "\n".join(lines)
