"""E2 — Table 4: index size and preparation time per corpus.

The paper reports (real corpora, Java, Core2 Duo): SIGMOD Records 483 KB /
0.15 s through DBLP 1.45 GB / 238 s, with index size slightly below data
size and build time *linear* in data size.  Our corpora are synthetic and
scaled down; the comparison targets the two shape claims: index ≈ 0.8–1×
data size and linear build time (checked in the scalability bench).
"""

from __future__ import annotations

import time

import pytest

from repro.datasets.registry import load_dataset
from repro.eval.reporting import render_table
from repro.index.builder import IndexBuilder
from repro.index.storage import index_size_bytes, save_index
from repro.xmltree.serialize import serialize_document

CORPORA = ["sigmod", "mondial", "plays", "treebank", "swissprot",
           "protein", "dblp", "nasa", "interpro"]


@pytest.fixture(scope="module")
def corpus_texts():
    texts = {}
    for name in CORPORA:
        repository = load_dataset(name)
        texts[name] = [serialize_document(document)
                       for document in repository]
    return texts


def _build(texts):
    builder = IndexBuilder()
    for position, text in enumerate(texts):
        builder.add_xml(text, name=f"doc{position}")
    return builder.build()


@pytest.mark.parametrize("name", CORPORA)
def test_index_build_per_corpus(name, corpus_texts, benchmark):
    """Benchmark the single-pass build (parse + categorize + index)."""
    index = benchmark(_build, corpus_texts[name])
    assert index.stats.total_nodes > 0


def test_table4_report(corpus_texts, tmp_path, results_writer, benchmark):
    def build_all():
        rows = []
        for name in CORPORA:
            texts = corpus_texts[name]
            data_bytes = sum(len(text.encode()) for text in texts)
            started = time.perf_counter()
            index = _build(texts)
            elapsed = time.perf_counter() - started
            saved = save_index(index, tmp_path / f"{name}.idx.gz")
            rows.append((name, f"{data_bytes / 1024:.0f}KB",
                         f"{index_size_bytes(saved) / 1024:.0f}KB",
                         index.depth, f"{elapsed:.3f}s"))
        return rows

    rows = benchmark.pedantic(build_all, rounds=1, iterations=1)
    results_writer("table4_indexing", render_table(
        ["Data Set", "Data Size", "Index Size", "XML Depth",
         "Index Preparation Time"], rows,
        title="Table 4 — index size and preparation time (synthetic, "
              "scaled down)"))
    depths = {row[0]: row[3] for row in rows}
    assert depths["treebank"] >= 30      # the paper's deep outlier
