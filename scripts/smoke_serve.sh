#!/usr/bin/env bash
# Serving smoke test: boot `gks serve` on an ephemeral port over the toy
# corpus (with an injected per-query delay so requests overlap), fire
# concurrent duplicate queries, and assert from /metrics that the broker
# coalesced them onto one in-flight computation.  Finish with a SIGTERM
# and require a clean drain.
#
# Usage:  bash scripts/smoke_serve.sh
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH=src

WORKDIR="$(mktemp -d)"
SERVER_PID=""
cleanup() {
    [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null || true
    rm -rf "$WORKDIR"
}
trap cleanup EXIT

echo "== generate toy corpus =="
python -m repro dataset figure2a -o "$WORKDIR"

echo "== boot gks serve on an ephemeral port =="
python -m repro serve "$WORKDIR"/figure2a_0.xml \
    --port 0 --serve-workers 2 --slow-ms 300 \
    >"$WORKDIR/serve.log" 2>&1 &
SERVER_PID=$!

for _ in $(seq 1 50); do
    grep -q "listening on" "$WORKDIR/serve.log" 2>/dev/null && break
    sleep 0.1
done
grep -q "listening on" "$WORKDIR/serve.log" || {
    echo "FAIL: server never reported its address" >&2
    cat "$WORKDIR/serve.log" >&2; exit 1; }
PORT="$(sed -n 's#.*http://[^:]*:\([0-9]*\).*#\1#p' "$WORKDIR/serve.log")"
BASE="http://127.0.0.1:$PORT"
echo "serving on $BASE"

echo "== healthz =="
curl -fsS "$BASE/healthz"
echo

echo "== concurrent duplicate queries =="
for n in 1 2 3 4; do
    curl -fsS "$BASE/search?q=karen+mike&s=2" >"$WORKDIR/resp.$n" &
done
wait %2 %3 %4 %5
for n in 1 2 3 4; do
    grep -q '"nodes"' "$WORKDIR/resp.$n" || {
        echo "FAIL: response $n carried no nodes payload" >&2; exit 1; }
done
cmp -s "$WORKDIR/resp.1" "$WORKDIR/resp.2" || {
    echo "FAIL: duplicate queries answered differently" >&2; exit 1; }

echo "== coalescing visible in /metrics =="
METRICS="$(curl -fsS "$BASE/metrics")"
COALESCED="$(awk '/^gks_serve_coalesced_total/ {print int($2)}' \
    <<<"$METRICS" | tail -1)"
echo "gks_serve_coalesced_total = ${COALESCED:-absent}"
[ "${COALESCED:-0}" -gt 0 ] || {
    echo "FAIL: concurrent duplicates were not coalesced" >&2
    grep "^gks_serve" <<<"$METRICS" >&2; exit 1; }

echo "== SIGTERM drains cleanly =="
kill -TERM "$SERVER_PID"
STATUS=0
wait "$SERVER_PID" || STATUS=$?
SERVER_PID=""
[ "$STATUS" -eq 0 ] || {
    echo "FAIL: server exited with status $STATUS" >&2
    cat "$WORKDIR/serve.log" >&2; exit 1; }
grep -q "drained" "$WORKDIR/serve.log" || {
    echo "FAIL: server never printed its drain summary" >&2; exit 1; }
tail -1 "$WORKDIR/serve.log"

echo "smoke_serve OK"
