"""Robustness fuzz: hundreds of random queries per corpus.

No single query may crash, hang, or break an invariant; latency must
stay in a sane envelope.  This is the volume counterpart of the
hand-crafted Table 6 workload — the kind of battering a production
search endpoint takes.
"""

from __future__ import annotations

import time

import pytest

from repro.core.budget import SearchBudget
from repro.core.search import search
from repro.datasets.plays import generate_plays
from repro.eval.querygen import WorkloadSpec, generate_queries
from repro.eval.reporting import render_table
from repro.eval.runner import engine_for
from repro.testing.faults import corrupt_corpus
from repro.xmltree.repository import Repository
from repro.xmltree.serialize import serialize_node

CORPORA = ["dblp", "mondial", "swissprot", "interpro", "nasa"]


@pytest.fixture(scope="module", autouse=True)
def audit_indexes_on_teardown():
    """After the battering, audit every corpus index deeply.

    A fuzz run that passes against an index violating its own invariants
    proves nothing, so the module's teardown runs the deep verifier over
    each ``engine_for`` index and records the audit cost in
    ``benchmarks/results/BENCH_robustness_audit.json``.
    """
    yield
    import json
    from pathlib import Path

    from repro.analysis import verify_index

    audit = {"indexes_audited": 0, "violations": 0, "audit_seconds": 0.0,
             "by_corpus": {}}
    for dataset in CORPORA:
        index = engine_for(dataset).index
        started = time.perf_counter()
        violations = verify_index(index)
        elapsed = time.perf_counter() - started
        audit["indexes_audited"] += 1
        audit["violations"] += len(violations)
        audit["audit_seconds"] += elapsed
        audit["by_corpus"][dataset] = {
            "violations": [violation.render()
                           for violation in violations],
            "audit_seconds": elapsed,
        }
    results_dir = Path(__file__).parent / "results"
    results_dir.mkdir(exist_ok=True)
    (results_dir / "BENCH_robustness_audit.json").write_text(
        json.dumps(audit, indent=2, sort_keys=True) + "\n",
        encoding="utf-8")
    assert audit["violations"] == 0, audit["by_corpus"]


def _percentile(values: list[float], fraction: float) -> float:
    ordered = sorted(values)
    position = min(int(len(ordered) * fraction), len(ordered) - 1)
    return ordered[position]


@pytest.mark.parametrize("dataset", CORPORA)
def test_random_workload_speed(dataset, benchmark):
    engine = engine_for(dataset)
    queries = generate_queries(
        engine.index, WorkloadSpec(queries=20, seed=11))

    def run_all():
        return [search(engine.index, query) for query in queries]

    responses = benchmark(run_all)
    assert len(responses) == len(queries)


def test_robustness_report(results_writer, benchmark):
    def fuzz():
        rows = []
        for dataset in CORPORA:
            engine = engine_for(dataset)
            queries = generate_queries(
                engine.index,
                WorkloadSpec(queries=100, noise=0.15, seed=23))
            latencies: list[float] = []
            empty = 0
            for query in queries:
                started = time.perf_counter()
                response = search(engine.index, query)
                latencies.append((time.perf_counter() - started) * 1000)
                if not response.nodes:
                    empty += 1
                for node in response:
                    assert node.distinct_keywords >= \
                        response.query.effective_s
                    assert node.score > 0
            rows.append((dataset, len(queries), empty,
                         f"{_percentile(latencies, 0.50):.2f}",
                         f"{_percentile(latencies, 0.95):.2f}",
                         f"{max(latencies):.2f}"))
        return rows

    rows = benchmark.pedantic(fuzz, rounds=1, iterations=1)
    results_writer("robustness_fuzz", render_table(
        ["corpus", "queries", "empty", "p50 ms", "p95 ms", "max ms"],
        rows, title="Robustness fuzz — 100 random queries per corpus"))
    for row in rows:
        assert row[1] == 100


# ----------------------------------------------------------------------
# Fault injection: corrupted corpora and budgeted serving
# ----------------------------------------------------------------------
def _play_corpus(documents: int = 60) -> list[str]:
    roots = generate_plays(scale=max(1, documents // 12), seed=31)
    texts = [serialize_node(root) for root in roots]
    while len(texts) < documents:  # pad with reseeded copies
        texts.extend(serialize_node(root) for root in
                     generate_plays(scale=1, seed=31 + len(texts)))
    return texts[:documents]


@pytest.mark.resilience
def test_corrupted_ingestion_report(results_writer, benchmark):
    """Ingestion under byte-level corruption, per recovery policy.

    ``skip_document`` must quarantine exactly the victims; ``salvage``
    must keep strictly more documents than skipping does.
    """
    texts, victims = corrupt_corpus(_play_corpus(60), 0.20, seed=47)

    def ingest():
        rows = []
        for policy in ("skip_document", "salvage"):
            started = time.perf_counter()
            repository = Repository.from_texts(texts, policy=policy)
            elapsed = (time.perf_counter() - started) * 1000
            rows.append((policy, len(texts), len(repository),
                         len(repository.quarantine), f"{elapsed:.1f}"))
        return rows

    rows = benchmark.pedantic(ingest, rounds=1, iterations=1)
    results_writer("robustness_ingestion", render_table(
        ["policy", "docs", "kept", "quarantined", "ms"], rows,
        title="Ingestion of a 20%-corrupted corpus by recovery policy"))
    by_policy = {row[0]: row for row in rows}
    assert by_policy["skip_document"][3] == len(victims)
    assert by_policy["salvage"][2] >= by_policy["skip_document"][2]
    for row in rows:
        assert row[2] + row[3] == len(texts)


@pytest.mark.resilience
def test_budgeted_degradation_report(results_writer, benchmark):
    """Latency envelope of budget-capped search vs. the unbudgeted run.

    Every budgeted query must finish — degraded when the cap bites,
    never raising — and the capped p95 must not blow past the
    unbudgeted p95 envelope.
    """
    def serve():
        rows = []
        for dataset in CORPORA:
            engine = engine_for(dataset)
            queries = generate_queries(
                engine.index, WorkloadSpec(queries=50, seed=17))
            for label, factory in (
                    ("unbudgeted", lambda: None),
                    ("max_sl=64", lambda: SearchBudget(max_sl=64)),
                    ("max_nodes=10",
                     lambda: SearchBudget(max_nodes=10))):
                latencies: list[float] = []
                degraded = 0
                for query in queries:
                    started = time.perf_counter()
                    response = search(engine.index, query,
                                      budget=factory())
                    latencies.append(
                        (time.perf_counter() - started) * 1000)
                    if response.degraded:
                        degraded += 1
                        assert response.degradation is not None
                rows.append((dataset, label, len(queries), degraded,
                             f"{_percentile(latencies, 0.50):.2f}",
                             f"{_percentile(latencies, 0.95):.2f}"))
        return rows

    rows = benchmark.pedantic(serve, rounds=1, iterations=1)
    results_writer("robustness_budgets", render_table(
        ["corpus", "budget", "queries", "degraded", "p50 ms", "p95 ms"],
        rows, title="Graceful degradation — budget caps vs. unbudgeted"))
    for row in rows:
        assert row[3] <= row[2]
