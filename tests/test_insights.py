"""Unit tests for DI discovery (paper §2.3, §6.2) and refinement (§6.1)."""

import pytest

from repro.core.insights import attribute_nodes_of, discover_insights
from repro.core.query import Query
from repro.core.refinement import (RefinementKind, suggest,
                                   suggest_expansions, suggest_subsets)
from repro.core.search import search
from repro.datasets.toy import figure2a


class TestAttributeExtraction:
    def test_strict_mode_takes_attributes_only(self, figure2a_repo):
        course = figure2a_repo.node_at((0, 1, 1, 0))
        values = [node.text
                  for node in attribute_nodes_of(course,
                                                 mode="attributes")]
        assert values == ["Data Mining"]

    def test_context_mode_includes_repeating_leaves(self, figure2a_repo):
        course = figure2a_repo.node_at((0, 1, 1, 0))
        values = {node.text
                  for node in attribute_nodes_of(course, mode="context")}
        assert "Data Mining" in values
        assert "Karen" in values  # students are part of the course context

    def test_context_mode_stops_at_nested_entities(self, figure2a_repo):
        area = figure2a_repo.node_at((0, 1))
        values = {node.text
                  for node in attribute_nodes_of(area, mode="context")}
        assert values == {"Databases"}  # Course contents belong to Courses

    def test_unknown_mode_rejected(self, figure2a_repo):
        with pytest.raises(ValueError):
            attribute_nodes_of(figure2a_repo.node_at((0,)), mode="bogus")


class TestDIDiscovery:
    """§2.3: Q5 = {student, karen, mike, john} exposes 'Data Mining'."""

    def run(self, repo, index, keywords, s, **kwargs):
        response = search(index, Query.of(keywords, s=s))
        return discover_insights(repo, response, **kwargs), response

    def test_q5_exposes_data_mining(self, figure2a_repo, figure2a_index):
        report, _ = self.run(figure2a_repo, figure2a_index,
                             ["student", "karen", "mike", "john"], 4)
        rendered = [insight.render() for insight in report]
        assert any("Data Mining" in text for text in rendered)

    def test_example3_weighted_set(self, figure2a_repo, figure2a_index):
        # §2.3: Sw_Q over Q4's LCE nodes contains the course names
        report, _ = self.run(figure2a_repo, figure2a_index,
                             ["student", "karen", "mike", "john", "harri"],
                             2, mode="attributes")
        keywords = set(report.weighted_keywords)
        assert {"data", "mine", "algorithm", "ai"} <= keywords

    def test_query_keywords_excluded(self, figure2a_repo, figure2a_index):
        report, _ = self.run(figure2a_repo, figure2a_index,
                             ["karen", "mike"], 1)
        assert "karen" not in report.weighted_keywords
        assert "mike" not in report.weighted_keywords

    def test_weights_aggregate_over_lce_nodes(self, figure2a_repo,
                                              figure2a_index):
        # 'karen' is in 3 courses; a 2-course keyword must weigh less
        report, response = self.run(figure2a_repo, figure2a_index,
                                    ["student"], 1)
        weights = report.weighted_keywords
        assert weights["karen"] > weights["serena"]

    def test_semantics_path_from_lce(self, figure2a_repo, figure2a_index):
        report, _ = self.run(figure2a_repo, figure2a_index,
                             ["karen", "mike", "john"], 2,
                             mode="attributes")
        for insight in report:
            assert insight.path[0] == "Course"
            assert insight.path[-1] == "Name"

    def test_top_limits_report_size(self, figure2a_repo, figure2a_index):
        report, _ = self.run(figure2a_repo, figure2a_index, ["student"],
                             1, top=2)
        assert len(report) == 2

    def test_no_lce_nodes_no_insights(self, figure1_repo, figure1_index):
        response = search(figure1_index, Query.of(["a", "b"], s=2))
        report = discover_insights(figure1_repo, response)
        assert len(report) == 0

    def test_top_keywords_ordering(self, figure2a_repo, figure2a_index):
        report, _ = self.run(figure2a_repo, figure2a_index, ["student"], 1)
        top = report.top_keywords(3)
        weights = report.weighted_keywords
        assert weights[top[0]] >= weights[top[1]] >= weights[top[2]]


class TestRecursiveDI:
    def test_rounds_produce_reports(self, figure2a_repo, figure2a_index):
        from repro.core.insights import discover_recursive

        response = search(figure2a_index, Query.of(["karen", "mike"], s=1))
        reports = discover_recursive(figure2a_repo, figure2a_index,
                                     response, rounds=1)
        assert len(reports) == 2
        assert all(hasattr(report, "weighted_keywords")
                   for report in reports)


class TestRefinement:
    def make_response(self, index):
        return search(index, Query.of(["a", "b", "c", "d"], s=2))

    def test_q3_subset_suggestions_match_example1(self, figure1_index):
        # §6.1: Q3 = {a,b,c,d} refines to {a,b,c} and {a,b,d}
        response = self.make_response(figure1_index)
        subsets = suggest_subsets(response)
        keyword_sets = [set(refinement.keywords)
                        for refinement in subsets]
        assert {"a", "b", "c"} in keyword_sets
        assert {"a", "b", "d"} in keyword_sets

    def test_subsets_exclude_full_query(self, figure1_index):
        response = self.make_response(figure1_index)
        for refinement in suggest_subsets(response):
            assert set(refinement.keywords) != {"a", "b", "c", "d"}

    def test_subset_support_orders_suggestions(self, figure1_index):
        response = self.make_response(figure1_index)
        supports = [refinement.support
                    for refinement in suggest_subsets(response)]
        assert supports == sorted(supports, reverse=True)

    def test_expansions_add_di_keywords(self, figure2a_repo,
                                        figure2a_index):
        response = search(figure2a_index,
                          Query.of(["karen", "mike"], s=1))
        report = discover_insights(figure2a_repo, response)
        expansions = suggest_expansions(response, report, top=3)
        for refinement in expansions:
            assert refinement.kind is RefinementKind.EXPANSION
            assert set(response.query.keywords) < set(refinement.keywords)

    def test_combined_suggest(self, figure2a_repo, figure2a_index):
        response = search(figure2a_index,
                          Query.of(["karen", "mike", "zzz"], s=1))
        report = discover_insights(figure2a_repo, response)
        combined = suggest(response, report, top=3)
        kinds = {refinement.kind for refinement in combined}
        assert RefinementKind.EXPANSION in kinds

    def test_refinement_as_query(self, figure1_index):
        response = self.make_response(figure1_index)
        refinement = suggest_subsets(response)[0]
        query = refinement.as_query()
        assert query.keywords == refinement.keywords
        assert query.s == len(refinement.keywords)
