"""A ServerCore-shaped HTTP client for driving a real ``gks serve``.

:class:`HTTPSearchClient` duck-types the slice of
:class:`~repro.serve.core.ServerCore` the load generator uses —
``submit`` returning a future — so the *same*
:class:`~repro.serve.loadgen.LoadGenerator` schedules drive an
in-process broker and a live HTTP server.  Server-side rejections come
back as the same typed exceptions the broker raises (429 →
:class:`~repro.errors.Overloaded`, 504 →
:class:`~repro.errors.SearchTimeout`), surfaced through the future; the
load generator classifies them identically in both modes.

Unlike the in-process broker, rejections here are *asynchronous* —
the 429 exists only once the server has answered — so the retry policy's
synchronous-shed path does not fire; an HTTP shed is terminal for its
scheduled request.  That is exactly what a real remote client observes.
"""

from __future__ import annotations

import json
from concurrent.futures import Future, ThreadPoolExecutor
from urllib.error import HTTPError, URLError
from urllib.parse import urlencode
from urllib.request import Request, urlopen

from repro.errors import (GKSError, Overloaded, QueryError, SearchTimeout,
                          ValidationError)


class HTTPSearchClient:
    """Submit searches to a running ``gks serve`` over JSON/HTTP."""

    def __init__(self, base_url: str, *, pool: int = 8,
                 timeout_s: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self._timeout_s = timeout_s
        self._executor = ThreadPoolExecutor(
            max_workers=max(1, pool), thread_name_prefix="gks-exp-http")

    # -- the LoadGenerator-facing surface -------------------------------
    def submit(self, query: str, s: int | None = None, *,
               k: int | None = None, ranker=None,
               deadline_s: float | None = None,
               request_id: str | None = None) -> Future:
        """Schedule one ``GET /search``; the future holds the payload.

        The future resolves to the decoded JSON response body, or raises
        the mapped typed error.  *ranker* is accepted for signature
        compatibility; the server applies its own configured ranker.
        """
        params: dict[str, str] = {"q": query}
        if s is not None:
            params["s"] = str(s)
        if k is not None:
            params["k"] = str(k)
        if deadline_s is not None:
            params["deadline_ms"] = f"{deadline_s * 1000.0:g}"
        headers = {}
        if request_id is not None:
            headers["X-Request-Id"] = request_id
        return self._executor.submit(self._get_search, params, headers)

    def search(self, query: str, s: int | None = None, *,
               k: int | None = None, ranker=None,
               deadline_s: float | None = None,
               request_id: str | None = None) -> dict:
        """Blocking convenience over :meth:`submit`."""
        return self.submit(query, s, k=k, ranker=ranker,
                           deadline_s=deadline_s,
                           request_id=request_id).result()

    # -- scrape / ops ---------------------------------------------------
    def metrics_text(self) -> str:
        """The server's ``/metrics`` exposition, verbatim."""
        with urlopen(f"{self.base_url}/metrics",
                     timeout=self._timeout_s) as response:
            return response.read().decode("utf-8")

    def healthz(self) -> dict:
        with urlopen(f"{self.base_url}/healthz",
                     timeout=self._timeout_s) as response:
            return json.loads(response.read().decode("utf-8"))

    def close(self) -> None:
        self._executor.shutdown(wait=True)

    def __enter__(self) -> "HTTPSearchClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- wire plumbing --------------------------------------------------
    def _get_search(self, params: dict[str, str],
                    headers: dict[str, str]) -> dict:
        url = f"{self.base_url}/search?{urlencode(params)}"
        request = Request(url, headers=headers)
        try:
            with urlopen(request, timeout=self._timeout_s) as response:
                payload = json.loads(response.read().decode("utf-8"))
                rid = response.headers.get("X-Request-Id")
        except HTTPError as exc:
            raise _map_http_error(exc) from None
        except URLError as exc:
            raise GKSError(f"cannot reach {url}: {exc.reason}") from exc
        if rid is not None:
            payload.setdefault("serve", {}).setdefault("request_id", rid)
        return payload


def _map_http_error(exc: HTTPError) -> GKSError:
    """Rebuild the server's typed error from its JSON error body."""
    try:
        body = json.loads(exc.read().decode("utf-8"))
    except (ValueError, OSError):
        body = {}
    message = body.get("error", f"HTTP {exc.code}")
    if exc.code == 429:
        retry_after = exc.headers.get("Retry-After")
        return Overloaded(
            message, reason=body.get("reason", "queue-full"),
            retry_after_s=float(retry_after) if retry_after else None)
    if exc.code == 504:
        return SearchTimeout(message)
    if exc.code == 400:
        if body.get("type") == "ValidationError":
            return ValidationError(message)
        return QueryError(message)
    return GKSError(f"HTTP {exc.code}: {message}")
