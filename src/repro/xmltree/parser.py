"""A from-scratch streaming XML parser.

The paper's system ingests raw XML repositories; rather than leaning on a
third-party parser we implement the substrate ourselves: a tokenizer that
turns a character stream into :mod:`repro.xmltree.events` parse events, and a
tree builder that assigns Dewey ids on the fly.

Supported XML subset (ample for the corpora the paper evaluates on):

* elements with attributes, self-closing tags,
* character data with the five predefined entities plus decimal/hex
  character references,
* CDATA sections, comments, processing instructions and the XML declaration,
* a permissive DOCTYPE skipper (internal subsets are skipped, not parsed).

Design notes
------------
``iter_events`` is a generator, so indexing large inputs never materialises
the document; ``parse_document`` builds an :class:`XMLDocument` for callers
that want the tree.  Malformed input raises :class:`XMLSyntaxError` with a
1-based line/column.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import XMLSyntaxError
from repro.xmltree.events import (Comment, EndElement, ParseEvent,
                                  ProcessingInstruction, StartElement, Text)
from repro.xmltree.node import XMLNode
from repro.xmltree.tree import XMLDocument

_PREDEFINED_ENTITIES = {
    "amp": "&",
    "lt": "<",
    "gt": ">",
    "quot": '"',
    "apos": "'",
}

_NAME_START_EXTRA = "_:"
_NAME_EXTRA = "_:.-"


def _is_name_start(ch: str) -> bool:
    return ch.isalpha() or ch in _NAME_START_EXTRA


def _is_name_char(ch: str) -> bool:
    return ch.isalnum() or ch in _NAME_EXTRA


class _Scanner:
    """Character cursor with line/column tracking for error messages."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0
        self.length = len(text)

    def at_end(self) -> bool:
        return self.pos >= self.length

    def peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        if index >= self.length:
            return ""
        return self.text[index]

    def startswith(self, token: str) -> bool:
        return self.text.startswith(token, self.pos)

    def advance(self, count: int = 1) -> None:
        self.pos += count

    def take_until(self, token: str, description: str) -> str:
        """Consume text up to *token*, consume the token, return the text."""
        end = self.text.find(token, self.pos)
        if end < 0:
            raise self.error(f"unterminated {description}")
        chunk = self.text[self.pos:end]
        self.pos = end + len(token)
        return chunk

    def skip_whitespace(self) -> None:
        while self.pos < self.length and self.text[self.pos] in " \t\r\n":
            self.pos += 1

    def read_name(self, description: str) -> str:
        start = self.pos
        if self.at_end() or not _is_name_start(self.text[self.pos]):
            raise self.error(f"expected {description}")
        self.pos += 1
        while self.pos < self.length and _is_name_char(self.text[self.pos]):
            self.pos += 1
        return self.text[start:self.pos]

    def expect(self, token: str) -> None:
        if not self.startswith(token):
            raise self.error(f"expected {token!r}")
        self.pos += len(token)

    def error(self, message: str) -> XMLSyntaxError:
        line = self.text.count("\n", 0, self.pos) + 1
        last_newline = self.text.rfind("\n", 0, self.pos)
        column = self.pos - last_newline
        return XMLSyntaxError(message, line=line, column=column)


def decode_entities(raw: str, scanner: _Scanner | None = None) -> str:
    """Resolve entity and character references inside character data."""
    if "&" not in raw:
        return raw
    out: list[str] = []
    i = 0
    while i < len(raw):
        ch = raw[i]
        if ch != "&":
            out.append(ch)
            i += 1
            continue
        end = raw.find(";", i + 1)
        if end < 0:
            raise _entity_error(f"unterminated entity reference", scanner)
        name = raw[i + 1:end]
        out.append(_resolve_entity(name, scanner))
        i = end + 1
    return "".join(out)


def _resolve_entity(name: str, scanner: _Scanner | None) -> str:
    if name in _PREDEFINED_ENTITIES:
        return _PREDEFINED_ENTITIES[name]
    if name.startswith("#x") or name.startswith("#X"):
        try:
            return chr(int(name[2:], 16))
        except ValueError:
            raise _entity_error(f"bad character reference &{name};", scanner)
    if name.startswith("#"):
        try:
            return chr(int(name[1:]))
        except ValueError:
            raise _entity_error(f"bad character reference &{name};", scanner)
    raise _entity_error(f"unknown entity &{name};", scanner)


def _entity_error(message: str, scanner: _Scanner | None) -> XMLSyntaxError:
    if scanner is not None:
        return scanner.error(message)
    return XMLSyntaxError(message)


def iter_events(text: str) -> Iterator[ParseEvent]:
    """Tokenize *text* into a stream of parse events.

    The generator validates well-formedness incrementally: tags must nest
    properly, exactly one root element must exist, and nothing but
    whitespace/comments/PIs may surround it.
    """
    if text.startswith("﻿"):
        text = text[1:]  # strip a UTF-8 BOM
    scanner = _Scanner(text)
    open_tags: list[str] = []
    roots_seen = 0

    while not scanner.at_end():
        if scanner.peek() == "<":
            at_top_level = not open_tags
            for event in _scan_markup(scanner, open_tags):
                if isinstance(event, StartElement) and at_top_level:
                    roots_seen += 1
                    if roots_seen > 1:
                        raise scanner.error("multiple root elements")
                yield event
            continue
        chunk = _scan_text(scanner)
        if chunk:
            if not open_tags and chunk.strip():
                raise scanner.error("character data outside the root element")
            if open_tags:
                yield Text(chunk)

    if open_tags:
        raise scanner.error(f"unclosed element <{open_tags[-1]}>")
    if roots_seen == 0:
        raise scanner.error("document has no root element")


def _scan_text(scanner: _Scanner) -> str:
    start = scanner.pos
    end = scanner.text.find("<", start)
    if end < 0:
        end = scanner.length
    raw = scanner.text[start:end]
    scanner.pos = end
    return decode_entities(raw, scanner)


def _scan_markup(scanner: _Scanner,
                 open_tags: list[str]) -> list[ParseEvent]:
    """Dispatch on the markup starting at ``<``.

    Returns the events it produced — usually one, two for a self-closing
    element, zero for markup with no event (XML declaration, DOCTYPE).
    """
    if scanner.startswith("<!--"):
        scanner.advance(4)
        return [Comment(scanner.take_until("-->", "comment"))]
    if scanner.startswith("<![CDATA["):
        scanner.advance(9)
        content = scanner.take_until("]]>", "CDATA section")
        if open_tags:
            return [Text(content)]
        if content.strip():
            raise scanner.error("character data outside the root element")
        return []
    if scanner.startswith("<?"):
        scanner.advance(2)
        body = scanner.take_until("?>", "processing instruction")
        target, _, data = body.partition(" ")
        if target.lower() == "xml":
            return []  # the XML declaration carries no content
        return [ProcessingInstruction(target, data.strip())]
    if scanner.startswith("<!DOCTYPE") or scanner.startswith("<!doctype"):
        _skip_doctype(scanner)
        return []
    if scanner.startswith("</"):
        return [_scan_end_tag(scanner, open_tags)]
    return _scan_start_tag(scanner, open_tags)


def _skip_doctype(scanner: _Scanner) -> None:
    """Skip a DOCTYPE declaration, tolerating an internal subset."""
    depth = 0
    scanner.advance(1)  # consume '<'
    while not scanner.at_end():
        ch = scanner.peek()
        scanner.advance()
        if ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
        elif ch == ">" and depth <= 0:
            return
    raise scanner.error("unterminated DOCTYPE declaration")


def _scan_end_tag(scanner: _Scanner, open_tags: list[str]) -> EndElement:
    scanner.advance(2)
    tag = scanner.read_name("element name in closing tag")
    scanner.skip_whitespace()
    scanner.expect(">")
    if not open_tags:
        raise scanner.error(f"closing tag </{tag}> without opening tag")
    expected = open_tags.pop()
    if expected != tag:
        raise scanner.error(
            f"mismatched closing tag </{tag}>, expected </{expected}>")
    return EndElement(tag)


def _scan_start_tag(scanner: _Scanner,
                    open_tags: list[str]) -> list[ParseEvent]:
    scanner.advance(1)
    tag = scanner.read_name("element name")
    attributes = _scan_attributes(scanner)
    scanner.skip_whitespace()
    if scanner.startswith("/>"):
        scanner.advance(2)
        return [StartElement(tag, attributes), EndElement(tag)]
    scanner.expect(">")
    open_tags.append(tag)
    return [StartElement(tag, attributes)]


def _scan_attributes(scanner: _Scanner) -> dict[str, str]:
    attributes: dict[str, str] = {}
    while True:
        scanner.skip_whitespace()
        ch = scanner.peek()
        if ch in (">", "/") or scanner.at_end():
            return attributes
        name = scanner.read_name("attribute name")
        scanner.skip_whitespace()
        scanner.expect("=")
        scanner.skip_whitespace()
        quote = scanner.peek()
        if quote not in ("'", '"'):
            raise scanner.error("attribute value must be quoted")
        scanner.advance(1)
        value = scanner.take_until(quote, "attribute value")
        if name in attributes:
            raise scanner.error(f"duplicate attribute {name!r}")
        attributes[name] = decode_entities(value, scanner)


class TreeBuilder:
    """Assemble an :class:`XMLDocument` from a stream of parse events.

    Parameters
    ----------
    doc_id:
        Document number used as the Dewey prefix.
    attributes_as_children:
        When true (the default), each XML attribute ``k="v"`` becomes a child
        element ``<k>v</k>`` — the representation keyword search operates on
        (the paper's model has no separate attribute axis, and corpora such
        as Mondial carry their data in XML attributes).
    name:
        Optional document name, e.g. a file name.
    """

    def __init__(self, doc_id: int = 0, attributes_as_children: bool = True,
                 name: str | None = None) -> None:
        self.doc_id = doc_id
        self.attributes_as_children = attributes_as_children
        self.name = name
        self._root: XMLNode | None = None
        self._stack: list[XMLNode] = []
        self._text_parts: list[list[str]] = []

    def feed(self, event: ParseEvent) -> None:
        """Consume one parse event."""
        if isinstance(event, StartElement):
            self._start(event)
        elif isinstance(event, EndElement):
            self._end()
        elif isinstance(event, Text):
            if self._stack:
                self._text_parts[-1].append(event.content)
        # comments and PIs carry no searchable content

    def _start(self, event: StartElement) -> None:
        if self._stack:
            node = self._stack[-1].add_child(event.tag)
        else:
            node = XMLNode(event.tag, (self.doc_id,))
            self._root = node
        if self.attributes_as_children:
            for key, value in event.attributes.items():
                node.add_child(key, text=value)
        else:
            node.xml_attributes = dict(event.attributes)
        self._stack.append(node)
        self._text_parts.append([])

    def _end(self) -> None:
        node = self._stack.pop()
        parts = self._text_parts.pop()
        text = "".join(parts).strip()
        if text:
            node.text = text

    def document(self) -> XMLDocument:
        """Return the finished document (after all events were fed)."""
        if self._root is None or self._stack:
            raise XMLSyntaxError("document incomplete: unbalanced events")
        return XMLDocument(self._root, name=self.name)


def parse_document(text: str, doc_id: int = 0,
                   attributes_as_children: bool = True,
                   name: str | None = None) -> XMLDocument:
    """Parse an XML string into an :class:`XMLDocument` with Dewey ids."""
    builder = TreeBuilder(doc_id=doc_id,
                          attributes_as_children=attributes_as_children,
                          name=name)
    for event in iter_events(text):
        builder.feed(event)
    return builder.document()


def parse_documents(texts: Iterable[str], first_doc_id: int = 0,
                    attributes_as_children: bool = True) -> list[XMLDocument]:
    """Parse several XML strings into consecutively numbered documents."""
    return [
        parse_document(text, doc_id=first_doc_id + offset,
                       attributes_as_children=attributes_as_children)
        for offset, text in enumerate(texts)
    ]
