#!/usr/bin/env bash
# Sharding smoke test: build a 2-shard index over the toy corpora with
# parallel workers, verify the persisted file, and confirm a sharded
# search answers with the shard layout reported.
#
# Usage:  bash scripts/smoke_sharding.sh
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH=src

WORKDIR="$(mktemp -d)"
trap 'rm -rf "$WORKDIR"' EXIT

echo "== generate toy corpora =="
python -m repro dataset figure1 -o "$WORKDIR"
python -m repro dataset figure2a -o "$WORKDIR"

echo "== sharded parallel index build =="
OUT="$(python -m repro index "$WORKDIR"/figure*.xml \
        -o "$WORKDIR/sharded.gks" --shards 2 --workers 2)"
echo "$OUT"
grep -q "across 2 shard(s)" <<<"$OUT" || {
    echo "FAIL: index build did not report the shard layout" >&2; exit 1; }

echo "== check the persisted sharded index =="
OUT="$(python -m repro check-index "$WORKDIR/sharded.gks")"
echo "$OUT"
grep -q "index OK" <<<"$OUT" || {
    echo "FAIL: check-index rejected the sharded file" >&2; exit 1; }
grep -q "shards: 2" <<<"$OUT" || {
    echo "FAIL: check-index did not report the shard count" >&2; exit 1; }

echo "== scatter-gather search =="
OUT="$(python -m repro search "$WORKDIR"/figure*.xml \
        -q "karen mike" -s 2 --shards 2 --workers 2)"
echo "$OUT"
grep -q "node(s) for" <<<"$OUT" || {
    echo "FAIL: no search results printed" >&2; exit 1; }
grep -q "2 shard(s)" <<<"$OUT" || {
    echo "FAIL: search did not report the shard layout" >&2; exit 1; }

echo "== shard table in stats =="
OUT="$(python -m repro stats "$WORKDIR"/figure*.xml \
        -q "karen mike" --shards 2)"
echo "$OUT"
grep -q "shards: 2" <<<"$OUT" || {
    echo "FAIL: stats did not print the shard summary" >&2; exit 1; }

echo "smoke_sharding OK"
