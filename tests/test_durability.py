"""Durable write path: WAL framing, segmented store, crash recovery,
serve-layer mutation and hot swap.

The correctness bar throughout is the PR 3 one: after a crash at *any*
byte offset, recovery must produce an index node-for-node identical to
a from-scratch rebuild over the surviving documents — torn tails lose
only unacknowledged writes, never acknowledged ones.
"""

from __future__ import annotations

import json
import os
import threading
import urllib.request
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import verify_segmented_store
from repro.core.config import EngineConfig, Texts
from repro.core.engine import GKSEngine
from repro.errors import ConfigError, Overloaded, StorageError
from repro.index.segments import SegmentStore, read_manifest
from repro.index.wal import (WAL_MAGIC, WriteAheadLog, replay_wal)
from repro.serve import (LoadGenerator, RetryPolicy, ServeConfig,
                         ServerCore, serve_http)
from repro.testing import FakeClock, StoreCorruptor, TornWriter

pytestmark = pytest.mark.durability

BASE = [
    "<dblp><article><author>Peter Buneman</author>"
    "<title>Keys for XML</title></article></dblp>",
    "<dblp><article><author>Wenfei Fan</author>"
    "<title>XML constraints</title></article></dblp>",
]
EXTRA = [
    f"<dblp><article><author>Author{i}</author>"
    f"<title>paper {i} keys</title></article></dblp>"
    for i in range(6)
]
QUERIES = ["keys", "xml", "author0 OR author1", "constraints"]


def _config(tmp_path, **overrides) -> EngineConfig:
    defaults = dict(store_path=tmp_path / "store", memtable_docs=2,
                    compact_segments=3, cache_size=4)
    defaults.update(overrides)
    return EngineConfig(**defaults)


def _signature(engine, queries=("keys", "xml")) -> list:
    """Node-for-node response signature over several queries."""
    out = []
    for query in queries:
        response = engine.search(query)
        out.append(sorted((node.dewey, node.score)
                          for node in response.nodes))
    return out


def _reference(texts, **config_kwargs):
    return GKSEngine.open(
        Texts(texts), config=EngineConfig(cache_size=0, **config_kwargs))


# ----------------------------------------------------------------------
# WAL framing
# ----------------------------------------------------------------------

class TestWAL:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog.create(path)
        records = [{"op": "add", "doc_id": i, "text": f"<d>{i}</d>"}
                   for i in range(4)]
        lsns = [wal.append(record) for record in records]
        assert lsns == [1, 2, 3, 4]
        wal.close()
        replay = replay_wal(path)
        assert [frame.record for frame in replay.frames] == records
        assert [frame.lsn for frame in replay.frames] == lsns
        assert replay.torn_bytes == 0

    def test_reopen_continues_lsns(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog.create(path)
        wal.append({"op": "add", "doc_id": 0})
        wal.close()
        wal, replay = WriteAheadLog.open(path)
        assert replay.last_lsn == 1
        assert wal.append({"op": "add", "doc_id": 1}) == 2
        wal.close()

    def test_truncation_at_every_byte_is_a_prefix(self, tmp_path):
        """The torn-tail contract, exhaustively: cutting the log at any
        byte offset replays some prefix of the appended frames and never
        raises."""
        path = tmp_path / "wal.log"
        wal = WriteAheadLog.create(path)
        records = [{"op": "add", "doc_id": i, "text": "x" * (i + 1)}
                   for i in range(3)]
        for record in records:
            wal.append(record)
        wal.close()
        data = path.read_bytes()
        torn = tmp_path / "torn.log"
        for cut in range(len(data)):
            torn.write_bytes(data[:cut])
            replay = replay_wal(torn)
            survived = [frame.record for frame in replay.frames]
            assert survived == records[:len(survived)]
            assert replay.valid_bytes + replay.torn_bytes == cut

    def test_open_truncates_torn_tail_and_appends(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog.create(path)
        wal.append({"op": "add", "doc_id": 0})
        wal.append({"op": "add", "doc_id": 1})
        wal.close()
        TornWriter(seed=3).tear(path, fraction=0.8)
        wal, replay = WriteAheadLog.open(path)
        wal.append({"op": "add", "doc_id": len(replay.frames)})
        wal.close()
        clean = replay_wal(path)
        assert clean.torn_bytes == 0
        assert [frame.lsn for frame in clean.frames] == \
            list(range(1, len(clean.frames) + 1))

    def test_truncate_through_keeps_lsns(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog.create(path)
        for i in range(4):
            wal.append({"doc_id": i})
        wal.truncate_through(2)
        wal.append({"doc_id": 4})
        wal.close()
        replay = replay_wal(path)
        assert [frame.lsn for frame in replay.frames] == [3, 4, 5]

    def test_bad_magic_is_structural(self, tmp_path):
        path = tmp_path / "wal.log"
        path.write_bytes(b"NOTAWAL!" + b"x" * 32)
        with pytest.raises(StorageError) as excinfo:
            replay_wal(path)
        assert excinfo.value.diagnosis == "corrupted"

    @settings(max_examples=25, deadline=None)
    @given(count=st.integers(min_value=0, max_value=5),
           keep=st.integers(min_value=0, max_value=5))
    def test_frame_boundary_truncation_property(self, tmp_path_factory,
                                                count, keep):
        """Truncating exactly at a frame boundary replays exactly the
        frames before the cut — byte-exact replay equivalence."""
        tmp_path = tmp_path_factory.mktemp("walprop")
        path = tmp_path / "wal.log"
        wal = WriteAheadLog.create(path)
        records = [{"op": "add", "doc_id": i, "text": f"t{i}"}
                   for i in range(count)]
        boundaries = [len(WAL_MAGIC)]
        for record in records:
            wal.append(record)
            boundaries.append(path.stat().st_size)
        wal.close()
        cut = boundaries[min(keep, count)]
        data = path.read_bytes()
        path.write_bytes(data[:cut])
        replay = replay_wal(path)
        assert [frame.record for frame in replay.frames] == \
            records[:min(keep, count)]
        assert replay.torn_bytes == 0


# ----------------------------------------------------------------------
# Segmented store + engine recovery
# ----------------------------------------------------------------------

@pytest.mark.parametrize("shards", [1, 2])
class TestRecovery:
    def test_reopen_equals_rebuild(self, tmp_path, shards):
        config = _config(tmp_path, shards=shards)
        engine = GKSEngine.open(Texts(BASE), config=config)
        for i, text in enumerate(EXTRA):
            engine.add_document(text, name=f"extra{i}.xml")
        expected = _signature(engine, QUERIES)
        engine.close()

        recovered = GKSEngine.open(Texts(BASE), config=config)
        assert _signature(recovered, QUERIES) == expected
        assert len(recovered.repository) == len(BASE) + len(EXTRA)
        recovered.close()

        reference = _reference(BASE + EXTRA, shards=shards)
        assert _signature(reference, QUERIES) == expected

    def test_wal_torn_at_every_frame_boundary(self, tmp_path, shards):
        """Crash the WAL tail at each frame boundary: recovery serves
        exactly the documents whose frames survived, node-for-node equal
        to a rebuild over that prefix."""
        config = _config(tmp_path, shards=shards, memtable_docs=100)
        engine = GKSEngine.open(Texts(BASE), config=config)
        boundaries = []
        wal_path = tmp_path / "store" / "wal.log"
        for i, text in enumerate(EXTRA[:3]):
            engine.add_document(text, name=f"extra{i}.xml")
            boundaries.append(wal_path.stat().st_size)
        engine.close()
        data = wal_path.read_bytes()

        for keep, boundary in enumerate([len(WAL_MAGIC)] + boundaries):
            wal_path.write_bytes(data[:boundary])
            recovered = GKSEngine.open(Texts(BASE), config=config)
            reference = _reference(BASE + EXTRA[:keep], shards=shards)
            assert _signature(recovered, QUERIES) == \
                _signature(reference, QUERIES), f"keep={keep}"
            recovered.close()
            # recovery truncated the torn tail; restore the full log
            wal_path.write_bytes(data)

    def test_wal_torn_mid_frame_loses_only_the_tail(self, tmp_path,
                                                    shards):
        config = _config(tmp_path, shards=shards, memtable_docs=100)
        engine = GKSEngine.open(Texts(BASE), config=config)
        for i, text in enumerate(EXTRA[:2]):
            engine.add_document(text, name=f"extra{i}.xml")
        engine.close()
        wal_path = tmp_path / "store" / "wal.log"
        TornWriter(seed=11).tear(wal_path, fraction=0.99)
        recovered = GKSEngine.open(Texts(BASE), config=config)
        reference = _reference(BASE + EXTRA[:1], shards=shards)
        assert _signature(recovered, QUERIES) == \
            _signature(reference, QUERIES)
        recovered.close()

    def test_killed_compaction_residue_is_cleaned(self, tmp_path, shards):
        """A crash mid-compaction leaves tmp files and next-generation
        orphans; reopen must clean them and serve the manifest state."""
        config = _config(tmp_path, shards=shards)
        engine = GKSEngine.open(Texts(BASE), config=config)
        for i, text in enumerate(EXTRA):
            engine.add_document(text, name=f"extra{i}.xml")
        expected = _signature(engine, QUERIES)
        engine.close()
        store_dir = tmp_path / "store"
        manifest = read_manifest(store_dir)
        # simulate the torn residue of a compaction killed pre-manifest:
        # a half-written temp file and an unreferenced next-gen segment
        (store_dir / "MANIFEST.tmp").write_bytes(b"\x1f\x8b half")
        orphan_gen = manifest.generation + 1
        source = store_dir / manifest.segments[0].file
        orphan = store_dir / f"seg-g{orphan_gen:06d}-s0.gksindex"
        TornWriter(seed=5).torn_copy(source, orphan, fraction=0.5)

        recovered = GKSEngine.open(Texts(BASE), config=config)
        assert _signature(recovered, QUERIES) == expected
        recovered.close()
        assert not (store_dir / "MANIFEST.tmp").exists()
        assert not orphan.exists()
        assert verify_segmented_store(store_dir) == []

    def test_deep_invariants_hold_after_churn(self, tmp_path, shards):
        config = _config(tmp_path, shards=shards)
        engine = GKSEngine.open(Texts(BASE), config=config)
        for i, text in enumerate(EXTRA):
            engine.add_document(text, name=f"extra{i}.xml")
        engine.flush()
        engine.compact()
        engine.close()
        assert verify_segmented_store(tmp_path / "store") == []


class TestStoreLifecycle:
    def test_flush_and_compact_generations_are_monotonic(self, tmp_path):
        config = _config(tmp_path, shards=2, memtable_docs=100,
                         compact_segments=100)
        engine = GKSEngine.open(Texts(BASE), config=config)
        generations = [read_manifest(tmp_path / "store").generation]
        for i, text in enumerate(EXTRA[:4]):
            engine.add_document(text, name=f"e{i}.xml")
            if i % 2 == 1:
                engine.flush()
                generations.append(
                    read_manifest(tmp_path / "store").generation)
        engine.compact()
        generations.append(read_manifest(tmp_path / "store").generation)
        engine.close()
        assert generations == sorted(set(generations))
        manifest = read_manifest(tmp_path / "store")
        runs_per_shard = {}
        for record in manifest.segments:
            runs_per_shard.setdefault(record.shard_id, 0)
            runs_per_shard[record.shard_id] += 1
        assert all(runs == 1 for runs in runs_per_shard.values())

    def test_torn_segment_refuses_to_open(self, tmp_path):
        config = _config(tmp_path)
        engine = GKSEngine.open(Texts(BASE), config=config)
        engine.add_document(EXTRA[0], name="e0.xml")
        engine.add_document(EXTRA[1], name="e1.xml")  # triggers flush
        engine.close()
        manifest = read_manifest(tmp_path / "store")
        segment = tmp_path / "store" / manifest.segments[-1].file
        TornWriter(seed=7).tear(segment, fraction=0.5)
        with pytest.raises(StorageError):
            GKSEngine.open(Texts(BASE), config=config)

    def test_missing_wal_refuses_to_open(self, tmp_path):
        config = _config(tmp_path)
        GKSEngine.open(Texts(BASE), config=config).close()
        (tmp_path / "store" / "wal.log").unlink()
        with pytest.raises(StorageError) as excinfo:
            GKSEngine.open(Texts(BASE), config=config)
        assert excinfo.value.diagnosis == "corrupted"

    def test_incompatible_config_refuses_to_open(self, tmp_path):
        config = _config(tmp_path, shards=2)
        GKSEngine.open(Texts(BASE), config=config).close()
        with pytest.raises(StorageError) as excinfo:
            GKSEngine.open(Texts(BASE), config=_config(tmp_path, shards=3))
        assert excinfo.value.diagnosis == "incompatible"

    def test_different_corpus_refuses_to_open(self, tmp_path):
        config = _config(tmp_path)
        GKSEngine.open(Texts(BASE), config=config).close()
        with pytest.raises(StorageError) as excinfo:
            GKSEngine.open(Texts(BASE + [EXTRA[0]]), config=config)
        assert excinfo.value.diagnosis == "incompatible"

    def test_store_path_excludes_index_path(self, tmp_path):
        with pytest.raises(ConfigError):
            EngineConfig(store_path=tmp_path / "s",
                         index_path=tmp_path / "i.gksindex")

    def test_no_lsn_reuse_after_full_checkpoint(self, tmp_path):
        """After a flush truncates every frame, new appends must keep
        counting upward — re-issued LSNs would be skipped on replay as
        already flushed (silent data loss)."""
        config = _config(tmp_path, memtable_docs=2)
        engine = GKSEngine.open(Texts(BASE), config=config)
        engine.add_document(EXTRA[0], name="e0.xml")
        engine.add_document(EXTRA[1], name="e1.xml")  # flush: WAL empty
        engine.close()
        engine = GKSEngine.open(Texts(BASE), config=config)
        info = engine.add_document(EXTRA[2], name="e2.xml")
        engine.close()
        manifest = read_manifest(tmp_path / "store")
        assert info["lsn"] > manifest.wal_lsn
        recovered = GKSEngine.open(Texts(BASE), config=config)
        assert len(recovered.repository) == len(BASE) + 3
        recovered.close()


# ----------------------------------------------------------------------
# Corruptor sweep → invariant audit
# ----------------------------------------------------------------------

class TestStoreCorruption:
    @pytest.fixture
    def store(self, tmp_path):
        config = _config(tmp_path, shards=2)
        engine = GKSEngine.open(Texts(BASE), config=config)
        for i, text in enumerate(EXTRA[:4]):
            engine.add_document(text, name=f"e{i}.xml")
        engine.close()
        return tmp_path / "store"

    def test_clean_store_audits_clean(self, store):
        assert verify_segmented_store(store) == []

    @pytest.mark.parametrize("method,invariant", [
        ("orphan_segment", "segment-orphan"),
        ("regress_generation", "manifest-generation"),
        ("corrupt_wal_magic", "wal-consistency"),
        ("corrupt_segment_postings", "postings-sorted"),
    ])
    def test_corruptor_is_caught(self, store, method, invariant):
        getattr(StoreCorruptor(seed=13), method)(store)
        violated = {violation.invariant
                    for violation in verify_segmented_store(store)}
        assert invariant in violated

    def test_check_index_cli_exit_codes(self, store, capsys):
        from repro.cli import main

        assert main(["check-index", str(store), "--deep"]) == 0
        capsys.readouterr()
        StoreCorruptor(seed=17).corrupt_segment_postings(store)
        # resealed CRCs: the structural pass still says OK ...
        assert main(["check-index", str(store)]) == 0
        capsys.readouterr()
        # ... only the deep audit catches it
        assert main(["check-index", str(store), "--deep"]) == 2
        out = capsys.readouterr().out
        assert "postings-sorted" in out


# ----------------------------------------------------------------------
# Serving: mutation, cache invalidation, retry, hot swap
# ----------------------------------------------------------------------

class TestServeMutation:
    def test_add_document_invalidates_ttl_cache(self, tmp_path):
        config = _config(tmp_path)
        engine = GKSEngine.open(Texts(BASE), config=config)
        fake = FakeClock()
        with ServerCore(engine, ServeConfig(workers=1, ttl_s=60.0),
                        clock=fake) as core:
            before = core.search("keys")
            cached = core.search("keys")
            # TTL hit: no recompute — the hit shares the entry's nodes
            # (restamped with the new request id, so not the same object)
            assert cached.nodes is before.nodes
            core.add_document(
                "<dblp><article><title>new keys paper</title>"
                "</article></dblp>", name="new.xml")
            after = core.search("keys")
            assert after is not before
            assert len(after.nodes) > len(before.nodes)
        engine.close()

    def test_add_document_sheds_while_draining(self, tmp_path):
        config = _config(tmp_path)
        engine = GKSEngine.open(Texts(BASE), config=config)
        core = ServerCore(engine, ServeConfig(workers=1))
        core.drain()
        with pytest.raises(Overloaded):
            core.add_document("<d>x</d>")
        core.close()
        engine.close()

    def test_swap_engine_publishes_atomically(self):
        old = GKSEngine.open(Texts(BASE), config=EngineConfig())
        new = GKSEngine.open(Texts(BASE + [EXTRA[0]]),
                             config=EngineConfig())
        with ServerCore(old, ServeConfig(workers=1, ttl_s=60.0)) as core:
            before = core.search("keys")
            generation = core.generation
            assert core.swap_engine(new) > generation
            assert core.engine is new
            after = core.search("keys")
            assert len(after.nodes) > len(before.nodes)

    def test_swap_under_load_zero_failures(self, tmp_path):
        """The tentpole serving guarantee: closed-loop traffic across
        repeated engine swaps completes with no failed or shed request
        attributable to the swap."""
        config = _config(tmp_path)
        engine = GKSEngine.open(Texts(BASE), config=config)
        with ServerCore(engine, ServeConfig(workers=4,
                                            queue_capacity=256)) as core:
            stop = threading.Event()
            swaps = []

            def swapper() -> None:
                while not stop.is_set():
                    replacement = GKSEngine.open(Texts(BASE),
                                                 config=EngineConfig())
                    swaps.append(core.swap_engine(replacement))

            thread = threading.Thread(target=swapper, daemon=True)
            thread.start()
            try:
                report = LoadGenerator(core).run_closed(
                    QUERIES, concurrency=4, iterations=25)
            finally:
                stop.set()
                thread.join()
            assert report.errors == 0
            assert report.shed == 0
            assert report.timeouts == 0
            assert report.completed == report.submitted
            assert len(swaps) >= 1
        engine.close()

    def test_mutation_under_load_zero_failures(self, tmp_path):
        """Durable writes (including flushes and compactions) while a
        closed loop searches: every request completes."""
        config = _config(tmp_path, memtable_docs=2, compact_segments=2)
        engine = GKSEngine.open(Texts(BASE), config=config)
        with ServerCore(engine, ServeConfig(workers=4,
                                            queue_capacity=256)) as core:
            stop = threading.Event()
            added = []

            def writer() -> None:
                i = 0
                while not stop.is_set() and i < 20:
                    added.append(core.add_document(
                        f"<dblp><article><title>hot doc {i}</title>"
                        f"</article></dblp>", name=f"hot{i}.xml"))
                    i += 1

            thread = threading.Thread(target=writer, daemon=True)
            thread.start()
            try:
                report = LoadGenerator(core).run_closed(
                    QUERIES, concurrency=4, iterations=25)
            finally:
                stop.set()
                thread.join()
            assert report.errors == 0
            assert report.shed == 0
            assert report.completed == report.submitted
            assert len(added) >= 1
        engine.close()
        # and what was acknowledged under load survives a restart
        recovered = GKSEngine.open(Texts(BASE), config=config)
        assert len(recovered.repository) == len(BASE) + len(added)
        recovered.close()


class _FlakyCore:
    """Sheds the first N submits with a Retry-After, then succeeds."""

    def __init__(self, sheds: int, retry_after_s: float = 0.25) -> None:
        self.sheds = sheds
        self.retry_after_s = retry_after_s
        self.submits = 0

    def submit(self, query, s=None, *, k=None, deadline_s=None):
        from concurrent.futures import Future

        self.submits += 1
        if self.submits <= self.sheds:
            raise Overloaded("queue full", reason="queue-full",
                             retry_after_s=self.retry_after_s)
        future: Future = Future()
        future.set_result(object())
        return future


class TestRetryPolicy:
    def test_honors_retry_after(self):
        core = _FlakyCore(sheds=2)
        sleeps: list[float] = []
        generator = LoadGenerator(core, clock=FakeClock(),
                                  sleeper=sleeps.append,
                                  retry=RetryPolicy(attempts=3))
        report = generator.run_closed(["q"], concurrency=1, iterations=1)
        assert sleeps == [0.25, 0.25]
        assert core.submits == 3
        assert report.completed == 1
        assert report.retries == 2
        assert report.outcomes[0].attempts == 3

    def test_exponential_backoff_without_hint(self):
        core = _FlakyCore(sheds=5, retry_after_s=None)
        sleeps: list[float] = []
        generator = LoadGenerator(
            core, clock=FakeClock(), sleeper=sleeps.append,
            retry=RetryPolicy(attempts=3, backoff_s=0.1, multiplier=2.0))
        report = generator.run_closed(["q"], concurrency=1, iterations=1)
        assert sleeps == [0.1, 0.2]
        assert report.shed == 1
        assert report.retries == 2

    def test_no_policy_means_single_attempt(self):
        core = _FlakyCore(sheds=1)
        report = LoadGenerator(core, clock=FakeClock(),
                               sleeper=lambda _s: None).run_closed(
            ["q"], concurrency=1, iterations=1)
        assert core.submits == 1
        assert report.shed == 1
        assert report.retries == 0

    def test_policy_validation(self):
        from repro.errors import ValidationError

        with pytest.raises(ValidationError):
            RetryPolicy(attempts=0)
        with pytest.raises(ValidationError):
            RetryPolicy(multiplier=0.5)


# ----------------------------------------------------------------------
# HTTP front end
# ----------------------------------------------------------------------

class TestHTTPMutation:
    @pytest.fixture
    def served(self, tmp_path):
        config = _config(tmp_path, memtable_docs=2)
        engine = GKSEngine.open(Texts(BASE), config=config)
        core = ServerCore(engine, ServeConfig(workers=2))
        httpd = serve_http(core, port=0)
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        base_url = f"http://127.0.0.1:{httpd.server_address[1]}"
        yield base_url, tmp_path / "store"
        httpd.shutdown()
        httpd.server_close()
        core.close()
        engine.close()

    @staticmethod
    def _post(url: str, payload: dict | None = None) -> tuple[int, dict]:
        body = json.dumps(payload or {}).encode("utf-8")
        request = urllib.request.Request(
            url, data=body, headers={"Content-Type": "application/json"})
        with urllib.request.urlopen(request) as response:
            return response.status, json.loads(response.read())

    def test_post_documents_flush_compact_search(self, served):
        base_url, store_dir = served
        status, info = self._post(f"{base_url}/documents", {
            "text": "<dblp><article><title>posted keys</title>"
                    "</article></dblp>",
            "name": "posted.xml"})
        assert status == 200
        assert info["durable"] is True
        assert info["doc_id"] == len(BASE)

        status, flushed = self._post(f"{base_url}/admin/flush")
        assert status == 200
        status, compacted = self._post(f"{base_url}/admin/compact")
        assert status == 200

        with urllib.request.urlopen(f"{base_url}/search?q=posted") as resp:
            payload = json.loads(resp.read())
        assert len(payload["nodes"]) >= 1
        assert verify_segmented_store(store_dir) == []

    def test_post_documents_rejects_malformed_xml(self, served):
        base_url, _store_dir = served
        import urllib.error

        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._post(f"{base_url}/documents", {"text": "<broken"})
        assert excinfo.value.code == 400

    def test_post_documents_requires_text(self, served):
        base_url, _store_dir = served
        import urllib.error

        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._post(f"{base_url}/documents", {"name": "x.xml"})
        assert excinfo.value.code == 400
