"""Command-line interface: ``gks`` (or ``python -m repro``).

Subcommands mirror the system's three engines (Fig. 3):

* ``gks index FILE...  -o INDEX``     build and persist an index
* ``gks search FILE... -q QUERY -s N``  run a query, print ranked results
* ``gks topk FILE... -q QUERY -k K``    top-k with early termination
* ``gks di FILE... -q QUERY``          print the DI for a query
* ``gks categorize FILE...``           print the Table 5 category counts
* ``gks schema FILE...``               print the inferred schema
* ``gks facet FILE... -q QUERY -c COL``  facet a response by a column
* ``gks xpath FILE... -p PATH``        evaluate an XPath-lite expression
* ``gks dataset NAME -o DIR``          emit a synthetic corpus as XML
* ``gks stats FILE... [-q QUERY]``     observability report (metrics,
  per-query stats, slow queries; ``--prom``/``--json`` exposition)
* ``gks check-index INDEX [--deep]``   index health; ``--deep`` audits
  data-level invariants (exit 2 on violation vs 1 for structural)
* ``gks lint [PATH...]``               static-analysis rules over the
  source trees (exit 1 on findings; ``--list-rules`` for the catalog,
  ``--locks`` for the lock inventory, ``--json`` for machine output)
* ``gks race FILE...``                 scripted concurrent workloads
  under the runtime concurrency sanitizer: instrumented locks record
  the lock-order graph (potential deadlocks reported with both witness
  stacks) while a schedule-perturbing harness shakes out atomicity
  violations (exit 1 on findings)
* ``gks serve FILE... --port N``       JSON-over-HTTP query serving
  (``/search``, ``/healthz``, ``/metrics``) with bounded admission and
  request coalescing; SIGTERM drains gracefully
* ``gks exp run SPEC -o DIR``          expand a frozen run-table spec
  and execute it (per-run artifact dirs, aggregate tables); ``gks exp
  aggregate DIR`` rebuilds the tables, ``gks exp compare CUR BASE``
  gates an aggregate against a committed baseline (exit 1 on drift)

``FILE`` arguments ending in ``.json`` are ingested through the JSON
adapter; everything else is parsed as XML.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.core.engine import GKSEngine
from repro.datasets.registry import dataset_names, load_dataset
from repro.errors import GKSError
from repro.eval.reporting import render_table
from repro.index.builder import IndexBuilder
from repro.index.storage import save_index
from repro.xmltree.parser import RecoveryPolicy
from repro.xmltree.repository import Repository
from repro.xmltree.serialize import serialize_document


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="gks",
        description="Generic Keyword Search over XML data (EDBT 2016 "
                    "reproduction)")
    commands = parser.add_subparsers(dest="command", required=True)

    index_cmd = commands.add_parser("index", help="build a persistent index")
    index_cmd.add_argument("files", nargs="+", help="XML files to index")
    index_cmd.add_argument("-o", "--output", required=True,
                           help="index output path")
    index_cmd.add_argument("--codec", default="raw",
                           choices=["raw", "varint-dag"],
                           help="on-disk representation: raw (gzip "
                                "JSON envelope, default) or varint-dag "
                                "(v4 binary codec: delta+varint "
                                "blocks, DAG-shared subtrees, lazy "
                                "loading)")
    index_cmd.add_argument(
        "--recover", default="strict",
        choices=[policy.value for policy in RecoveryPolicy],
        help="malformed-input handling: abort (strict, default), "
             "quarantine bad documents (skip_document), or repair "
             "markup in stream (salvage)")
    _add_sharding_flags(index_cmd)

    search_cmd = commands.add_parser("search", help="run a keyword query")
    search_cmd.add_argument("files", nargs="+", help="XML files to search")
    search_cmd.add_argument("-q", "--query", required=True,
                            help='query text; quote phrases: \'"P Q" r\'')
    search_cmd.add_argument("-s", type=int, default=1,
                            help="minimum distinct query keywords "
                                 "(default 1)")
    search_cmd.add_argument("-k", "--top", type=int, default=10,
                            help="results to print (default 10)")
    search_cmd.add_argument("--snippets", action="store_true",
                            help="print the XML chunk of each result")
    search_cmd.add_argument("--explain", action="store_true",
                            help="print the potential-flow account of "
                                 "each result's rank")
    search_cmd.add_argument("--trace", action="store_true",
                            help="print the query's nested span tree "
                                 "(merge/lcp/lce/rank timings)")
    search_cmd.add_argument("--metrics-json", metavar="PATH",
                            help="write the metrics registry snapshot "
                                 "as JSON to PATH")
    search_cmd.add_argument("--deadline-ms", type=float, default=None,
                            help="per-query deadline in milliseconds; an "
                                 "exhausted deadline degrades the "
                                 "response rather than failing it")
    search_cmd.add_argument("--mode", default="strict",
                            choices=["strict", "probabilistic", "relaxed"],
                            help="query semantics: exact matching "
                                 "(strict, default), p-document "
                                 "probability scoring (probabilistic; "
                                 "compiles probability tables at index "
                                 "time), or no-but-semantic-match "
                                 "rewrites when the strict answer is "
                                 "empty (relaxed)")
    search_cmd.add_argument("--threshold", type=float, default=0.0,
                            help="probabilistic mode: drop results with "
                                 "probability below this (default 0.0)")
    _add_sharding_flags(search_cmd)

    serve_cmd = commands.add_parser(
        "serve", help="serve queries over JSON/HTTP "
                      "(/search, /healthz, /metrics)")
    serve_cmd.add_argument("files", nargs="+", help="XML files to serve")
    serve_cmd.add_argument("--host", default="127.0.0.1")
    serve_cmd.add_argument("--port", type=int, default=8080,
                           help="listen port (0 picks an ephemeral one; "
                                "default 8080)")
    serve_cmd.add_argument("--serve-workers", type=int, default=4,
                           help="search worker threads (default 4)")
    serve_cmd.add_argument("--queue-capacity", type=int, default=64,
                           help="bounded admission queue size; arrivals "
                                "beyond it are shed with HTTP 429 "
                                "(default 64)")
    serve_cmd.add_argument("--deadline-ms", type=float, default=None,
                           help="default per-request deadline in "
                                "milliseconds (none by default)")
    serve_cmd.add_argument("--ttl-s", type=float, default=None,
                           help="serve-side TTL result cache lifetime "
                                "in seconds (cache off by default)")
    serve_cmd.add_argument("--no-coalesce", action="store_true",
                           help="disable singleflight coalescing of "
                                "identical in-flight requests")
    serve_cmd.add_argument("--mode", default="strict",
                           choices=["strict", "probabilistic", "relaxed"],
                           help="default query semantics for served "
                                "requests (per-request ?mode= still "
                                "wins); probabilistic compiles "
                                "probability tables at boot")
    serve_cmd.add_argument("--threshold", type=float, default=0.0,
                           help="probabilistic mode: default probability "
                                "floor for served results (default 0.0)")
    serve_cmd.add_argument("--slow-ms", type=float, default=0.0,
                           help="testing hook: delay every engine "
                                "search by this many milliseconds "
                                "(makes coalescing observable)")
    serve_cmd.add_argument("--store", default=None,
                           help="segmented store directory; enables the "
                                "durable write path (POST /documents is "
                                "WAL'd and crash-safe, /admin/flush and "
                                "/admin/compact manage segments)")
    serve_cmd.add_argument("--memtable-docs", type=int, default=64,
                           help="pending documents that trigger an "
                                "automatic flush (default 64)")
    serve_cmd.add_argument("--compact-segments", type=int, default=4,
                           help="per-shard segment runs that trigger "
                                "automatic compaction (default 4)")
    _add_sharding_flags(serve_cmd)

    topk_cmd = commands.add_parser(
        "topk", help="top-k search with early-terminated ranking")
    topk_cmd.add_argument("files", nargs="+")
    topk_cmd.add_argument("-q", "--query", required=True)
    topk_cmd.add_argument("-s", type=int, default=1)
    topk_cmd.add_argument("-k", type=int, default=5)

    di_cmd = commands.add_parser("di", help="deeper analytical insights")
    di_cmd.add_argument("files", nargs="+")
    di_cmd.add_argument("-q", "--query", required=True)
    di_cmd.add_argument("-s", type=int, default=1)
    di_cmd.add_argument("-m", "--top", type=int, default=10,
                        help="insights to print (default 10)")

    cat_cmd = commands.add_parser("categorize",
                                  help="node-category statistics (Table 5)")
    cat_cmd.add_argument("files", nargs="+")

    schema_cmd = commands.add_parser("schema",
                                     help="print the inferred schema")
    schema_cmd.add_argument("files", nargs="+")

    facet_cmd = commands.add_parser(
        "facet", help="facet a query response by a context attribute")
    facet_cmd.add_argument("files", nargs="+")
    facet_cmd.add_argument("-q", "--query", required=True)
    facet_cmd.add_argument("-s", type=int, default=1)
    facet_cmd.add_argument("-c", "--column", required=True,
                           help="attribute tag to facet by (e.g. year)")
    facet_cmd.add_argument("--top", type=int, default=10)

    xpath_cmd = commands.add_parser(
        "xpath", help="evaluate an XPath-lite expression")
    xpath_cmd.add_argument("files", nargs="+")
    xpath_cmd.add_argument("-p", "--path", required=True)

    shell_cmd = commands.add_parser(
        "shell", help="interactive exploration REPL")
    shell_cmd.add_argument("files", nargs="+")
    shell_cmd.add_argument("--mode", default="strict",
                           choices=["strict", "probabilistic", "relaxed"],
                           help="initial query semantics (switch at the "
                                "prompt with :mode); probabilistic "
                                "compiles p-document tables at startup")
    shell_cmd.add_argument("--threshold", type=float, default=0.0,
                           help="initial probability threshold "
                                "(default 0.0)")

    validate_cmd = commands.add_parser(
        "validate", help="check a persisted index's integrity")
    validate_cmd.add_argument("index", help="index file to validate")
    validate_cmd.add_argument("--against", nargs="*", default=[],
                              help="data files to diff the index "
                                   "against (slow, authoritative)")

    check_cmd = commands.add_parser(
        "check-index",
        help="verify an index file's checksum, print a health summary")
    check_cmd.add_argument("index",
                           help="index file — or segmented store "
                                "directory — to check")
    check_cmd.add_argument("--deep", action="store_true",
                           help="additionally audit deep data-level "
                                "invariants on the raw stored form; a "
                                "violated invariant exits 2 (structural "
                                "or checksum failures still exit 1)")
    check_cmd.add_argument("--json", action="store_true",
                           help="emit the health summary as one stable "
                                "machine-readable JSON object instead "
                                "of text (same exit codes)")

    lint_cmd = commands.add_parser(
        "lint", help="run the static-analysis rules over source trees")
    lint_cmd.add_argument("paths", nargs="*",
                          default=["src", "tests", "benchmarks"],
                          help="files or directories to lint (default: "
                               "src tests benchmarks)")
    lint_cmd.add_argument("--list-rules", action="store_true",
                          help="print the rule catalog and exit")
    lint_cmd.add_argument("--json", action="store_true",
                          help="emit findings (or the lock inventory "
                               "with --locks) as one stable "
                               "machine-readable JSON object instead of "
                               "text (same exit codes)")
    lint_cmd.add_argument("--locks", action="store_true",
                          help="report the lock inventory instead of "
                               "findings: every Lock/RLock construction "
                               "site, its declared `# guards:` fields "
                               "and how many `with` blocks take it")

    race_cmd = commands.add_parser(
        "race", help="drive scripted concurrent workloads under the "
                     "runtime concurrency sanitizer (instrumented "
                     "locks + schedule perturbation)")
    race_cmd.add_argument("files", nargs="+", help="XML files to load")
    race_cmd.add_argument("--scenario", default="all",
                          choices=["all", "cache", "swap", "durable"],
                          help="workload: engine LRU probe/store under "
                               "contention, hot engine swap under "
                               "traffic, or concurrent durable "
                               "add/flush/search (default: all)")
    race_cmd.add_argument("--threads", type=int, default=4,
                          help="concurrent drivers per round (default 4)")
    race_cmd.add_argument("--rounds", type=int, default=3,
                          help="independent perturbed rounds (default 3)")
    race_cmd.add_argument("--iterations", type=int, default=25,
                          help="operations per thread per round "
                               "(default 25)")
    race_cmd.add_argument("--seed", type=int, default=0,
                          help="base seed for per-thread operation "
                               "choice (default 0)")
    race_cmd.add_argument("--json", action="store_true",
                          help="emit the sanitizer report as one stable "
                               "JSON object (same exit codes)")

    stats_cmd = commands.add_parser(
        "stats", help="observability report over a corpus")
    stats_cmd.add_argument("files", nargs="+", help="XML files to load")
    stats_cmd.add_argument("-q", "--query", action="append", default=[],
                           help="query to run before reporting "
                                "(repeatable)")
    stats_cmd.add_argument("-s", type=int, default=1)
    stats_cmd.add_argument("--prom", action="store_true",
                           help="print Prometheus text exposition")
    stats_cmd.add_argument("--json", action="store_true",
                           help="print the metrics snapshot as JSON")
    stats_cmd.add_argument("--slow-ms", type=float, default=500.0,
                           help="slow-query threshold in milliseconds "
                                "(default 500)")
    _add_sharding_flags(stats_cmd)

    data_cmd = commands.add_parser("dataset",
                                   help="emit a synthetic corpus as XML")
    data_cmd.add_argument("name", choices=dataset_names())
    data_cmd.add_argument("-o", "--output", required=True,
                          help="output directory")
    data_cmd.add_argument("--scale", type=int, default=1)
    data_cmd.add_argument("--seed", type=int, default=0)

    exp_cmd = commands.add_parser(
        "exp", help="run declarative experiment matrices "
                    "(run tables, aggregates, regression gate)")
    exp_sub = exp_cmd.add_subparsers(dest="exp_command", required=True)
    exp_run = exp_sub.add_parser(
        "run", help="expand a spec and execute every run")
    exp_run.add_argument("spec", help="run-table spec (.json or .toml)")
    exp_run.add_argument("-o", "--output", required=True,
                         help="artifact directory (one subdir per run)")
    exp_run.add_argument("--mode", choices=["inproc", "http"],
                         default=None,
                         help="override the spec's execution mode")
    exp_run.add_argument("--quiet", action="store_true",
                         help="suppress per-run progress lines")
    exp_agg = exp_sub.add_parser(
        "aggregate", help="rebuild aggregate.json/csv/md from run "
                          "artifacts")
    exp_agg.add_argument("dir", help="experiment artifact directory")
    exp_cmp = exp_sub.add_parser(
        "compare", help="gate an aggregate against a baseline "
                        "(exit 1 beyond tolerance)")
    exp_cmp.add_argument("current",
                         help="aggregate.json to check (or its directory)")
    exp_cmp.add_argument("baseline", help="committed baseline aggregate")
    return parser


def _add_sharding_flags(command: argparse.ArgumentParser) -> None:
    command.add_argument("--shards", type=int, default=1,
                         help="document shards; >1 builds a sharded "
                              "index served scatter-gather (default 1)")
    command.add_argument("--workers", type=int, default=1,
                         help="processes for parallel shard builds "
                              "(default 1 = serial)")
    command.add_argument("--strategy", default="round_robin",
                         choices=["round_robin", "hash"],
                         help="document-to-shard partitioning "
                              "(default round_robin)")


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    # ``python -m repro --check-index <path>`` is sugar for the
    # ``check-index`` subcommand (operational muscle memory: flags work
    # from anywhere on the command line).
    if argv and argv[0] == "--check-index":
        argv = ["check-index", *argv[1:]]
    args = build_arg_parser().parse_args(argv)
    handlers = {
        "index": _cmd_index,
        "search": _cmd_search,
        "serve": _cmd_serve,
        "topk": _cmd_topk,
        "di": _cmd_di,
        "categorize": _cmd_categorize,
        "schema": _cmd_schema,
        "facet": _cmd_facet,
        "xpath": _cmd_xpath,
        "shell": _cmd_shell,
        "validate": _cmd_validate,
        "check-index": _cmd_check_index,
        "lint": _cmd_lint,
        "race": _cmd_race,
        "stats": _cmd_stats,
        "dataset": _cmd_dataset,
        "exp": _cmd_exp,
    }
    try:
        return handlers[args.command](args)
    except GKSError as error:
        print(f"gks: error: {error}", file=sys.stderr)
        return 1


def _cmd_shell(args: argparse.Namespace) -> int:
    from repro.shell import run_shell

    engine = _engine(args.files, args)
    run_shell(engine, sys.stdin, print)
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.index.storage import load_index
    from repro.index.validate import (validate_against_repository,
                                      validate_index)

    index = load_index(args.index)
    if args.against:
        problems = validate_against_repository(
            index, _load_repository(args.against))
    else:
        problems = validate_index(index)
    if not problems:
        print("index OK")
        return 0
    for problem in problems:
        print(f"PROBLEM: {problem}")
    return 1


def _cmd_check_index(args: argparse.Namespace) -> int:
    """Exit 0 only for a healthy index.

    Exit-code contract (scripts and CI gate on it):

    * ``0`` — readable, checksum-clean, structurally self-consistent
      (and, with ``--deep``, every deep invariant holds);
    * ``1`` — structural failure: unreadable / truncated / checksum
      mismatch / version mismatch / structural validation problem;
    * ``2`` — ``--deep`` only: the file is structurally clean but a
      deep data-level invariant is violated (consistent-but-wrong); the
      violated invariant is printed by name.
    """
    import json as json_module

    from repro.index.storage import check_index, load_index
    from repro.index.validate import validate_index

    as_json = getattr(args, "json", False)
    deep = getattr(args, "deep", False)

    def emit(report: dict) -> int:
        if as_json:
            print(json_module.dumps(report, sort_keys=True))
        return report["exit"]

    target = Path(args.index)
    if target.is_dir() or target.name == "MANIFEST":
        directory = target if target.is_dir() else target.parent
        return _check_segmented_store(directory, deep=deep,
                                      emit=emit if as_json else None)
    summary = check_index(args.index)
    report: dict = {"path": summary["path"], "ok": False, "exit": 1,
                    "format": {key: summary[key]
                               for key in ("version", "codec", "layout",
                                           "shards", "mode")
                               if key in summary}}
    fmt = report["format"]
    format_line = (f"v{fmt.get('version', '?')} "
                   f"{fmt.get('codec', '?')} "
                   f"{fmt.get('layout', '?')}({fmt.get('shards', '?')}) "
                   f"{fmt.get('mode', 'strict')}"
                   if fmt else "unknown")
    if not summary["ok"]:
        report.update(diagnosis=summary["diagnosis"],
                      error=summary["error"])
        if not as_json:
            print(f"index BAD: {summary['path']}")
            if fmt:
                print(f"  format: {format_line}")
            print(f"  diagnosis: {summary['diagnosis']}")
            print(f"  error: {summary['error']}")
        return emit(report)
    # the file loads cleanly; still run the structural self-checks a
    # checksum can't see (a stale checksum over consistent-but-wrong
    # data, v1 files with no checksum at all).  Binary (v4) files are
    # checked bytes-level instead — every region against its CRC —
    # because materializing the lazy index here would defeat the
    # format's cold-open story; semantic content checks are --deep.
    from repro.errors import StorageError
    from repro.index.codec import is_binary_index, verify_frames

    if is_binary_index(args.index):
        try:
            verify_frames(args.index)
            problems = []
        except StorageError as exc:
            problems = [str(exc)]
    else:
        problems = validate_index(load_index(args.index))
    if problems:
        report.update(diagnosis="invalid",
                      problems=[str(problem) for problem in problems])
        if not as_json:
            print(f"index BAD: {summary['path']}")
            print(f"  format: {format_line}")
            print("  diagnosis: invalid")
            for problem in problems:
                print(f"  problem: {problem}")
        return emit(report)
    if deep:
        from repro.analysis import verify_store

        violations = verify_store(args.index)
        if violations:
            report.update(exit=2, diagnosis="invariant-violation",
                          violations=[violation.render()
                                      for violation in violations])
            if not as_json:
                print(f"index BAD: {summary['path']}")
                print(f"  format: {format_line}")
                print("  diagnosis: invariant-violation")
                for violation in violations:
                    print(f"  invariant violated: {violation.render()}")
            return emit(report)
    counter_keys = ("size_bytes", "documents", "total_nodes",
                    "entity_nodes", "element_nodes", "keywords",
                    "postings")
    report.update(ok=True, exit=0,
                  summary={key: summary[key] for key in counter_keys})
    if "strategy" in summary:
        report["summary"]["strategy"] = summary["strategy"]
    if deep:
        from repro.analysis import INVARIANT_NAMES

        report["deep_invariants"] = len(INVARIANT_NAMES)
    if not as_json:
        print(f"index OK: {summary['path']}")
        print(f"  {'format':>14}: {format_line}")
        for key in counter_keys:
            print(f"  {key:>14}: {summary[key]}")
        if "strategy" in summary:
            print(f"  {'shards':>14}: {summary['shards']} "
                  f"[{summary['strategy']}]")
        if deep:
            print(f"  {'deep audit':>14}: {len(INVARIANT_NAMES)} "
                  f"invariants OK")
    return emit(report)


def _check_segmented_store(directory: Path, deep: bool,
                           emit=None) -> int:
    """check-index for a segmented store directory (same exit contract).

    Structural pass (exit 1 on failure): the manifest reads and
    checksums, every referenced segment/texts file exists with its
    recorded CRC32 and loads, and the WAL replays (a torn tail is legal
    crash residue and is reported, not failed).  ``--deep`` (exit 2)
    then runs :func:`repro.analysis.verify_segmented_store`.  With
    *emit* set (``--json``), the report goes through it as one stable
    JSON object instead of text.
    """
    from repro.errors import StorageError
    from repro.index.segments import file_crc32, read_manifest
    from repro.index.storage import describe_layout, load_index
    from repro.index.wal import replay_wal

    try:
        layout = describe_layout(directory)
    except StorageError:
        layout = {}

    def bad(diagnosis: str, error: str) -> int:
        if emit is not None:
            return emit({"path": str(directory), "ok": False, "exit": 1,
                         "format": layout, "diagnosis": diagnosis,
                         "error": error})
        print(f"store BAD: {directory}")
        print(f"  diagnosis: {diagnosis}")
        print(f"  error: {error}")
        return 1

    try:
        manifest = read_manifest(directory)
    except StorageError as exc:
        return bad(exc.diagnosis or "corrupted", str(exc))
    for record in list(manifest.segments) + list(manifest.texts):
        path = directory / record.file
        try:
            if file_crc32(path) != record.crc32:
                return bad("corrupted",
                           f"{record.file} does not match its manifest "
                           f"CRC32")
        except StorageError as exc:
            return bad(exc.diagnosis or "unreadable", str(exc))
    for record in manifest.segments:
        try:
            load_index(directory / record.file)
        except StorageError as exc:
            return bad(exc.diagnosis or "corrupted",
                       f"segment {record.file}: {exc}")
    wal_path = directory / "wal.log"
    try:
        replay = replay_wal(wal_path)
    except StorageError as exc:
        return bad(exc.diagnosis or "corrupted", f"WAL: {exc}")
    if deep:
        from repro.analysis import verify_segmented_store

        violations = verify_segmented_store(directory)
        if violations:
            if emit is not None:
                return emit({"path": str(directory), "ok": False,
                             "exit": 2, "format": layout,
                             "diagnosis": "invariant-violation",
                             "violations": [violation.render()
                                            for violation in violations]})
            print(f"store BAD: {directory}")
            print("  diagnosis: invariant-violation")
            for violation in violations:
                print(f"  invariant violated: {violation.render()}")
            return 2
    tail = [frame for frame in replay.frames
            if frame.lsn > manifest.wal_lsn]
    if emit is not None:
        report = {"path": str(directory), "ok": True, "exit": 0,
                  "format": layout,
                  "summary": {"generation": manifest.generation,
                              "documents": len(manifest.document_names),
                              "wal_tail": len(tail),
                              "segments": len(manifest.segments),
                              "shards": manifest.shards,
                              "strategy": manifest.strategy,
                              "wal_frames": len(replay.frames),
                              "wal_torn_bytes": replay.torn_bytes}}
        if deep:
            from repro.analysis import INVARIANT_NAMES

            report["deep_invariants"] = len(INVARIANT_NAMES)
        return emit(report)
    print(f"store OK: {directory}")
    print(f"  {'format':>14}: v{layout.get('version', '?')} "
          f"{layout.get('codec', '?')} store({manifest.shards})")
    print(f"  {'generation':>14}: {manifest.generation}")
    print(f"  {'documents':>14}: {len(manifest.document_names)} "
          f"(+{len(tail)} in WAL tail)")
    print(f"  {'segments':>14}: {len(manifest.segments)}")
    print(f"  {'shards':>14}: {manifest.shards} [{manifest.strategy}]")
    print(f"  {'wal':>14}: {len(replay.frames)} frame(s), "
          f"{replay.torn_bytes} torn byte(s)")
    if deep:
        from repro.analysis import INVARIANT_NAMES

        print(f"  {'deep audit':>14}: {len(INVARIANT_NAMES)} "
              f"invariants OK")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    """Run the static-analysis rules; exit 1 when any finding survives."""
    import json as json_module

    from repro.analysis import collect_locks, lint_paths, rule_catalog
    from repro.analysis.lint import ModuleInfo, iter_python_files

    def emit(report: dict) -> int:
        # one sorted-keys object on stdout (same contract as
        # ``check-index --json``): scripts parse it without scraping
        print(json_module.dumps(report, sort_keys=True))
        return report["exit"]

    if args.list_rules:
        for rule in rule_catalog():
            print(f"{rule.rule_id}  {rule.title}")
        return 0
    if args.locks:
        modules = [ModuleInfo.from_path(path)
                   for path in iter_python_files(args.paths)]
        sites = collect_locks(modules)
        if args.json:
            return emit({"exit": 0, "ok": True, "count": len(sites),
                         "locks": [site.to_dict() for site in sites]})
        for site in sites:
            print(site.render())
        print(f"gks lint: {len(sites)} lock site(s)", file=sys.stderr)
        return 0
    findings = lint_paths(args.paths)
    if args.json:
        return emit({"exit": 1 if findings else 0, "ok": not findings,
                     "count": len(findings),
                     "findings": [{"path": finding.path,
                                   "line": finding.line,
                                   "rule": finding.rule_id,
                                   "severity": finding.severity,
                                   "message": finding.message}
                                  for finding in findings]})
    for finding in findings:
        print(finding.render())
    if findings:
        print(f"gks lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


def _cmd_race(args: argparse.Namespace) -> int:
    """Run scripted workloads under the runtime sanitizer; exit 1 on
    findings (invariant violations, exceptions or potential deadlocks)."""
    import json as json_module
    import tempfile

    from repro.core.config import EngineConfig
    from repro.obs.locks import monitoring
    from repro.testing.race import (RaceHarness, drive_cache_workload,
                                    drive_durable_workload,
                                    drive_swap_workload)

    def queries_of(engine) -> list[str]:
        vocabulary = engine.index.inverted.vocabulary
        return vocabulary[:8] if vocabulary else ["xml"]

    harness = RaceHarness(threads=args.threads, rounds=args.rounds,
                          iterations=args.iterations, seed=args.seed)
    scenarios = (["cache", "swap", "durable"] if args.scenario == "all"
                 else [args.scenario])
    reports: dict[str, object] = {}
    with monitoring() as monitor:
        if "cache" in scenarios:
            engine = _engine(args.files)
            reports["cache"] = drive_cache_workload(
                engine, queries_of(engine), harness)
        if "swap" in scenarios:
            engine = _engine(args.files)
            spare = _engine(args.files)
            with engine.serve(workers=max(2, args.threads)) as core:
                reports["swap"] = drive_swap_workload(
                    core, [engine, spare], harness, queries_of(engine))
        if "durable" in scenarios:
            with tempfile.TemporaryDirectory() as store_dir:
                config = EngineConfig(store_path=store_dir,
                                      memtable_docs=8)
                engine = GKSEngine.open(_load_repository(args.files),
                                        config=config)
                try:
                    reports["durable"] = drive_durable_workload(
                        engine, harness, queries_of(engine))
                finally:
                    engine.close()
    deadlocks = monitor.potential_deadlocks()
    violations = sum(len(report.violations) + len(report.exceptions)
                     for report in reports.values())
    ok = not deadlocks and violations == 0
    if args.json:
        print(json_module.dumps({
            "exit": 0 if ok else 1, "ok": ok,
            "scenarios": {name: {"rounds": report.rounds,
                                 "operations": report.operations,
                                 "violations": list(report.violations),
                                 "exceptions": [list(entry) for entry
                                                in report.exceptions]}
                          for name, report in reports.items()},
            "lock_order": monitor.report(),
        }, sort_keys=True))
        return 0 if ok else 1
    for name, report in reports.items():
        print(f"[{name}] {report.render()}")
    print(f"lock-order edges: "
          + (", ".join(f"{edge.held} -> {edge.acquired}"
                       for edge in monitor.edges()) or "(none)"))
    for report in deadlocks:
        print(report.render())
    if ok:
        print("gks race: no findings", file=sys.stderr)
        return 0
    print(f"gks race: {violations} workload finding(s), "
          f"{len(deadlocks)} potential deadlock(s)", file=sys.stderr)
    return 1


def _load_repository(files: list[str]) -> Repository:
    """Build a repository; ``.json`` files go through the JSON adapter."""
    from pathlib import Path as _Path

    repository = Repository()
    for file in files:
        path = _Path(file)
        text = path.read_text(encoding="utf-8")
        if path.suffix.lower() == ".json":
            repository.parse_json(text, name=path.name)
        else:
            repository.parse(text, name=path.name)
    return repository


def _engine(files: list[str],
            args: argparse.Namespace | None = None, **kwargs) -> GKSEngine:
    """Build an engine; sharding flags (when present on *args*) apply."""
    from repro.core.config import EngineConfig

    config = EngineConfig(shards=getattr(args, "shards", 1),
                          workers=getattr(args, "workers", 1),
                          shard_strategy=getattr(args, "strategy",
                                                 "round_robin"),
                          store_path=getattr(args, "store", None),
                          memtable_docs=getattr(args, "memtable_docs", 64),
                          compact_segments=getattr(args, "compact_segments",
                                                   4),
                          mode=getattr(args, "mode", "strict") or "strict",
                          threshold=getattr(args, "threshold", 0.0))
    if config.store_path is not None:
        # the durable open path: initialise or recover the store
        return GKSEngine.open(_load_repository(files), config=config,
                              **kwargs)
    return GKSEngine(_load_repository(files), config=config, **kwargs)


def _cmd_index(args: argparse.Namespace) -> int:
    repository = Repository.from_paths(args.files, policy=args.recover)
    if args.shards > 1:
        from repro.index.sharding import build_sharded_index

        index = build_sharded_index(repository, shards=args.shards,
                                    workers=args.workers,
                                    strategy=args.strategy)
    else:
        builder = IndexBuilder()
        builder.add_repository(repository)
        index = builder.build()
    path = save_index(index, args.output,
                      codec=getattr(args, "codec", "raw"))
    stats = index.stats
    layout = (f" across {args.shards} shard(s) [{args.strategy}, "
              f"{args.workers} worker(s)]" if args.shards > 1 else "")
    print(f"indexed {stats.total_nodes} nodes "
          f"({stats.entity_nodes} entities) from {stats.documents} "
          f"document(s) in {stats.build_seconds:.2f}s{layout} -> {path}")
    for failure in repository.quarantine:
        print(f"quarantined {failure.render()}")
    return 0


def _cmd_search(args: argparse.Namespace) -> int:
    from repro.obs.trace import Tracer, render_span_tree

    engine = _engine(args.files, args)
    tracer = Tracer() if args.trace else None
    budget = None
    if args.deadline_ms is not None:
        from repro.core.budget import SearchBudget

        budget = SearchBudget(deadline_s=args.deadline_ms / 1000.0)
    response = engine.search(args.query, s=args.s, tracer=tracer,
                             budget=budget)
    if response.degraded:
        print(f"warning: {response.degradation.render()}",
              file=sys.stderr)
    profile = response.profile
    layout = (f", {args.shards} shard(s)" if args.shards > 1 else "")
    semantics = ""
    if response.semantics is not None:
        semantics = f", mode={response.semantics.mode}"
        if response.semantics.mode == "probabilistic":
            semantics += f" >= {args.threshold:g}"
        elif not response.semantics.relaxed:
            semantics += " (strict answer non-empty; no rewrites)"
    print(f"{len(response)} node(s) for {response.query}  "
          f"[|SL|={profile.merged_list_size}, "
          f"{profile.seconds * 1000:.1f} ms{layout}{semantics}]")
    for node in response.top(args.top):
        line = engine.describe(node)
        if node.probability is not None:
            line += f"  p={node.probability:.4f}"
        if node.relaxation is not None:
            line += (f"  [{node.relaxation.describe()}, "
                     f"penalty={node.relaxation.penalty:g}]")
        print(" ", line)
        if args.snippets:
            print(engine.snippet(node))
        if args.explain:
            print(engine.explain(node))
    if tracer is not None and tracer.roots:
        print()
        print(render_span_tree(tracer.roots[-1]))
        print(response.stats.render())
    if args.metrics_json:
        import json as _json

        Path(args.metrics_json).write_text(
            _json.dumps(engine.metrics(), indent=2, sort_keys=True),
            encoding="utf-8")
        print(f"metrics written to {args.metrics_json}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Boot the JSON/HTTP front end and block until SIGTERM/SIGINT.

    Shutdown contract (scripts/smoke_serve.sh relies on it): on signal
    the listener stops accepting, the broker drains queued requests,
    and the process exits 0 after printing a final accounting line.
    ``httpd.shutdown()`` must run on a *different* thread than
    ``serve_forever()`` — calling it from the signal handler on the
    serving thread deadlocks — so the handler spawns one.
    """
    import signal
    import threading

    from repro.serve import ServeConfig, ServerCore, serve_http

    engine = _engine(args.files, args)
    if args.slow_ms > 0:
        from repro.testing.faults import SlowEngine

        engine = SlowEngine(engine, delay_s=args.slow_ms / 1000.0)
    config = ServeConfig(
        workers=args.serve_workers,
        queue_capacity=args.queue_capacity,
        deadline_s=(args.deadline_ms / 1000.0
                    if args.deadline_ms is not None else None),
        ttl_s=args.ttl_s,
        coalesce=not args.no_coalesce)
    core = ServerCore(engine, config)
    httpd = serve_http(core, host=args.host, port=args.port)
    host, port = httpd.server_address[:2]
    print(f"gks serve: listening on http://{host}:{port} "
          f"({config.workers} worker(s), queue {config.queue_capacity})",
          flush=True)

    def _shutdown(signum, frame) -> None:
        threading.Thread(target=httpd.shutdown, daemon=True).start()

    signal.signal(signal.SIGTERM, _shutdown)
    signal.signal(signal.SIGINT, _shutdown)
    try:
        httpd.serve_forever()
    finally:
        httpd.server_close()
        core.close()
        stats = core.stats()
        print(f"gks serve: drained; {stats['ok']:.0f} ok, "
              f"{stats['shed']:.0f} shed, "
              f"{stats['coalesced']:.0f} coalesced, "
              f"{stats['ttl_hits']:.0f} ttl hit(s), "
              f"{stats['timeouts']:.0f} timeout(s)", flush=True)
    return 0


def _cmd_topk(args: argparse.Namespace) -> int:
    engine = _engine(args.files)
    response = engine.search_top_k(args.query, k=args.k, s=args.s)
    print(f"top {args.k} of RQ(s) for {response.query}")
    for node in response:
        print(" ", engine.describe(node))
    return 0


def _cmd_schema(args: argparse.Namespace) -> int:
    from repro.schema import infer_schema

    repository = _load_repository(args.files)
    schema = infer_schema(repository)
    print(schema.render())
    return 0


def _cmd_facet(args: argparse.Namespace) -> int:
    engine = _engine(args.files)
    response = engine.search(args.query, s=args.s)
    report = engine.facets(response, args.column, top=args.top)
    if not report.buckets:
        print(f"no values for column {args.column!r} "
              f"({report.missing} record(s) lack it)")
        return 0
    for bucket in report:
        print(f"{bucket.value}\t{bucket.count}\t{bucket.weight:.3f}")
    return 0


def _cmd_xpath(args: argparse.Namespace) -> int:
    from repro.xmltree.serialize import serialize_node
    from repro.xmltree.xpath import select

    repository = _load_repository(args.files)
    total = 0
    for document in repository:
        for node in select(document.root, args.path):
            total += 1
            print(serialize_node(node))
    print(f"-- {total} node(s)")
    return 0


def _cmd_di(args: argparse.Namespace) -> int:
    engine = _engine(args.files)
    response = engine.search(args.query, s=args.s)
    report = engine.insights(response, top=args.top)
    if not report.insights:
        print("no insights (no LCE nodes in the response)")
        return 0
    for insight in report:
        print(f"{insight.render()}  weight={insight.weight:.3f}  "
              f"nodes={insight.supporting_nodes}")
    return 0


def _cmd_categorize(args: argparse.Namespace) -> int:
    repository = Repository.from_paths(args.files)
    builder = IndexBuilder()
    builder.add_repository(repository)
    stats = builder.build().stats
    row = stats.category_row()
    print(render_table(
        ["AN", "EN", "RN", "CN", "total nodes"],
        [(row["AN"], row["EN"], row["RN"], row["CN"], row["total"])]))
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    """One-shot observability report: load the corpus, optionally run
    queries, then print metrics (human summary, ``--json`` snapshot, or
    ``--prom`` Prometheus text)."""
    import json as _json

    from repro.obs.metrics import global_registry

    # the CLI is a one-shot process, so the process-wide registry holds
    # exactly this invocation's ingest, build and search metrics
    registry = global_registry()
    engine = _engine(args.files, args,
                     slow_query_threshold_s=args.slow_ms / 1000.0)
    # mint a request id per query so slow-log lines are joinable with
    # serve logs and experiment artifacts (satellite of the exp harness)
    responses = [(text, engine.search(text, s=args.s,
                                      request_id=f"cli-{n:03d}"))
                 for n, text in enumerate(args.query, start=1)]
    if args.prom:
        print(registry.render_prometheus(), end="")
        return 0
    if args.json:
        print(_json.dumps(registry.snapshot(), indent=2, sort_keys=True))
        return 0

    stats = engine.index.stats
    print(f"corpus: {len(engine.repository)} document(s), "
          f"{stats.total_nodes} nodes, "
          f"{len(engine.repository.quarantine)} quarantined")
    print(f"index: {stats.entity_nodes} entities, "
          f"{len(dict(engine.index.inverted.items()))} keywords, "
          f"built in {stats.build_seconds * 1000:.1f} ms")
    from repro.index.sharding import ShardedIndex

    if isinstance(engine.index, ShardedIndex):
        rows = engine.index.shard_table()
        print(f"shards: {engine.index.num_shards} "
              f"[{engine.index.strategy}]")
        print(render_table(
            ["shard", "documents", "nodes", "postings", "vocabulary",
             "entities"],
            [(row["shard"], row["documents"], row["nodes"],
              row["postings"], row["vocabulary"], row["entities"])
             for row in rows]))
    for text, response in responses:
        print(f"query {text!r}: {len(response)} node(s)")
        print(f"  {response.stats.render()}")
    info = engine.cache_info()
    print(f"cache: {info['hits']} hit(s), {info['misses']} miss(es), "
          f"{info['evictions']} eviction(s), "
          f"{info['size']}/{info['capacity']} entries")
    slow = engine.slow_queries()
    print(f"slow queries (>= {args.slow_ms:.0f} ms): {len(slow)}")
    for entry in slow:
        print(f"  {entry.render()}")
    return 0


def _cmd_exp(args: argparse.Namespace) -> int:
    """Experiment matrices: run / aggregate / compare."""
    if args.exp_command == "run":
        from dataclasses import replace as _replace

        from repro.exp import ExperimentRunner, ExperimentSpec, \
            write_aggregate

        spec = ExperimentSpec.load(args.spec)
        if args.mode is not None and args.mode != spec.mode:
            spec = _replace(spec, mode=args.mode)
        log = (lambda *_: None) if args.quiet else print
        runner = ExperimentRunner(spec, args.output, log=log)
        results = runner.run()
        aggregate = write_aggregate(args.output)
        total_ok = sum(result.report.completed for result in results)
        total = sum(result.report.submitted for result in results)
        print(f"gks exp: {len(results)} run(s), {total_ok}/{total} "
              f"requests ok -> {args.output}/aggregate.json")
        return 0
    if args.exp_command == "aggregate":
        from repro.exp import render_markdown, write_aggregate

        aggregate = write_aggregate(args.dir)
        print(render_markdown(aggregate), end="")
        return 0
    if args.exp_command == "compare":
        from repro.exp import compare_files

        current = Path(args.current)
        if current.is_dir():
            current = current / "aggregate.json"
        violations = compare_files(current, args.baseline)
        if not violations:
            print(f"gks exp compare: OK ({current} matches "
                  f"{args.baseline})")
            return 0
        for violation in violations:
            print(f"REGRESSION: {violation.render()}")
        print(f"gks exp compare: {len(violations)} violation(s)",
              file=sys.stderr)
        return 1
    raise GKSError(f"unknown exp subcommand {args.exp_command!r}")


def _cmd_dataset(args: argparse.Namespace) -> int:
    repository = load_dataset(args.name, scale=args.scale, seed=args.seed)
    out_dir = Path(args.output)
    out_dir.mkdir(parents=True, exist_ok=True)
    for document in repository:
        path = out_dir / f"{args.name}_{document.doc_id}.xml"
        path.write_text(serialize_document(document, indent=2),
                        encoding="utf-8")
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
