"""Tests for the JSON → labeled-tree adapter and JSON keyword search."""

import pytest

from repro.core.engine import GKSEngine
from repro.index.categorize import NodeCategory, categorize_tree
from repro.xmltree.json_adapter import (json_to_document,
                                        parse_json_document, sanitize_tag)
from repro.xmltree.repository import Repository


class TestMapping:
    def test_object_keys_become_children(self):
        doc = json_to_document({"title": "GKS", "year": 2016})
        tags = {child.tag: child.text for child in doc.root.children}
        assert tags == {"title": "GKS", "year": "2016"}

    def test_arrays_repeat_their_key(self):
        doc = json_to_document({"authors": ["a", "b", "c"]})
        authors = doc.root.find_all("authors")
        assert [node.text for node in authors] == ["a", "b", "c"]

    def test_nested_objects(self):
        doc = json_to_document({"venue": {"name": "EDBT", "year": 2016}})
        venue = doc.root.children[0]
        assert venue.tag == "venue"
        assert venue.children[0].text == "EDBT"

    def test_array_of_objects(self):
        doc = json_to_document({"refs": [{"id": 1}, {"id": 2}]})
        refs = doc.root.find_all("refs")
        assert len(refs) == 2
        assert refs[1].children[0].text == "2"

    def test_top_level_array_wraps_items(self):
        doc = json_to_document([1, 2, 3])
        assert [node.text for node in doc.root.find_all("item")] == \
            ["1", "2", "3"]

    def test_scalar_document(self):
        doc = json_to_document("hello")
        assert doc.root.text == "hello"

    def test_null_and_booleans(self):
        doc = json_to_document({"a": None, "b": True, "c": False})
        by_tag = {child.tag: child.text for child in doc.root.children}
        assert by_tag == {"a": None, "b": "true", "c": "false"}

    def test_float_rendering(self):
        doc = json_to_document({"x": 3.14, "y": 2.0})
        by_tag = {child.tag: child.text for child in doc.root.children}
        assert by_tag == {"x": "3.14", "y": "2"}

    def test_tag_sanitisation(self):
        assert sanitize_tag("first name") == "first_name"
        assert sanitize_tag("42") == "f_42"
        assert sanitize_tag("") == "field"
        assert sanitize_tag("ok-key.v2") == "ok-key.v2"

    def test_parse_json_document(self):
        doc = parse_json_document('{"k": "v"}', doc_id=3)
        assert doc.doc_id == 3
        assert doc.root.children[0].dewey == (3, 0)


class TestCategorizationOnJSON:
    def test_record_with_array_is_entity(self):
        # {"title": ..., "authors": [...]} ↔ the DBLP entity pattern
        doc = json_to_document({"title": "GKS",
                                "authors": ["Agarwal", "Ramamritham"]})
        records = categorize_tree(doc.root)
        assert records[(0,)].category is NodeCategory.ENTITY

    def test_scalar_fields_are_attributes(self):
        doc = json_to_document({"title": "GKS",
                                "authors": ["a", "b"]})
        records = categorize_tree(doc.root)
        assert records[(0, 0)].category is NodeCategory.ATTRIBUTE
        assert records[(0, 1)].category is NodeCategory.REPEATING


class TestSearchOverJSON:
    @pytest.fixture
    def engine(self):
        repo = Repository()
        repo.parse_json('''{
            "articles": [
                {"title": "keyword search", "year": 2016,
                 "authors": ["Agarwal", "Ramamritham"]},
                {"title": "xml processing", "year": 2009,
                 "authors": ["Bhide", "Agarwal"]}
            ]
        }''')
        return GKSEngine(repo)

    def test_keyword_search_finds_json_records(self, engine):
        response = engine.search("agarwal ramamritham", s=2)
        assert len(response) == 1
        assert response[0].is_lce  # the record object is an entity

    def test_di_over_json(self, engine):
        response = engine.search("agarwal", s=1)
        report = engine.insights(response)
        rendered = " ".join(insight.render() for insight in report)
        assert "2016" in rendered or "2009" in rendered

    def test_mixed_xml_and_json_repository(self):
        repo = Repository()
        repo.parse("<r><a>karen</a></r>")
        repo.parse_json('{"b": "karen"}')
        engine = GKSEngine(repo)
        response = engine.search("karen")
        docs = {node.dewey[0] for node in response}
        assert docs == {0, 1}
