"""Execute an expanded run table and persist one artifact dir per run.

For every :class:`~repro.exp.spec.RunSpec` the runner:

1. boots the system under test — either an in-process
   :class:`~repro.serve.core.ServerCore` over a fresh
   :class:`~repro.core.engine.GKSEngine` (``mode: "inproc"``), or a real
   ``gks serve`` subprocess reached over HTTP (``mode: "http"``);
2. scrapes the metrics exposition *before* the load (text format, the
   same bytes a Prometheus would collect);
3. drives the declared workload through the deterministic
   :class:`~repro.serve.loadgen.LoadGenerator` (closed or open loop);
4. scrapes *after*, computes the per-run
   :func:`~repro.exp.scrape.metrics_delta`;
5. runs one *probe query* with a minted request id and captures the
   correlated evidence (response stats, slow-log entry, span tree) —
   the end-to-end correlation artifact;
6. writes everything under ``<out>/runs/<run_id>/``.

Both modes scrape through the same parser, so an in-process smoke table
and a full HTTP matrix produce byte-compatible artifacts.
"""

from __future__ import annotations

import json
import os
import platform
import re
import signal
import subprocess
import sys
import time
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ConfigError, GKSError
from repro.exp.httpclient import HTTPSearchClient
from repro.exp.scrape import metrics_delta, parse_prometheus
from repro.exp.spec import ExperimentSpec, RunSpec, get_path
from repro.serve.loadgen import LoadGenerator, LoadReport, OpenLoopSchedule

_LISTENING = re.compile(r"listening on http://([\d.]+):(\d+)")


@dataclass(frozen=True)
class RunResult:
    """One executed run: its report, metrics delta and artifact home."""

    run: RunSpec
    report: LoadReport
    delta: dict
    sample: dict
    artifact_dir: Path

    def summary(self) -> dict:
        return {
            "run_id": self.run.run_id,
            "factors": dict(self.run.factors),
            "repetition": self.run.repetition,
            **self.report.to_dict(),
        }


def _resolve_queries(load: dict) -> list[str]:
    """The query mix: explicit strings, or a ``table6[:dataset]`` ref."""
    queries = load.get("queries")
    if isinstance(queries, str):
        if queries == "table6" or queries.startswith("table6:"):
            from repro.eval.workload import TABLE6, for_dataset

            if ":" in queries:
                picked = for_dataset(queries.split(":", 1)[1])
            else:
                picked = list(TABLE6)
            if not picked:
                raise ConfigError(f"no workload queries match {queries!r}")
            return [query.text for query in picked]
        return [queries]
    if not isinstance(queries, list) or not queries:
        raise ConfigError("load.queries must be a non-empty list of "
                          "query strings (or a table6[:dataset] ref)")
    return [str(query) for query in queries]


def _drive_load(target, load: dict) -> LoadReport:
    """Run the declared workload against *target* (broker or client)."""
    generator = LoadGenerator(target)
    queries = _resolve_queries(load)
    kwargs = {}
    if "s" in load:
        kwargs["s"] = int(load["s"])
    if "k" in load:
        kwargs["k"] = int(load["k"])
    if load.get("deadline_ms") is not None:
        kwargs["deadline_s"] = float(load["deadline_ms"]) / 1000.0
    mode = load.get("mode", "closed")
    if mode == "closed":
        return generator.run_closed(
            queries,
            concurrency=int(load.get("concurrency", 4)),
            iterations=int(load.get("iterations", 5)),
            **kwargs)
    if mode == "open":
        arrival = load.get("arrival", "uniform")
        rate = float(load.get("rate_rps", 50.0))
        count = int(load.get("count", 100))
        if arrival == "poisson":
            schedule = OpenLoopSchedule.poisson(
                rate, count, queries, seed=int(load.get("seed", 0)),
                **kwargs)
        elif arrival == "uniform":
            schedule = OpenLoopSchedule.uniform(rate, count, queries,
                                                **kwargs)
        else:
            raise ConfigError(f"load.arrival must be uniform or poisson, "
                              f"got {arrival!r}")
        return generator.run_open(schedule)
    raise ConfigError(f"load.mode must be closed or open, got {mode!r}")


def _environment_stamp(spec: ExperimentSpec) -> dict:
    return {
        "experiment": spec.name,
        "mode": spec.mode,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "unix_time": time.time(),
    }


def _write_json(path: Path, payload) -> None:
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")


class ExperimentRunner:
    """Expand a spec and execute every run, persisting artifacts."""

    def __init__(self, spec: ExperimentSpec, out_dir: str | Path,
                 log=print) -> None:
        self.spec = spec
        self.out_dir = Path(out_dir)
        self._log = log if log is not None else (lambda *_: None)
        self._corpus_cache: dict[tuple, list[str]] = {}

    # ------------------------------------------------------------------
    def run(self) -> list[RunResult]:
        runs = self.spec.expand()
        self.out_dir.mkdir(parents=True, exist_ok=True)
        _write_json(self.out_dir / "spec.json", self.spec.to_dict())
        _write_json(self.out_dir / "env.json",
                    _environment_stamp(self.spec))
        results = []
        for position, run in enumerate(runs, start=1):
            self._log(f"[{position}/{len(runs)}] {run.run_id}")
            results.append(self.run_one(run))
        return results

    def run_one(self, run: RunSpec) -> RunResult:
        artifact_dir = self.out_dir / "runs" / run.run_id
        artifact_dir.mkdir(parents=True, exist_ok=True)
        if self.spec.mode == "http":
            report, before, after, sample = self._run_http(run,
                                                           artifact_dir)
        else:
            report, before, after, sample = self._run_inproc(run)
        delta = metrics_delta(before["parsed"], after["parsed"])
        _write_json(artifact_dir / "run.json", run.to_dict())
        _write_json(artifact_dir / "report.json", report.to_dict())
        (artifact_dir / "metrics_before.prom").write_text(
            before["text"], encoding="utf-8")
        (artifact_dir / "metrics_after.prom").write_text(
            after["text"], encoding="utf-8")
        _write_json(artifact_dir / "metrics_delta.json", delta)
        _write_json(artifact_dir / "sample.json", sample)
        return RunResult(run=run, report=report, delta=delta,
                         sample=sample, artifact_dir=artifact_dir)

    # ------------------------------------------------------------------
    # In-process mode
    # ------------------------------------------------------------------
    def _run_inproc(self, run: RunSpec):
        from repro.core.config import EngineConfig
        from repro.core.engine import GKSEngine
        from repro.datasets.registry import load_dataset
        from repro.obs.metrics import MetricsRegistry
        from repro.serve.config import ServeConfig
        from repro.serve.core import ServerCore

        params = run.params
        registry = MetricsRegistry()
        repository = load_dataset(
            str(get_path(params, "dataset.name", "figure2a")),
            scale=int(get_path(params, "dataset.scale", 1)),
            seed=int(get_path(params, "dataset.seed", 0)))
        engine = GKSEngine(
            repository, metrics=registry,
            config=EngineConfig(
                shards=int(get_path(params, "engine.shards", 1)),
                cache_size=int(get_path(params, "engine.cache_size", 64))))
        serve = params.get("serve", {})
        config = ServeConfig(
            workers=int(serve.get("workers", 4)),
            queue_capacity=int(serve.get("queue_capacity", 64)),
            deadline_s=(float(serve["deadline_ms"]) / 1000.0
                        if serve.get("deadline_ms") is not None else None),
            ttl_s=serve.get("ttl_s"),
            coalesce=bool(serve.get("coalesce", True)),
            trace=bool(serve.get("trace", True)))
        with ServerCore(engine, config, registry=registry) as core:
            before = _scrape_registry(registry)
            report = _drive_load(core, params.get("load", {}))
            # after-scrape precedes the probe so the delta covers
            # exactly the declared load, nothing else
            after = _scrape_registry(registry)
            sample = self._probe_inproc(core, engine, params)
        return report, before, after, sample

    def _probe_inproc(self, core, engine, params: dict) -> dict:
        """One correlated query: id in stats, slow log and span tree."""
        from repro.obs.trace import render_span_tree

        query = _resolve_queries(params.get("load", {}))[0]
        s = int(get_path(params, "load.s", 1))
        rid = core.mint_request_id()
        response = core.search(query, s, request_id=rid)
        sample = {
            "query": query,
            "request_id": rid,
            "stats": response.stats.to_dict(),
        }
        slow = [entry.render() for entry in engine.slow_queries()
                if entry.request_id == rid]
        if slow:
            sample["slow_log"] = slow
        traces = engine.recent_traces()
        for span in reversed(traces):
            if span.attributes.get("request_id") == rid:
                sample["span_tree"] = render_span_tree(span)
                break
        return sample

    # ------------------------------------------------------------------
    # Subprocess (HTTP) mode
    # ------------------------------------------------------------------
    def _corpus_files(self, params: dict) -> list[str]:
        """Materialise the dataset as XML files (cached per identity)."""
        from repro.datasets.registry import load_dataset
        from repro.xmltree.serialize import serialize_document

        name = str(get_path(params, "dataset.name", "figure2a"))
        scale = int(get_path(params, "dataset.scale", 1))
        seed = int(get_path(params, "dataset.seed", 0))
        key = (name, scale, seed)
        if key in self._corpus_cache:
            return self._corpus_cache[key]
        corpus_dir = self.out_dir / "corpus" / f"{name}-x{scale}-s{seed}"
        corpus_dir.mkdir(parents=True, exist_ok=True)
        files = []
        repository = load_dataset(name, scale=scale, seed=seed)
        for document in repository:
            path = corpus_dir / f"{name}_{document.doc_id}.xml"
            path.write_text(serialize_document(document, indent=2),
                            encoding="utf-8")
            files.append(str(path))
        self._corpus_cache[key] = files
        return files

    def _run_http(self, run: RunSpec, artifact_dir: Path):
        params = run.params
        files = self._corpus_files(params)
        serve = params.get("serve", {})
        command = [sys.executable, "-m", "repro", "serve", *files,
                   "--host", "127.0.0.1", "--port", "0",
                   "--serve-workers", str(serve.get("workers", 4)),
                   "--queue-capacity", str(serve.get("queue_capacity", 64)),
                   "--shards", str(get_path(params, "engine.shards", 1))]
        if serve.get("deadline_ms") is not None:
            command += ["--deadline-ms", str(serve["deadline_ms"])]
        if serve.get("ttl_s") is not None:
            command += ["--ttl-s", str(serve["ttl_s"])]
        if not serve.get("coalesce", True):
            command += ["--no-coalesce"]
        env = dict(os.environ)
        src_root = str(Path(__file__).resolve().parents[2])
        env["PYTHONPATH"] = src_root + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
        process = subprocess.Popen(
            command, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env)
        try:
            base_url = self._await_listening(process)
            with HTTPSearchClient(base_url, pool=int(
                    get_path(params, "load.concurrency", 8))) as client:
                before = _scrape_client(client)
                report = _drive_load(client, params.get("load", {}))
                after = _scrape_client(client)
                sample = self._probe_http(client, params)
        finally:
            tail = self._stop_server(process)
            (artifact_dir / "server.log").write_text(tail,
                                                     encoding="utf-8")
        return report, before, after, sample

    def _await_listening(self, process, timeout_s: float = 30.0) -> str:
        """Block until the server prints its listening line."""
        deadline = time.monotonic() + timeout_s
        while True:
            if process.poll() is not None:
                output = process.stdout.read() if process.stdout else ""
                raise GKSError(f"gks serve exited before listening "
                               f"(code {process.returncode}): {output}")
            line = process.stdout.readline()
            match = _LISTENING.search(line)
            if match:
                host, port = match.group(1), match.group(2)
                return f"http://{host}:{port}"
            if time.monotonic() > deadline:
                raise GKSError("gks serve did not print its listening "
                               "line within the boot timeout")

    def _probe_http(self, client: HTTPSearchClient, params: dict) -> dict:
        query = _resolve_queries(params.get("load", {}))[0]
        s = int(get_path(params, "load.s", 1))
        rid = f"probe-{os.getpid()}"
        payload = client.search(query, s, request_id=rid)
        return {
            "query": query,
            "request_id": rid,
            "serve": payload.get("serve", {}),
        }

    def _stop_server(self, process) -> str:
        """SIGTERM → drain → collect the process's output tail."""
        if process.poll() is None:
            process.send_signal(signal.SIGTERM)
        try:
            output, _ = process.communicate(timeout=30)
        except subprocess.TimeoutExpired:
            process.kill()
            output, _ = process.communicate()
        return output or ""


def _scrape_registry(registry) -> dict:
    text = registry.render_prometheus()
    return {"text": text, "parsed": parse_prometheus(text)}


def _scrape_client(client: HTTPSearchClient) -> dict:
    text = client.metrics_text()
    return {"text": text, "parsed": parse_prometheus(text)}


def run_experiment(spec: ExperimentSpec, out_dir: str | Path,
                   log=print) -> list[RunResult]:
    """Convenience: expand *spec*, run every run, return the results."""
    return ExperimentRunner(spec, out_dir, log=log).run()
