"""Durable-engine glue: opening, recovering and composing a store.

:class:`~repro.core.engine.GKSEngine` stays the facade; this module owns
the mechanics of the segmented write path — turning a
:class:`~repro.index.segments.SegmentStore` back into a serving index
and vice versa:

* **open** — no manifest yet: build the base index as usual, seed the
  store with generation-1 segments and an empty WAL.
* **recover** — manifest present: verify compatibility with the engine
  config and the base corpus (never silently serve a different corpus),
  re-parse the flushed appended documents from the texts sidecars,
  load the verified segment runs, then re-apply the WAL tail.  The
  composed index is node-for-node the one a from-scratch rebuild over
  the same documents would produce.
* **compose** — wrap the per-shard unit runs (segments + memtable
  mini-indexes) into :class:`~repro.index.segments.StackedIndex` stacks:
  one stack for a monolithic engine, a stack per shard inside a
  :class:`~repro.index.sharding.ShardedIndex` for scatter-gather.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Sequence

from repro.core.config import EngineConfig
from repro.errors import StorageError, XMLSyntaxError
from repro.index.builder import GKSIndex, IndexBuilder
from repro.index.segments import (MANIFEST_NAME, PendingDocument,
                                  SegmentStore, StackedIndex, StoreManifest)
from repro.index.sharding import Shard, ShardedIndex, shard_of
from repro.text.analyzer import Analyzer
from repro.xmltree.parser import parse_document
from repro.xmltree.repository import Repository
from repro.xmltree.tree import XMLDocument

# per shard: the ordered run chain, each run = (owned doc ids, unit index)
UnitRuns = dict[int, list[tuple[tuple[int, ...], GKSIndex]]]


def build_unit(document: XMLDocument, analyzer: Analyzer,
               index_tags: bool) -> GKSIndex:
    """Index a single document as an immutable memtable unit.

    The unit keeps the document's **global** Dewey ids, so stacking it
    onto the serving index is a disjoint sorted union — the same
    guarantee shard builds rely on.
    """
    builder = IndexBuilder(analyzer=analyzer, index_tags=index_tags)
    builder.add_document_unchecked(document)
    return builder.build()


def compose_serving(durable_units: UnitRuns,
                    pending: Sequence[PendingDocument],
                    config: EngineConfig,
                    names: Sequence[str]
                    ) -> StackedIndex | ShardedIndex:
    """The serving index over *durable_units* plus the memtable tail.

    Monolithic configs get the shard-0 stack directly (plain dispatch);
    sharded configs get a :class:`ShardedIndex` whose shard indexes are
    stacks — scatter-gather works unchanged through duck typing.
    """
    per_shard: dict[int, list[tuple[tuple[int, ...], GKSIndex]]] = {
        shard_id: list(durable_units.get(shard_id, ()))
        for shard_id in range(config.shards)}
    for doc in pending:
        per_shard[doc.shard_id].append(((doc.doc_id,), doc.unit))
    stacks = {
        shard_id: StackedIndex([unit for _, unit in runs],
                               [doc_ids for doc_ids, _ in runs],
                               analyzer=config.analyzer)
        for shard_id, runs in per_shard.items()}
    if config.shards == 1:
        return stacks[0]
    shards = [Shard(shard_id=shard_id, doc_ids=stacks[shard_id].doc_ids,
                    index=stacks[shard_id])
              for shard_id in range(config.shards)]
    return ShardedIndex(shards, strategy=config.shard_strategy,
                        document_names=tuple(names),
                        analyzer=config.analyzer)


def units_from_base(base: GKSIndex | ShardedIndex,
                    config: EngineConfig) -> UnitRuns:
    """Seed the per-shard run chains from a freshly built base index."""
    if isinstance(base, ShardedIndex):
        return {shard.shard_id: [(shard.doc_ids, shard.index)]
                for shard in base.shards if shard.doc_ids}
    count = len(base.document_names)
    return {0: [(tuple(range(count)), base)]} if count else {}


def check_compatible(manifest: StoreManifest, repository: Repository,
                     config: EngineConfig) -> None:
    """Refuse to open a store that describes a different engine/corpus.

    Silent acceptance would be silent data loss: a store flushed under
    three shards cannot be recovered under two, and a store whose base
    documents differ from the source corpus is somebody else's index.
    Raises :class:`StorageError` (``diagnosis="incompatible"``).
    """
    problems = []
    if manifest.shards != config.shards:
        problems.append(f"store has {manifest.shards} shards, "
                        f"config wants {config.shards}")
    if manifest.strategy != config.shard_strategy:
        problems.append(f"store strategy {manifest.strategy!r}, "
                        f"config wants {config.shard_strategy!r}")
    if manifest.index_tags != config.index_tags:
        problems.append(f"store index_tags={manifest.index_tags}, "
                        f"config wants {config.index_tags}")
    if (manifest.use_stopwords != config.analyzer.use_stopwords
            or manifest.use_stemming != config.analyzer.use_stemming):
        problems.append("analyzer flags differ")
    if manifest.base_documents != len(repository):
        problems.append(f"store built over {manifest.base_documents} "
                        f"base documents, source has {len(repository)}")
    else:
        base_names = manifest.document_names[:manifest.base_documents]
        source_names = tuple(document.name for document in repository)
        if base_names != source_names:
            problems.append("base document names differ from the source "
                            "corpus")
    if problems:
        raise StorageError(
            f"segmented store is incompatible with this engine: "
            f"{'; '.join(problems)}", diagnosis="incompatible")


def open_durable(repository: Repository, config: EngineConfig,
                 build_index: Callable[[Repository, EngineConfig],
                                       GKSIndex | ShardedIndex]
                 ) -> tuple[StackedIndex | ShardedIndex, SegmentStore,
                            UnitRuns, list[PendingDocument]]:
    """Open or recover the segmented store named by ``config.store_path``.

    Returns ``(serving_index, store, durable_units, pending)``.  The
    repository is extended in place with every recovered post-base
    document (sidecar texts first, then the WAL tail) so snippets and
    exports see the full corpus.
    """
    directory = Path(config.store_path)
    if not (directory / MANIFEST_NAME).exists():
        base = build_index(repository, config)
        store = SegmentStore.create(
            directory, base, shards=config.shards,
            strategy=config.shard_strategy, index_tags=config.index_tags)
        durable_units = units_from_base(base, config)
        serving = compose_serving(
            durable_units, [], config,
            names=tuple(document.name for document in repository))
        return serving, store, durable_units, []

    store = SegmentStore.open(directory)
    manifest = store.manifest
    check_compatible(manifest, repository, config)
    for doc_id, name, text in store.appended_documents():
        document = _replay_parse(text, doc_id, name, store)
        repository.add(document)
    runs = store.load_segment_units()
    durable_units: UnitRuns = {
        shard_id: [(record.doc_ids, unit) for record, unit in chain]
        for shard_id, chain in runs.items()}
    covered = sorted(doc_id
                     for chain in durable_units.values()
                     for doc_ids, _ in chain
                     for doc_id in doc_ids)
    if covered != list(range(len(manifest.document_names))):
        raise StorageError(
            f"segments of {directory} cover documents {covered} but the "
            f"manifest names {len(manifest.document_names)}",
            diagnosis="corrupted", path=directory / MANIFEST_NAME)
    pending: list[PendingDocument] = []
    for frame in store.pending_frames():
        record = frame.record
        doc_id = len(repository)
        if (not isinstance(record, dict) or record.get("op") != "add"
                or record.get("doc_id") != doc_id
                or not isinstance(record.get("text"), str)):
            raise StorageError(
                f"WAL frame {frame.lsn} of {directory} does not continue "
                f"the manifest (expected add of document {doc_id})",
                diagnosis="corrupted", path=directory / MANIFEST_NAME)
        document = _replay_parse(record["text"], doc_id,
                                 record.get("name"), store)
        repository.add(document)
        unit = build_unit(document, config.analyzer, config.index_tags)
        pending.append(PendingDocument(
            lsn=frame.lsn, doc_id=doc_id,
            shard_id=shard_of(doc_id, document.name, config.shards,
                              config.shard_strategy),
            name=document.name, text=record["text"], unit=unit))
    serving = compose_serving(
        durable_units, pending, config,
        names=tuple(document.name for document in repository))
    return serving, store, durable_units, pending


def _replay_parse(text: str, doc_id: int, name: str | None,
                  store: SegmentStore) -> XMLDocument:
    """Parse a recovered document; it was valid when acknowledged, so a
    parse failure now means the stored bytes rotted."""
    try:
        return parse_document(text, doc_id=doc_id,
                              attributes_as_children=True, name=name)
    except XMLSyntaxError as exc:
        raise StorageError(
            f"recovered document {doc_id} of {store.directory} no longer "
            f"parses ({exc}) — the store is corrupted",
            diagnosis="corrupted", path=store.directory) from exc
