"""Sharded index: partitioning, parallel build, scatter-gather equivalence,
storage manifest round-trips and the unified ``EngineConfig`` API.

The load-bearing guarantee is *exact equivalence*: for every corpus,
query and budget, a sharded search must return node-for-node,
score-for-score the same response a monolithic index produces — the
shard layout is an implementation detail no caller can observe through
results.
"""

from __future__ import annotations

import gzip
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.budget import SearchBudget
from repro.core.config import EngineConfig, Paths, Texts
from repro.core.engine import GKSEngine
from repro.core.query import Query
from repro.core.scatter import sharded_search, sharded_top_k
from repro.core.search import search
from repro.core.topk import search_top_k
from repro.datasets.registry import load_dataset
from repro.errors import ConfigError, GKSError, StorageError
from repro.index.builder import IndexBuilder
from repro.index.sharding import (ParallelIndexBuilder, ShardedIndex,
                                  build_sharded_index, partition_documents,
                                  shard_of)
from repro.index.storage import check_index, load_index, save_index
from repro.testing.faults import FakeClock, TornWriter
from repro.xmltree.repository import Repository

pytestmark = pytest.mark.sharding

SHARD_COUNTS = (1, 2, 4, 7)

# A small multi-document corpus with overlapping vocabulary so queries
# cross shard boundaries: the same keywords recur in different documents.
CORPUS = [
    "<bib><paper><author>Peter Buneman</author>"
    "<title>keyword search</title></paper></bib>",
    "<bib><paper><author>Wenfei Fan</author>"
    "<title>graph search</title></paper>"
    "<paper><author>Peter Buneman</author>"
    "<title>archiving data</title></paper></bib>",
    "<bib><paper><author>Karen Smith</author>"
    "<title>data mining keyword</title></paper></bib>",
    "<bib><book><author>Wenfei Fan</author>"
    "<title>keyword mining</title></book></bib>",
    "<bib><paper><title>search engines</title></paper></bib>",
]

QUERIES = ["keyword", "keyword search", "buneman fan", "data mining search"]


def _monolithic(repository):
    builder = IndexBuilder()
    builder.add_repository(repository)
    return builder.build()


def _signature(response):
    """Everything a caller can observe about a response's content."""
    return (
        tuple((node.dewey, node.score, node.distinct_keywords,
               node.matched_keywords, node.is_lce, node.estimated_keywords)
              for node in response.nodes),
        response.degraded,
        (response.degradation.stage, response.degradation.reason)
        if response.degradation else None,
    )


def _assert_equivalent(repository, query, shards, **budget_kwargs):
    mono = _monolithic(repository)
    sharded = build_sharded_index(repository, shards=shards)
    mono_budget = SearchBudget(**budget_kwargs) if budget_kwargs else None
    shard_budget = SearchBudget(**budget_kwargs) if budget_kwargs else None
    expected = search(mono, query, budget=mono_budget)
    actual = sharded_search(sharded, query, budget=shard_budget)
    assert _signature(actual) == _signature(expected)


class TestPartitioning:
    def test_round_robin_cycles_documents(self):
        assert [shard_of(i, f"d{i}", 3, "round_robin") for i in range(6)] \
            == [0, 1, 2, 0, 1, 2]

    def test_hash_is_deterministic_by_name(self):
        first = shard_of(0, "corpus.xml", 4, "hash")
        assert shard_of(99, "corpus.xml", 4, "hash") == first

    def test_partition_covers_every_document_once(self):
        names = [f"d{i}.xml" for i in range(11)]
        for strategy in ("round_robin", "hash"):
            partitions = partition_documents(names, 4, strategy)
            assert sorted(sum(partitions, ())) == list(range(11))

    def test_empty_shards_are_allowed(self):
        partitions = partition_documents(["only.xml"], 7, "round_robin")
        assert partitions[0] == (0,)
        assert all(not p for p in partitions[1:])

    @pytest.mark.parametrize("shards,strategy", [
        (0, "round_robin"), (-1, "hash"), (2, "alphabetical")])
    def test_invalid_arguments_raise_config_error(self, shards, strategy):
        with pytest.raises(ConfigError):
            shard_of(0, "d.xml", shards, strategy)


class TestShardedBuild:
    def test_facade_matches_monolithic_index(self):
        repository = Repository.from_texts(CORPUS)
        mono = _monolithic(repository)
        for shards in SHARD_COUNTS:
            sharded = build_sharded_index(repository, shards=shards)
            assert sharded.num_shards == shards
            assert sharded.document_names == mono.document_names
            for keyword in dict(mono.inverted.items()):
                assert sharded.postings(keyword) == \
                    list(mono.postings(keyword))
            assert sharded.stats.total_nodes == mono.stats.total_nodes
            assert sharded.hashes.entity_table == mono.hashes.entity_table
            assert sharded.hashes.element_table == mono.hashes.element_table

    def test_parallel_build_equals_serial_build(self):
        repository = Repository.from_texts(CORPUS)
        serial = build_sharded_index(repository, shards=3, workers=1)
        parallel = build_sharded_index(repository, shards=3, workers=2)
        assert serial.document_names == parallel.document_names
        for left, right in zip(serial.shards, parallel.shards):
            assert left.doc_ids == right.doc_ids
            assert dict(left.index.inverted.items()) == \
                dict(right.index.inverted.items())
            assert left.index.hashes.entity_table == \
                right.index.hashes.entity_table

    def test_build_from_texts_equals_build_from_repository(self):
        repository = Repository.from_texts(CORPUS)
        via_repo = ParallelIndexBuilder(shards=2).build(repository)
        via_texts = ParallelIndexBuilder(shards=2).build_from_texts(CORPUS)
        for keyword in dict(via_repo.inverted.items()):
            assert via_texts.postings(keyword) == via_repo.postings(keyword)

    def test_invalid_builder_arguments(self):
        with pytest.raises(ConfigError):
            ParallelIndexBuilder(shards=0)
        with pytest.raises(ConfigError):
            ParallelIndexBuilder(workers=0)
        with pytest.raises(ConfigError):
            ParallelIndexBuilder(strategy="modulo")


class TestEquivalence:
    """Sharded answers must be indistinguishable from monolithic ones."""

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    @pytest.mark.parametrize("raw", QUERIES)
    def test_search_identical_on_synthetic_corpus(self, shards, raw):
        repository = Repository.from_texts(CORPUS)
        for s in (1, 2):
            _assert_equivalent(repository, Query.parse(raw, s=s), shards)

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    @pytest.mark.parametrize("name,raw", [
        ("figure1", "karen mike data mining"),
        ("figure2a", "peter buneman"),
        ("plays", "king lear night"),
    ])
    def test_search_identical_on_bundled_datasets(self, shards, name, raw):
        repository = load_dataset(name)
        _assert_equivalent(repository, Query.parse(raw), shards)
        _assert_equivalent(repository, Query.parse(raw, s=2), shards)

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    @pytest.mark.parametrize("k", [1, 3, 10])
    def test_top_k_identical(self, shards, k):
        repository = Repository.from_texts(CORPUS)
        mono = _monolithic(repository)
        sharded = build_sharded_index(repository, shards=shards)
        for raw in QUERIES:
            query = Query.parse(raw)
            expected = search_top_k(mono, query, k)
            actual = sharded_top_k(sharded, query, k)
            assert _signature(actual) == _signature(expected)

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_max_sl_trip_identical(self, shards):
        repository = Repository.from_texts(CORPUS)
        for max_sl in (1, 2, 3, 5):
            _assert_equivalent(repository, Query.parse("keyword search"),
                               shards, max_sl=max_sl)

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_max_nodes_trip_identical(self, shards):
        repository = Repository.from_texts(CORPUS)
        for max_nodes in (1, 2):
            _assert_equivalent(repository, Query.parse("keyword search"),
                               shards, max_nodes=max_nodes)

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_expired_deadline_identical(self, shards):
        # both clocks jump far past the deadline on first read, so every
        # stage trips immediately and the recovery_k path is exercised
        repository = Repository.from_texts(CORPUS)
        query = Query.parse("keyword search")
        mono = _monolithic(repository)
        sharded = build_sharded_index(repository, shards=shards)
        expected = search(mono, query, budget=SearchBudget(
            deadline_s=0.001, recovery_k=2,
            clock=FakeClock(auto_advance=1.0)))
        actual = sharded_search(sharded, query, budget=SearchBudget(
            deadline_s=0.001, recovery_k=2,
            clock=FakeClock(auto_advance=1.0)))
        assert _signature(actual) == _signature(expected)
        assert actual.degraded and actual.degradation.reason == "deadline"

    @settings(max_examples=25, deadline=None)
    @given(
        docs=st.lists(
            st.lists(
                st.sampled_from(["alpha", "beta", "gamma", "delta",
                                 "epsilon"]),
                min_size=1, max_size=6),
            min_size=1, max_size=6),
        shards=st.sampled_from(SHARD_COUNTS),
        s=st.integers(min_value=1, max_value=3))
    def test_search_identical_on_generated_corpora(self, docs, shards, s):
        texts = [
            "<doc>" + "".join(f"<item>{word} note</item>" for word in words)
            + "</doc>"
            for words in docs]
        repository = Repository.from_texts(texts)
        query = Query.parse("alpha beta gamma", s=s)
        _assert_equivalent(repository, query, shards)
        _assert_equivalent(repository, query, shards, max_sl=3)


class TestStorageManifest:
    def _sharded(self, shards=3):
        return build_sharded_index(Repository.from_texts(CORPUS),
                                   shards=shards)

    def test_round_trip_preserves_layout_and_postings(self, tmp_path):
        index = self._sharded()
        path = save_index(index, tmp_path / "sharded.gks")
        loaded = load_index(path)
        assert isinstance(loaded, ShardedIndex)
        assert loaded.num_shards == index.num_shards
        assert loaded.strategy == index.strategy
        assert loaded.document_names == index.document_names
        for shard, original in zip(loaded.shards, index.shards):
            assert shard.doc_ids == original.doc_ids
        for keyword in ("keyword", "search", "buneman"):
            assert loaded.postings(keyword) == index.postings(keyword)
        query = Query.parse("keyword search")
        assert _signature(sharded_search(loaded, query)) == \
            _signature(sharded_search(index, query))

    def test_check_index_reports_shard_layout(self, tmp_path):
        path = save_index(self._sharded(), tmp_path / "sharded.gks")
        summary = check_index(path)
        assert summary["ok"]
        assert summary["shards"] == 3
        assert summary["strategy"] == "round_robin"

    def test_torn_write_is_diagnosed_not_crashed(self, tmp_path):
        path = save_index(self._sharded(), tmp_path / "sharded.gks")
        TornWriter(seed=7).tear(path, fraction=0.5)
        summary = check_index(path)
        assert not summary["ok"]
        assert summary["diagnosis"] in ("truncated", "corrupted")
        with pytest.raises(StorageError):
            load_index(path)

    def test_corrupted_shard_payload_rejects_whole_file(self, tmp_path):
        path = save_index(self._sharded(), tmp_path / "sharded.gks")
        with gzip.open(path, "rt", encoding="utf-8") as handle:
            envelope = json.load(handle)
        # flip one posting inside a shard payload; the manifest (and its
        # CRC) stay intact, so only the per-shard checksum can catch it
        payload = envelope["shards"][0]
        keyword = next(iter(payload["postings"]))
        payload["postings"][keyword][0] = "999.999"
        with gzip.open(path, "wt", encoding="utf-8") as handle:
            json.dump(envelope, handle)
        with pytest.raises(StorageError):
            load_index(path)

    def test_tampered_manifest_rejects_whole_file(self, tmp_path):
        path = save_index(self._sharded(), tmp_path / "sharded.gks")
        with gzip.open(path, "rt", encoding="utf-8") as handle:
            envelope = json.load(handle)
        envelope["manifest"]["strategy"] = "hash"
        with gzip.open(path, "wt", encoding="utf-8") as handle:
            json.dump(envelope, handle)
        with pytest.raises(StorageError):
            load_index(path)


class TestEngineConfig:
    def test_config_is_frozen(self):
        config = EngineConfig()
        with pytest.raises(Exception):
            config.s = 3

    @pytest.mark.parametrize("kwargs", [
        {"s": 0}, {"cache_size": -1}, {"shards": 0}, {"workers": 0},
        {"shard_strategy": "alphabetical"}, {"ranker": 42},
        {"recovery": "panic"}])
    def test_invalid_config_raises_config_error(self, kwargs):
        with pytest.raises(ConfigError):
            EngineConfig(**kwargs)

    def test_replace_validates_and_rejects_unknown_fields(self):
        config = EngineConfig().replace(shards=4, workers=2)
        assert config.shards == 4 and config.workers == 2
        with pytest.raises(ConfigError):
            config.replace(shard_count=4)
        with pytest.raises(ConfigError):
            config.replace(shards=0)

    def test_open_builds_sharded_engine(self):
        engine = GKSEngine.open(Texts(CORPUS), shards=4)
        assert isinstance(engine.index, ShardedIndex)
        assert engine.index.num_shards == 4
        assert engine.config.shards == 4

    def test_open_sniffs_texts_and_rejects_mixtures(self, tmp_path):
        assert len(GKSEngine.open("<a><b>x</b></a>").repository) == 1
        path = tmp_path / "d.xml"
        path.write_text("<a><b>x</b></a>", encoding="utf-8")
        assert len(GKSEngine.open(path).repository) == 1
        with pytest.raises(ConfigError):
            GKSEngine.open(["<a/>", str(path)])

    def test_shims_equal_open(self):
        via_shim = GKSEngine.from_texts(CORPUS)  # gks: ignore[D001]
        via_open = GKSEngine.open(Texts(CORPUS))
        query = "keyword search"
        assert _signature(via_shim.search(query)) == \
            _signature(via_open.search(query))

    def test_search_tuning_params_are_keyword_only(self):
        engine = GKSEngine.open(CORPUS)
        with pytest.raises(TypeError):
            engine.search("keyword", 1, None)
        with pytest.raises(TypeError):
            engine.search_top_k("keyword", 3, 1, None)

    def test_config_s_is_the_default_threshold(self):
        strict = GKSEngine.open(Texts(CORPUS), s=2)
        loose = GKSEngine.open(Texts(CORPUS))
        assert strict.search("keyword search").query.effective_s == 2
        assert loose.search("keyword search").query.effective_s == 1

    def test_index_path_round_trip_and_incompatible_rebuild(self, tmp_path):
        paths = []
        for position, text in enumerate(CORPUS):
            path = tmp_path / f"doc{position}.xml"
            path.write_text(text, encoding="utf-8")
            paths.append(str(path))
        cache = tmp_path / "cache.gks"
        config = EngineConfig(shards=2, index_path=cache)

        first = GKSEngine.open(Paths(paths), config=config)
        assert cache.exists()
        second = GKSEngine.open(Paths(paths), config=config)
        assert isinstance(second.index, ShardedIndex)
        assert _signature(second.search("keyword search")) == \
            _signature(first.search("keyword search"))

        # a monolithic engine must not adopt the sharded cache: the file
        # is rebuilt and rewritten, never served incompatibly
        mono = GKSEngine.open(Paths(paths), config=config.replace(shards=1))
        assert not isinstance(mono.index, ShardedIndex)
        again = GKSEngine.open(Paths(paths), config=config.replace(shards=1))
        assert not isinstance(again.index, ShardedIndex)

    def test_index_path_survives_torn_cache(self, tmp_path):
        path = tmp_path / "d.xml"
        path.write_text(CORPUS[0], encoding="utf-8")
        cache = tmp_path / "cache.gks"
        config = EngineConfig(index_path=cache)
        GKSEngine.open(Paths([str(path)]), config=config)
        TornWriter(seed=3).tear(cache, fraction=0.5)
        engine = GKSEngine.open(Paths([str(path)]), config=config)
        assert engine.search("keyword").query is not None
        assert check_index(cache)["ok"]  # cache was rewritten


class TestAddDocument:
    NEW_DOC = ("<bib><paper><author>Peter Buneman</author>"
               "<title>provenance keyword</title></paper></bib>")

    @pytest.mark.parametrize("shards", (2, 4))
    def test_sharded_append_equals_monolithic(self, shards):
        mono = GKSEngine.open(CORPUS)
        sharded = GKSEngine.open(Texts(CORPUS), shards=shards)
        mono.add_document(self.NEW_DOC)
        sharded.add_document(self.NEW_DOC)
        assert isinstance(sharded.index, ShardedIndex)
        for raw in QUERIES + ["provenance"]:
            assert _signature(sharded.search(raw, use_cache=False)) == \
                _signature(mono.search(raw, use_cache=False))

    def test_append_rebuilds_only_the_owning_shard(self):
        engine = GKSEngine.open(Texts(CORPUS), shards=2)
        untouched = [shard.index for shard in engine.index.shards
                     if shard.shard_id != len(CORPUS) % 2]
        engine.add_document(self.NEW_DOC)
        survivors = [shard.index for shard in engine.index.shards
                     if shard.shard_id != len(CORPUS) % 2]
        assert all(before is after
                   for before, after in zip(untouched, survivors))

    def test_cache_cleared_even_when_indexing_fails(self, monkeypatch):
        engine = GKSEngine.open(CORPUS)
        engine.search("keyword")
        assert engine.cache_info()["size"] == 1

        import repro.index.incremental as incremental

        def boom(index, document):
            raise RuntimeError("mid-append crash")

        monkeypatch.setattr(incremental, "append_document", boom)
        with pytest.raises(RuntimeError):
            engine.add_document(self.NEW_DOC)
        # the repository already grew, so stale responses must be gone
        assert engine.cache_info()["size"] == 0


class TestErrors:
    def test_config_error_is_a_value_error_and_gks_error(self):
        assert issubclass(ConfigError, ValueError)
        assert issubclass(ConfigError, GKSError)
        with pytest.raises(ValueError):
            EngineConfig(shards=0)

    def test_budget_validation_uses_config_error(self):
        with pytest.raises(ConfigError):
            SearchBudget(deadline_s=-1)
        with pytest.raises(ConfigError):
            SearchBudget(max_sl=0)

    def test_top_k_validation_uses_config_error(self):
        engine = GKSEngine.open(CORPUS)
        with pytest.raises(ConfigError):
            engine.search_top_k("keyword", 0)
