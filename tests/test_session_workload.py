"""Exploration-session state transitions and workload determinism.

:class:`repro.core.session.ExplorationSession` drives the paper's §6
refine-and-requery loop; these tests pin its state machine (run →
refine/drill_down/back, transcript rendering, and every QueryError
path).  :mod:`repro.eval.workload` is the Table 6 workload — its
integrity and the determinism of the synthetic corpora it targets are
what makes the eval harness reproducible.
"""

from __future__ import annotations

import pytest

from repro.core.query import Query
from repro.core.session import ExplorationSession, SessionStep
from repro.datasets import load_dataset
from repro.errors import QueryError
from repro.eval import workload
from repro.xmltree.serialize import serialize_document


# ---------------------------------------------------------------------------
# ExplorationSession
# ---------------------------------------------------------------------------
class TestSessionTransitions:
    def test_empty_session_has_no_current(self, figure1_engine):
        session = ExplorationSession(figure1_engine)
        assert len(session) == 0
        with pytest.raises(QueryError):
            session.current

    def test_run_pushes_a_step(self, figure1_engine):
        session = ExplorationSession(figure1_engine)
        step = session.run(Query.of(["a", "b", "c", "d"], s=2))
        assert isinstance(step, SessionStep)
        assert len(session) == 1
        assert session.current is step
        assert step.query.keywords == ("a", "b", "c", "d")
        assert step.result_count == len(step.response)

    def test_refine_applies_subset_and_records_note(self, figure1_engine):
        session = ExplorationSession(figure1_engine)
        first = session.run(Query.of(["a", "b", "c", "d"], s=2))
        assert first.refinements, "Fig. 1 Q3 must offer refinements"
        second = session.refine(0)
        assert len(session) == 2
        assert second.note.startswith("refined[")
        # the refined query is the chosen refinement's keyword set
        chosen = first.refinements[0]
        assert second.query.keywords == tuple(chosen.keywords)

    def test_refine_out_of_range(self, figure1_engine):
        session = ExplorationSession(figure1_engine)
        step = session.run(Query.of(["a", "b", "c", "d"], s=2))
        with pytest.raises(QueryError):
            session.refine(len(step.refinements))
        with pytest.raises(QueryError):
            session.refine(-1)

    def test_refine_without_offers(self, figure1_engine):
        session = ExplorationSession(figure1_engine)
        step = session.run("zzz-nowhere")
        assert not step.refinements
        with pytest.raises(QueryError):
            session.refine()

    def test_expansion_bumps_s_by_one(self, figure2a_engine):
        from repro.core.refinement import RefinementKind

        session = ExplorationSession(figure2a_engine)
        step = session.run("karen mike", s=1)
        expansions = [number for number, refinement
                      in enumerate(step.refinements)
                      if refinement.kind is RefinementKind.EXPANSION]
        if not expansions:
            pytest.skip("corpus offered no expansion refinement")
        refined = session.refine(expansions[0])
        chosen = step.refinements[expansions[0]]
        assert refined.query.s == min(step.query.s + 1,
                                      len(chosen.keywords))

    def test_drill_down_uses_insight_keywords(self, figure2a_engine):
        session = ExplorationSession(figure2a_engine)
        step = session.run("karen mike", s=1)
        assert step.insights.top_keywords(5), \
            "Fig. 2(a) karen+mike must yield DI keywords"
        drilled = session.drill_down()
        assert drilled.note.startswith("DI drill-down")
        assert set(drilled.query.keywords) <= \
            set(step.insights.top_keywords(5))

    def test_drill_down_without_insights(self, figure1_engine):
        session = ExplorationSession(figure1_engine)
        session.run("zzz-nowhere")
        with pytest.raises(QueryError):
            session.drill_down()

    def test_back_rewinds_to_previous_step(self, figure1_engine):
        session = ExplorationSession(figure1_engine)
        first = session.run(Query.of(["a", "b", "c", "d"], s=2))
        session.refine(0)
        restored = session.back()
        assert restored is first
        assert len(session) == 1

    def test_back_on_single_step_fails(self, figure1_engine):
        session = ExplorationSession(figure1_engine)
        session.run(Query.of(["a", "b", "c", "d"], s=2))
        with pytest.raises(QueryError):
            session.back()
        with pytest.raises(QueryError):
            ExplorationSession(figure1_engine).back()

    def test_transcript_lists_every_step(self, figure1_engine):
        session = ExplorationSession(figure1_engine)
        session.run(Query.of(["a", "b", "c", "d"], s=2), note="start")
        session.refine(0)
        text = session.transcript()
        lines = text.splitlines()
        assert lines[0].startswith("step 1:")
        assert "[start]" in lines[0]
        assert any(line.startswith("step 2:") for line in lines)
        assert any("refine[" in line for line in lines)


# ---------------------------------------------------------------------------
# Table 6 workload
# ---------------------------------------------------------------------------
class TestWorkloadTable:
    def test_table6_ids_unique_and_complete(self):
        ids = [query.qid for query in workload.TABLE6]
        assert len(ids) == len(set(ids)) == 14
        assert ids == sorted(
            ids, key=lambda qid: ("SDMI".index(qid[1]), qid))

    def test_every_query_names_a_known_dataset(self):
        from repro.datasets.registry import dataset_names

        known = set(dataset_names())
        for query in workload.TABLE6:
            assert query.dataset in known, query.qid

    def test_by_id_roundtrip_and_unknown(self):
        for query in workload.TABLE6:
            assert workload.by_id(query.qid) is query
        with pytest.raises(KeyError):
            workload.by_id("QX9")

    def test_for_dataset_partitions_the_table(self):
        datasets = {query.dataset for query in workload.TABLE6}
        recovered = [query for dataset in sorted(datasets)
                     for query in workload.for_dataset(dataset)]
        assert sorted(q.qid for q in recovered) == \
            sorted(q.qid for q in workload.TABLE6)

    def test_half_s_is_paper_setting(self):
        assert workload.by_id("QS1").half_s() == 1
        assert workload.by_id("QS4").half_s() == 4
        assert workload.by_id("QM2").half_s() == 1
        for query in workload.TABLE6:
            assert query.half_s() >= 1

    def test_size_matches_term_count(self):
        # |Q| counts query *terms*: each quoted author is one term
        for query in workload.TABLE6:
            if query.qid.startswith(("QS", "QD")):
                assert query.text.count('"') == 2 * query.size, query.qid

    def test_hybrid_query_merges_both_author_pools(self):
        from repro.datasets import names

        for author in (names.HYBRID_DBLP_AUTHORS
                       + names.HYBRID_SIGMOD_AUTHORS):
            assert f'"{author}"' in workload.HYBRID_QUERY

    def test_queries_parse_against_their_corpus(self):
        query = workload.by_id("QM1")
        assert Query.parse(query.text, s=query.half_s()).keywords


class TestWorkloadDeterminism:
    @pytest.mark.parametrize("dataset", ["sigmod", "mondial"])
    def test_same_seed_same_corpus(self, dataset):
        first = load_dataset(dataset, scale=1, seed=11)
        second = load_dataset(dataset, scale=1, seed=11)
        assert len(first) == len(second)
        for left, right in zip(first, second):
            assert serialize_document(left) == serialize_document(right)

    def test_different_seed_different_corpus(self):
        first = load_dataset("sigmod", scale=1, seed=1)
        second = load_dataset("sigmod", scale=1, seed=2)
        texts_first = [serialize_document(doc) for doc in first]
        texts_second = [serialize_document(doc) for doc in second]
        assert texts_first != texts_second

    def test_workload_queries_hit_their_seeded_corpus(self):
        from repro.core.engine import GKSEngine

        repository = load_dataset("sigmod", scale=1, seed=0)
        engine = GKSEngine(repository)
        query = workload.by_id("QS1")
        response = engine.search(query.text, s=query.half_s())
        assert len(response) > 0
