"""The Table 6 query workload, targeting the synthetic corpora.

Each :class:`WorkloadQuery` pairs a query id from the paper (QS1–QS4,
QD1–QD4, QM1–QM4, QI1–QI2) with its query text and its dataset.  ``size``
records the paper's |Q| (the number of *query terms*; after tokenisation a
quoted author name contributes one keyword per token).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets import names


@dataclass(frozen=True)
class WorkloadQuery:
    qid: str
    dataset: str
    text: str
    size: int  # the paper's |Q| (quoted phrases count as one term)

    def half_s(self) -> int:
        """The paper's ``s = |Q|/2`` setting."""
        return max(1, self.size // 2)


def _quoted(authors: list[str]) -> str:
    return " ".join(f'"{author}"' for author in authors)


TABLE6: list[WorkloadQuery] = [
    WorkloadQuery("QS1", "sigmod", _quoted(names.QS1_AUTHORS), 2),
    WorkloadQuery("QS2", "sigmod", _quoted(names.QS2_AUTHORS), 4),
    WorkloadQuery("QS3", "sigmod", _quoted(names.QS3_AUTHORS), 6),
    WorkloadQuery("QS4", "sigmod", _quoted(names.QS4_AUTHORS), 8),
    WorkloadQuery("QD1", "dblp", _quoted(names.QD1_AUTHORS), 2),
    WorkloadQuery("QD2", "dblp", _quoted(names.QD2_AUTHORS), 4),
    WorkloadQuery("QD3", "dblp", _quoted(names.QD3_AUTHORS), 6),
    WorkloadQuery("QD4", "dblp", _quoted(names.QD4_AUTHORS), 8),
    WorkloadQuery("QM1", "mondial", "country Muslim", 2),
    WorkloadQuery("QM2", "mondial", "Laos country name", 3),
    WorkloadQuery("QM3", "mondial",
                  "Polish Spanish German Luxembourg Bruges Catholic", 6),
    WorkloadQuery("QM4", "mondial",
                  "Chinese Thai Muslim Buddhism Christianity Hinduism "
                  "Orthodox Catholic", 8),
    WorkloadQuery("QI1", "interpro", "Kringle Domain", 2),
    WorkloadQuery("QI2", "interpro", "Publication 2002 Science", 3),
]

#: The §7.6 hybrid query over the merged DBLP + SIGMOD repository.
HYBRID_QUERY = _quoted(names.HYBRID_DBLP_AUTHORS
                       + names.HYBRID_SIGMOD_AUTHORS)


def by_id(qid: str) -> WorkloadQuery:
    for query in TABLE6:
        if query.qid == qid:
            return query
    raise KeyError(f"unknown workload query {qid!r}")


def for_dataset(dataset: str) -> list[WorkloadQuery]:
    return [query for query in TABLE6 if query.dataset == dataset]
