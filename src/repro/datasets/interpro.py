"""Synthetic InterPro corpus (paper workloads QI1–QI2, Table 5).

The real InterPro release notes hold protein-signature entries: names with
domain words (QI1 = {Kringle, Domain}), repeating publications with year
and journal (QI2 = {Publication, 2002, Science} — note ``publication`` is
an element *name*), taxonomy distributions and member-database signatures.
QI1 returns thousands of nodes at s=1 in the paper (8170), so the entry
count here is the largest of the synthetic corpora and domain words are
reused across entries.
"""

from __future__ import annotations

from repro.datasets import names
from repro.datasets.synthesis import Synth
from repro.xmltree.node import XMLNode

_TAXA = ["Eukaryota", "Bacteria", "Archaea", "Viruses", "Metazoa",
         "Fungi", "Viridiplantae"]


def generate_interpro(scale: int = 1, seed: int = 0) -> XMLNode:
    """Build the synthetic InterPro tree (~200·scale entries)."""
    synth = Synth(seed ^ 0x1472)
    root = XMLNode("interprodb", (0,))
    pool = names.synthetic_authors()
    for number in range(200 * scale):
        _add_entry(root, synth, pool, number)
    return root


def _add_entry(root: XMLNode, synth: Synth, pool: list[str],
               number: int) -> None:
    entry = root.add_child("interpro")
    entry.add_child("id", text=f"IPR{number:06d}")
    domain = synth.pick(names.PROTEIN_DOMAINS)
    entry.add_child("name", text=f"{domain} domain")
    entry.add_child("short_name", text=domain.lower().replace(" ", "_"))
    entry.add_child("type", text=synth.pick(["Domain", "Family", "Repeat"]))
    entry.add_child("proteins_count",
                    text=str(1 + synth.skewed_index(4000)))

    publications = entry.add_child("pub_list")
    for _ in range(synth.int_between(1, 3)):
        publication = publications.add_child("publication")
        author_list = publication.add_child("author_list")
        # ≥2 authors: publications are then entity nodes (repeating
        # author group + journal/year attributes), matching real InterPro.
        for _ in range(synth.int_between(2, 4)):
            author = pool[synth.skewed_index(len(pool))]
            author_list.add_child("author",
                                  text=f"{author.split()[-1]} "
                                       f"{author.split()[0][0]}")
        publication.add_child("journal", text=synth.pick(names.JOURNALS))
        publication.add_child("year", text=synth.year(1995, 2005))

    taxonomy = entry.add_child("taxonomy_distribution")
    for taxon in synth.sample(_TAXA, synth.int_between(1, 3)):
        taxon_data = taxonomy.add_child("taxon_data")
        taxon_data.add_child("name", text=taxon)
        taxon_data.add_child("proteins_count",
                             text=str(1 + synth.skewed_index(900)))

    member_list = entry.add_child("member_list")
    for _ in range(synth.int_between(1, 3)):
        member = member_list.add_child("db_xref")
        member.add_child("db", text=synth.pick(["PFAM", "PROSITE",
                                                "SMART", "PRINTS"]))
        member.add_child("dbkey", text=synth.code("PF", 5))
