"""The GKS search pipeline (paper §4, Fig. 6 ``GKSNodes``).

``search`` strings the pieces together:

1. merge the query keywords' posting lists into ``SL`` (§4.1),
2. sweep ``SL`` with the ``s``-unique sliding window into the LCP list,
3. map LCP entries to LCE nodes with witness maintenance (§4.2),
4. assemble ``RQ(s)`` = surviving LCE nodes + unmapped LCP nodes,
5. rank every response node with the potential-flow model (§5).

Total cost is O(d·|SL|·log n) for steps 1–4 (the paper's bound) plus the
ranking pass.  Distinct keyword counts reported per node are *exact* —
recounted over posting-list subtree ranges — while the paper's
``s + counter − 1`` estimate is preserved in
:attr:`RankedNode.estimated_keywords` (ablation bench A1 compares them).
"""

from __future__ import annotations

import time
from typing import Callable

from repro.core.lce import LCEResult, discover_lce
from repro.core.lcp import compute_lcp_list
from repro.core.merge import merged_list
from repro.core.query import Query
from repro.core.ranking import RankBreakdown, rank_node
from repro.core.results import GKSResponse, RankedNode, SearchProfile
from repro.index.builder import GKSIndex
from repro.xmltree.dewey import Dewey

Ranker = Callable[[GKSIndex, Query, Dewey], RankBreakdown]


def search(index: GKSIndex, query: Query,
           ranker: Ranker = rank_node) -> GKSResponse:
    """Run one GKS query against an index and return the ranked response."""
    started = time.perf_counter()
    effective = query.with_s(query.effective_s)

    sl = merged_list(index, effective)
    after_merge = time.perf_counter()
    lcp = compute_lcp_list(sl, effective.s)
    after_lcp = time.perf_counter()
    lce = discover_lce(lcp, sl, index)
    after_lce = time.perf_counter()

    nodes = _rank_response(index, effective, lce, ranker)
    finished = time.perf_counter()
    profile = SearchProfile(merged_list_size=len(sl),
                            lcp_entries=len(lcp),
                            lce_nodes=len(lce.lce),
                            seconds=finished - started,
                            merge_seconds=after_merge - started,
                            lcp_seconds=after_lcp - after_merge,
                            lce_seconds=after_lce - after_lcp,
                            rank_seconds=finished - after_lce)
    return GKSResponse(query=effective, nodes=tuple(nodes), profile=profile)


def _rank_response(index: GKSIndex, query: Query, lce: LCEResult,
                   ranker: Ranker) -> list[RankedNode]:
    lce_set = set(lce.lce)
    fallback = lce.fallback_candidates()
    ranked: list[RankedNode] = []
    for dewey in lce.response_deweys():
        breakdown = ranker(index, query, dewey)
        if dewey in lce.lce:
            estimate = lce.lce[dewey].estimated_keywords
        else:
            estimate = fallback.get(dewey, query.s)
        ranked.append(RankedNode(
            dewey=dewey,
            score=breakdown.score,
            distinct_keywords=breakdown.distinct_keywords,
            matched_keywords=breakdown.matched_keywords,
            is_lce=dewey in lce_set,
            estimated_keywords=estimate,
            breakdown=breakdown))
    ranked.sort(key=RankedNode.sort_key)
    return ranked
