"""Unit tests for the from-scratch streaming XML parser."""

import pytest

from repro.errors import XMLSyntaxError
from repro.xmltree.events import (Comment, EndElement,
                                  ProcessingInstruction, StartElement, Text)
from repro.xmltree.parser import (decode_entities, iter_events,
                                  parse_document)


class TestTokenizer:
    def test_simple_element_stream(self):
        events = list(iter_events("<a><b>x</b></a>"))
        assert events == [StartElement("a"), StartElement("b"), Text("x"),
                          EndElement("b"), EndElement("a")]

    def test_self_closing_emits_start_and_end(self):
        events = list(iter_events("<a><b/></a>"))
        assert events[1:3] == [StartElement("b"), EndElement("b")]

    def test_attributes_parsed_and_decoded(self):
        events = list(iter_events('<a k="v &amp; w" j=\'2\'/>'))
        assert events[0].attributes == {"k": "v & w", "j": "2"}

    def test_comment_and_pi(self):
        events = list(iter_events("<a><!--note--><?proc data?></a>"))
        assert Comment("note") in events
        assert ProcessingInstruction("proc", "data") in events

    def test_xml_declaration_and_doctype_skipped(self):
        text = ('<?xml version="1.0"?>\n'
                "<!DOCTYPE a [<!ELEMENT a ANY>]>\n<a/>")
        events = list(iter_events(text))
        assert events == [StartElement("a"), EndElement("a")]

    def test_cdata_becomes_text(self):
        events = list(iter_events("<a><![CDATA[x < y & z]]></a>"))
        assert Text("x < y & z") in events

    def test_character_references(self):
        assert decode_entities("&#65;&#x42;&lt;") == "AB<"

    def test_unknown_entity_fails(self):
        with pytest.raises(XMLSyntaxError):
            list(iter_events("<a>&nope;</a>"))


class TestWellFormedness:
    @pytest.mark.parametrize("bad", [
        "<a><b></a></b>",          # mismatched nesting
        "<a>",                     # unclosed
        "</a>",                    # close without open
        "<a/><b/>",                # two roots
        "text<a/>",                # text before root
        "",                        # empty
        "<a b=c/>",                # unquoted attribute
        '<a b="1" b="2"/>',        # duplicate attribute
        "<a><!-- unterminated",    # unterminated comment
    ])
    def test_malformed_inputs_raise(self, bad):
        with pytest.raises(XMLSyntaxError):
            list(iter_events(bad))

    def test_error_carries_position(self):
        with pytest.raises(XMLSyntaxError) as excinfo:
            list(iter_events("<a>\n</b>"))
        assert excinfo.value.line == 2


class TestTreeBuilding:
    def test_dewey_assignment_matches_positions(self):
        doc = parse_document("<r><a/><b><c/></b></r>")
        tags = {node.dewey: node.tag for node in doc.root.iter_subtree()}
        assert tags == {(0,): "r", (0, 0): "a", (0, 1): "b",
                        (0, 1, 0): "c"}

    def test_doc_id_prefixes_every_dewey(self):
        doc = parse_document("<r><a/></r>", doc_id=7)
        assert all(node.dewey[0] == 7 for node in doc.root.iter_subtree())

    def test_attributes_as_children_by_default(self):
        doc = parse_document('<r id="42"><a/></r>')
        first = doc.root.children[0]
        assert first.tag == "id" and first.text == "42"
        assert doc.root.children[1].tag == "a"

    def test_attributes_kept_raw_when_disabled(self):
        doc = parse_document('<r id="42"/>', attributes_as_children=False)
        assert doc.root.xml_attributes == {"id": "42"}
        assert not doc.root.children

    def test_text_whitespace_is_stripped(self):
        doc = parse_document("<r>\n   hello   \n</r>")
        assert doc.root.text == "hello"

    def test_mixed_content_concatenates(self):
        doc = parse_document("<r>one<a/>two</r>")
        assert doc.root.text == "onetwo"

    def test_deep_nesting(self):
        depth = 60
        text = "".join(f"<n{i}>" for i in range(depth))
        text += "x"
        text += "".join(f"</n{i}>" for i in reversed(range(depth)))
        doc = parse_document(text)
        assert doc.depth == depth - 1
