#!/usr/bin/env bash
# Codec smoke test: build the same corpus under both codecs via the
# CLI, verify both files shallow and deep, assert the varint-dag file
# is smaller on the redundancy-heavy mirrors corpus, and confirm the
# two indexes answer a query identically.
#
# Usage:  bash scripts/smoke_codec.sh
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH=src

WORKDIR="$(mktemp -d)"
trap 'rm -rf "$WORKDIR"' EXIT

echo "== generate the mirrors corpus (shared record pool) =="
python -m repro dataset mirrors --scale 2 -o "$WORKDIR" >/dev/null
ls "$WORKDIR"/mirrors_*.xml >/dev/null

echo "== build the same index under both codecs =="
python -m repro index "$WORKDIR"/mirrors_*.xml -o "$WORKDIR/raw.gks"
python -m repro index "$WORKDIR"/mirrors_*.xml \
    -o "$WORKDIR/dag.gksindex" --codec varint-dag

echo "== shallow check: both formats report healthy =="
for INDEX in "$WORKDIR/raw.gks" "$WORKDIR/dag.gksindex"; do
    OUT="$(python -m repro check-index "$INDEX")"
    echo "$OUT"
    grep -q "index OK" <<<"$OUT" || {
        echo "FAIL: check-index rejected $INDEX" >&2; exit 1; }
done

echo "== format line names the codec, --json stays stable =="
OUT="$(python -m repro check-index "$WORKDIR/dag.gksindex" --json)"
echo "$OUT"
grep -q '"codec": "varint-dag"' <<<"$OUT" || {
    echo "FAIL: --json did not report the varint-dag codec" >&2; exit 1; }
grep -q '"version": 4' <<<"$OUT" || {
    echo "FAIL: --json did not report format version 4" >&2; exit 1; }

echo "== deep audit: semantic invariants hold for both codecs =="
python -m repro check-index "$WORKDIR/raw.gks" --deep >/dev/null || {
    echo "FAIL: deep audit rejected the raw envelope" >&2; exit 1; }
python -m repro check-index "$WORKDIR/dag.gksindex" --deep >/dev/null || {
    echo "FAIL: deep audit rejected the binary index" >&2; exit 1; }

echo "== size: varint-dag must be smaller than raw on mirrors =="
RAW_BYTES="$(wc -c < "$WORKDIR/raw.gks")"
DAG_BYTES="$(wc -c < "$WORKDIR/dag.gksindex")"
echo "raw: $RAW_BYTES bytes   varint-dag: $DAG_BYTES bytes"
[ "$DAG_BYTES" -lt "$RAW_BYTES" ] || {
    echo "FAIL: varint-dag ($DAG_BYTES) not smaller than raw" \
         "($RAW_BYTES)" >&2; exit 1; }

echo "== equivalence: both files answer node-for-node identically =="
python - "$WORKDIR" <<'EOF'
import sys
from pathlib import Path

from repro.core.query import Query
from repro.core.search import search
from repro.index.storage import load_index

workdir = Path(sys.argv[1])
query = Query.parse("databases compression", s=1)
raw = search(load_index(workdir / "raw.gks"), query)
dag = search(load_index(workdir / "dag.gksindex"), query)
sig = lambda r: [(n.dewey, n.score) for n in r.nodes]
assert sig(raw), "smoke query returned no nodes"
assert sig(raw) == sig(dag), "codecs disagreed on the smoke query"
print(f"both codecs returned {len(raw.nodes)} identical node(s)")
EOF

echo "smoke_codec OK"
