"""Posting lists: sorted Dewey-id lists per keyword (paper §2.4).

"The inverted index list for a keyword ki contains the Dewey id of all the
nodes which contain that keyword."  A posting is simply a Dewey tuple; a
posting list is kept sorted in document order, which by the Dewey/pre-order
correspondence means plain tuple order.

This module also provides the sorted-list primitives used by the search
engine: binary search for the contiguous Dewey range of a subtree, and the
k-way merge of several posting lists into the paper's list ``SL``.
"""

from __future__ import annotations

import heapq
from bisect import bisect_left
from typing import Iterable, Sequence

from repro.xmltree.dewey import Dewey, subtree_interval

PostingList = list[Dewey]


def verify_sorted(postings: Sequence[Dewey]) -> bool:
    """True when *postings* is strictly sorted in document order."""
    return all(postings[i] < postings[i + 1]
               for i in range(len(postings) - 1))


def subtree_range(postings: Sequence[Dewey],
                  ancestor: Dewey) -> tuple[int, int]:
    """Half-open index range of postings inside ``subtree(ancestor)``.

    Because descendant ids are exactly the tuples with *ancestor* as a
    prefix, and tuple order is document order, the matching postings form a
    contiguous run locatable with two binary searches in O(log n).
    """
    lo_key, hi_key = subtree_interval(ancestor)
    lo = bisect_left(postings, lo_key)
    hi = bisect_left(postings, hi_key)
    return lo, hi


def count_in_subtree(postings: Sequence[Dewey], ancestor: Dewey) -> int:
    """Number of postings inside ``subtree(ancestor)``."""
    lo, hi = subtree_range(postings, ancestor)
    return hi - lo


def intersect_postings(lists: list[PostingList]) -> PostingList:
    """Dewey ids present in *every* list (all sorted; result sorted).

    Used for phrase keywords ("Peter Buneman"): a node matches the phrase
    when its direct content holds every word of it — a bag-of-words-
    within-one-element approximation of phrase matching (the index stores
    no word positions, mirroring the paper's index layout).
    """
    if not lists:
        return []
    if any(not posting_list for posting_list in lists):
        return []
    result = lists[0]
    for other in lists[1:]:
        merged: PostingList = []
        i = j = 0
        while i < len(result) and j < len(other):
            if result[i] == other[j]:
                merged.append(result[i])
                i += 1
                j += 1
            elif result[i] < other[j]:
                i += 1
            else:
                j += 1
        result = merged
        if not result:
            break
    return result


class MergedEntry(tuple):
    """One entry of the merged list ``SL``: ``(dewey, keyword_index)``.

    Implemented as a plain tuple subclass so entries sort by Dewey id first
    (document order) and by keyword index second (deterministic ties when
    one element contains several query keywords).
    """

    __slots__ = ()

    def __new__(cls, dewey: Dewey, keyword: int) -> "MergedEntry":
        return super().__new__(cls, (dewey, keyword))

    @property
    def dewey(self) -> Dewey:
        return self[0]

    @property
    def keyword(self) -> int:
        return self[1]


def merge_posting_lists(lists: Iterable[Sequence[Dewey]]) -> list[MergedEntry]:
    """k-way merge of sorted posting lists into the sorted list ``SL``.

    Each input list *i* contributes entries tagged with keyword index *i*.
    Runs in O(|SL|·log k) comparisons via a heap, matching the paper's
    O(d·|SL|·log n) bound (each Dewey comparison is O(d)).
    """
    def tagged(posting_list: Sequence[Dewey], index: int):
        for dewey in posting_list:
            yield dewey, index

    iterators = [tagged(posting_list, index)
                 for index, posting_list in enumerate(lists)]
    return [MergedEntry(dewey, index)
            for dewey, index in heapq.merge(*iterators)]
