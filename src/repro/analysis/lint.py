"""AST-based lint engine with a pluggable rule registry.

The engine parses every ``*.py`` file under the given paths once, wraps
each in a :class:`ModuleInfo` (source text, AST, package/layer identity,
file role) and hands the batch to every registered :class:`Rule`.  Rules
come in two granularities:

* :meth:`Rule.check_module` — per-file AST checks (most rules);
* :meth:`Rule.check_project` — whole-batch checks that need the global
  view (the import-cycle half of the layering rule).

Suppressions
------------
A finding is dropped when the physical line it points at carries an
inline marker::

    risky_call()          # gks: ignore[E002]
    another_risky_call()  # gks: ignore[E002,T001]
    whatever()            # gks: ignore          (suppresses every rule)

Suppressions are *line-scoped on the finding's line* — there is no
file- or block-level escape hatch, so every waiver is visible exactly
where the violation lives.

Project rules live in :mod:`repro.analysis.rules` (timing, error
surface, mutability, fork safety) and :mod:`repro.analysis.layering`
(the architecture DAG); both register themselves on import via
:func:`register`.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.analysis.findings import Finding
from repro.errors import ConfigError

#: Inline suppression marker: ``# gks: ignore`` or ``# gks: ignore[ID,...]``.
_SUPPRESS_RE = re.compile(r"#\s*gks:\s*ignore(?:\[([A-Za-z0-9_,\s-]+)\])?")


@dataclass
class ModuleInfo:
    """One parsed source file, as the rules see it.

    Attributes
    ----------
    path:
        The file, as given (relative paths stay relative in findings).
    text, lines:
        Raw source and its physical lines (for suppression lookups).
    tree:
        The parsed AST, or ``None`` when the file does not parse (the
        engine files a ``P001`` finding instead of running rules).
    package:
        The top-level ``repro`` package the module belongs to
        (``"index"`` for ``src/repro/index/storage.py``, the module stem
        for top-level modules like ``cli``), or ``None`` for files
        outside the library (tests, benchmarks, scripts).
    module:
        Dotted module name under ``repro`` (``"repro.index.storage"``),
        or ``None`` outside the library.
    role:
        ``"library"`` / ``"tests"`` / ``"benchmarks"`` / ``"other"`` —
        rules scope themselves by role (e.g. the error-surface raise
        rule applies to library code only).
    """

    path: Path
    text: str
    lines: list[str] = field(default_factory=list)
    tree: ast.AST | None = None
    package: str | None = None
    module: str | None = None
    role: str = "other"

    @classmethod
    def from_path(cls, path: Path) -> "ModuleInfo":
        text = path.read_text(encoding="utf-8")
        info = cls(path=path, text=text, lines=text.splitlines())
        parts = path.parts
        if "repro" in parts:
            info.role = "library"
            tail = parts[parts.index("repro") + 1:]
            dotted = [part[:-3] if part.endswith(".py") else part
                      for part in tail]
            info.module = ".".join(["repro", *dotted])
            info.package = dotted[0] if dotted else None
        elif "tests" in parts:
            info.role = "tests"
        elif "benchmarks" in parts:
            info.role = "benchmarks"
        try:
            info.tree = ast.parse(text, filename=str(path))
        except SyntaxError:
            info.tree = None
        return info

    def walk(self) -> Iterator[ast.AST]:
        if self.tree is None:
            return iter(())
        return ast.walk(self.tree)

    def suppressed_ids(self, line: int) -> set[str] | None:
        """Rule ids suppressed on *line*; ``None`` means suppress all."""
        if not 1 <= line <= len(self.lines):
            return set()
        match = _SUPPRESS_RE.search(self.lines[line - 1])
        if match is None:
            return set()
        if match.group(1) is None:
            return None
        return {rule_id.strip() for rule_id in match.group(1).split(",")
                if rule_id.strip()}


class Rule:
    """Base class of every lint rule.

    Subclasses set ``rule_id`` (the id suppressions and the catalog use),
    ``title`` and ``severity``, and override one or both check hooks.
    """

    rule_id: str = "?"
    title: str = ""
    severity: str = "error"

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        return ()

    def check_project(self,
                      modules: Sequence[ModuleInfo]) -> Iterable[Finding]:
        return ()

    def finding(self, module: ModuleInfo, line: int,
                message: str) -> Finding:
        return Finding(path=str(module.path), line=line,
                       rule_id=self.rule_id, message=message,
                       severity=self.severity)


_REGISTRY: dict[str, type[Rule]] = {}


def register(rule_class: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the default rule set."""
    if rule_class.rule_id in _REGISTRY:
        raise ConfigError(f"duplicate rule id {rule_class.rule_id!r}")
    _REGISTRY[rule_class.rule_id] = rule_class
    return rule_class


def default_rules() -> list[Rule]:
    """One instance of every registered rule (registration on import)."""
    # deferred so the registry is populated exactly once, without an
    # import cycle between the engine and the rule modules
    from repro.analysis import concurrency, layering, rules  # noqa: F401

    return [rule_class() for rule_class in _REGISTRY.values()]


def rule_catalog() -> list[Rule]:
    """The default rules, for ``gks lint --list-rules`` and the docs."""
    return default_rules()


def iter_python_files(paths: Iterable[str | Path]) -> list[Path]:
    """Every ``*.py`` file under *paths* (files pass through), sorted."""
    found: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            found.update(candidate for candidate in path.rglob("*.py")
                         if "__pycache__" not in candidate.parts)
        elif path.suffix == ".py":
            found.add(path)
    return sorted(found)


def lint_modules(modules: Sequence[ModuleInfo],
                 rules: Sequence[Rule] | None = None) -> list[Finding]:
    """Run *rules* over parsed *modules*; suppressions applied."""
    if rules is None:
        rules = default_rules()
    findings: list[Finding] = []
    for module in modules:
        if module.tree is None:
            findings.append(Finding(
                path=str(module.path), line=1, rule_id="P001",
                message="file does not parse as Python",
                severity="error"))
            continue
        for rule in rules:
            findings.extend(rule.check_module(module))
    parsed = [module for module in modules if module.tree is not None]
    for rule in rules:
        findings.extend(rule.check_project(parsed))
    by_path = {str(module.path): module for module in modules}
    kept = []
    for finding in findings:
        module = by_path.get(finding.path)
        if module is not None:
            suppressed = module.suppressed_ids(finding.line)
            if suppressed is None or finding.rule_id in suppressed:
                continue
        kept.append(finding)
    return sorted(kept)


def lint_paths(paths: Iterable[str | Path],
               rules: Sequence[Rule] | None = None) -> list[Finding]:
    """Lint every Python file under *paths*.  The one-call entry point."""
    modules = [ModuleInfo.from_path(path)
               for path in iter_python_files(paths)]
    return lint_modules(modules, rules=rules)
