"""Cooperative search budgets with graceful degradation.

The paper bounds serving cost at O(d·|SL|·log n) (§4.2), but ``|SL|`` is
data-dependent: a pathological query over a large corpus can make the merge
list — and every downstream stage — arbitrarily big.  A production endpoint
needs a way to bound a single query's cost without killing the request.

:class:`SearchBudget` is threaded through the pipeline
(``merged_list`` → ``compute_lcp_list`` → ``discover_lce`` → ranking) as
*cooperative checkpoints*: each stage polls the budget inside its hot loop
and stops early when the budget trips.  The pipeline then degrades
gracefully — it keeps whatever was discovered so far, ranks a bounded
top-k of it, and returns a partial :class:`~repro.core.results.GKSResponse`
flagged ``degraded=True`` with a :class:`DegradationReport` naming the
stage that tripped and how much of it was processed.  Nothing raises
unless the caller opts into ``strict_deadline=True`` at the engine level.

The clock is injectable so deadline tests never sleep (see
:class:`repro.testing.faults.FakeClock`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import ConfigError
from repro.obs.metrics import global_registry
from repro.obs.trace import DEFAULT_CLOCK


@dataclass(frozen=True)
class DegradationReport:
    """What tripped, where, and how far the pipeline got.

    Attributes
    ----------
    stage:
        Pipeline stage that exhausted the budget: ``"merge"``, ``"lcp"``,
        ``"lce"`` or ``"rank"``.
    reason:
        Which limit tripped: ``"deadline"``, ``"max_sl"`` or
        ``"max_nodes"``.
    processed:
        Units of work the stage completed before stopping (merge: SL
        entries kept; lcp: SL positions swept; lce: LCP entries mapped;
        rank: nodes ranked).
    total:
        Units the stage would have processed unbudgeted, when known.
    elapsed_s:
        Seconds elapsed (by the budget's clock) when the trip happened.
    remaining_s:
        Deadline headroom left at the trip
        (:meth:`SearchBudget.remaining_s`); ``None`` when the budget has
        no deadline.  A ``max_sl``/``max_nodes`` trip with plenty of
        ``remaining_s`` tells the serving layer the query was
        resource-bound, not time-bound.
    """

    stage: str
    reason: str
    processed: int
    total: int | None = None
    elapsed_s: float = 0.0
    remaining_s: float | None = None

    def render(self) -> str:
        of_total = f"/{self.total}" if self.total is not None else ""
        return (f"degraded at stage {self.stage!r} ({self.reason}): "
                f"processed {self.processed}{of_total} units "
                f"in {self.elapsed_s * 1000:.1f} ms")


class SearchBudget:
    """A per-query resource envelope with cooperative checkpoints.

    Parameters
    ----------
    deadline_s:
        Wall-clock allowance for the whole pipeline; ``None`` = unlimited.
    max_sl:
        Cap on the merged list ``SL`` — the §4.1 structure every later
        stage is linear in.  A longer merge result is truncated (prefix
        kept: Dewey order is document order, so the prefix is a coherent
        leading slice of the corpus).
    max_nodes:
        Cap on the number of response nodes ranked.
    clock:
        Monotonic time source; injectable for deterministic tests.
    recovery_k:
        After an early-stage trip, at most this many already-discovered
        nodes are still ranked so the caller gets a useful partial answer.
    """

    def __init__(self, deadline_s: float | None = None,
                 max_sl: int | None = None,
                 max_nodes: int | None = None,
                 clock: Callable[[], float] | None = None,
                 recovery_k: int = 50) -> None:
        if deadline_s is not None and deadline_s < 0:
            raise ConfigError(f"deadline_s must be >= 0: {deadline_s}")
        if max_sl is not None and max_sl < 1:
            raise ConfigError(f"max_sl must be >= 1: {max_sl}")
        if max_nodes is not None and max_nodes < 1:
            raise ConfigError(f"max_nodes must be >= 1: {max_nodes}")
        self.deadline_s = deadline_s
        self.max_sl = max_sl
        self.max_nodes = max_nodes
        self.recovery_k = recovery_k
        self._clock = clock if clock is not None else DEFAULT_CLOCK
        self._started: float | None = None
        self.report: DegradationReport | None = None

    # ------------------------------------------------------------------
    def start(self) -> "SearchBudget":
        """Arm the budget for one query; resets any previous trip."""
        self.report = None
        self._started = self._clock()
        return self

    @property
    def tripped(self) -> bool:
        return self.report is not None

    def elapsed(self) -> float:
        if self._started is None:
            return 0.0
        return self._clock() - self._started

    def remaining_s(self) -> float | None:
        """Deadline headroom: ``deadline_s - elapsed()``, clamped at 0.

        ``None`` when the budget has no deadline.  This is the one place
        deadline arithmetic lives — serve admission polls it to shed
        already-expired requests before any engine work, scatter-gather
        children derive their deadlines from it (via
        :meth:`subbudget`), and every :class:`DegradationReport` carries
        the value observed at its trip.
        """
        if self.deadline_s is None:
            return None
        return max(0.0, self.deadline_s - self.elapsed())

    def subbudget(self, *, rebase: bool = False) -> "SearchBudget":
        """A child budget policing this budget's deadline.

        With ``rebase=False`` (the scatter-gather default) the child
        shares this budget's clock *and* start time: each shard pipeline
        polls the **same** wall-clock deadline the monolithic pipeline
        would — a query that would have timed out unsharded times out
        sharded at the same instant.  ``max_sl`` and ``max_nodes`` are
        deliberately *not* copied: the SL cap is applied globally across
        shards by the gather step, and ranking runs on the parent budget
        (see :mod:`repro.core.scatter`), so per-shard children only
        police the shared deadline.

        With ``rebase=True`` the child's deadline is this budget's
        :meth:`remaining_s` and it arms fresh at its own
        :meth:`start` — the shape the serving layer needs: an admission
        budget starts at arrival, and the engine call receives a rebased
        child whose deadline already has the queue wait subtracted, so
        ``engine.search``'s own ``start()`` cannot erase time the
        request spent waiting.  Resource caps *are* copied here (there
        is no gather step to apply them globally).
        """
        if rebase:
            return SearchBudget(deadline_s=self.remaining_s(),
                                max_sl=self.max_sl,
                                max_nodes=self.max_nodes,
                                clock=self._clock,
                                recovery_k=self.recovery_k)
        child = SearchBudget(deadline_s=self.deadline_s,
                             clock=self._clock,
                             recovery_k=self.recovery_k)
        child._started = self._started
        return child

    def trip(self, stage: str, reason: str, processed: int,
             total: int | None = None) -> None:
        """Record a degradation externally observed (first trip wins).

        The gather step uses this when the *global* SL admission cut
        across shards — the sharded counterpart of :meth:`admit_sl` —
        so the combined response reports degradation exactly like the
        monolithic path.  Records the trip metric.
        """
        self._trip(stage, reason, processed, total)

    def adopt(self, report: DegradationReport | None) -> None:
        """Adopt a child budget's trip as this budget's own (first wins).

        Unlike :meth:`trip` this does *not* re-record the trip metric:
        the child already counted it when it tripped.
        """
        if report is not None and self.report is None:
            self.report = report

    def _trip(self, stage: str, reason: str, processed: int,
              total: int | None) -> None:
        if self.report is None:  # first trip wins: it names the stage
            # one clock read for both fields: a second elapsed() call
            # would advance injected FakeClocks and skew deterministic
            # deadline tests
            elapsed = self.elapsed()
            remaining = (None if self.deadline_s is None
                         else max(0.0, self.deadline_s - elapsed))
            self.report = DegradationReport(
                stage=stage, reason=reason, processed=processed,
                total=total, elapsed_s=elapsed, remaining_s=remaining)
            global_registry().counter(
                "gks_budget_trips_total",
                help="Search budget checkpoint trips by stage and reason."
            ).inc(labels={"stage": stage, "reason": reason})

    # ------------------------------------------------------------------
    # Cooperative checkpoints (called from the pipeline's hot loops)
    # ------------------------------------------------------------------
    def checkpoint(self, stage: str, processed: int,
                   total: int | None = None) -> bool:
        """Poll the deadline; returns ``True`` when the stage must stop.

        Resource trips (``max_sl``, ``max_nodes``) shrink the work but do
        not halt the pipeline — later stages keep running over the
        truncated input.  Only a deadline trip is terminal for every
        subsequent checkpoint.
        """
        if self.report is not None and self.report.reason == "deadline":
            return True
        if self._started is None:
            self._started = self._clock()
        if (self.deadline_s is not None
                and self.elapsed() > self.deadline_s):
            self._trip(stage, "deadline", processed, total)
            return True
        return False

    def admit_sl(self, sl: list) -> list:
        """Apply the ``max_sl`` cap to a freshly merged list.

        Returns the (possibly truncated) list; trips the budget when it
        had to cut.
        """
        if self.max_sl is not None and len(sl) > self.max_sl:
            self._trip("merge", "max_sl", self.max_sl, len(sl))
            return sl[:self.max_sl]
        return sl

    def admit_node(self, ranked_so_far: int,
                   total: int | None = None) -> bool:
        """``True`` while one more response node may be ranked."""
        if self.max_nodes is not None and ranked_so_far >= self.max_nodes:
            self._trip("rank", "max_nodes", ranked_so_far, total)
            return False
        return not self.checkpoint("rank", ranked_so_far, total)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SearchBudget(deadline_s={self.deadline_s}, "
                f"max_sl={self.max_sl}, max_nodes={self.max_nodes}, "
                f"tripped={self.tripped})")
