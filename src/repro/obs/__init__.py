"""``repro.obs`` — the zero-dependency observability subsystem.

Three instruments, one package:

* :mod:`repro.obs.trace` — nested wall-time spans with counters and
  attributes (:class:`Tracer`), plus a shared no-op tracer
  (:data:`NOOP_TRACER`) so the untraced hot path pays ~nothing;
* :mod:`repro.obs.metrics` — a process-wide :class:`MetricsRegistry` of
  counters, gauges and bucketed histograms with JSON and Prometheus-text
  exposition;
* :mod:`repro.obs.stats` — the per-query :class:`QueryStats` record
  attached to every :class:`~repro.core.results.GKSResponse`, and the
  :class:`SlowQueryLog` ring buffer behind ``gks stats``.

Every clock in the package is injectable (compose with
:class:`repro.testing.faults.FakeClock`), so duration assertions are
deterministic and never sleep.
"""

from repro.obs.metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                               global_registry)
from repro.obs.stats import QueryStats, SlowQuery, SlowQueryLog
from repro.obs.trace import NOOP_TRACER, Span, Tracer, render_span_tree

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "global_registry",
    "QueryStats",
    "SlowQuery",
    "SlowQueryLog",
    "NOOP_TRACER",
    "Span",
    "Tracer",
    "render_span_tree",
]
