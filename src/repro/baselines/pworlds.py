"""Possible-worlds enumeration oracle for probabilistic search.

The reference semantics, applied literally: materialise **every** random
instance of the p-document (one per combination of IND child choices ×
MUX alternatives), walk each instance's surviving trees, and accumulate
each world's probability onto every present node whose subtree holds
≥ ``min(s, |Q|)`` distinct query keywords.  Exponential on purpose —
its only job is to catch bugs in the polynomial subset-distribution
evaluation in :mod:`repro.semantics.prob`, which the test suite
cross-validates against it on randomized p-documents.
"""

from __future__ import annotations

import itertools

from repro.baselines.bruteforce import node_keywords
from repro.core.query import Query
from repro.errors import ValidationError
from repro.index.probtables import ProbTables
from repro.semantics.pdoc import compile_tables
from repro.text.analyzer import DEFAULT_ANALYZER, Analyzer
from repro.xmltree.dewey import Dewey
from repro.xmltree.node import XMLNode
from repro.xmltree.repository import Repository


def world_choices(tables: ProbTables
                  ) -> list[list[tuple[frozenset[Dewey], float]]]:
    """The independent choice points of a p-document.

    Each point is a list of ``(present children, probability)``
    alternatives: an IND node's annotated child is its own two-way
    point; a MUX node is one point over its alternatives plus the
    "none" residual.  A world is one alternative per point; its
    probability is the product.
    """
    points: list[list[tuple[frozenset[Dewey], float]]] = []
    for parent, kind in sorted(tables.kinds.items()):
        members = tables.mux_siblings(parent) if kind == "MUX" else sorted(
            d for d in tables.edge_p
            if len(d) == len(parent) + 1 and d[:-1] == parent)
        if kind == "MUX":
            residual = 1.0 - sum(tables.edge_p[m] for m in members)
            point = [(frozenset({m}), tables.edge_p[m]) for m in members]
            point.append((frozenset(), residual))
            points.append(point)
        else:
            for member in members:
                prob = tables.edge_p[member]
                points.append([(frozenset({member}), prob),
                               (frozenset(), 1.0 - prob)])
    return points


def _accumulate(node: XMLNode, absent: set[Dewey], wanted: set[str],
                threshold: int, prob: float, analyzer: Analyzer,
                out: dict[Dewey, float]) -> set[str]:
    """Walk one world's surviving tree; returns the subtree keyword set."""
    found = node_keywords(node, analyzer) & wanted
    for child in node.children:
        if child.dewey in absent:
            continue
        found |= _accumulate(child, absent, wanted, threshold, prob,
                             analyzer, out)
    if len(found) >= threshold:
        out[node.dewey] = out.get(node.dewey, 0.0) + prob
    return found


def possible_worlds_probabilities(repository: Repository, query: Query,
                                  analyzer: Analyzer = DEFAULT_ANALYZER,
                                  max_worlds: int = 262144
                                  ) -> dict[Dewey, float]:
    """Dewey → P(node exists ∧ subtree meets the ``min(s,|Q|)`` bar).

    Nodes with probability zero may be absent from the mapping; treat
    missing keys as 0.  Raises :class:`ValidationError` when the
    p-document has more than *max_worlds* instances (a test-suite
    guard, not a semantic limit).
    """
    tables = compile_tables(repository)
    points = world_choices(tables)
    world_count = 1
    for point in points:
        world_count *= len(point)
    if world_count > max_worlds:
        raise ValidationError(
            f"p-document has {world_count} possible worlds "
            f"(> {max_worlds}); shrink the document")

    wanted = set(query.keywords)
    threshold = query.effective_s
    members = set(tables.edge_p)
    out: dict[Dewey, float] = {}
    for assignment in itertools.product(*points) if points else [()]:
        prob = 1.0
        present: set[Dewey] = set()
        for chosen, share in assignment:
            prob *= share
            present |= chosen
        if prob == 0.0:
            continue
        absent = members - present
        for document in repository:
            _accumulate(document.root, absent, wanted, threshold, prob,
                        analyzer, out)
    return out
