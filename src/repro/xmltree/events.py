"""Streaming (SAX-style) parse events emitted by the from-scratch parser.

The indexing engine consumes these events directly so an index is built in a
single pass over the data without materialising the tree (paper §2.4: "the
hash tables and the inverted index are created in a single pass over XML
data" thanks to pre-order arrival of nodes).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class StartElement:
    """Opening tag: ``<tag attr="...">`` (also emitted for ``<tag/>``)."""

    tag: str
    attributes: dict[str, str] = field(default_factory=dict)


@dataclass(frozen=True)
class EndElement:
    """Closing tag: ``</tag>`` (also emitted right after ``<tag/>``)."""

    tag: str


@dataclass(frozen=True)
class Text:
    """Character data between tags (entity references already resolved)."""

    content: str


@dataclass(frozen=True)
class Comment:
    """``<!-- ... -->`` — preserved for round-tripping, ignored by indexing."""

    content: str


@dataclass(frozen=True)
class ProcessingInstruction:
    """``<?target data?>`` — preserved, ignored by indexing."""

    target: str
    data: str


ParseEvent = StartElement | EndElement | Text | Comment | ProcessingInstruction
