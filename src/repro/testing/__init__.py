"""Deterministic fault injection for resilience tests and benchmarks."""

from repro.testing.faults import (BurstyArrivals, FakeClock, SlowEngine,
                                  TornWriter, XMLCorruptor, corrupt_corpus)

__all__ = ["BurstyArrivals", "FakeClock", "SlowEngine", "TornWriter",
           "XMLCorruptor", "corrupt_corpus"]
