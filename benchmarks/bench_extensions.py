"""E-EXT — extension benchmarks: schema categorization, top-k speedup,
incremental maintenance, JSON ingestion.

These are not paper tables; they quantify the future-work features the
paper sketches (§2.2 schema-level categorization, §8 analytics) and the
engineering extensions (top-k, append-only maintenance, JSON).
"""

from __future__ import annotations

import pytest

from repro.core.query import Query
from repro.core.search import search
from repro.core.topk import search_top_k
from repro.datasets.registry import load_dataset
from repro.eval.reporting import render_table
from repro.eval.runner import engine_for, frequency_ladder
from repro.index.builder import build_index
from repro.index.incremental import append_document
from repro.schema import (build_schema_index, compare_with_instance_level,
                          infer_schema)
from repro.xmltree.json_adapter import json_to_document
from repro.xmltree.parser import parse_document
from repro.xmltree.serialize import serialize_document


def test_schema_inference_speed(benchmark):
    repository = load_dataset("dblp")
    schema = benchmark(infer_schema, repository)
    assert len(schema) > 5


def test_schema_smoothing_report(results_writer, benchmark):
    def measure():
        rows = []
        for name in ("dblp", "sigmod", "interpro"):
            repository = load_dataset(name)
            counters = compare_with_instance_level(repository)
            rows.append((name, counters["total"], counters["agree"],
                         counters["promoted_to_entity"],
                         counters["promoted_to_repeating"],
                         counters["other_flips"]))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    results_writer("ext_schema_smoothing", render_table(
        ["Data Set", "nodes", "agree", "→entity", "→repeating", "other"],
        rows, title="EXT — schema-level vs instance-level categorization"))
    by_name = {row[0]: row for row in rows}
    assert by_name["dblp"][3] > 0   # single-author promotions exist


@pytest.mark.parametrize("k", [1, 10])
def test_topk_speed(k, benchmark):
    engine = engine_for("interpro", scale=2)
    query = Query.of(["kringl", "domain"], s=1)
    response = benchmark(lambda: search_top_k(engine.index, query, k))
    assert len(response) == k


def test_full_ranking_speed(benchmark):
    engine = engine_for("interpro", scale=2)
    query = Query.of(["kringl", "domain"], s=1)
    benchmark(lambda: search(engine.index, query))


def test_topk_matches_and_reports(results_writer, benchmark):
    def measure():
        engine = engine_for("interpro", scale=2)
        query = Query.of(["kringl", "domain"], s=1)
        full = search(engine.index, query)
        rows = []
        for k in (1, 5, 20, 100):
            top = search_top_k(engine.index, query, k)
            rows.append((k, len(full),
                         "yes" if top.deweys == full.deweys[:k] else "NO"))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    results_writer("ext_topk", render_table(
        ["k", "|RQ(s)|", "top-k == head of full ranking"], rows,
        title="EXT — top-k exactness"))
    assert all(row[2] == "yes" for row in rows)


def test_incremental_append_speed(benchmark):
    """Appending one document must not re-index the corpus."""
    base_repo = load_dataset("swissprot")
    new_doc_text = serialize_document(load_dataset("figure2a")[0])

    def append_once():
        index = build_index(base_repo)
        document = parse_document(new_doc_text,
                                  doc_id=len(index.document_names))
        return append_document(index, document)

    index = benchmark.pedantic(append_once, rounds=3, iterations=1)
    assert index.stats.documents == 2


def test_json_ingestion_speed(benchmark):
    """JSON record batch → tree → index, end to end."""
    records = [{"title": f"record {i}", "year": 1990 + i % 20,
                "authors": [f"author{i % 7}", f"author{(i + 1) % 7}"]}
               for i in range(500)]

    def ingest():
        from repro.xmltree.repository import Repository

        repository = Repository()
        repository.add(json_to_document({"records": records}))
        return build_index(repository)

    index = benchmark(ingest)
    assert index.postings("author1")
