"""Incremental index maintenance: append documents to a live index.

The paper treats indexing as "a onetime activity" (§2.4), but a real
deployment receives new documents.  Because the Dewey space is
partitioned by document number — every posting and hash entry of document
``d`` starts with ``d`` — *appending* a document never touches existing
entries: new postings extend each keyword's sorted list at the tail and
the hash tables gain disjoint keys.  Removal of the **last** document is
equally cheap (truncate tails / drop keys); arbitrary-document removal
would renumber the Dewey space and is out of scope, as in the paper.
"""

from __future__ import annotations

from repro.errors import IndexError_
from repro.index.builder import GKSIndex, IndexBuilder
from repro.xmltree.dewey import document_of
from repro.xmltree.tree import XMLDocument


def append_document(index: GKSIndex, document: XMLDocument) -> GKSIndex:
    """Return a new :class:`GKSIndex` covering the old corpus plus
    *document*.

    *document*'s doc id must be the next free document number.  Cost is
    proportional to the new document only: the underlying structures are
    extended **in place** and shared with the returned index — treat the
    input index as consumed (its phrase cache in particular would be
    stale).
    """
    expected = len(index.document_names)
    if document.doc_id != expected:
        raise IndexError_(
            f"document {document.name!r} has doc id {document.doc_id}, "
            f"expected {expected} (append-only maintenance)")

    builder = IndexBuilder(analyzer=index.analyzer)
    builder._names.extend(index.document_names)  # align numbering
    builder._stats = index.stats                  # continue the counters
    builder._inverted = index.inverted
    builder._hashes = index.hashes
    builder.add_document(document)
    return builder.build()


def remove_last_document(index: GKSIndex) -> GKSIndex:
    """Return a new index without the most recently appended document.

    Pure truncation: postings of the last document sit at the tail of
    every posting list, and its hash keys are exactly those whose first
    Dewey component equals its doc id.
    """
    if not index.document_names:
        raise IndexError_("index is empty; nothing to remove")
    last = len(index.document_names) - 1

    from repro.index.hashtables import NodeHashes
    from repro.index.inverted import InvertedIndex
    from repro.index.statistics import IndexStats

    surviving = {
        keyword: [dewey for dewey in postings
                  if document_of(dewey) != last]
        for keyword, postings in index.inverted.items()}
    inverted = InvertedIndex.from_mapping(
        {keyword: postings for keyword, postings in surviving.items()
         if postings})

    hashes = NodeHashes.from_mappings(
        entity={dewey: count
                for dewey, count in index.hashes.entity_table.items()
                if document_of(dewey) != last},
        element={dewey: count
                 for dewey, count in index.hashes.element_table.items()
                 if document_of(dewey) != last})

    # recompute the cheap counters from what survived
    stats = IndexStats.from_dict(index.stats.to_dict())
    stats.documents = last
    return GKSIndex(inverted=inverted, hashes=hashes, stats=stats,
                    analyzer=index.analyzer,
                    document_names=index.document_names[:-1])
