"""Dewey identifiers for XML nodes (paper §2.1).

A Dewey id encodes a node's position in the labeled ordered tree: the node
with id ``0.2.3`` is the fourth child of node ``0.2``.  Following §2.4 of the
paper, ids are prefixed with a document number so that search "is seamlessly
expanded over multiple documents".

We represent a Dewey id as an immutable tuple of non-negative integers
``(doc, c0, c1, ...)``.  Two properties make Dewey ids the workhorse of the
whole system:

* tuple (lexicographic) order over Dewey ids equals *document order*
  (pre-order arrival of nodes), and
* ``a`` is an ancestor of ``b`` iff ``a`` is a strict prefix of ``b``.

The helpers below implement the prefix algebra used by the search engine
(Lemma 6: for a sorted block the longest common prefix of the first and last
entry is the block's longest common prefix).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.errors import DeweyError

Dewey = tuple[int, ...]

#: Dewey id of the (virtual) root of document 0; mostly useful in tests.
ROOT: Dewey = (0,)


def make_dewey(components: Iterable[int]) -> Dewey:
    """Validate *components* and return them as a Dewey tuple.

    Raises :class:`DeweyError` when empty or containing negative entries.
    """
    dewey = tuple(int(c) for c in components)
    if not dewey:
        raise DeweyError("a Dewey id needs at least a document component")
    if any(c < 0 for c in dewey):
        raise DeweyError(f"Dewey components must be non-negative: {dewey}")
    return dewey


def parse_dewey(text: str) -> Dewey:
    """Parse the dotted string form (``"0.2.3"``) into a Dewey tuple."""
    try:
        return make_dewey(int(part) for part in text.split("."))
    except ValueError as exc:
        raise DeweyError(f"malformed Dewey id {text!r}") from exc


def format_dewey(dewey: Sequence[int]) -> str:
    """Render a Dewey tuple in the paper's dotted notation."""
    return ".".join(str(c) for c in dewey)


def document_of(dewey: Sequence[int]) -> int:
    """Return the document number (the first component) of *dewey*."""
    return dewey[0]


def depth_of(dewey: Sequence[int]) -> int:
    """Return the depth of the node below its document root.

    The document root itself (a one-component id) has depth 0.
    """
    return len(dewey) - 1


def parent_of(dewey: Dewey) -> Dewey:
    """Return the Dewey id of the parent node.

    Raises :class:`DeweyError` when *dewey* is a document root.
    """
    if len(dewey) <= 1:
        raise DeweyError(f"{format_dewey(dewey)} is a document root")
    return dewey[:-1]


def child_of(dewey: Dewey, ordinal: int) -> Dewey:
    """Return the Dewey id of the *ordinal*-th child (0-based)."""
    if ordinal < 0:
        raise DeweyError(f"child ordinal must be non-negative: {ordinal}")
    return dewey + (ordinal,)


def ancestors_of(dewey: Dewey) -> list[Dewey]:
    """Return all strict ancestors of *dewey*, nearest first.

    ``ancestors_of((0, 1, 2))`` is ``[(0, 1), (0,)]``.
    """
    return [dewey[:length] for length in range(len(dewey) - 1, 0, -1)]


def is_ancestor(a: Sequence[int], b: Sequence[int]) -> bool:
    """True iff *a* is a strict ancestor of *b* (``a`` ≺ ``b``)."""
    return len(a) < len(b) and tuple(b[: len(a)]) == tuple(a)


def is_ancestor_or_self(a: Sequence[int], b: Sequence[int]) -> bool:
    """True iff *a* is an ancestor of *b* or equal to it (``a`` ⪯ ``b``)."""
    return len(a) <= len(b) and tuple(b[: len(a)]) == tuple(a)


def common_prefix(a: Sequence[int], b: Sequence[int]) -> Dewey:
    """Longest common prefix of two Dewey ids.

    For ids of nodes in the same document this is the Dewey id of their
    lowest common ancestor.  When the ids belong to different documents the
    result is empty — there is no common ancestor across documents.
    """
    n = 0
    limit = min(len(a), len(b))
    while n < limit and a[n] == b[n]:
        n += 1
    return tuple(a[:n])


def lca_of(deweys: Iterable[Sequence[int]]) -> Dewey:
    """Lowest common ancestor (longest common prefix) of many Dewey ids.

    Raises :class:`DeweyError` on an empty input or when the ids span
    multiple documents (no common ancestor exists).
    """
    iterator = iter(deweys)
    try:
        acc: Dewey = tuple(next(iterator))
    except StopIteration:
        raise DeweyError("lca_of() needs at least one Dewey id") from None
    for dewey in iterator:
        acc = common_prefix(acc, dewey)
        if not acc:
            raise DeweyError("nodes from different documents share no LCA")
    return acc


def block_lcp(sorted_block: Sequence[Sequence[int]]) -> Dewey:
    """Longest common prefix of a *sorted* block of Dewey ids (Lemma 6).

    Because the block is sorted in document order, the common prefix of its
    first and last entries is the common prefix of the whole block — this is
    the O(d) shortcut the paper's search algorithm relies on.
    """
    if not sorted_block:
        raise DeweyError("block_lcp() needs a non-empty block")
    return common_prefix(sorted_block[0], sorted_block[-1])


def subtree_interval(dewey: Dewey) -> tuple[Dewey, Dewey]:
    """Half-open interval ``[lo, hi)`` covering exactly ``subtree(dewey)``.

    Any Dewey id ``x`` satisfies ``lo <= x < hi`` iff *dewey* is an
    ancestor-or-self of ``x``.  Used to binary-search the contiguous range of
    a node's postings inside the merged, sorted list ``SL``.
    """
    lo = dewey
    hi = dewey[:-1] + (dewey[-1] + 1,)
    return lo, hi
