"""Lemma 3 — the exponential search space of the naïve approach.

The paper motivates the single-pass algorithm by showing that decomposing
a GKS query into LCA sub-queries needs Σ C(n,i) ≥ 2^(n/2) subsets when
s ≤ n/2.  This bench measures the blow-up empirically: naïve
subset-enumeration time vs the GKS pipeline on the same query, and the
subset counts for growing n.
"""

from __future__ import annotations

import pytest

from repro.baselines.naive_gks import naive_gks, subset_count
from repro.core.query import Query
from repro.core.search import search
from repro.eval.reporting import render_table
from repro.eval.runner import engine_for, frequency_ladder


def _query(n: int) -> Query:
    engine = engine_for("swissprot")
    keywords = frequency_ladder(engine.index, count=n)
    return Query.of(keywords, s=max(1, n // 2))


@pytest.mark.parametrize("n", [2, 4, 6, 8])
def test_gks_pipeline_speed(n, benchmark):
    engine = engine_for("swissprot")
    query = _query(n)
    benchmark(lambda: search(engine.index, query))


@pytest.mark.parametrize("n", [2, 4, 6, 8])
def test_naive_subset_speed(n, benchmark):
    engine = engine_for("swissprot")
    query = _query(n)
    benchmark(lambda: naive_gks(engine.index, query))


def test_lemma3_counts(results_writer, benchmark):
    rows = benchmark.pedantic(
        lambda: [(n, n // 2, subset_count(n, n // 2), 2 ** (n // 2))
                 for n in (4, 8, 12, 16, 20)],
        rounds=1, iterations=1)
    results_writer("lemma3_subsets", render_table(
        ["n", "s=n/2", "subsets (naive sub-queries)", "2^(n/2) bound"],
        rows, title="Lemma 3 — naïve search-space blow-up"))
    for _, _, subsets, bound in rows:
        assert subsets >= bound
