"""End-to-end integration scenarios across the whole stack."""

import pytest

from repro.core.engine import GKSEngine
from repro.core.session import ExplorationSession
from repro.datasets.registry import load_dataset
from repro.index.storage import load_index, save_index
from repro.xmltree.node import XMLNode
from repro.xmltree.repository import Repository
from repro.xmltree.serialize import serialize_document
from repro.xmltree.xpath import select


class TestPersistedEngineLifecycle:
    """Index once, persist, reload, search, analyse — the deployment
    loop."""

    def test_full_lifecycle(self, tmp_path):
        repository = load_dataset("mondial")
        engine = GKSEngine(repository)
        path = save_index(engine.index, tmp_path / "mondial.idx.gz")

        # a fresh process: reload index, re-parse data files
        xml_files = []
        for document in repository:
            file_path = tmp_path / f"{document.name}.xml"
            file_path.write_text(serialize_document(document))
            xml_files.append(file_path)
        reloaded_repo = Repository.from_paths(xml_files)
        engine2 = GKSEngine(reloaded_repo, index=load_index(path))

        first = engine.search("Laos country name", s=3)
        second = engine2.search("Laos country name", s=3)
        assert first.deweys == second.deweys
        di1 = [insight.render() for insight in engine.insights(first)]
        di2 = [insight.render() for insight in engine2.insights(second)]
        assert di1 == di2


class TestMultiFileCorpus:
    """The Shakespeare corpus spans multiple documents (Table 4)."""

    def test_search_spans_plays(self):
        engine = GKSEngine(load_dataset("plays"))
        response = engine.search("night crown", s=2)
        assert len(response) > 0
        documents = {node.dewey[0] for node in response}
        assert len(documents) >= 2  # hits from several plays

    def test_speaker_search_returns_speeches(self):
        engine = GKSEngine(load_dataset("plays"))
        response = engine.search("hamlet", s=1)
        tags = [engine.node_at(node.dewey).tag for node in response
                if engine.node_at(node.dewey) is not None]
        # speeches by/naming Hamlet dominate; the play titled "Hamlet"
        # may legitimately appear as a PLAY entity, but never on top of
        # the focused speeches
        assert tags[0] == "SPEECH"
        assert tags.count("SPEECH") >= 3


class TestXPathAsGroundTruth:
    """XPath-lite results agree with keyword-search results."""

    def test_author_articles_match(self):
        engine = GKSEngine(load_dataset("dblp"))
        root = engine.repository[0].root
        expected = {node.dewey for node in select(
            root, "article[author='Marek Rusinkiewicz']")}
        response = engine.search('"Marek Rusinkiewicz"', s=1)
        found = {node.dewey for node in response
                 if engine.node_at(node.dewey).tag == "article"}
        assert found == expected


class TestGrowingCorpus:
    """Incremental maintenance under a realistic feed of documents."""

    def test_feed_documents_and_search_between(self):
        engine = GKSEngine(Repository.from_texts(
            ["<log><entry><msg>boot ok</msg></entry></log>"]))
        for day in range(5):
            engine.add_document(
                f"<log><entry><msg>error disk {day}</msg></entry>"
                f"<entry><msg>recovered</msg></entry></log>")
            response = engine.search("error disk", s=2)
            assert len(response) == day + 1
        assert engine.index.stats.documents == 6

    def test_snippets_track_live_repository(self):
        engine = GKSEngine(Repository.from_texts(["<r><a>one</a></r>"]))
        engine.add_document("<r><a>two three</a></r>")
        response = engine.search("three")
        assert "three" in engine.snippet(response[0])


class TestDeepDocuments:
    def test_depth_5000_pipeline(self):
        root = XMLNode("n", (0,))
        current = root
        for _ in range(5000):
            current = current.add_child("n")
        current.add_child("leaf", text="needle haystack")

        repository = Repository()
        repository.add_root(root)
        engine = GKSEngine(repository)
        response = engine.search("needle haystack", s=2)
        assert len(response) == 1
        # round-trip through the serializer/parser at depth too
        text = serialize_document(repository[0])
        reparsed = Repository.from_texts([text])
        assert GKSEngine(reparsed).search("needle").deweys


class TestSessionOverScenario:
    def test_university_exploration(self):
        engine = GKSEngine(load_dataset("figure2a"))
        session = ExplorationSession(engine)
        step = session.run("karen mike john harry student", s=2)
        # our Fig. 2(a) carries a second Area (5 courses); the three
        # Databases courses of Example 3 must lead, Data Mining first
        assert step.result_count == 5
        assert step.response[0].dewey == (0, 1, 1, 0)
        drilled = session.drill_down()
        assert drilled.result_count > 0
        transcript = session.transcript()
        assert "step 1" in transcript and "step 2" in transcript
