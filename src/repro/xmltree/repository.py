"""Multi-document XML repository (paper §2.4).

"The XML data could be spread over multiple files. … GKS search is
seamlessly expanded over multiple documents by prefixing Dewey ids with
corresponding document id."  A :class:`Repository` owns a list of documents
with consecutive document numbers and resolves any Dewey id back to its
node.  It is the unit the indexing engine and all experiments operate on;
the hybrid-query experiment (§7.6) merges two corpora into one repository,
and the scalability experiment (Fig. 10) replicates a corpus inside one.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator

from repro.errors import (DocumentLoadError,
                          GKSError,
                          IngestFailure,
                          ValidationError,
                          XMLSyntaxError)
from repro.obs.metrics import global_registry
from repro.xmltree import dewey as dw
from repro.xmltree.dewey import Dewey
from repro.xmltree.node import XMLNode
from repro.xmltree.parser import (RecoveryPolicy, SalvageLog,
                                  parse_document)
from repro.xmltree.tree import XMLDocument

__all__ = ["IngestFailure", "Repository"]


def _failure_for(name: str, error: GKSError) -> IngestFailure:
    position = ""
    if isinstance(error, XMLSyntaxError):
        position = error.position_text()
    return IngestFailure(name=name, error=error, position=position)


def _ingest_counter(name: str, help: str):
    return global_registry().counter(f"gks_ingest_{name}_total", help=help)


class Repository:
    """An ordered collection of XML documents sharing one Dewey id space.

    Ingestion accepts a :class:`RecoveryPolicy`:

    * ``strict`` (default) — the first malformed document aborts the build;
    * ``skip_document`` — malformed (or unreadable) documents land in
      :attr:`quarantine` as :class:`IngestFailure` records and the rest of
      the corpus builds normally;
    * ``salvage`` — documents are repaired by the recovering parser where
      possible; the unsalvageable ones are quarantined.
    """

    def __init__(self, documents: Iterable[XMLDocument] = ()) -> None:
        self._documents: list[XMLDocument] = []
        self.ingest_failures: list[IngestFailure] = []
        for document in documents:
            self.add(document)

    @property
    def quarantine(self) -> list[IngestFailure]:
        """The documents that did not survive ingestion."""
        return list(self.ingest_failures)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add(self, document: XMLDocument) -> XMLDocument:
        """Add *document*; its doc number must equal its position."""
        expected = len(self._documents)
        if document.doc_id != expected:
            raise ValidationError(
                f"document {document.name!r} has doc id {document.doc_id}, "
                f"expected {expected}; use add_root()/parse to renumber")
        self._documents.append(document)
        return document

    def add_root(self, root: XMLNode, name: str | None = None) -> XMLDocument:
        """Wrap *root* (renumbered if needed) as the next document."""
        doc_id = len(self._documents)
        if root.dewey != (doc_id,):
            document = XMLDocument(root, name=name).renumber(doc_id, name=name)
        else:
            document = XMLDocument(root, name=name)
        self._documents.append(document)
        return document

    def parse(self, text: str, name: str | None = None,
              attributes_as_children: bool = True,
              policy: RecoveryPolicy | str = RecoveryPolicy.STRICT,
              label: str | None = None) -> XMLDocument | None:
        """Parse *text* as the next document of the repository.

        Under ``skip_document`` (and under ``salvage`` when even the
        recovering parser finds nothing to keep) a malformed document is
        quarantined and ``None`` is returned instead of raising.  *label*
        names the document in quarantine reports when *name* is unset.
        """
        policy = RecoveryPolicy.coerce(policy)
        parse_policy = (RecoveryPolicy.SALVAGE
                        if policy is RecoveryPolicy.SALVAGE
                        else RecoveryPolicy.STRICT)
        if label is None:
            label = (name if name is not None
                     else f"text[{len(self._documents)}]")
        salvage_log = SalvageLog()
        try:
            document = parse_document(
                text, doc_id=len(self._documents),
                attributes_as_children=attributes_as_children, name=name,
                policy=parse_policy, salvage_log=salvage_log)
        except XMLSyntaxError as error:
            if policy is RecoveryPolicy.STRICT:
                raise
            self.ingest_failures.append(_failure_for(label, error))
            _ingest_counter("quarantined_documents",
                            "Documents quarantined during ingestion").inc()
            return None
        self._documents.append(document)
        _ingest_counter("documents",
                        "Documents successfully ingested").inc()
        _ingest_counter("bytes",
                        "Bytes of document text ingested").inc(len(text))
        if len(salvage_log):
            _ingest_counter(
                "salvage_repairs",
                "Markup repairs made by the salvaging parser"
            ).inc(len(salvage_log))
        return document

    def parse_json(self, text: str, name: str | None = None,
                   root_tag: str = "root") -> XMLDocument:
        """Parse JSON text as the next document (see
        :mod:`repro.xmltree.json_adapter`)."""
        from repro.xmltree.json_adapter import parse_json_document

        document = parse_json_document(text, doc_id=len(self._documents),
                                       root_tag=root_tag, name=name)
        self._documents.append(document)
        _ingest_counter("documents",
                        "Documents successfully ingested").inc()
        _ingest_counter("bytes",
                        "Bytes of document text ingested").inc(len(text))
        return document

    @classmethod
    def from_texts(cls, texts: Iterable[str],
                   policy: RecoveryPolicy | str = RecoveryPolicy.STRICT,
                   ) -> "Repository":
        """Build a repository by parsing several XML strings.

        Under a non-strict *policy* malformed texts are quarantined on
        :attr:`quarantine` instead of aborting the whole build.
        """
        repository = cls()
        for offset, text in enumerate(texts):
            repository.parse(text, policy=policy, label=f"text[{offset}]")
        return repository

    @classmethod
    def from_paths(cls, paths: Iterable[str | Path],
                   encoding: str = "utf-8",
                   policy: RecoveryPolicy | str = RecoveryPolicy.STRICT,
                   ) -> "Repository":
        """Build a repository from XML files on disk (one doc per file).

        An unreadable or undecodable file raises
        :class:`DocumentLoadError` naming the offending path (strict
        policy) or is quarantined alongside parse failures otherwise.
        """
        policy = RecoveryPolicy.coerce(policy)
        repository = cls()
        for path in paths:
            path = Path(path)
            try:
                text = path.read_text(encoding=encoding)
            except (OSError, UnicodeDecodeError) as exc:
                error = DocumentLoadError(
                    f"cannot read corpus file {path}: {exc}", path=path)
                error.__cause__ = exc
                if policy is RecoveryPolicy.STRICT:
                    raise error from exc
                repository.ingest_failures.append(
                    IngestFailure(name=path.name, error=error))
                _ingest_counter(
                    "quarantined_documents",
                    "Documents quarantined during ingestion").inc()
                continue
            repository.parse(text, name=path.name, policy=policy)
        return repository

    def extend_replicated(self, times: int) -> "Repository":
        """Return a new repository with every document replicated *times*.

        ``times=1`` copies the repository as-is; ``times=3`` yields a corpus
        three times the size — the Fig. 10 scalability workload.
        """
        if times < 1:
            raise ValidationError(f"replication factor must be >= 1: {times}")
        replicated = Repository()
        for round_no in range(times):
            for document in self._documents:
                doc_id = len(replicated._documents)
                replicated._documents.append(
                    document.renumber(doc_id,
                                      name=f"{document.name}#{round_no}"))
        return replicated

    @staticmethod
    def merged(*repositories: "Repository") -> "Repository":
        """Concatenate repositories into one shared Dewey space (§7.6)."""
        merged = Repository()
        for repository in repositories:
            for document in repository:
                doc_id = len(merged._documents)
                merged._documents.append(
                    document.renumber(doc_id, name=document.name))
        return merged

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[XMLDocument]:
        return iter(self._documents)

    def __len__(self) -> int:
        return len(self._documents)

    def __getitem__(self, doc_id: int) -> XMLDocument:
        return self._documents[doc_id]

    @property
    def documents(self) -> list[XMLDocument]:
        return list(self._documents)

    def node_at(self, dewey: Dewey) -> XMLNode | None:
        """Resolve a repository-wide Dewey id to its node."""
        doc_id = dw.document_of(dewey)
        if doc_id >= len(self._documents):
            return None
        return self._documents[doc_id].node_at(dewey)

    def iter_nodes(self) -> Iterator[XMLNode]:
        """All element nodes of all documents, in global document order."""
        for document in self._documents:
            yield from document.root.iter_subtree()

    @property
    def total_nodes(self) -> int:
        return sum(len(document) for document in self._documents)

    @property
    def depth(self) -> int:
        """Maximum depth over all documents (the ``d`` of §4.2)."""
        if not self._documents:
            return 0
        return max(document.depth for document in self._documents)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Repository docs={len(self._documents)}>"
