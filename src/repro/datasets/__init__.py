"""Synthetic corpora mirroring the paper's evaluation datasets."""

from repro.datasets.dblp import generate_dblp
from repro.datasets.interpro import generate_interpro
from repro.datasets.mondial import generate_mondial
from repro.datasets.nasa import generate_nasa
from repro.datasets.plays import generate_play, generate_plays
from repro.datasets.registry import DATASETS, dataset_names, load_dataset
from repro.datasets.sigmod import generate_sigmod
from repro.datasets.swissprot import (generate_protein_sequence,
                                      generate_swissprot)
from repro.datasets.synthesis import Synth
from repro.datasets.toy import figure1, figure2a
from repro.datasets.treebank import generate_treebank

__all__ = [
    "DATASETS", "Synth", "dataset_names", "figure1", "figure2a",
    "generate_dblp", "generate_interpro", "generate_mondial",
    "generate_nasa", "generate_play", "generate_plays",
    "generate_protein_sequence", "generate_sigmod", "generate_swissprot",
    "generate_treebank", "load_dataset",
]
