"""Unit tests for the multi-document repository (paper §2.4, §7.6)."""

import pytest

from repro.xmltree.node import XMLNode, build_tree
from repro.xmltree.repository import Repository
from repro.xmltree.tree import XMLDocument


class TestConstruction:
    def test_parse_assigns_consecutive_doc_ids(self):
        repo = Repository.from_texts(["<a/>", "<b/>", "<c/>"])
        assert [doc.doc_id for doc in repo] == [0, 1, 2]
        assert len(repo) == 3

    def test_add_rejects_wrong_doc_id(self):
        repo = Repository()
        stray = XMLDocument(XMLNode("r", (5,)))
        with pytest.raises(ValueError):
            repo.add(stray)

    def test_add_root_renumbers(self):
        repo = Repository()
        repo.parse("<a/>")
        doc = repo.add_root(build_tree(("r", [("x", "1")])))
        assert doc.doc_id == 1
        assert doc.root.children[0].dewey == (1, 0)

    def test_from_paths(self, tmp_path):
        for name, text in [("one.xml", "<a>1</a>"), ("two.xml", "<b>2</b>")]:
            (tmp_path / name).write_text(text)
        repo = Repository.from_paths(sorted(tmp_path.iterdir()))
        assert [doc.root.tag for doc in repo] == ["a", "b"]
        assert repo[0].name == "one.xml"


class TestLookup:
    def test_node_at_resolves_across_documents(self):
        repo = Repository.from_texts(["<a><b>x</b></a>", "<c><d>y</d></c>"])
        assert repo.node_at((0, 0)).text == "x"
        assert repo.node_at((1, 0)).text == "y"
        assert repo.node_at((2, 0)) is None
        assert repo.node_at((0, 5)) is None

    def test_iter_nodes_global_document_order(self):
        repo = Repository.from_texts(["<a><b/></a>", "<c/>"])
        deweys = [node.dewey for node in repo.iter_nodes()]
        assert deweys == sorted(deweys)

    def test_totals(self):
        repo = Repository.from_texts(["<a><b/><c><d/></c></a>", "<e/>"])
        assert repo.total_nodes == 5
        assert repo.depth == 2


class TestReplication:
    def test_extend_replicated_copies_every_document(self):
        repo = Repository.from_texts(["<a><b>x</b></a>", "<c/>"])
        tripled = repo.extend_replicated(3)
        assert len(tripled) == 6
        assert tripled.total_nodes == repo.total_nodes * 3
        # replicas carry fresh doc ids but identical structure
        assert tripled.node_at((2, 0)).text == "x"
        assert tripled.node_at((4, 0)).text == "x"

    def test_extend_replicated_rejects_zero(self):
        with pytest.raises(ValueError):
            Repository.from_texts(["<a/>"]).extend_replicated(0)

    def test_merged_concatenates(self):
        left = Repository.from_texts(["<a/>"])
        right = Repository.from_texts(["<b/>", "<c/>"])
        merged = Repository.merged(left, right)
        assert [doc.root.tag for doc in merged] == ["a", "b", "c"]
        assert [doc.doc_id for doc in merged] == [0, 1, 2]


class TestDocument:
    def test_document_requires_root_dewey(self):
        with pytest.raises(ValueError):
            XMLDocument(XMLNode("r", (0, 1)))

    def test_renumber_deep_copies(self):
        doc = XMLDocument(build_tree(("r", [("a", "x")])))
        copy = doc.renumber(3)
        assert copy.doc_id == 3
        copy.root.children[0].text = "changed"
        assert doc.root.children[0].text == "x"
