"""Exception hierarchy for the GKS reproduction library.

Every error raised by :mod:`repro` derives from :class:`GKSError`, so callers
can catch the whole family with a single ``except`` clause while still being
able to distinguish parse problems from index or query problems.

This module is the library's *consolidated* error surface: everything a
caller may want to catch — including :class:`IngestFailure`, the
quarantine record that travels alongside the exceptions — is importable
from here, regardless of which subsystem raises it.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "ConfigError", "DatasetError", "DeweyError", "DocumentLoadError",
    "GKSError", "IndexError_", "IngestFailure", "Overloaded",
    "QueryError", "SearchTimeout", "StorageError", "ValidationError",
    "XMLSyntaxError",
]


class GKSError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class XMLSyntaxError(GKSError):
    """Raised by the streaming parser on malformed XML input.

    Attributes
    ----------
    line, column:
        1-based position of the offending character in the input, when known.
    offset:
        0-based character offset of the offending position — the
        machine-readable form the recovering parser and quarantine reports
        use.  ``args[0]`` stays the bare message; the position is rendered
        only by :meth:`__str__`, so it is never duplicated.
    """

    def __init__(self, message: str, line: int | None = None,
                 column: int | None = None,
                 offset: int | None = None) -> None:
        self.line = line
        self.column = column
        self.offset = offset
        super().__init__(message)

    @property
    def message(self) -> str:
        """The bare error message without any position rendering."""
        return self.args[0]

    def position_text(self) -> str:
        """Human-readable position, empty when the position is unknown."""
        parts = []
        if self.line is not None:
            parts.append(f"line {self.line}, column {self.column}")
        if self.offset is not None:
            parts.append(f"offset {self.offset}")
        return ", ".join(parts)

    def __str__(self) -> str:
        position = self.position_text()
        if position:
            return f"{self.args[0]} ({position})"
        return self.args[0]


class DeweyError(GKSError):
    """Raised for invalid Dewey identifiers or Dewey operations."""


class IndexError_(GKSError):
    """Raised for inconsistent or unusable index state.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`IndexError`.
    """


class StorageError(GKSError):
    """Raised when a persisted index cannot be written or read back.

    Attributes
    ----------
    diagnosis:
        Machine-readable failure class: ``"unwritable"``, ``"unreadable"``,
        ``"truncated"``, ``"corrupted"`` or ``"version-mismatch"`` —
        ``None`` for legacy call sites that did not classify the failure.
    path:
        The index file involved, when known.
    """

    def __init__(self, message: str, diagnosis: str | None = None,
                 path=None) -> None:
        self.diagnosis = diagnosis
        self.path = path
        super().__init__(message)


class DocumentLoadError(GKSError):
    """Raised when a corpus file cannot be read off disk.

    Wraps the underlying :class:`OSError`/:class:`UnicodeDecodeError` so a
    multi-file ingest failing on file 7041 names the offending path instead
    of leaking a bare builtin exception mid-build.
    """

    def __init__(self, message: str, path=None) -> None:
        self.path = path
        super().__init__(message)


class SearchTimeout(GKSError):
    """Raised by :meth:`GKSEngine.search` when a :class:`SearchBudget`
    deadline trips under ``strict_deadline=True``.

    Carries the :class:`repro.core.budget.DegradationReport` describing
    which pipeline stage tripped and how much work was completed.
    """

    def __init__(self, message: str, report=None) -> None:
        self.report = report
        super().__init__(message)


class Overloaded(GKSError):
    """Raised by the serving layer when a request is load-shed.

    Typed rejection from :class:`repro.serve.ServerCore` admission
    control: the bounded queue is full, the broker is draining, or the
    request arrived with no deadline budget left.  Raised *before* any
    engine work runs — shedding is the cheapest query the server answers.

    Attributes
    ----------
    reason:
        Machine-readable rejection class: ``"queue-full"``,
        ``"draining"`` or ``"deadline"``.
    retry_after_s:
        Suggested back-off for the client, when the server can estimate
        one (the HTTP front end renders it as ``Retry-After``).
    """

    def __init__(self, message: str, reason: str = "queue-full",
                 retry_after_s: float | None = None) -> None:
        self.reason = reason
        self.retry_after_s = retry_after_s
        super().__init__(message)


class QueryError(GKSError):
    """Raised for malformed keyword queries (e.g. empty after analysis)."""


class DatasetError(GKSError):
    """Raised by synthetic dataset generators for invalid parameters."""


class ConfigError(GKSError, ValueError):
    """Raised for invalid engine configuration or tuning parameters.

    The typed replacement for the ad-hoc ``ValueError``\\ s the engine
    entry points used to raise (``k < 1``, negative deadlines, bad shard
    counts).  It still *is* a ``ValueError``, so legacy ``except
    ValueError`` call sites keep working, while new code can catch the
    :class:`GKSError` family alone.
    """


class ValidationError(GKSError, ValueError):
    """Raised when a caller-supplied argument violates a function contract.

    The typed replacement for the ad-hoc ``ValueError``\\ s library code
    used to raise for bad arguments (non-positive cutoffs, out-of-range
    fractions, mismatched doc ids).  Like :class:`ConfigError` it still
    *is* a ``ValueError``, so legacy ``except ValueError`` call sites
    keep working, while new code can catch the :class:`GKSError` family
    alone.  The distinction from :class:`ConfigError`: that one is for
    engine/tuning configuration, this one for per-call arguments.
    """


@dataclass(frozen=True)
class IngestFailure:
    """One quarantined document: why it failed and where.

    Not an exception — the record a non-strict ingest files in
    :attr:`repro.xmltree.repository.Repository.quarantine` instead of
    raising.  Lives here so the whole error surface (exceptions and the
    quarantine record they produce) imports from one module.

    Attributes
    ----------
    name:
        The document's name (file name for path-based ingest, or a
        synthetic ``text[i]`` for text-based ingest).
    error:
        The :class:`GKSError` that condemned the document.
    position:
        Human-readable position of the first problem (``"line 3,
        column 7, offset 42"``), empty when unknown; the machine-readable
        offset lives on ``error.offset`` for syntax errors.
    """

    name: str
    error: GKSError
    position: str = ""

    def render(self) -> str:
        where = f" at {self.position}" if self.position else ""
        return f"{self.name}: {self.error.args[0]}{where}"
