"""Tests for incremental index maintenance (append / remove-last)."""

import pytest

from repro.core.engine import GKSEngine
from repro.core.query import Query
from repro.core.search import search
from repro.errors import IndexError_
from repro.index.builder import build_index
from repro.index.incremental import append_document, remove_last_document
from repro.xmltree.parser import parse_document
from repro.xmltree.repository import Repository

DOC0 = "<r><a>karen</a><b>mike</b></r>"
DOC1 = "<r><a>karen</a><c>zoe</c></r>"
DOC2 = "<r><d>mike</d></r>"


def fresh_index(*texts):
    return build_index(Repository.from_texts(list(texts)))


class TestAppend:
    def test_appended_index_equals_batch_index(self):
        incremental = fresh_index(DOC0)
        incremental = append_document(
            incremental, parse_document(DOC1, doc_id=1))
        batch = fresh_index(DOC0, DOC1)
        assert dict(incremental.inverted.items()) == \
            dict(batch.inverted.items())
        assert incremental.hashes.entity_table == \
            batch.hashes.entity_table
        assert incremental.hashes.element_table == \
            batch.hashes.element_table
        assert incremental.document_names == batch.document_names

    def test_search_after_append(self):
        index = fresh_index(DOC0)
        index = append_document(index, parse_document(DOC1, doc_id=1))
        response = search(index, Query.of(["karen"], s=1))
        docs = {node.dewey[0] for node in response}
        assert docs == {0, 1}

    def test_wrong_doc_id_rejected(self):
        index = fresh_index(DOC0)
        with pytest.raises(IndexError_):
            append_document(index, parse_document(DOC1, doc_id=5))

    def test_stats_continue(self):
        index = fresh_index(DOC0)
        before = index.stats.total_nodes
        index = append_document(index, parse_document(DOC1, doc_id=1))
        assert index.stats.documents == 2
        assert index.stats.total_nodes > before


class TestRemoveLast:
    def test_remove_restores_previous_state(self):
        grown = fresh_index(DOC0, DOC1)
        shrunk = remove_last_document(grown)
        baseline = fresh_index(DOC0)
        assert dict(shrunk.inverted.items()) == \
            dict(baseline.inverted.items())
        assert shrunk.hashes.entity_table == baseline.hashes.entity_table
        assert shrunk.document_names == ("doc0",)

    def test_removed_document_is_unsearchable(self):
        index = remove_last_document(fresh_index(DOC0, DOC2))
        response = search(index, Query.of(["mike"], s=1))
        assert all(node.dewey[0] == 0 for node in response)

    def test_remove_from_empty_rejected(self):
        empty = remove_last_document(fresh_index(DOC0))
        with pytest.raises(IndexError_):
            remove_last_document(empty)


class TestEngineMaintenance:
    def test_engine_add_document_end_to_end(self):
        engine = GKSEngine(Repository.from_texts([DOC0]))
        assert len(engine.search("zoe")) == 0
        engine.add_document(DOC1, name="update.xml")
        response = engine.search("zoe")
        assert len(response) == 1
        assert response[0].dewey[0] == 1
        # snippets resolve against the updated repository
        assert "zoe" in engine.snippet(response[0])

    def test_phrase_cache_not_stale_after_append(self):
        engine = GKSEngine(Repository.from_texts([DOC0]))
        # warm the phrase cache: karen and mike sit in *different*
        # elements of DOC0, so the phrase matches nothing yet
        assert engine.search('"karen mike"').deweys == []
        engine.add_document("<r><e>karen mike</e></r>")
        response = engine.search('"karen mike"')
        assert {node.dewey[0] for node in response} == {1}
