"""Synthetic Shakespeare-plays corpus (paper Table 4 "Plays").

The real corpus is a set of files, one per play — the paper notes
"Shakespeare's plays are distributed over multiple files", which exercises
the multi-document Dewey space.  Each play: TITLE, PERSONAE, ACTs with
SCENEs, SPEECHes with a SPEAKER and repeating LINEs.
"""

from __future__ import annotations

from repro.datasets import names
from repro.datasets.synthesis import Synth
from repro.xmltree.node import XMLNode

_PLAY_TITLES = [
    "The Tragedy of Hamlet", "Macbeth", "The Tempest", "Othello",
    "Julius Caesar", "A Midsummer Night's Dream", "King Lear",
    "Twelfth Night", "The Winter's Tale", "Much Ado About Nothing",
]

_LINE_WORDS = [
    "night", "crown", "blood", "ghost", "sword", "throne", "storm",
    "witch", "dream", "honor", "grave", "heart", "stars", "mercy",
    "poison", "letter", "castle", "forest", "daughter", "king",
]


def generate_play(synth: Synth, title: str, doc_id: int = 0) -> XMLNode:
    """One play as its own document tree."""
    play = XMLNode("PLAY", (doc_id,))
    play.add_child("TITLE", text=title)
    personae = play.add_child("PERSONAE")
    cast = synth.sample(names.SPEAKERS, synth.int_between(6, 10))
    for person in cast:
        personae.add_child("PERSONA", text=person)

    for act_no in range(1, synth.int_between(3, 5) + 1):
        act = play.add_child("ACT")
        act.add_child("ACTTITLE", text=f"ACT {act_no}")
        for scene_no in range(1, synth.int_between(2, 4) + 1):
            scene = act.add_child("SCENE")
            scene.add_child("SCENETITLE",
                            text=f"SCENE {scene_no}. A room.")
            for _ in range(synth.int_between(3, 8)):
                speech = scene.add_child("SPEECH")
                speech.add_child("SPEAKER", text=synth.pick(cast))
                for _ in range(synth.int_between(1, 4)):
                    speech.add_child(
                        "LINE",
                        text=_verse(synth))
    return play


def generate_plays(scale: int = 1, seed: int = 0) -> list[XMLNode]:
    """A list of plays — one root per file, multi-document corpus."""
    synth = Synth(seed ^ 0x914A5)
    count = min(len(_PLAY_TITLES), max(2, 3 * scale))
    return [generate_play(synth, _PLAY_TITLES[position], doc_id=position)
            for position in range(count)]


def _verse(synth: Synth) -> str:
    words = [synth.pick(_LINE_WORDS) for _ in range(synth.int_between(5, 9))]
    return ("O " + " ".join(words)).capitalize()
