"""E1 — Table 1: GKS vs ELCA vs SLCA on the Fig. 1 toy tree.

Paper-reported rows:
    Q1, s=|Q1|: GKS {x2}            ELCA {x1, x2}   SLCA {x2}
    Q2, s=2  : GKS {x2}, {x3}       ELCA NULL       SLCA NULL
    Q3, s=2  : GKS {x2},{x3},{x4}   ELCA {r}        SLCA {r}
"""

from __future__ import annotations

import pytest

from repro.baselines.elca import elca
from repro.baselines.slca import slca_indexed_lookup_eager
from repro.core.query import Query
from repro.core.search import search
from repro.datasets.registry import load_dataset
from repro.eval.reporting import render_table
from repro.index.builder import build_index
from repro.xmltree.dewey import format_dewey

NAMES = {(0,): "r", (0, 0): "x1", (0, 0, 3): "x2", (0, 1): "x3",
         (0, 2): "x4", (0, 1, 2): "y"}

QUERIES = [
    ("Q1", ["a", "b", "c"], 3),
    ("Q2", ["a", "b", "e"], 2),
    ("Q3", ["a", "b", "c", "d"], 2),
]


def _label(deweys):
    if not deweys:
        return "NULL"
    return ", ".join(NAMES.get(dewey, format_dewey(dewey))
                     for dewey in deweys)


@pytest.fixture(scope="module")
def figure1_index():
    return build_index(load_dataset("figure1"))


def test_table1_semantics(figure1_index, benchmark, results_writer):
    def run_all():
        rows = []
        for qid, keywords, s in QUERIES:
            gks = search(figure1_index, Query.of(keywords, s=s)).deweys
            full = Query.of(keywords, s=len(keywords))
            rows.append((f"{qid}, s={s}", _label(gks),
                         _label(elca(figure1_index, full)),
                         _label(slca_indexed_lookup_eager(figure1_index,
                                                          full))))
        return rows

    rows = benchmark(run_all)
    results_writer("table1_semantics", render_table(
        ["Query", "GKS (ranked)", "ELCA", "SLCA"], rows,
        title="Table 1 — nodes returned per algorithm (Fig. 1 tree)"))

    by_query = {row[0]: row for row in rows}
    assert by_query["Q1, s=3"][1] == "x2"
    assert by_query["Q1, s=3"][2] == "x1, x2"
    assert by_query["Q2, s=2"][1] == "x2, x3"
    assert by_query["Q2, s=2"][2] == "NULL"
    assert by_query["Q3, s=2"][1] == "x2, x3, x4"
    assert by_query["Q3, s=2"][3] == "r"


def test_example5_ranks(figure1_index, benchmark, results_writer):
    query = Query.of(["a", "b", "c", "d"], s=2)
    response = benchmark(lambda: search(figure1_index, query))
    rows = [(NAMES.get(node.dewey, node.dewey_text), node.score)
            for node in response]
    results_writer("example5_ranks", render_table(
        ["node", "potential-flow rank"], rows,
        title="Example 5 — ranks for Q3 (paper: x2=3, x3=2.5, x4=2)"))
    scores = dict(rows)
    assert scores["x2"] == pytest.approx(3.0)
    assert scores["x3"] == pytest.approx(2.5)
    assert scores["x4"] == pytest.approx(2.0)
