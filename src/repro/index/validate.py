"""Index integrity validation.

A persisted index can rot (partial writes, manual edits, version skew
that slipped past the loader) or drift from the data files it was built
from.  ``validate_index`` checks the self-consistency of an index alone;
``validate_against_repository`` re-derives categorization and postings
from the data and diffs them — the authoritative (slow) check.

Both return a list of human-readable problems; empty means healthy.
"""

from __future__ import annotations

from repro.index.builder import GKSIndex, IndexBuilder
from repro.index.postings import verify_sorted
from repro.xmltree.dewey import format_dewey
from repro.xmltree.repository import Repository


def validate_index(index: GKSIndex) -> list[str]:
    """Self-consistency checks; no data access needed."""
    problems: list[str] = []

    for keyword, postings in index.inverted.items():
        if not postings:
            problems.append(f"empty posting list for {keyword!r}")
        elif not verify_sorted(postings):
            problems.append(f"unsorted posting list for {keyword!r}")

    documents = len(index.document_names)
    for keyword, postings in index.inverted.items():
        for dewey in postings:
            if dewey[0] >= documents:
                problems.append(
                    f"posting {format_dewey(dewey)} of {keyword!r} "
                    f"references unknown document {dewey[0]}")
                break

    entity = index.hashes.entity_table
    element = index.hashes.element_table
    for table_name, table in (("entityHash", entity),
                              ("elementHash", element)):
        for dewey, child_count in table.items():
            if child_count < 0:
                problems.append(
                    f"{table_name}[{format_dewey(dewey)}] has negative "
                    f"child count {child_count}")
            if dewey[0] >= documents:
                problems.append(
                    f"{table_name} references unknown document "
                    f"{dewey[0]}")

    # an entity node's ancestors must exist in some table (they are
    # element nodes of the same tree) — spot-check structural sanity
    known = set(entity) | set(element)
    for dewey in entity:
        parent = dewey[:-1]
        if len(parent) >= 1 and parent not in known:
            problems.append(
                f"entity {format_dewey(dewey)} has an unindexed parent")

    stats = index.stats
    if stats.documents != documents:
        problems.append(
            f"stats.documents={stats.documents} but "
            f"{documents} document name(s) recorded")
    category_sum = (stats.attribute_nodes + stats.entity_nodes
                    + stats.connecting_nodes)
    if stats.total_nodes and category_sum > 2 * stats.total_nodes:
        problems.append("category counters exceed plausible bounds")
    return problems


def validate_against_repository(index: GKSIndex,
                                repository: Repository) -> list[str]:
    """Rebuild from *repository* and diff — the authoritative check."""
    problems = validate_index(index)

    builder = IndexBuilder(analyzer=index.analyzer)
    builder.add_repository(repository)
    rebuilt = builder.build()

    ours = dict(index.inverted.items())
    theirs = dict(rebuilt.inverted.items())
    missing = set(theirs) - set(ours)
    extra = set(ours) - set(theirs)
    for keyword in sorted(missing)[:5]:
        problems.append(f"keyword {keyword!r} missing from the index")
    for keyword in sorted(extra)[:5]:
        problems.append(f"keyword {keyword!r} not derivable from data")
    for keyword in set(ours) & set(theirs):
        if ours[keyword] != theirs[keyword]:
            problems.append(
                f"posting list for {keyword!r} differs from data")

    if index.hashes.entity_table != rebuilt.hashes.entity_table:
        problems.append("entityHash differs from data-derived hash")
    if index.hashes.element_table != rebuilt.hashes.element_table:
        problems.append("elementHash differs from data-derived hash")
    return problems
