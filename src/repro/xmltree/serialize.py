"""Serialize :class:`XMLNode` trees back to XML text.

Used by the dataset generators (to emit corpora onto disk), by the
benchmarks (to measure index-build time from raw text like the paper's
Table 4), and to render the "well-constructed XML chunk" result snippets the
GKS system returns (paper §1.2).
"""

from __future__ import annotations

from typing import Callable

from repro.xmltree.node import XMLNode
from repro.xmltree.tree import XMLDocument

_TEXT_ESCAPES = [("&", "&amp;"), ("<", "&lt;"), (">", "&gt;")]
_ATTR_ESCAPES = _TEXT_ESCAPES + [('"', "&quot;")]


def escape_text(value: str) -> str:
    """Escape character data for element content."""
    for raw, entity in _TEXT_ESCAPES:
        value = value.replace(raw, entity)
    return value


def escape_attribute(value: str) -> str:
    """Escape character data for a double-quoted attribute value."""
    for raw, entity in _ATTR_ESCAPES:
        value = value.replace(raw, entity)
    return value


def serialize_node(node: XMLNode, indent: int | None = None,
                   keep: Callable[[XMLNode], bool] | None = None) -> str:
    """Serialize a subtree to XML text.

    Parameters
    ----------
    node:
        Root of the subtree to serialize.
    indent:
        When given, pretty-print with this many spaces per level; when
        ``None``, emit compact single-line XML.
    keep:
        Optional predicate; descendants for which it returns false are
        pruned.  The result-snippet renderer uses this to show only the
        attribute nodes and matched paths of an LCE node.
    """
    parts: list[str] = []
    _write(node, parts, 0, indent, keep)
    return "".join(parts)


def serialize_document(document: XMLDocument, indent: int | None = None,
                       declaration: bool = True) -> str:
    """Serialize a whole document, optionally with an XML declaration."""
    body = serialize_node(document.root, indent=indent)
    if not declaration:
        return body
    newline = "\n" if indent is not None else ""
    return f'<?xml version="1.0" encoding="UTF-8"?>{newline}{body}'


def _write(root: XMLNode, parts: list[str], level: int,
           indent: int | None, keep: Callable[[XMLNode], bool] | None) -> None:
    """Emit *root*'s subtree; explicit stack, safe for any depth."""
    newline = "" if indent is None else "\n"
    # stack items: ("open", node, level) or ("close", text)
    stack: list[tuple] = [("open", root, level)]
    while stack:
        action, payload, *rest = stack.pop()
        if action == "close":
            parts.append(payload)
            continue
        node, node_level = payload, rest[0]
        pad = "" if indent is None else " " * (indent * node_level)
        attributes = "".join(
            f' {key}="{escape_attribute(value)}"'
            for key, value in node.xml_attributes.items())
        children = [child for child in node.children
                    if keep is None or keep(child)]
        has_text = node.has_text

        if not children and not has_text:
            parts.append(f"{pad}<{node.tag}{attributes}/>{newline}")
            continue

        parts.append(f"{pad}<{node.tag}{attributes}>")
        if has_text:
            assert node.text is not None
            parts.append(escape_text(node.text.strip()))
        if children:
            parts.append(newline)
            stack.append(("close",
                          f"{pad}</{node.tag}>{newline}"))
            stack.extend(("open", child, node_level + 1)
                         for child in reversed(children))
        else:
            parts.append(f"</{node.tag}>{newline}")
