"""Analysis pipeline: tokenize → stop-word filter → stem (paper §2.4).

One :class:`Analyzer` instance is shared by the indexing engine and the
query parser so that query keywords and indexed keywords always normalise
identically.  Each stage can be switched off — the indexing ablation bench
(A3 in DESIGN.md) compares stemming on/off.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.text.stemmer import porter_stem
from repro.text.stopwords import DEFAULT_STOPWORDS
from repro.text.tokenizer import iter_tokens


@dataclass(frozen=True)
class Analyzer:
    """Deterministic text-normalisation pipeline.

    Parameters
    ----------
    use_stopwords:
        Drop English stop words (default on, as in the paper).
    use_stemming:
        Apply the Porter stemmer (default on, as in the paper).
    stopwords:
        The stop-word set; override for non-English corpora.
    """

    use_stopwords: bool = True
    use_stemming: bool = True
    stopwords: frozenset[str] = field(default=DEFAULT_STOPWORDS)

    def analyze(self, text: str) -> list[str]:
        """Normalise *text* into the list of index/query keywords.

        Order and multiplicity are preserved: the inverted index posts one
        entry per keyword occurrence.
        """
        keywords = []
        for token in iter_tokens(text):
            if self.use_stopwords and token in self.stopwords:
                continue
            if self.use_stemming:
                token = porter_stem(token)
            if token:
                keywords.append(token)
        return keywords

    def analyze_unique(self, text: str) -> list[str]:
        """Like :meth:`analyze` but de-duplicated, first occurrence wins.

        Queries use this form: a query keyword counts once no matter how
        often the user typed it.
        """
        seen: set[str] = set()
        unique: list[str] = []
        for keyword in self.analyze(text):
            if keyword not in seen:
                seen.add(keyword)
                unique.append(keyword)
        return unique

    def analyze_tag(self, tag: str) -> list[str]:
        """Normalise an element label for tag-name indexing.

        Tags are tokenized like text (``Dept_Name`` → ``dept``, ``name``)
        but never stop-word filtered: a tag called ``<for>`` must stay
        searchable.
        """
        keywords = []
        for token in iter_tokens(tag):
            if self.use_stemming:
                token = porter_stem(token)
            if token:
                keywords.append(token)
        return keywords


#: Default pipeline shared across the library.
DEFAULT_ANALYZER = Analyzer()
