"""E8/E9 — Table 8 + §7.4: DI discovered per query, and the DI-driven
refinement case study.

Paper-reported anchors: QD2's DI exposes <year: 2001> and
<journal: SIGMOD Record>; QD3's exposes <year: 1999> and
<booktitle: ICCD>; QD1's DI reveals Marek Rusinkiewicz, and refining the
query to (Georgakopoulos, Rusinkiewicz) finds 10 joint articles where the
original query had one.
"""

from __future__ import annotations

import pytest

from repro.eval.reporting import render_table
from repro.eval.runner import engine_for, refinement_case, table8_rows
from repro.eval.workload import TABLE6, by_id


@pytest.mark.parametrize("qid", ["QD1", "QD2", "QM1", "QI1"])
def test_di_speed(qid, benchmark):
    workload = by_id(qid)
    engine = engine_for(workload.dataset)
    response = engine.search(workload.text, s=1)
    report = benchmark(lambda: engine.insights(response, top=10))
    assert report is not None


def test_table8_report(results_writer, benchmark):
    rows = benchmark.pedantic(table8_rows, rounds=1, iterations=1)
    results_writer("table8_di", render_table(
        ["Query", "DI, s=1", "DI, s=|Q|/2"],
        [(row.qid, "; ".join(row.di_s1) or "NA",
          "; ".join(row.di_half) or "NA") for row in rows],
        title="Table 8 — DI discovered for different queries"))

    by_qid = {row.qid: row for row in rows}
    qd2 = " ".join(by_qid["QD2"].di_s1)
    assert "2001" in qd2                       # the paper's <year: 2001>
    qd3 = " ".join(by_qid["QD3"].di_s1)
    assert "ICCD" in qd3 and "1999" in qd3     # the paper's exact DI
    for row in rows:
        assert row.di_s1 or row.di_half        # DI exists somewhere


def test_refinement_case_study(results_writer, benchmark):
    case = benchmark.pedantic(refinement_case, rounds=1, iterations=1)
    results_writer("sec74_refinement", render_table(
        ["original #results", "DI reveals co-author", "refined #results"],
        [(case.original_results,
          "yes" if case.di_coauthor_found else "no",
          case.refined_results)],
        title="§7.4 — QD1 + DI: Georgakopoulos & Rusinkiewicz"))
    assert case.di_coauthor_found
    assert case.refined_results == 10          # the paper's number
