"""Exception hierarchy for the GKS reproduction library.

Every error raised by :mod:`repro` derives from :class:`GKSError`, so callers
can catch the whole family with a single ``except`` clause while still being
able to distinguish parse problems from index or query problems.
"""

from __future__ import annotations


class GKSError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class XMLSyntaxError(GKSError):
    """Raised by the streaming parser on malformed XML input.

    Attributes
    ----------
    line, column:
        1-based position of the offending character in the input, when known.
    offset:
        0-based character offset of the offending position — the
        machine-readable form the recovering parser and quarantine reports
        use.  ``args[0]`` stays the bare message; the position is rendered
        only by :meth:`__str__`, so it is never duplicated.
    """

    def __init__(self, message: str, line: int | None = None,
                 column: int | None = None,
                 offset: int | None = None) -> None:
        self.line = line
        self.column = column
        self.offset = offset
        super().__init__(message)

    @property
    def message(self) -> str:
        """The bare error message without any position rendering."""
        return self.args[0]

    def position_text(self) -> str:
        """Human-readable position, empty when the position is unknown."""
        parts = []
        if self.line is not None:
            parts.append(f"line {self.line}, column {self.column}")
        if self.offset is not None:
            parts.append(f"offset {self.offset}")
        return ", ".join(parts)

    def __str__(self) -> str:
        position = self.position_text()
        if position:
            return f"{self.args[0]} ({position})"
        return self.args[0]


class DeweyError(GKSError):
    """Raised for invalid Dewey identifiers or Dewey operations."""


class IndexError_(GKSError):
    """Raised for inconsistent or unusable index state.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`IndexError`.
    """


class StorageError(GKSError):
    """Raised when a persisted index cannot be written or read back.

    Attributes
    ----------
    diagnosis:
        Machine-readable failure class: ``"unwritable"``, ``"unreadable"``,
        ``"truncated"``, ``"corrupted"`` or ``"version-mismatch"`` —
        ``None`` for legacy call sites that did not classify the failure.
    path:
        The index file involved, when known.
    """

    def __init__(self, message: str, diagnosis: str | None = None,
                 path=None) -> None:
        self.diagnosis = diagnosis
        self.path = path
        super().__init__(message)


class DocumentLoadError(GKSError):
    """Raised when a corpus file cannot be read off disk.

    Wraps the underlying :class:`OSError`/:class:`UnicodeDecodeError` so a
    multi-file ingest failing on file 7041 names the offending path instead
    of leaking a bare builtin exception mid-build.
    """

    def __init__(self, message: str, path=None) -> None:
        self.path = path
        super().__init__(message)


class SearchTimeout(GKSError):
    """Raised by :meth:`GKSEngine.search` when a :class:`SearchBudget`
    deadline trips under ``strict_deadline=True``.

    Carries the :class:`repro.core.budget.DegradationReport` describing
    which pipeline stage tripped and how much work was completed.
    """

    def __init__(self, message: str, report=None) -> None:
        self.report = report
        super().__init__(message)


class QueryError(GKSError):
    """Raised for malformed keyword queries (e.g. empty after analysis)."""


class DatasetError(GKSError):
    """Raised by synthetic dataset generators for invalid parameters."""
