"""Result types returned by the GKS search engine."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.budget import DegradationReport
from repro.core.query import Query
from repro.core.ranking import RankBreakdown
from repro.obs.stats import QueryStats
from repro.xmltree.dewey import Dewey, format_dewey


@dataclass(frozen=True)
class RelaxationStep:
    """One single-edit query rewrite applied by the relaxation pipeline.

    ``op`` is ``"drop"`` | ``"generalize"`` | ``"substitute"``;
    ``source`` is the original query keyword the edit touched and
    ``replacement`` the keyword that took its place (``None`` for a
    drop).  ``keywords`` is the full rewritten keyword tuple and
    ``penalty`` the fixed cost of the edit — relaxed results rank by
    ``(penalty, -score)`` so cheaper rewrites always come first.
    """

    op: str
    source: str
    replacement: str | None
    keywords: tuple[str, ...]
    penalty: float

    def describe(self) -> str:
        if self.op == "drop":
            return f"dropped {self.source!r}"
        verb = "generalized" if self.op == "generalize" else "substituted"
        return f"{verb} {self.source!r} -> {self.replacement!r}"

    def to_dict(self) -> dict:
        return {"op": self.op, "source": self.source,
                "replacement": self.replacement,
                "keywords": list(self.keywords), "penalty": self.penalty}


@dataclass(frozen=True)
class SemanticsInfo:
    """Provenance for a non-strict query mode (``repro.semantics``).

    Attached to :class:`GKSResponse` only when the request ran in
    probabilistic or relaxed mode — strict responses carry ``None`` so
    their wire shape is unchanged.  ``relaxed`` is True when the strict
    pipeline came back empty and relaxation actually produced the
    result set; ``relaxations`` lists the rewrites that contributed at
    least one surviving node, cheapest first.
    """

    mode: str
    threshold: float | None = None
    relaxed: bool = False
    relaxations: tuple[RelaxationStep, ...] = ()

    def to_dict(self) -> dict:
        payload: dict = {"mode": self.mode}
        if self.threshold is not None:
            payload["threshold"] = self.threshold
        if self.relaxed:
            payload["relaxed"] = True
            payload["relaxations"] = [step.to_dict()
                                      for step in self.relaxations]
        return payload


@dataclass(frozen=True)
class RankedNode:
    """One node of the GKS response ``RQ(s)``, ranked.

    ``probability`` is populated only in probabilistic mode (the
    possible-worlds marginal that the node exists and its subtree meets
    the ``min(s, |Q|)`` bar); ``relaxation`` only in relaxed mode (the
    query rewrite that produced the node).  Both default to ``None`` so
    strict-mode responses are byte-identical to their pre-semantics
    shape.
    """

    dewey: Dewey
    score: float
    distinct_keywords: int
    matched_keywords: tuple[str, ...]
    is_lce: bool
    estimated_keywords: int
    breakdown: RankBreakdown = field(repr=False, compare=False, default=None)
    probability: float | None = None
    relaxation: RelaxationStep | None = None

    @property
    def dewey_text(self) -> str:
        return format_dewey(self.dewey)

    def sort_key(self) -> tuple:
        """Descending score, then coverage, then document order."""
        return (-self.score, -self.distinct_keywords, self.dewey)


@dataclass(frozen=True)
class SearchProfile:
    """Instrumentation for the performance experiments (Figs 8–10).

    The stage timings decompose the total: merge (building ``SL``), LCP
    (the sliding window), LCE (entity mapping + witnesses), and ranking.
    They support the §4.2 complexity discussion — merge and LCP dominate
    and grow with ``|SL|``; ranking grows with the response size.
    """

    merged_list_size: int
    lcp_entries: int
    lce_nodes: int
    seconds: float
    merge_seconds: float = 0.0
    lcp_seconds: float = 0.0
    lce_seconds: float = 0.0
    rank_seconds: float = 0.0

    def stage_breakdown(self) -> dict[str, float]:
        return {
            "merge": self.merge_seconds,
            "lcp": self.lcp_seconds,
            "lce": self.lce_seconds,
            "rank": self.rank_seconds,
        }


@dataclass(frozen=True)
class GKSResponse:
    """Ranked GKS response for one query.

    ``nodes`` is the full ranked list ``RQ(s)``; ``lce_nodes`` is the
    subset ``EQ`` of entity (LCE) nodes the DI analysis runs on.

    ``degraded`` marks a response produced under an exhausted
    :class:`~repro.core.budget.SearchBudget`: ``nodes`` then holds the
    best-effort partial answer and ``degradation`` says which pipeline
    stage tripped and how much of it completed.

    ``stats`` is the :class:`~repro.obs.stats.QueryStats` observability
    record every search populates: stage durations, work counters and
    serving context (cache hit, budget trips).
    """

    query: Query
    nodes: tuple[RankedNode, ...]
    profile: SearchProfile
    degraded: bool = False
    degradation: DegradationReport | None = None
    stats: QueryStats = field(default_factory=QueryStats)
    semantics: SemanticsInfo | None = None

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self):
        return iter(self.nodes)

    def __getitem__(self, position: int) -> RankedNode:
        return self.nodes[position]

    @property
    def lce_nodes(self) -> tuple[RankedNode, ...]:
        """``EQ ⊆ RQ(s)``: the LCE nodes in the response (Def 2.3.1)."""
        return tuple(node for node in self.nodes if node.is_lce)

    @property
    def deweys(self) -> list[Dewey]:
        return [node.dewey for node in self.nodes]

    def top(self, count: int) -> tuple[RankedNode, ...]:
        return self.nodes[:count]

    def max_distinct_keywords(self) -> int:
        """Table 7's "Max keywords in a GKS node" column."""
        if not self.nodes:
            return 0
        return max(node.distinct_keywords for node in self.nodes)

    def nodes_with_max_keywords(self) -> tuple[RankedNode, ...]:
        """The "true XML nodes" of the §7.3 rank-score metric."""
        best = self.max_distinct_keywords()
        return tuple(node for node in self.nodes
                     if node.distinct_keywords == best)
