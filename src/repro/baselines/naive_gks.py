"""The naïve GKS baseline the paper argues against (§4, Lemma 3).

"A naïve approach would be to create all the keyword subsets (of size ≥ s)
for query Q, and for each of these keyword subsets, identify the LCA
nodes."  That is an exponential number of SLCA sub-queries — Lemma 3 shows
``U ≥ 2^(n/2)`` subsets when ``s ≤ n/2``.  We implement it anyway: it is
the semantic yardstick for the efficient pipeline (every GKS response node
must cover at least one subset's SLCA region) and the subject of the
Lemma-3 benchmark that shows the blow-up empirically.
"""

from __future__ import annotations

from itertools import combinations

from repro.baselines.slca import slca_indexed_lookup_eager
from repro.core.query import Query
from repro.index.builder import GKSIndex
from repro.xmltree.dewey import Dewey


def keyword_subsets(query: Query) -> list[tuple[str, ...]]:
    """All keyword subsets of size ≥ ``min(s, |Q|)`` (Lemma 3's ``U``)."""
    threshold = query.effective_s
    subsets: list[tuple[str, ...]] = []
    for size in range(threshold, len(query.keywords) + 1):
        subsets.extend(combinations(query.keywords, size))
    return subsets


def subset_count(n: int, s: int) -> int:
    """Closed form of Lemma 3's count without enumerating anything."""
    from math import comb

    return sum(comb(n, size) for size in range(min(s, n), n + 1))


def naive_gks(index: GKSIndex, query: Query) -> list[Dewey]:
    """Union of SLCA answers over every keyword subset of size ≥ s.

    Returns the deduplicated node set in document order.  Runtime is
    exponential in ``|Q|`` by construction — use only on small queries.
    """
    results: set[Dewey] = set()
    for subset in keyword_subsets(query):
        sub_query = Query.of(list(subset), s=len(subset))
        results.update(slca_indexed_lookup_eager(index, sub_query))
    return sorted(results)
