"""A from-scratch streaming XML parser.

The paper's system ingests raw XML repositories; rather than leaning on a
third-party parser we implement the substrate ourselves: a tokenizer that
turns a character stream into :mod:`repro.xmltree.events` parse events, and a
tree builder that assigns Dewey ids on the fly.

Supported XML subset (ample for the corpora the paper evaluates on):

* elements with attributes, self-closing tags,
* character data with the five predefined entities plus decimal/hex
  character references,
* CDATA sections, comments, processing instructions and the XML declaration,
* a permissive DOCTYPE skipper (internal subsets are skipped, not parsed).

Design notes
------------
``iter_events`` is a generator, so indexing large inputs never materialises
the document; ``parse_document`` builds an :class:`XMLDocument` for callers
that want the tree.  Malformed input raises :class:`XMLSyntaxError` with a
1-based line/column and a 0-based character offset.

Recovery
--------
Real multi-file corpora (§2.4) contain the occasional malformed document.
:class:`RecoveryPolicy` selects what happens:

* ``STRICT`` — raise on the first error (the default, unchanged behaviour);
* ``SKIP_DOCUMENT`` — parser-level behaviour equals STRICT; the
  *repository* catches the error and quarantines the document instead of
  aborting the whole ingest;
* ``SALVAGE`` — :func:`iter_events_salvage` resynchronises after malformed
  markup (skips to the next ``<``), drops stray closing tags, closes
  unbalanced open tags at end of input, ignores extra root elements, and
  keeps unknown entities as literal text.  Every repair is recorded in a
  :class:`SalvageLog`.
"""

from __future__ import annotations

import enum

from typing import Iterable, Iterator

from repro.errors import ConfigError, XMLSyntaxError
from repro.xmltree.events import (Comment, EndElement, ParseEvent,
                                  ProcessingInstruction, StartElement, Text)
from repro.xmltree.node import XMLNode
from repro.xmltree.tree import XMLDocument

_PREDEFINED_ENTITIES = {
    "amp": "&",
    "lt": "<",
    "gt": ">",
    "quot": '"',
    "apos": "'",
}

_NAME_START_EXTRA = "_:"
_NAME_EXTRA = "_:.-"


class RecoveryPolicy(enum.Enum):
    """How ingestion reacts to malformed XML (see module docstring)."""

    STRICT = "strict"
    SKIP_DOCUMENT = "skip_document"
    SALVAGE = "salvage"

    @classmethod
    def coerce(cls, value: "RecoveryPolicy | str") -> "RecoveryPolicy":
        if isinstance(value, cls):
            return value
        try:
            return cls(value)
        except ValueError:
            choices = ", ".join(policy.value for policy in cls)
            raise ConfigError(
                f"unknown recovery policy {value!r} (choose from {choices})")


class SalvageLog:
    """The repairs a salvage parse had to make, in input order."""

    def __init__(self) -> None:
        self.problems: list[XMLSyntaxError] = []

    def note(self, problem: XMLSyntaxError) -> None:
        self.problems.append(problem)

    def __len__(self) -> int:
        return len(self.problems)

    def __iter__(self):
        return iter(self.problems)

    def render(self) -> str:
        return "; ".join(str(problem) for problem in self.problems)


def _is_name_start(ch: str) -> bool:
    return ch.isalpha() or ch in _NAME_START_EXTRA


def _is_name_char(ch: str) -> bool:
    return ch.isalnum() or ch in _NAME_EXTRA


class _Scanner:
    """Character cursor with line/column tracking for error messages."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0
        self.length = len(text)

    def at_end(self) -> bool:
        return self.pos >= self.length

    def peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        if index >= self.length:
            return ""
        return self.text[index]

    def startswith(self, token: str) -> bool:
        return self.text.startswith(token, self.pos)

    def advance(self, count: int = 1) -> None:
        self.pos += count

    def take_until(self, token: str, description: str) -> str:
        """Consume text up to *token*, consume the token, return the text."""
        end = self.text.find(token, self.pos)
        if end < 0:
            raise self.error(f"unterminated {description}")
        chunk = self.text[self.pos:end]
        self.pos = end + len(token)
        return chunk

    def skip_whitespace(self) -> None:
        while self.pos < self.length and self.text[self.pos] in " \t\r\n":
            self.pos += 1

    def read_name(self, description: str) -> str:
        start = self.pos
        if self.at_end() or not _is_name_start(self.text[self.pos]):
            raise self.error(f"expected {description}")
        self.pos += 1
        while self.pos < self.length and _is_name_char(self.text[self.pos]):
            self.pos += 1
        return self.text[start:self.pos]

    def expect(self, token: str) -> None:
        if not self.startswith(token):
            raise self.error(f"expected {token!r}")
        self.pos += len(token)

    def error(self, message: str) -> XMLSyntaxError:
        line = self.text.count("\n", 0, self.pos) + 1
        last_newline = self.text.rfind("\n", 0, self.pos)
        column = self.pos - last_newline
        return XMLSyntaxError(message, line=line, column=column,
                              offset=self.pos)


def decode_entities(raw: str, scanner: _Scanner | None = None,
                    lenient: bool = False) -> str:
    """Resolve entity and character references inside character data.

    With ``lenient=True`` (salvage mode) an unresolvable reference is kept
    as literal text instead of raising.
    """
    if "&" not in raw:
        return raw
    out: list[str] = []
    i = 0
    while i < len(raw):
        ch = raw[i]
        if ch != "&":
            out.append(ch)
            i += 1
            continue
        end = raw.find(";", i + 1)
        if end < 0:
            if lenient:
                out.append(raw[i:])
                break
            raise _entity_error("unterminated entity reference", scanner)
        name = raw[i + 1:end]
        try:
            out.append(_resolve_entity(name, scanner))
        except XMLSyntaxError:
            if not lenient:
                raise
            out.append(raw[i:end + 1])
        i = end + 1
    return "".join(out)


def _resolve_entity(name: str, scanner: _Scanner | None) -> str:
    if name in _PREDEFINED_ENTITIES:
        return _PREDEFINED_ENTITIES[name]
    if name.startswith("#x") or name.startswith("#X"):
        try:
            return chr(int(name[2:], 16))
        except ValueError:
            raise _entity_error(f"bad character reference &{name};", scanner)
    if name.startswith("#"):
        try:
            return chr(int(name[1:]))
        except ValueError:
            raise _entity_error(f"bad character reference &{name};", scanner)
    raise _entity_error(f"unknown entity &{name};", scanner)


def _entity_error(message: str, scanner: _Scanner | None) -> XMLSyntaxError:
    if scanner is not None:
        return scanner.error(message)
    return XMLSyntaxError(message)


def iter_events(text: str) -> Iterator[ParseEvent]:
    """Tokenize *text* into a stream of parse events.

    The generator validates well-formedness incrementally: tags must nest
    properly, exactly one root element must exist, and nothing but
    whitespace/comments/PIs may surround it.
    """
    if text.startswith("﻿"):
        text = text[1:]  # strip a UTF-8 BOM
    scanner = _Scanner(text)
    open_tags: list[str] = []
    roots_seen = 0

    while not scanner.at_end():
        if scanner.peek() == "<":
            at_top_level = not open_tags
            for event in _scan_markup(scanner, open_tags):
                if isinstance(event, StartElement) and at_top_level:
                    roots_seen += 1
                    if roots_seen > 1:
                        raise scanner.error("multiple root elements")
                yield event
            continue
        chunk = _scan_text(scanner)
        if chunk:
            if not open_tags and chunk.strip():
                raise scanner.error("character data outside the root element")
            if open_tags:
                yield Text(chunk)

    if open_tags:
        raise scanner.error(f"unclosed element <{open_tags[-1]}>")
    if roots_seen == 0:
        raise scanner.error("document has no root element")


def iter_events_salvage(text: str,
                        log: SalvageLog | None = None) -> Iterator[ParseEvent]:
    """Recovering variant of :func:`iter_events`.

    On malformed markup the scanner resynchronises at the next ``<``;
    stray closing tags are dropped; unbalanced open tags are closed at end
    of input; content after the first root element is skipped.  Each
    repair is recorded on *log*.  Only a document with no salvageable root
    element at all still raises :class:`XMLSyntaxError`.
    """
    if log is None:
        log = SalvageLog()
    if text.startswith("﻿"):
        text = text[1:]  # strip a UTF-8 BOM
    scanner = _Scanner(text)
    open_tags: list[str] = []
    root_done = False      # the first root element closed already
    suppressing = False    # inside a second root: consume, don't yield

    while not scanner.at_end():
        if scanner.peek() == "<":
            at_top_level = not open_tags
            position = scanner.pos
            try:
                events = _scan_markup(scanner, open_tags, recover=True)
            except XMLSyntaxError as problem:
                log.note(problem)
                _resynchronize(scanner, position)
                continue
            if text.startswith("</", position) and len(events) > 1:
                closed = ", ".join(f"<{event.tag}>" for event in events[:-1])
                log.note(_position_error(
                    scanner, position,
                    f"closing tag auto-closed unclosed children: {closed}"))
            for event in events:
                if isinstance(event, StartElement) and at_top_level:
                    at_top_level = False
                    if root_done:
                        suppressing = True
                        log.note(_position_error(
                            scanner, position,
                            f"extra root element <{event.tag}> skipped"))
                if not suppressing:
                    yield event
            if not open_tags and any(isinstance(event, EndElement)
                                     for event in events):
                if not suppressing:
                    root_done = True
                suppressing = False
            continue
        try:
            chunk = _scan_text(scanner, lenient=True)
        except XMLSyntaxError as problem:  # pragma: no cover - lenient
            log.note(problem)
            _resynchronize(scanner, scanner.pos)
            continue
        if chunk and open_tags and not suppressing:
            yield Text(chunk)

    if open_tags:
        log.note(scanner.error(
            f"unclosed element <{open_tags[-1]}> auto-closed at end of "
            f"input"))
        while open_tags:
            tag = open_tags.pop()
            if not suppressing:
                yield EndElement(tag)
        if not suppressing:
            root_done = True
    if not root_done:
        raise scanner.error("document has no salvageable root element")


def _resynchronize(scanner: _Scanner, markup_start: int) -> None:
    """Skip past a malformed construct to the next plausible markup."""
    scanner.pos = max(scanner.pos, markup_start + 1)
    next_markup = scanner.text.find("<", scanner.pos)
    scanner.pos = scanner.length if next_markup < 0 else next_markup


def _position_error(scanner: _Scanner, position: int,
                    message: str) -> XMLSyntaxError:
    """An :class:`XMLSyntaxError` pinned to *position* (not scanner.pos)."""
    saved = scanner.pos
    scanner.pos = position
    try:
        return scanner.error(message)
    finally:
        scanner.pos = saved


def _scan_text(scanner: _Scanner, lenient: bool = False) -> str:
    start = scanner.pos
    end = scanner.text.find("<", start)
    if end < 0:
        end = scanner.length
    raw = scanner.text[start:end]
    scanner.pos = end
    return decode_entities(raw, scanner, lenient=lenient)


def _scan_markup(scanner: _Scanner, open_tags: list[str],
                 recover: bool = False) -> list[ParseEvent]:
    """Dispatch on the markup starting at ``<``.

    Returns the events it produced — usually one, two for a self-closing
    element, zero for markup with no event (XML declaration, DOCTYPE).
    With ``recover=True`` stray closing tags yield no event and entity
    errors in attribute values are tolerated; structural errors still
    raise and are handled by the salvage driver.
    """
    if scanner.startswith("<!--"):
        scanner.advance(4)
        return [Comment(scanner.take_until("-->", "comment"))]
    if scanner.startswith("<![CDATA["):
        scanner.advance(9)
        content = scanner.take_until("]]>", "CDATA section")
        if open_tags:
            return [Text(content)]
        if content.strip() and not recover:
            raise scanner.error("character data outside the root element")
        return []
    if scanner.startswith("<?"):
        scanner.advance(2)
        body = scanner.take_until("?>", "processing instruction")
        target, _, data = body.partition(" ")
        if target.lower() == "xml":
            return []  # the XML declaration carries no content
        return [ProcessingInstruction(target, data.strip())]
    if scanner.startswith("<!DOCTYPE") or scanner.startswith("<!doctype"):
        _skip_doctype(scanner)
        return []
    if scanner.startswith("</"):
        if recover:
            return _scan_end_tag_salvage(scanner, open_tags)
        return [_scan_end_tag(scanner, open_tags)]
    return _scan_start_tag(scanner, open_tags, recover=recover)


def _skip_doctype(scanner: _Scanner) -> None:
    """Skip a DOCTYPE declaration, tolerating an internal subset."""
    depth = 0
    scanner.advance(1)  # consume '<'
    while not scanner.at_end():
        ch = scanner.peek()
        scanner.advance()
        if ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
        elif ch == ">" and depth <= 0:
            return
    raise scanner.error("unterminated DOCTYPE declaration")


def _scan_end_tag(scanner: _Scanner, open_tags: list[str]) -> EndElement:
    scanner.advance(2)
    tag = scanner.read_name("element name in closing tag")
    scanner.skip_whitespace()
    scanner.expect(">")
    if not open_tags:
        raise scanner.error(f"closing tag </{tag}> without opening tag")
    expected = open_tags.pop()
    if expected != tag:
        raise scanner.error(
            f"mismatched closing tag </{tag}>, expected </{expected}>")
    return EndElement(tag)


def _scan_end_tag_salvage(scanner: _Scanner,
                          open_tags: list[str]) -> list[ParseEvent]:
    """Recovering end-tag scan: close through to the matching open tag.

    A closing tag whose name is on the open stack (not necessarily on
    top) closes every deeper element on the way — the common
    "forgot-to-close-a-child" corruption.  A closing tag matching nothing
    is dropped.
    """
    scanner.advance(2)
    tag = scanner.read_name("element name in closing tag")
    scanner.skip_whitespace()
    scanner.expect(">")
    if tag not in open_tags:
        raise scanner.error(f"stray closing tag </{tag}> dropped")
    events: list[ParseEvent] = []
    while open_tags:
        top = open_tags.pop()
        events.append(EndElement(top))
        if top == tag:
            break
    return events


def _scan_start_tag(scanner: _Scanner, open_tags: list[str],
                    recover: bool = False) -> list[ParseEvent]:
    scanner.advance(1)
    tag = scanner.read_name("element name")
    attributes = _scan_attributes(scanner, lenient=recover)
    scanner.skip_whitespace()
    if scanner.startswith("/>"):
        scanner.advance(2)
        return [StartElement(tag, attributes), EndElement(tag)]
    scanner.expect(">")
    open_tags.append(tag)
    return [StartElement(tag, attributes)]


def _scan_attributes(scanner: _Scanner,
                     lenient: bool = False) -> dict[str, str]:
    attributes: dict[str, str] = {}
    while True:
        scanner.skip_whitespace()
        ch = scanner.peek()
        if ch in (">", "/") or scanner.at_end():
            return attributes
        name = scanner.read_name("attribute name")
        scanner.skip_whitespace()
        scanner.expect("=")
        scanner.skip_whitespace()
        quote = scanner.peek()
        if quote not in ("'", '"'):
            raise scanner.error("attribute value must be quoted")
        scanner.advance(1)
        value = scanner.take_until(quote, "attribute value")
        if name in attributes:
            raise scanner.error(f"duplicate attribute {name!r}")
        attributes[name] = decode_entities(value, scanner, lenient=lenient)


class TreeBuilder:
    """Assemble an :class:`XMLDocument` from a stream of parse events.

    Parameters
    ----------
    doc_id:
        Document number used as the Dewey prefix.
    attributes_as_children:
        When true (the default), each XML attribute ``k="v"`` becomes a child
        element ``<k>v</k>`` — the representation keyword search operates on
        (the paper's model has no separate attribute axis, and corpora such
        as Mondial carry their data in XML attributes).
    name:
        Optional document name, e.g. a file name.
    """

    def __init__(self, doc_id: int = 0, attributes_as_children: bool = True,
                 name: str | None = None) -> None:
        self.doc_id = doc_id
        self.attributes_as_children = attributes_as_children
        self.name = name
        self._root: XMLNode | None = None
        self._stack: list[XMLNode] = []
        self._text_parts: list[list[str]] = []

    def feed(self, event: ParseEvent) -> None:
        """Consume one parse event."""
        if isinstance(event, StartElement):
            self._start(event)
        elif isinstance(event, EndElement):
            self._end()
        elif isinstance(event, Text):
            if self._stack:
                self._text_parts[-1].append(event.content)
        # comments and PIs carry no searchable content

    def _start(self, event: StartElement) -> None:
        if self._stack:
            node = self._stack[-1].add_child(event.tag)
        else:
            node = XMLNode(event.tag, (self.doc_id,))
            self._root = node
        if self.attributes_as_children:
            for key, value in event.attributes.items():
                node.add_child(key, text=value)
        else:
            node.xml_attributes = dict(event.attributes)
        self._stack.append(node)
        self._text_parts.append([])

    def _end(self) -> None:
        node = self._stack.pop()
        parts = self._text_parts.pop()
        text = "".join(parts).strip()
        if text:
            node.text = text

    def document(self) -> XMLDocument:
        """Return the finished document (after all events were fed)."""
        if self._root is None or self._stack:
            raise XMLSyntaxError("document incomplete: unbalanced events")
        return XMLDocument(self._root, name=self.name)


def parse_document(text: str, doc_id: int = 0,
                   attributes_as_children: bool = True,
                   name: str | None = None,
                   policy: RecoveryPolicy | str = RecoveryPolicy.STRICT,
                   salvage_log: SalvageLog | None = None) -> XMLDocument:
    """Parse an XML string into an :class:`XMLDocument` with Dewey ids.

    ``policy=RecoveryPolicy.SALVAGE`` parses through malformed markup
    (repairs are recorded on *salvage_log* when given); ``STRICT`` and
    ``SKIP_DOCUMENT`` raise :class:`XMLSyntaxError` on the first error —
    the skip decision belongs to the repository, not the parser.
    """
    policy = RecoveryPolicy.coerce(policy)
    builder = TreeBuilder(doc_id=doc_id,
                          attributes_as_children=attributes_as_children,
                          name=name)
    if policy is RecoveryPolicy.SALVAGE:
        events = iter_events_salvage(text, log=salvage_log)
    else:
        events = iter_events(text)
    for event in events:
        builder.feed(event)
    return builder.document()


def parse_documents(texts: Iterable[str], first_doc_id: int = 0,
                    attributes_as_children: bool = True,
                    policy: RecoveryPolicy | str = RecoveryPolicy.STRICT,
                    ) -> list[XMLDocument]:
    """Parse several XML strings into consecutively numbered documents."""
    return [
        parse_document(text, doc_id=first_doc_id + offset,
                       attributes_as_children=attributes_as_children,
                       policy=policy)
        for offset, text in enumerate(texts)
    ]
