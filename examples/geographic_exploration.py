"""Exploring an unfamiliar corpus with element-name keywords and
recursive DI (the Mondial workload, QM1/QM2).

The user knows nothing about the schema.  They search a mix of element
names ('country', 'name') and data keywords ('Muslim', 'Laos'); GKS
returns entity nodes whose attribute context explains each hit, and
recursive DI walks them deeper into the data.

Run:  python examples/geographic_exploration.py
"""

from repro import GKSEngine, load_dataset


def main() -> None:
    print("generating synthetic Mondial corpus ...")
    engine = GKSEngine(load_dataset("mondial"))

    # QM1: a tag name plus a data keyword
    response = engine.search("country Muslim", s=2)
    print(f"\nQM1 'country Muslim' (s=2): {len(response)} node(s)")
    for node in response.top(3):
        element = engine.node_at(node.dewey)
        name = element.find_first("name")
        print(f"  <{element.tag}> name="
              f"{name.text if name is not None else '?'}  "
              f"score={node.score:.3f}")

    # QM2: mostly element names — tag indexing at work
    response = engine.search("Laos country name", s=3)
    print(f"\nQM2 'Laos country name' (s=3): {len(response)} node(s)")
    print("top result chunk (trimmed):")
    print(engine.snippet(response[0], max_depth=1))

    # browse outward with recursive DI: round 0 explains the response,
    # round 1 re-queries the top insight keywords
    print("recursive DI rounds:")
    reports = engine.recursive_insights(response, rounds=2, top=4,
                                        seed_keywords=3)
    for round_no, report in enumerate(reports):
        rendered = ", ".join(insight.render() for insight in report)
        print(f"  round {round_no}: {rendered or '(none)'}")

    # QM3-style multi-topic query: subsets show how keywords cluster
    response = engine.search(
        "Polish Spanish German Luxembourg Bruges Catholic", s=2)
    print(f"\nQM3 (s=2): {len(response)} node(s); suggested sub-queries:")
    insights = engine.insights(response, top=5)
    for refinement in engine.refine(response, insights, top=4):
        print(f"  [{refinement.kind.value}] "
              f"{' '.join(refinement.keywords)}")


if __name__ == "__main__":
    main()
