"""Property-based tests (hypothesis): the efficient algorithms are
cross-validated against brute-force oracles on randomized documents, and
the paper's structural invariants are checked on arbitrary trees."""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.baselines.bruteforce import (brute_candidates, brute_elca,
                                        brute_slca, subtree_keyword_map)
from repro.baselines.elca import elca
from repro.baselines.slca import slca_indexed_lookup_eager, slca_scan
from repro.core.lcp import sliding_blocks
from repro.core.merge import merged_list
from repro.core.query import Query
from repro.core.ranking import rank_node
from repro.core.search import search
from repro.index.builder import build_index
from repro.text.analyzer import Analyzer
from repro.xmltree.dewey import is_ancestor_or_self
from repro.xmltree.node import build_tree
from repro.xmltree.parser import parse_document
from repro.xmltree.repository import Repository
from repro.xmltree.serialize import serialize_node

# Text keywords use an alphabet the analyzer maps to itself.
KEYWORDS = ["kilo", "lima", "mike", "november", "oscar"]
TAGS = ["va", "vb", "vc", "vd"]

ANALYZER = Analyzer(use_stemming=False)


def spec_strategy():
    """Nested (tag, text?, children?) specs for build_tree."""
    leaf = st.tuples(st.sampled_from(TAGS), st.sampled_from(KEYWORDS))
    return st.recursive(
        leaf,
        lambda children: st.tuples(
            st.sampled_from(TAGS),
            st.lists(children, min_size=1, max_size=4)),
        max_leaves=12,
    ).map(lambda spec: ("root", [spec]) if not isinstance(spec[1], list)
          else ("root", spec[1]))


@st.composite
def repo_and_query(draw):
    spec = draw(spec_strategy())
    repo = Repository()
    repo.add_root(build_tree(spec))
    count = draw(st.integers(min_value=1, max_value=3))
    keywords = draw(st.lists(st.sampled_from(KEYWORDS), min_size=count,
                             max_size=count, unique=True))
    s = draw(st.integers(min_value=1, max_value=count))
    return repo, Query.of(keywords, s=s)


@settings(max_examples=120, deadline=None)
@given(repo_and_query())
def test_slca_matches_bruteforce(case):
    repo, query = case
    index = build_index(repo, analyzer=ANALYZER)
    oracle = brute_slca(repo, query, analyzer=ANALYZER)
    assert slca_indexed_lookup_eager(index, query) == oracle
    assert slca_scan(index, query) == oracle
    from repro.baselines.slca_intersect import slca_set_intersection

    assert slca_set_intersection(index, query) == oracle


@settings(max_examples=120, deadline=None)
@given(repo_and_query())
def test_elca_matches_bruteforce(case):
    repo, query = case
    index = build_index(repo, analyzer=ANALYZER)
    oracle = brute_elca(repo, query, analyzer=ANALYZER)
    assert elca(index, query) == oracle
    from repro.baselines.elca_stack import elca_stack

    assert elca_stack(index, query) == oracle


@settings(max_examples=120, deadline=None)
@given(repo_and_query())
def test_gks_response_soundness(case):
    """Every response node's subtree really holds ≥ s distinct keywords."""
    repo, query = case
    index = build_index(repo, analyzer=ANALYZER)
    response = search(index, query)
    candidates = set(brute_candidates(repo, query, analyzer=ANALYZER))
    for node in response:
        assert node.dewey in candidates
        assert node.distinct_keywords >= query.effective_s


@settings(max_examples=120, deadline=None)
@given(repo_and_query())
def test_gks_response_coverage(case):
    """Minimal candidates are always represented, and matches imply a
    non-empty response.

    A *minimal* candidate (no candidate strictly inside it), lifted off an
    attribute node per Def 2.1.1, must be comparable to some response node
    — in its subtree or on its ancestor chain.  Non-minimal candidates may
    legitimately go unrepresented: the response follows SLCA semantics and
    drops shallower matches in favour of deeper ones (Table 1's Q1 returns
    x2, not x1).
    """
    repo, query = case
    index = build_index(repo, analyzer=ANALYZER)
    response = search(index, query)
    candidates = brute_candidates(repo, query, analyzer=ANALYZER)
    candidate_set = set(candidates)
    if candidates:
        assert len(response) > 0

    from repro.xmltree.dewey import is_ancestor

    for candidate in candidates:
        if any(other != candidate and is_ancestor(candidate, other)
               for other in candidate_set):
            continue  # not minimal
        lifted = candidate
        if len(candidate) > 1 and index.hashes.is_attribute(candidate):
            lifted = candidate[:-1]
        assert any(is_ancestor_or_self(lifted, dewey)
                   or is_ancestor_or_self(dewey, lifted)
                   for dewey in response.deweys), (
            f"minimal candidate {candidate} not represented")


@settings(max_examples=100, deadline=None)
@given(repo_and_query())
def test_lcp_blocks_have_s_unique_keywords(case):
    repo, query = case
    index = build_index(repo, analyzer=ANALYZER)
    sl = merged_list(index, query)
    for left, right, prefix in sliding_blocks(sl, query.effective_s):
        block_keywords = {sl[i].keyword for i in range(left, right + 1)}
        assert len(block_keywords) == query.effective_s
        if prefix:
            for position in range(left, right + 1):
                assert is_ancestor_or_self(prefix, sl[position].dewey)


@settings(max_examples=100, deadline=None)
@given(repo_and_query())
def test_reference_semantics_monotone_in_s(case):
    """Lemma 2 on reference semantics: candidates shrink as s grows."""
    repo, query = case
    previous = None
    for s in range(1, len(query.keywords) + 1):
        current = set(brute_candidates(repo, query.with_s(s),
                                       analyzer=ANALYZER))
        if previous is not None:
            assert current <= previous
        previous = current


@settings(max_examples=100, deadline=None)
@given(repo_and_query())
def test_ranking_bounds(case):
    """0 < rank ≤ P·(#terminals per keyword)·… — concretely: positive and
    at most P times the total number of terminal points."""
    repo, query = case
    index = build_index(repo, analyzer=ANALYZER)
    response = search(index, query)
    for node in response:
        breakdown = rank_node(index, query, node.dewey)
        assert breakdown.score > 0
        terminal_count = sum(len(points)
                             for points in breakdown.terminals.values())
        assert breakdown.score <= \
            breakdown.initial_potential * terminal_count + 1e-9


@settings(max_examples=100, deadline=None)
@given(repo_and_query())
def test_estimated_counts_at_least_s(case):
    repo, query = case
    index = build_index(repo, analyzer=ANALYZER)
    response = search(index, query)
    for node in response:
        assert node.estimated_keywords >= query.effective_s


@settings(max_examples=100, deadline=None)
@given(spec_strategy())
def test_serializer_parser_round_trip(spec):
    root = build_tree(spec)
    reparsed = parse_document(serialize_node(root))
    original = [(node.dewey, node.tag, node.text)
                for node in root.iter_subtree()]
    rebuilt = [(node.dewey, node.tag, node.text)
               for node in reparsed.root.iter_subtree()]
    assert original == rebuilt


@settings(max_examples=100, deadline=None)
@given(spec_strategy())
def test_subtree_keyword_map_consistency(spec):
    """The oracle keyword map agrees with the index on every node."""
    repo = Repository()
    repo.add_root(build_tree(spec))
    index = build_index(repo, analyzer=ANALYZER)
    mapping = subtree_keyword_map(repo, analyzer=ANALYZER)
    from repro.index.postings import count_in_subtree

    for dewey, keywords in mapping.items():
        for keyword in KEYWORDS:
            expected = keyword in keywords
            found = count_in_subtree(index.postings(keyword), dewey) > 0
            assert expected == found
